//! The flight recorder: watch individual packets move through the fabric,
//! first on a quiet network (textbook pipeline timing), then under a hot
//! spot (where the waits happen), and finally through the sampled JSONL
//! export the `ibfat trace` subcommand is built on.
//!
//! ```text
//! cargo run --release --example packet_trace
//! ```

use ib_fabric::prelude::*;
use ib_fabric::{traces_to_jsonl, TraceSampling};

fn main() {
    let fabric = Fabric::builder(4, 3).build().expect("valid");

    println!("=== quiet network (0.01 load): the textbook pipeline ===\n");
    let report = fabric
        .experiment()
        .traffic(TrafficPattern::bit_complement(16))
        .offered_load(0.01)
        .duration_ns(100_000)
        .trace_first_packets(1)
        .run();
    for t in report.traces.expect("tracing on") {
        print!("{}", t.render());
        println!(
            "  => {} ns end to end: 6 links x 20 ns flight + 5 switches x 100 ns\n     routing + 256 ns serialization\n",
            t.latency_ns().expect("delivered")
        );
    }

    println!("=== 50% hot spot (0.5 load): where time actually goes ===\n");
    let report = fabric
        .experiment()
        .traffic(TrafficPattern::paper_centric())
        .offered_load(0.5)
        .duration_ns(100_000)
        .trace_first_packets(40)
        .run();
    let traces = report.traces.expect("tracing on");
    // Show the slowest delivered packet of the sample.
    let slowest = traces
        .iter()
        .filter(|t| t.latency_ns().is_some())
        .max_by_key(|t| t.latency_ns().expect("filtered"))
        .expect("some delivered");
    print!("{}", slowest.render());
    println!(
        "  => {} ns — the gaps between 'routed' and 'granted'/'leaving' are\n     output-buffer and credit waits behind the congested hot flows.",
        slowest.latency_ns().expect("delivered")
    );

    // The same recorder, driven the way the `ibfat trace` subcommand
    // drives it: sample 1-in-4 flows instead of the first N packets,
    // export the spans as JSONL, and count the credit-stall spans — the
    // per-hop congestion signal. The sampling decision is a pure
    // function of (src, dst, seed), so the slots (and the bytes below)
    // are identical at any `--threads` count.
    println!("\n=== sampled JSONL export (1-in-4 flows, credit stalls) ===\n");
    let report = fabric
        .experiment()
        .traffic(TrafficPattern::paper_centric())
        .offered_load(0.5)
        .duration_ns(100_000)
        .trace_first_packets(8)
        .trace_sampling(TraceSampling::OneInN(4))
        .run();
    let traces = report.traces.expect("tracing on");
    let jsonl = traces_to_jsonl(&traces);
    for line in jsonl.lines().take(2) {
        println!("{line}");
    }
    let stalls = jsonl.matches("\"ev\":\"credit_stalled\"").count();
    println!(
        "  => {} spans exported ({} shown), {} credit-stall events among them",
        traces.len(),
        jsonl.lines().count().min(2),
        stalls
    );
}
