/root/repo/target/debug/deps/bench-26ccf3f13e6600a8.d: crates/bench/src/lib.rs crates/bench/src/trajectory.rs

/root/repo/target/debug/deps/libbench-26ccf3f13e6600a8.rmeta: crates/bench/src/lib.rs crates/bench/src/trajectory.rs

crates/bench/src/lib.rs:
crates/bench/src/trajectory.rs:
