/root/repo/target/debug/deps/bench-e1a67293634af8c4.d: crates/bench/src/bin/bench.rs

/root/repo/target/debug/deps/libbench-e1a67293634af8c4.rmeta: crates/bench/src/bin/bench.rs

crates/bench/src/bin/bench.rs:
