/root/repo/target/debug/deps/ib_fabric-197e18cb7ab7797c.d: crates/core/src/lib.rs crates/core/src/builder.rs crates/core/src/experiment.rs

/root/repo/target/debug/deps/libib_fabric-197e18cb7ab7797c.rmeta: crates/core/src/lib.rs crates/core/src/builder.rs crates/core/src/experiment.rs

crates/core/src/lib.rs:
crates/core/src/builder.rs:
crates/core/src/experiment.rs:
