use crate::{Digits, Level, NodeId, SwitchId, TopologyError, TreeParams};
use serde::{Deserialize, Serialize};
use std::fmt;

/// The label `P(p0 p1 ... p_{n-1})` of a processing node in `FT(m, n)`.
///
/// Digit `p0` ranges over `0..m`; every other digit over `0..m/2`. The
/// node's dense id is its `PID`: the digit string read as a mixed-radix
/// number, so labels and ids sort identically.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct NodeLabel {
    digits: Digits,
}

impl NodeLabel {
    /// Build a node label from its digits, validating each against the radix.
    pub fn new(params: TreeParams, digits: &[u8]) -> Result<Self, TopologyError> {
        if digits.len() != params.node_digits() {
            return Err(TopologyError::InvalidLabel(format!(
                "node label must have {} digits, got {}",
                params.node_digits(),
                digits.len()
            )));
        }
        for (i, &d) in digits.iter().enumerate() {
            let radix = params.node_digit_radix(i);
            if u32::from(d) >= radix {
                return Err(TopologyError::InvalidLabel(format!(
                    "node digit {i} is {d}, must be < {radix}"
                )));
            }
        }
        Ok(NodeLabel {
            digits: Digits::from_slice(digits),
        })
    }

    /// The label of the node with dense id `id` (the inverse of
    /// [`NodeLabel::id`]).
    ///
    /// # Panics
    /// Panics if `id` is out of range for `params`.
    pub fn from_id(params: TreeParams, id: NodeId) -> Self {
        assert!(
            id.0 < params.num_nodes(),
            "node id {id} out of range for {params}"
        );
        let half = params.half();
        let mut rem = id.0;
        let mut digits = Digits::zeros(params.node_digits());
        // Peel digits from least significant (p_{n-1}) upward; p0 absorbs
        // whatever remains (its radix is m = 2 * half).
        for i in (1..params.node_digits()).rev() {
            digits[i] = (rem % half) as u8;
            rem /= half;
        }
        digits[0] = rem as u8;
        debug_assert!(rem < params.m());
        NodeLabel { digits }
    }

    /// The digits of the label.
    #[inline]
    pub fn digits(&self) -> &Digits {
        &self.digits
    }

    /// Digit `i` of the label.
    #[inline]
    pub fn digit(&self, i: usize) -> u8 {
        self.digits[i]
    }

    /// The dense id (= the paper's `PID`) of this node:
    /// `p0 (m/2)^(n-1) + p1 (m/2)^(n-2) + ... + p_{n-1}`.
    pub fn id(&self, params: TreeParams) -> NodeId {
        let half = params.half();
        let mut v = 0u32;
        for d in self.digits.iter() {
            v = v * half + u32::from(d);
        }
        NodeId(v)
    }

    /// Iterate over the labels of every node, in id order.
    pub fn all(params: TreeParams) -> impl Iterator<Item = NodeLabel> {
        (0..params.num_nodes()).map(move |i| NodeLabel::from_id(params, NodeId(i)))
    }

    /// Parse the display form `P(digits)`, with digits written plainly
    /// when below 10 and as `[d]` otherwise (the inverse of `Display`).
    pub fn parse(params: TreeParams, s: &str) -> Result<Self, TopologyError> {
        let inner = s
            .strip_prefix("P(")
            .and_then(|rest| rest.strip_suffix(')'))
            .ok_or_else(|| TopologyError::InvalidLabel(format!("expected P(...), got '{s}'")))?;
        NodeLabel::new(params, &parse_digits(inner)?)
    }
}

/// Parse a digit string in the `Display` encoding: `0`-`9` directly,
/// larger digits bracketed as `[17]`.
fn parse_digits(s: &str) -> Result<Vec<u8>, TopologyError> {
    let mut out = Vec::new();
    let mut chars = s.chars().peekable();
    while let Some(c) = chars.next() {
        match c {
            '0'..='9' => out.push(c as u8 - b'0'),
            '[' => {
                let mut num = String::new();
                for c in chars.by_ref() {
                    if c == ']' {
                        break;
                    }
                    num.push(c);
                }
                let d: u8 = num
                    .parse()
                    .map_err(|_| TopologyError::InvalidLabel(format!("bad digit '[{num}]'")))?;
                out.push(d);
            }
            other => {
                return Err(TopologyError::InvalidLabel(format!(
                    "unexpected character '{other}' in digit string"
                )))
            }
        }
    }
    Ok(out)
}

impl fmt::Display for NodeLabel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "P({})", self.digits)
    }
}

/// The label `SW<w0 w1 ... w_{n-2}, l>` of a communication switch.
///
/// Level `l = 0` holds the roots; level `n-1` the leaf switches. Digit `w0`
/// ranges over `0..m/2` for roots and `0..m` for every other level; the
/// remaining digits range over `0..m/2`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct SwitchLabel {
    w: Digits,
    level: Level,
}

impl SwitchLabel {
    /// Build a switch label, validating digits against the per-level radix.
    pub fn new(params: TreeParams, w: &[u8], level: Level) -> Result<Self, TopologyError> {
        if u32::from(level.0) >= params.n() {
            return Err(TopologyError::InvalidLabel(format!(
                "switch level {level} must be < {}",
                params.n()
            )));
        }
        if w.len() != params.switch_digits() {
            return Err(TopologyError::InvalidLabel(format!(
                "switch label must have {} digits, got {}",
                params.switch_digits(),
                w.len()
            )));
        }
        for (i, &d) in w.iter().enumerate() {
            let radix = params.switch_digit_radix(u32::from(level.0), i);
            if u32::from(d) >= radix {
                return Err(TopologyError::InvalidLabel(format!(
                    "switch digit {i} is {d}, must be < {radix} at {level}"
                )));
            }
        }
        Ok(SwitchLabel {
            w: Digits::from_slice(w),
            level,
        })
    }

    /// The label of the switch with dense id `id` (level-major ordering;
    /// inverse of [`SwitchLabel::id`]).
    ///
    /// # Panics
    /// Panics if `id` is out of range for `params`.
    pub fn from_id(params: TreeParams, id: SwitchId) -> Self {
        assert!(
            id.0 < params.num_switches(),
            "switch id {id} out of range for {params}"
        );
        // Find the level containing this id.
        let mut level = 0u32;
        while level + 1 < params.n() && id.0 >= params.level_offset(level + 1) {
            level += 1;
        }
        let within = id.0 - params.level_offset(level);
        let half = params.half();
        let mut rem = within;
        let mut w = Digits::zeros(params.switch_digits());
        for i in (1..params.switch_digits()).rev() {
            w[i] = (rem % half) as u8;
            rem /= half;
        }
        if !w.is_empty() {
            w[0] = rem as u8;
            debug_assert!(rem < params.switch_digit_radix(level, 0));
        } else {
            debug_assert_eq!(rem, 0);
        }
        SwitchLabel {
            w,
            level: Level(level as u8),
        }
    }

    /// The digit string `w`.
    #[inline]
    pub fn w(&self) -> &Digits {
        &self.w
    }

    /// Digit `i` of `w`.
    #[inline]
    pub fn digit(&self, i: usize) -> u8 {
        self.w[i]
    }

    /// The switch level.
    #[inline]
    pub fn level(&self) -> Level {
        self.level
    }

    /// The dense, level-major id of this switch.
    pub fn id(&self, params: TreeParams) -> SwitchId {
        let half = params.half();
        let mut v = 0u32;
        for d in self.w.iter() {
            v = v * half + u32::from(d);
        }
        SwitchId(params.level_offset(u32::from(self.level.0)) + v)
    }

    /// Iterate over the labels of every switch, in id order.
    pub fn all(params: TreeParams) -> impl Iterator<Item = SwitchLabel> {
        (0..params.num_switches()).map(move |i| SwitchLabel::from_id(params, SwitchId(i)))
    }

    /// Iterate over the labels of every switch at one level, in id order.
    pub fn all_at_level(params: TreeParams, level: Level) -> impl Iterator<Item = SwitchLabel> {
        let base = params.level_offset(u32::from(level.0));
        (0..params.switches_at_level(u32::from(level.0)))
            .map(move |i| SwitchLabel::from_id(params, SwitchId(base + i)))
    }

    /// Parse the display form `SW<digits, level>` (the inverse of
    /// `Display`).
    pub fn parse(params: TreeParams, s: &str) -> Result<Self, TopologyError> {
        let inner = s
            .strip_prefix("SW<")
            .and_then(|rest| rest.strip_suffix('>'))
            .ok_or_else(|| {
                TopologyError::InvalidLabel(format!("expected SW<..., l>, got '{s}'"))
            })?;
        let (digits, level) = inner
            .rsplit_once(',')
            .ok_or_else(|| TopologyError::InvalidLabel(format!("missing level in '{s}'")))?;
        let level: u8 = level
            .trim()
            .parse()
            .map_err(|_| TopologyError::InvalidLabel(format!("bad level in '{s}'")))?;
        SwitchLabel::new(params, &parse_digits(digits.trim())?, Level(level))
    }
}

impl fmt::Display for SwitchLabel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SW<{}, {}>", self.w, self.level.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ft43() -> TreeParams {
        TreeParams::new(4, 3).unwrap()
    }

    #[test]
    fn node_label_roundtrip_all() {
        for params in [
            ft43(),
            TreeParams::new(8, 2).unwrap(),
            TreeParams::new(2, 4).unwrap(),
        ] {
            for i in 0..params.num_nodes() {
                let label = NodeLabel::from_id(params, NodeId(i));
                assert_eq!(label.id(params), NodeId(i), "{params} node {i}");
            }
        }
    }

    #[test]
    fn switch_label_roundtrip_all() {
        for params in [
            ft43(),
            TreeParams::new(8, 3).unwrap(),
            TreeParams::new(2, 3).unwrap(),
        ] {
            for i in 0..params.num_switches() {
                let label = SwitchLabel::from_id(params, SwitchId(i));
                assert_eq!(label.id(params), SwitchId(i), "{params} switch {i}");
            }
        }
    }

    #[test]
    fn paper_pid_examples() {
        // PID(P(100)) = 4 and PID(P(111)) = 7 in the 4-port 3-tree.
        let p100 = NodeLabel::new(ft43(), &[1, 0, 0]).unwrap();
        let p111 = NodeLabel::new(ft43(), &[1, 1, 1]).unwrap();
        assert_eq!(p100.id(ft43()), NodeId(4));
        assert_eq!(p111.id(ft43()), NodeId(7));
    }

    #[test]
    fn node_first_digit_spans_m() {
        // The last node has p0 = m-1 = 3 in FT(4, 3).
        let last = NodeLabel::from_id(ft43(), NodeId(15));
        assert_eq!(last.digits().as_slice(), &[3, 1, 1]);
        assert_eq!(last.to_string(), "P(311)");
    }

    #[test]
    fn switch_levels_and_counts() {
        let params = ft43();
        let mut by_level = [0u32; 3];
        for label in SwitchLabel::all(params) {
            by_level[label.level().index()] += 1;
        }
        assert_eq!(by_level, [4, 8, 8]);
        // Root labels only use w0 < m/2.
        for label in SwitchLabel::all_at_level(params, Level(0)) {
            assert!(label.digit(0) < 2);
        }
        // Lower levels use w0 < m.
        let l1: Vec<_> = SwitchLabel::all_at_level(params, Level(1)).collect();
        assert_eq!(l1.len(), 8);
        assert!(l1.iter().any(|s| s.digit(0) == 3));
    }

    #[test]
    fn validation_rejects_bad_digits() {
        assert!(NodeLabel::new(ft43(), &[4, 0, 0]).is_err()); // p0 < 4 ok; 4 is not
        assert!(NodeLabel::new(ft43(), &[0, 2, 0]).is_err()); // p1 < 2
        assert!(NodeLabel::new(ft43(), &[0, 0]).is_err()); // wrong length
        assert!(SwitchLabel::new(ft43(), &[2, 0], Level(0)).is_err()); // root w0 < 2
        assert!(SwitchLabel::new(ft43(), &[2, 0], Level(1)).is_ok()); // lower w0 < 4
        assert!(SwitchLabel::new(ft43(), &[0, 0], Level(3)).is_err()); // level < n
    }

    #[test]
    fn display_forms() {
        let s = SwitchLabel::new(ft43(), &[1, 0], Level(2)).unwrap();
        assert_eq!(s.to_string(), "SW<10, 2>");
        let n = NodeLabel::new(ft43(), &[1, 0, 0]).unwrap();
        assert_eq!(n.to_string(), "P(100)");
    }

    #[test]
    fn single_level_tree_has_empty_switch_labels() {
        // FT(m, 1): one level of switches, each with an empty digit string.
        let params = TreeParams::new(4, 1).unwrap();
        assert_eq!(params.num_switches(), 1);
        let s = SwitchLabel::from_id(params, SwitchId(0));
        assert!(s.w().is_empty());
        assert_eq!(s.id(params), SwitchId(0));
    }
}

#[cfg(test)]
mod parse_tests {
    use super::*;

    #[test]
    fn node_label_display_parse_roundtrip() {
        for params in [
            TreeParams::new(4, 3).unwrap(),
            TreeParams::new(32, 2).unwrap(),
        ] {
            for label in NodeLabel::all(params) {
                let parsed = NodeLabel::parse(params, &label.to_string())
                    .unwrap_or_else(|e| panic!("{label}: {e}"));
                assert_eq!(parsed, label);
            }
        }
    }

    #[test]
    fn switch_label_display_parse_roundtrip() {
        for params in [
            TreeParams::new(4, 3).unwrap(),
            TreeParams::new(32, 2).unwrap(),
        ] {
            for label in SwitchLabel::all(params) {
                let parsed = SwitchLabel::parse(params, &label.to_string())
                    .unwrap_or_else(|e| panic!("{label}: {e}"));
                assert_eq!(parsed, label);
            }
        }
    }

    #[test]
    fn parse_rejects_malformed_labels() {
        let p = TreeParams::new(4, 3).unwrap();
        for bad in ["P(01", "Q(010)", "P(05 0)", "P(910)", "P()"] {
            assert!(NodeLabel::parse(p, bad).is_err(), "{bad}");
        }
        for bad in ["SW<10>", "SW<10, 9>", "SW<xx, 1>", "<10, 1>"] {
            assert!(SwitchLabel::parse(p, bad).is_err(), "{bad}");
        }
    }

    #[test]
    fn bracketed_digits_parse() {
        let p = TreeParams::new(32, 2).unwrap();
        let label = NodeLabel::new(p, &[17, 3]).unwrap();
        assert_eq!(label.to_string(), "P([17]3)");
        assert_eq!(NodeLabel::parse(p, "P([17]3)").unwrap(), label);
    }
}
