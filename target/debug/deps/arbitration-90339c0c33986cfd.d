/root/repo/target/debug/deps/arbitration-90339c0c33986cfd.d: crates/sim/tests/arbitration.rs

/root/repo/target/debug/deps/arbitration-90339c0c33986cfd: crates/sim/tests/arbitration.rs

crates/sim/tests/arbitration.rs:
