//! The bench-trajectory harness: run the representative workloads, write
//! `BENCH_sim.json`, and compare against the committed baseline.
//!
//! ```text
//! cargo run --release -p bench --bin bench -- [options]
//!   --out <path>        where to write the snapshot  [BENCH_sim.json]
//!   --baseline <path>   baseline to diff against     [the --out path]
//!   --threshold <frac>  regression threshold         [0.25 = 25% slower]
//!   --iters <n>         iterations per workload (best-of) [3]
//!   --gate              exit non-zero on regressions beyond --threshold
//!   --warn-only         report regressions but exit 0 (the default;
//!                       overrides --gate when both are given)
//!   --quick             shorter simulations (CI smoke; same names)
//!   --filter <substr>   run only workloads whose name contains substr
//!                       (the snapshot then holds just those rows — use a
//!                       scratch --out so the committed trajectory keeps
//!                       its full row set; a filter matching no row lists
//!                       the available names and exits non-zero)
//! ```
//!
//! Regressions beyond the threshold are reported on every run; the exit
//! code only reflects them under `--gate` (wall times are host-dependent,
//! so failing is opt-in). Compare trajectories only across runs on
//! comparable hardware.

use bench::trajectory::{
    compare, par_speedups, proc_speedups, BenchReport, PhaseSplit, SimTelemetry, WorkloadResult,
};
use ibfat_driver::ProcSimulator;
use ibfat_routing::{
    all_to_all_loads, all_to_all_loads_oracle, LidSpace, MlidScheme, Routing, RoutingKind,
    RoutingScheme, SlidScheme,
};
use ibfat_sim::{
    run_observed, run_once, run_once_par, CalendarKind, PhaseProfile, RouteBackend, RunSpec,
    SimConfig, TrafficPattern,
};
use ibfat_topology::{Network, TreeParams};
use std::time::Instant;

/// Simulated configurations: the `sim_50us` criterion set, with VL 4 on
/// the paper's mid-size FT(8,3) as the headline, plus the extended-LID
/// scale-out fabric FT(16,3) (1024 nodes) at VL 1.
const SIM_CONFIGS: [(u32, u32, u8); 6] = [
    (4, 3, 1),
    (4, 3, 4),
    (8, 3, 1),
    (8, 3, 4),
    (16, 2, 1),
    (16, 3, 1),
];

/// Oracle-backend configurations: the headline fabric (for a direct
/// table-vs-oracle comparison against `sim_engine/8x3/vl4`) and the
/// scale-out fabric whose flat MLID LFT costs ~21 MB the oracle never
/// allocates.
const ORACLE_CONFIGS: [(u32, u32, u8); 2] = [(8, 3, 4), (16, 3, 1)];

/// Routing-build configurations (Table 1 sizes × both schemes, plus the
/// extended-LID scale-out point FT(16, 3): 1024 nodes, 2^16 LIDs).
const LFT_CONFIGS: [(u32, u32); 5] = [(4, 3), (8, 3), (16, 2), (32, 2), (16, 3)];

struct Opts {
    out: String,
    baseline: Option<String>,
    threshold: f64,
    iters: u32,
    gate: bool,
    warn_only: bool,
    quick: bool,
    filter: Option<String>,
    /// Every row name offered to [`wanted`](Self::wanted) this run —
    /// the candidate set a zero-match `--filter` is reported against.
    offered: std::cell::RefCell<Vec<String>>,
}

impl Opts {
    /// Whether a workload name passes `--filter` (no filter = run all).
    /// Every name asked about is recorded, so a filter that matches
    /// nothing can list what it could have matched.
    fn wanted(&self, name: &str) -> bool {
        self.offered.borrow_mut().push(name.to_string());
        match &self.filter {
            None => true,
            Some(f) => name.contains(f.as_str()),
        }
    }

    /// The sorted, deduplicated candidate row names seen this run.
    fn offered_names(&self) -> Vec<String> {
        let mut names = self.offered.borrow().clone();
        names.sort();
        names.dedup();
        names
    }
}

fn parse_opts() -> Opts {
    let mut opts = Opts {
        out: "BENCH_sim.json".into(),
        baseline: None,
        threshold: 0.25,
        iters: 3,
        gate: false,
        warn_only: false,
        quick: false,
        filter: None,
        offered: std::cell::RefCell::new(Vec::new()),
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |what: &str| {
            args.next()
                .unwrap_or_else(|| panic!("{what} requires a value"))
        };
        match arg.as_str() {
            "--out" => opts.out = value("--out"),
            "--baseline" => opts.baseline = Some(value("--baseline")),
            "--threshold" => {
                opts.threshold = value("--threshold")
                    .parse()
                    .expect("--threshold takes a fraction, e.g. 0.25")
            }
            "--iters" => {
                opts.iters = value("--iters")
                    .parse()
                    .expect("--iters takes a positive integer")
            }
            "--gate" => opts.gate = true,
            "--warn-only" => opts.warn_only = true,
            "--quick" => opts.quick = true,
            "--filter" => opts.filter = Some(value("--filter")),
            other => panic!("unknown option: {other}"),
        }
    }
    assert!(opts.iters > 0, "--iters must be positive");
    opts
}

/// Run `work` `iters` times; return the best wall time (ns) and the
/// (deterministic) work-unit count it reported.
fn best_of(iters: u32, mut work: impl FnMut() -> u64) -> (u64, u64) {
    let mut best = u64::MAX;
    let mut events = 0;
    for _ in 0..iters {
        let start = Instant::now();
        events = work();
        best = best.min(start.elapsed().as_nanos() as u64);
    }
    (best, events)
}

fn result(name: String, wall_ns: u64, events: u64, iters: u32) -> WorkloadResult {
    let events_per_sec = if events > 0 && wall_ns > 0 {
        events as f64 / (wall_ns as f64 / 1e9)
    } else {
        0.0
    };
    println!(
        "  {name:<28} {:>9.3} ms   {:>10.0} ev/s",
        wall_ns as f64 / 1e6,
        events_per_sec
    );
    WorkloadResult {
        name,
        wall_ns,
        events,
        events_per_sec,
        iters,
        threads_available: 0,
        worker_rss_kb: 0,
        bridge_bytes: 0,
        phases: Vec::new(),
        sim_telemetry: None,
    }
}

fn run_workloads(opts: &Opts) -> Vec<WorkloadResult> {
    let sim_time_ns: u64 = if opts.quick { 20_000 } else { 50_000 };
    let mut out = Vec::new();

    println!("sim_engine ({} ns simulated, load 0.5):", sim_time_ns);
    for &(m, n, vls) in &SIM_CONFIGS {
        // Both calendars on every configuration: the `_heap` twin rows
        // keep the wheel-vs-heap gap visible in the committed trajectory.
        let rows = [
            ("sim_engine", CalendarKind::TimingWheel),
            ("sim_engine_heap", CalendarKind::BinaryHeap),
        ]
        .map(|(prefix, calendar)| (format!("{prefix}/{m}x{n}/vl{vls}"), calendar));
        if !rows.iter().any(|(name, _)| opts.wanted(name)) {
            continue;
        }
        let net = Network::mport_ntree(TreeParams::new(m, n).expect("valid configs"));
        let routing = Routing::build(&net, RoutingKind::Mlid);
        for (name, calendar) in rows {
            if !opts.wanted(&name) {
                continue;
            }
            let cfg = SimConfig {
                calendar,
                ..SimConfig::paper(vls)
            };
            let (wall, events) = best_of(opts.iters, || {
                run_once(
                    &net,
                    &routing,
                    cfg.clone(),
                    TrafficPattern::Uniform,
                    RunSpec::new(0.5, sim_time_ns),
                )
                .events_processed
            });
            out.push(result(name, wall, events, opts.iters));
        }
    }

    // The table-free data plane: every per-hop forwarding decision is
    // answered by the closed-form `RouteOracle` instead of an LFT read,
    // over a `Routing` that never materialized a table. Reports are
    // bit-identical to the table backend (pinned by the route_backend
    // proptest), so these rows measure the pure lookup-cost delta — and
    // on FT(16,3) they run a fabric whose flat MLID LFT (~21 MB) is
    // never allocated at all.
    println!("sim_engine_oracle (closed-form hop routing, table-free):");
    for &(m, n, vls) in &ORACLE_CONFIGS {
        let name = format!("sim_engine_oracle/{m}x{n}/vl{vls}");
        if !opts.wanted(&name) {
            continue;
        }
        let net = Network::mport_ntree(TreeParams::new(m, n).expect("valid configs"));
        let routing = Routing::build_table_free(&net, RoutingKind::Mlid);
        let cfg = SimConfig {
            route_backend: RouteBackend::Oracle,
            ..SimConfig::paper(vls)
        };
        let (wall, events) = best_of(opts.iters, || {
            run_once(
                &net,
                &routing,
                cfg.clone(),
                TrafficPattern::Uniform,
                RunSpec::new(0.5, sim_time_ns),
            )
            .events_processed
        });
        out.push(result(name, wall, events, opts.iters));
    }

    // The headline configuration on the sharded engine, at 1/2/4 worker
    // threads. Reports (and so `events`) are bit-identical across the
    // thread counts and to the sequential engine; only wall time moves,
    // and only with the host's core count — on a single-core runner the
    // t2/t4 rows pay barrier overhead for no parallelism. Compare these
    // rows to their own history on comparable hardware, not across hosts.
    println!("sim_engine_par (8x3/vl4, sharded engine):");
    {
        // Host core count, stamped on every par row: a t4 wall time from
        // a 1-core box is synchronization overhead, not parallelism, and
        // whoever reads the trajectory later needs to tell them apart.
        let threads_available = std::thread::available_parallelism()
            .map(|n| n.get() as u32)
            .unwrap_or(0);
        let rows =
            [1usize, 2, 4].map(|threads| (format!("sim_engine_par/8x3/vl4/t{threads}"), threads));
        if rows.iter().any(|(name, _)| opts.wanted(name)) {
            let net = Network::mport_ntree(TreeParams::new(8, 3).expect("valid config"));
            let routing = Routing::build(&net, RoutingKind::Mlid);
            let cfg = SimConfig::paper(4);
            for (name, threads) in rows {
                if !opts.wanted(&name) {
                    continue;
                }
                let (wall, events) = best_of(opts.iters, || {
                    run_once_par(
                        &net,
                        &routing,
                        cfg.clone(),
                        TrafficPattern::Uniform,
                        RunSpec::new(0.5, sim_time_ns),
                        threads,
                    )
                    .events_processed
                });
                let mut row = result(name, wall, events, opts.iters);
                row.threads_available = threads_available;
                // One extra untimed run with the engine's self-telemetry
                // on: structural context (windows, barrier waits, shard
                // imbalance) stamped next to the wall time it explains.
                // Kept out of `best_of` so the timed iterations and their
                // baseline comparison stay telemetry-free.
                let (_, tel) = ibfat_sim::try_run_once_par_telemetry(
                    &net,
                    &routing,
                    cfg.clone(),
                    TrafficPattern::Uniform,
                    RunSpec::new(0.5, sim_time_ns),
                    threads,
                )
                .expect("telemetry run matches the timed configuration");
                println!(
                    "    t{threads}: {} windows, {:.3} ms barrier wait, {} msgs, imbalance {:.2}",
                    tel.windows(),
                    tel.barrier_wait_ns() as f64 / 1e6,
                    tel.total_msgs(),
                    tel.event_imbalance()
                );
                row.sim_telemetry = Some(SimTelemetry {
                    threads: threads as u32,
                    windows: tel.windows(),
                    barrier_wait_ns: tel.barrier_wait_ns(),
                    msgs: tel.total_msgs(),
                    edge_cut: tel.edge_cut as u64,
                    event_imbalance: tel.event_imbalance(),
                });
                out.push(row);
            }
        }
    }

    // The headline configuration across real worker processes: each
    // shard range a spawned worker behind the length-prefixed pipe
    // bridge. Reports are bit-identical to the sequential and threaded
    // engines (pinned by `crates/driver/tests/proc_equivalence.rs`), so
    // these rows measure pure transport cost: spawn, per-worker
    // injection pre-pass, and every cross-shard message serialized
    // through a pipe. p1 is a real spawned worker too (`force_spawn`),
    // so the p2/p4 deltas isolate the bridge rather than mixing in the
    // spawn overhead — and its VmHWM is a clean single-process memory
    // baseline. Wall times track the host's core count exactly like the
    // `sim_engine_par` rows: compare to their own history only.
    println!("sim_engine_proc (8x3/vl4, multi-process driver):");
    {
        let threads_available = std::thread::available_parallelism()
            .map(|n| n.get() as u32)
            .unwrap_or(0);
        let rows = [1usize, 2, 4].map(|p| (format!("sim_engine_proc/8x3/vl4/p{p}"), p));
        if rows.iter().any(|(name, _)| opts.wanted(name)) {
            let cfg = SimConfig::paper(4);
            for (name, processes) in rows {
                if !opts.wanted(&name) {
                    continue;
                }
                let sim = || {
                    ProcSimulator::new(
                        8,
                        3,
                        RoutingKind::Mlid,
                        cfg.clone(),
                        TrafficPattern::Uniform,
                        0.5,
                        sim_time_ns,
                        0,
                        4,
                        processes,
                    )
                    .force_spawn(true)
                };
                let mut stats = ibfat_driver::ProcStats::default();
                let (wall, events) = best_of(opts.iters, || {
                    let (report, s) = sim().run_stats().expect("multi-process run failed");
                    stats = s;
                    report.events_processed
                });
                let mut row = result(name, wall, events, opts.iters);
                row.threads_available = threads_available;
                row.worker_rss_kb = stats.max_worker_rss_kb;
                row.bridge_bytes = stats.bridge_bytes;
                println!(
                    "    p{processes}: {} windows, {} bridge bytes, peak worker RSS {} kB",
                    stats.windows, stats.bridge_bytes, stats.max_worker_rss_kb
                );
                // One extra untimed run with the engine's self-telemetry
                // on, mirroring the par rows: structural context stamped
                // next to the wall time it explains (bridge waits land in
                // `barrier_wait_ns` — same synchronization point, pipe
                // transport instead of a thread barrier).
                let (_, _, tel) = sim()
                    .run_telemetry()
                    .expect("telemetry run matches the timed configuration");
                row.sim_telemetry = Some(SimTelemetry {
                    threads: tel.threads as u32,
                    windows: tel.windows(),
                    barrier_wait_ns: tel.barrier_wait_ns(),
                    msgs: tel.total_msgs(),
                    edge_cut: tel.edge_cut as u64,
                    event_imbalance: tel.event_imbalance(),
                });
                out.push(row);
            }
        }

        // The scale-out fabric, where the driver's per-worker subfabric
        // views pay off in memory: each worker builds forwarding state
        // for its own shard range only, so the hungriest worker's VmHWM
        // shrinks as the process count grows — on a fabric whose full
        // MLID table set is the dominant allocation. One iteration (like
        // `loads_all_to_all/32x3`): the row exists for its deterministic
        // `worker_rss_kb` column, and the runs are long.
        let rows = [1usize, 2, 4].map(|p| (format!("sim_engine_proc/16x3/vl1/p{p}"), p));
        if rows.iter().any(|(name, _)| opts.wanted(name)) {
            let cfg = SimConfig::paper(1);
            for (name, processes) in rows {
                if !opts.wanted(&name) {
                    continue;
                }
                let mut stats = ibfat_driver::ProcStats::default();
                let (wall, events) = best_of(1, || {
                    let (report, s) = ProcSimulator::new(
                        16,
                        3,
                        RoutingKind::Mlid,
                        cfg.clone(),
                        TrafficPattern::Uniform,
                        0.5,
                        sim_time_ns,
                        0,
                        4,
                        processes,
                    )
                    .force_spawn(true)
                    .run_stats()
                    .expect("multi-process run failed");
                    stats = s;
                    report.events_processed
                });
                let mut row = result(name, wall, events, 1);
                row.threads_available = threads_available;
                row.worker_rss_kb = stats.max_worker_rss_kb;
                row.bridge_bytes = stats.bridge_bytes;
                println!(
                    "    p{processes}: {} windows, {} bridge bytes, peak worker RSS {} kB",
                    stats.windows, stats.bridge_bytes, stats.max_worker_rss_kb
                );
                out.push(row);
            }
        }
    }

    // The headline configuration once more, under the self-profiling
    // probe: where does the engine's wall time go, phase by phase? The
    // run itself is identical (the probe cannot perturb the simulation),
    // only slower by the two `Instant` reads around each dispatch — so
    // this row is NOT comparable to its `sim_engine` twin, only to its
    // own history.
    println!("sim_profile (8x3/vl4, per-phase wall time):");
    if opts.wanted("sim_profile/8x3/vl4") {
        let net = Network::mport_ntree(TreeParams::new(8, 3).expect("valid config"));
        let routing = Routing::build(&net, RoutingKind::Mlid);
        let cfg = SimConfig::paper(4);
        let mut best_wall = u64::MAX;
        let mut best: Option<(u64, PhaseProfile)> = None;
        for _ in 0..opts.iters {
            let start = Instant::now();
            let (report, prof) = run_observed(
                &net,
                &routing,
                cfg.clone(),
                TrafficPattern::Uniform,
                RunSpec::new(0.5, sim_time_ns),
                PhaseProfile::new(),
            );
            let wall = start.elapsed().as_nanos() as u64;
            if wall < best_wall {
                best_wall = wall;
                best = Some((report.events_processed, prof));
            }
        }
        let (events, prof) = best.expect("--iters is positive");
        let mut row = result("sim_profile/8x3/vl4".into(), best_wall, events, opts.iters);
        row.phases = prof
            .rows()
            .into_iter()
            .map(|(phase, wall_ns, events)| PhaseSplit {
                name: phase.name().to_string(),
                wall_ns,
                events,
            })
            .collect();
        for p in &row.phases {
            println!(
                "    {:<26} {:>9.3} ms   {:>10} events",
                p.name,
                p.wall_ns as f64 / 1e6,
                p.events
            );
        }
        out.push(row);
    }

    println!("lft_build:");
    for &(m, n) in &LFT_CONFIGS {
        let kinds = [RoutingKind::Slid, RoutingKind::Mlid];
        if !kinds
            .iter()
            .any(|k| opts.wanted(&format!("lft_build/{m}x{n}/{}", k.as_str())))
        {
            continue;
        }
        let net = Network::mport_ntree(TreeParams::new(m, n).expect("valid configs"));
        for kind in kinds {
            if !opts.wanted(&format!("lft_build/{m}x{n}/{}", kind.as_str())) {
                continue;
            }
            let (wall, events) = best_of(opts.iters, || {
                let routing = Routing::build(&net, kind);
                // Work unit: programmed forwarding entries.
                (0..net.num_switches())
                    .map(|sw| {
                        routing
                            .lft(ibfat_topology::SwitchId(sw as u32))
                            .entries()
                            .count() as u64
                    })
                    .sum()
            });
            out.push(result(
                format!("lft_build/{m}x{n}/{}", kind.as_str()),
                wall,
                events,
                opts.iters,
            ));
        }
    }

    // The dense parallel build's mandate: beat the per-entry serial
    // reference by >=2x on the scale-out size, measured in the same run.
    // These rows time ONLY LID assignment + table construction (no
    // entry-count sweep), so compare them to each other, not to the
    // `lft_build` rows above.
    println!("lft_build_serial (per-entry reference, 16x3):");
    let serial_dense_rows: Vec<String> = ["lft_build_serial", "lft_build_dense"]
        .iter()
        .flat_map(|prefix| ["slid", "mlid"].map(|kind| format!("{prefix}/16x3/{kind}")))
        .collect();
    if serial_dense_rows.iter().any(|name| opts.wanted(name)) {
        let net = Network::mport_ntree(TreeParams::new(16, 3).expect("valid config"));
        let entries = |lfts: &[ibfat_routing::Lft], space: &LidSpace| {
            lfts.len() as u64 * u64::from(space.max_lid().0)
        };
        for kind in [RoutingKind::Slid, RoutingKind::Mlid] {
            if !opts.wanted(&format!("lft_build_serial/16x3/{}", kind.as_str())) {
                continue;
            }
            let lmc = match kind {
                RoutingKind::Mlid => net.params().lmc(),
                _ => 0,
            };
            let (wall, events) = best_of(opts.iters, || {
                let space = LidSpace::new(net.params().num_nodes(), lmc);
                let lfts = match kind {
                    RoutingKind::Mlid => MlidScheme::build_lfts_reference(&net, &space),
                    _ => SlidScheme::build_lfts_reference(&net, &space),
                };
                let total = entries(&lfts, &space);
                std::hint::black_box(&lfts);
                total
            });
            out.push(result(
                format!("lft_build_serial/16x3/{}", kind.as_str()),
                wall,
                events,
                opts.iters,
            ));
        }
        for kind in [RoutingKind::Slid, RoutingKind::Mlid] {
            if !opts.wanted(&format!("lft_build_dense/16x3/{}", kind.as_str())) {
                continue;
            }
            let lmc = match kind {
                RoutingKind::Mlid => net.params().lmc(),
                _ => 0,
            };
            let (wall, events) = best_of(opts.iters, || {
                let space = LidSpace::new(net.params().num_nodes(), lmc);
                let lfts = match kind {
                    RoutingKind::Mlid => MlidScheme.build_lfts(&net, &space),
                    _ => SlidScheme.build_lfts(&net, &space),
                };
                let total = entries(&lfts, &space);
                std::hint::black_box(&lfts);
                total
            });
            out.push(result(
                format!("lft_build_dense/16x3/{}", kind.as_str()),
                wall,
                events,
                opts.iters,
            ));
        }
    }

    if !opts.quick {
        // FT(32, 3): 1280 switches x 2^21 LIDs — materializing every
        // table at once would be 2.6 GB, so this row streams one
        // per-switch dense build at a time and drops each table.
        println!("lft_build (streamed per switch, 32x3):");
        let params = TreeParams::new(32, 3).expect("valid config");
        for kind in [RoutingKind::Slid, RoutingKind::Mlid] {
            if !opts.wanted(&format!("lft_build/32x3/{}", kind.as_str())) {
                continue;
            }
            let lmc = match kind {
                RoutingKind::Mlid => params.lmc(),
                _ => 0,
            };
            let space = LidSpace::new(params.num_nodes(), lmc);
            let per_switch = u64::from(space.max_lid().0);
            let (wall, events) = best_of(opts.iters, || {
                let mut total = 0u64;
                for sw in 0..params.num_switches() {
                    let lft = match kind {
                        RoutingKind::Mlid => MlidScheme::build_switch_lft(
                            params,
                            &space,
                            ibfat_topology::SwitchId(sw),
                        ),
                        _ => SlidScheme::build_switch_lft(
                            params,
                            &space,
                            ibfat_topology::SwitchId(sw),
                        ),
                    };
                    std::hint::black_box(&lft);
                    total += per_switch;
                }
                total
            });
            out.push(result(
                format!("lft_build/32x3/{}", kind.as_str()),
                wall,
                events,
                opts.iters,
            ));
        }
    }

    println!("loads_all_to_all (dense channel-load analysis):");
    {
        // Table-walked streaming over parallel source shards.
        for &(m, n) in &[(8u32, 3u32), (16, 3)] {
            if opts.quick && (m, n) == (16, 3) {
                continue; // ~1M traced routes: full runs only
            }
            if !opts.wanted(&format!("loads_all_to_all/{m}x{n}")) {
                continue;
            }
            let net = Network::mport_ntree(TreeParams::new(m, n).expect("valid configs"));
            let routing = Routing::build(&net, RoutingKind::Mlid);
            let nodes = u64::from(net.params().num_nodes());
            let (wall, events) = best_of(opts.iters, || {
                let loads = all_to_all_loads(&net, &routing).expect("pristine fabric routes");
                std::hint::black_box(loads.max_up);
                nodes * (nodes - 1)
            });
            out.push(result(
                format!("loads_all_to_all/{m}x{n}"),
                wall,
                events,
                opts.iters,
            ));
        }
        if !opts.quick && opts.wanted("loads_all_to_all/32x3") {
            // FT(32, 3): 8192 nodes, 67M flows. The closed-form oracle
            // streams the whole matrix without tables or a graph; one
            // iteration — the workload is deterministic and long.
            let params = TreeParams::new(32, 3).expect("valid config");
            let nodes = u64::from(params.num_nodes());
            let (wall, events) = best_of(1, || {
                let loads = all_to_all_loads_oracle(params, RoutingKind::Mlid)
                    .expect("mlid has a closed form");
                std::hint::black_box(loads.max_up);
                nodes * (nodes - 1)
            });
            out.push(result("loads_all_to_all/32x3".into(), wall, events, 1));
        }
    }

    // Message-level workloads driven to completion on the headline
    // fabric. The work unit is events processed, which is deterministic
    // (the run ends when the collective finishes, not at a horizon);
    // wall time is host-dependent like every other row, and these are
    // warn-only in the comparator. `--quick` shrinks the payload.
    println!("workload (message engine, 8x3):");
    if ["workload_allreduce/8x3", "workload_alltoall/8x3"]
        .iter()
        .any(|name| opts.wanted(name))
    {
        let net = Network::mport_ntree(TreeParams::new(8, 3).expect("valid config"));
        let routing = Routing::build(&net, RoutingKind::Mlid);
        let cfg = SimConfig::paper(1);
        let bytes: u64 = if opts.quick { 512 } else { 4096 };
        let nodes = net.num_nodes() as u32;
        let rows: [(&str, ibfat_sim::Workload); 2] = [
            (
                "workload_allreduce/8x3",
                ibfat_sim::generators::allreduce_ring(nodes, bytes),
            ),
            (
                "workload_alltoall/8x3",
                ibfat_sim::generators::all_to_all(nodes, bytes),
            ),
        ];
        for (name, wl) in rows {
            if !opts.wanted(name) {
                continue;
            }
            let (wall, events) = best_of(opts.iters, || {
                ibfat_sim::run_workload(&net, &routing, cfg.clone(), &wl).events
            });
            out.push(result(name.to_string(), wall, events, opts.iters));
        }
    }

    println!("path_select:");
    let lookups: u64 = if opts.quick { 200_000 } else { 1_000_000 };
    for &(m, n) in &[(8u32, 3u32), (32, 2)] {
        if !opts.wanted(&format!("path_select/{m}x{n}")) {
            continue;
        }
        let net = Network::mport_ntree(TreeParams::new(m, n).expect("valid configs"));
        let routing = Routing::build(&net, RoutingKind::Mlid);
        let nodes = net.num_nodes() as u32;
        let (wall, events) = best_of(opts.iters, || {
            let mut acc = 0u64;
            for i in 0..lookups {
                let src = ibfat_topology::NodeId(((i * 7 + 1) % u64::from(nodes)) as u32);
                let dst = ibfat_topology::NodeId(((i * 13 + 3) % u64::from(nodes)) as u32);
                if src != dst {
                    acc = acc.wrapping_add(u64::from(routing.select_dlid(src, dst).0));
                }
            }
            std::hint::black_box(acc);
            lookups
        });
        out.push(result(
            format!("path_select/{m}x{n}"),
            wall,
            events,
            opts.iters,
        ));
    }

    out
}

fn main() {
    // The `sim_engine_proc` rows re-exec this binary as bridge workers;
    // if the supervisor spawned us, speak the worker protocol and exit
    // before any option parsing.
    ibfat_driver::maybe_run_worker();
    let opts = parse_opts();
    let workloads = run_workloads(&opts);
    if workloads.is_empty() {
        if let Some(f) = &opts.filter {
            eprintln!("--filter {f:?} matches no workload; available rows:");
            for name in opts.offered_names() {
                eprintln!("  {name}");
            }
            std::process::exit(1);
        }
    }
    let report = BenchReport::new(workloads);

    let speedups = par_speedups(&report);
    if !speedups.is_empty() {
        let cores = std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1);
        println!("\nsharded-engine speedup over its t1 row (this host, {cores} core(s)):");
        for (name, threads, speedup) in &speedups {
            println!("  {name:<28} {threads} thread(s)  {speedup:>5.2}x");
        }
        if cores == 1 {
            // A t4 row on one core measures synchronization overhead, not
            // parallelism — flagging it as "slow" would be noise by
            // construction, so the speedup warnings are skipped outright.
            println!("  (1-CPU host: tN rows measure overhead only; speedup warnings skipped)");
        } else {
            for (name, threads, speedup) in &speedups {
                if *threads > 1 && *speedup < 1.0 {
                    println!("  warning: {name} is slower than its t1 twin on a {cores}-core host");
                }
            }
        }
    }

    let proc = proc_speedups(&report);
    if !proc.is_empty() {
        let cores = std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1);
        println!("\nmulti-process speedup over its p1 row (this host, {cores} core(s)):");
        for (name, processes, speedup) in &proc {
            println!("  {name:<28} {processes} process(es)  {speedup:>5.2}x");
        }
        if cores == 1 {
            println!(
                "  (1-CPU host: pN rows measure bridge overhead only; speedup warnings skipped)"
            );
        } else {
            for (name, processes, speedup) in &proc {
                if *processes > 1 && *speedup < 1.0 {
                    println!("  warning: {name} is slower than its p1 twin on a {cores}-core host");
                }
            }
        }
        // The subfabric-view memory mandate: on the scale-out fabric the
        // hungriest multi-process worker must sit below the single-worker
        // resident set (each worker only builds forwarding state for its
        // own shard range).
        if let Some(p1) = report.get("sim_engine_proc/16x3/vl1/p1") {
            for pn in ["p2", "p4"] {
                if let Some(w) = report.get(&format!("sim_engine_proc/16x3/vl1/{pn}")) {
                    if p1.worker_rss_kb > 0 && w.worker_rss_kb > 0 {
                        println!(
                            "  16x3 peak worker RSS {pn}: {} kB vs p1 {} kB ({:.2}x)",
                            w.worker_rss_kb,
                            p1.worker_rss_kb,
                            w.worker_rss_kb as f64 / p1.worker_rss_kb as f64
                        );
                        if w.worker_rss_kb >= p1.worker_rss_kb {
                            println!(
                                "  warning: {pn} worker RSS did not drop below the p1 worker — subfabric views missing their win"
                            );
                        }
                    }
                }
            }
        }
    }

    // The fly-time-sized wheel's mandate, checked on every run that
    // measured both calendars on the calibration fabric: the wheel must
    // not lose to the binary-heap twin it replaced as the default.
    for vls in [1u8, 4] {
        let (wheel, heap) = (
            report.get(&format!("sim_engine/4x3/vl{vls}")),
            report.get(&format!("sim_engine_heap/4x3/vl{vls}")),
        );
        if let (Some(w), Some(h)) = (wheel, heap) {
            if w.wall_ns > 0 {
                println!(
                    "\nsim_engine/4x3/vl{vls}: wheel is {:.2}x the heap twin",
                    h.wall_ns as f64 / w.wall_ns as f64
                );
                if w.wall_ns > h.wall_ns {
                    println!("  warning: timing wheel slower than the binary heap on this host");
                }
            }
        }
    }

    // The control-plane overhaul's mandate, checked on every run that
    // measured both sides: dense parallel build vs per-entry reference.
    for kind in ["slid", "mlid"] {
        let (dense, serial) = (
            report.get(&format!("lft_build_dense/16x3/{kind}")),
            report.get(&format!("lft_build_serial/16x3/{kind}")),
        );
        if let (Some(d), Some(s)) = (dense, serial) {
            if d.wall_ns > 0 {
                println!(
                    "\nlft_build_dense/16x3/{kind} is {:.2}x the serial reference",
                    s.wall_ns as f64 / d.wall_ns as f64
                );
            }
        }
    }

    // Compare against the baseline BEFORE overwriting --out. A missing
    // or empty baseline seeds a fresh trajectory; a corrupt one warns
    // (this binary's job is to measure, not to gatekeep bad files).
    let baseline_path = opts.baseline.as_deref().unwrap_or(&opts.out);
    let mut regressed = false;
    match BenchReport::load(baseline_path) {
        Err(e) => println!("\nskipping comparison — {e}"),
        Ok(None) => println!("\nno baseline at {baseline_path}; writing a fresh trajectory"),
        Ok(Some(baseline)) => {
            let deltas = compare(&baseline, &report).expect("comparable schemas");
            println!(
                "\nvs baseline {baseline_path} (threshold {:.0}%):",
                opts.threshold * 100.0
            );
            for d in &deltas {
                let verdict = if d.is_regression(opts.threshold) {
                    // Sharded-engine rows are informational: their wall
                    // time tracks the host's core count, so a different
                    // (or busier) machine is not a code regression. The
                    // control-plane rows share that fate — the parallel
                    // builders scale with cores, and the sub-millisecond
                    // dense-build rows are pure scheduling noise on a
                    // shared box.
                    // The FT(16,3) scale-out rows stay warn-only too:
                    // memory-pressure sensitive (the 16x3 table rows walk
                    // a ~21 MB LFT). The oracle rows have settled history
                    // and gate like the plain engine rows now.
                    if d.name.starts_with("sim_engine_par")
                        || d.name.starts_with("sim_engine_proc")
                        || d.name.starts_with("lft_build")
                        || d.name.starts_with("loads_all_to_all")
                        || d.name.starts_with("workload_")
                        || d.name.ends_with("/16x3/vl1")
                    {
                        "slower (warn-only: host-dependent)"
                    } else {
                        regressed = true;
                        "REGRESSION"
                    }
                } else if d.ratio < 1.0 {
                    "faster"
                } else {
                    "ok"
                };
                println!("  {:<28} {:>6.2}x  {verdict}", d.name, d.ratio);
            }
            if deltas.is_empty() {
                println!("  (no overlapping workloads)");
            }
        }
    }

    std::fs::write(&opts.out, report.to_json())
        .unwrap_or_else(|e| panic!("cannot write {}: {e}", opts.out));
    println!("wrote {}", opts.out);

    if regressed && opts.gate && !opts.warn_only {
        eprintln!("performance regression beyond threshold; failing (--gate)");
        std::process::exit(1);
    } else if regressed {
        eprintln!("performance regression beyond threshold (warn-only; use --gate to fail)");
    }
}
