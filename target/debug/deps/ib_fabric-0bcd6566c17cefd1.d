/root/repo/target/debug/deps/ib_fabric-0bcd6566c17cefd1.d: crates/core/src/lib.rs crates/core/src/builder.rs crates/core/src/experiment.rs Cargo.toml

/root/repo/target/debug/deps/libib_fabric-0bcd6566c17cefd1.rmeta: crates/core/src/lib.rs crates/core/src/builder.rs crates/core/src/experiment.rs Cargo.toml

crates/core/src/lib.rs:
crates/core/src/builder.rs:
crates/core/src/experiment.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
