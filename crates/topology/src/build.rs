//! Construction of `IBFT(m, n)`: the m-port n-tree realized with InfiniBand
//! switches (Section 3 of the paper).
//!
//! Wiring rules (0-based fat-tree ports; the IB port number is one higher
//! because switch port 0 is the management port):
//!
//! * **Switch ↔ switch.** `SW<w, l>.port(k)` connects to
//!   `SW<w', l+1>.port(k')` iff `w` and `w'` agree on every digit except
//!   position `l`, with `k = w'_l` and `k' = w_l + m/2`. Hence a level-`l`
//!   switch reaches, through down-port `k`, the level-`l+1` switch obtained
//!   by rewriting digit `l` to `k`; and a level-`l+1` switch reaches its
//!   parents through up-ports `m/2..m`, the choice of parent setting digit
//!   `l` of the parent's label. Root switches (level 0, whose digit 0 only
//!   ranges over `0..m/2`) use **all** `m` ports as down-ports, which is
//!   what folds two half-trees together and doubles the node count.
//! * **Switch ↔ node.** Leaf switch `SW<w, n-1>.port(k)` connects to node
//!   `P(p)` iff `p_0..p_{n-2} = w` and `k = p_{n-1}`.

use crate::{DeviceRef, Level, Network, NodeLabel, Peer, PortNum, SwitchLabel, TreeParams};

impl Network {
    /// Build the `IBFT(m, n)` subnet.
    pub fn mport_ntree(params: TreeParams) -> Network {
        let mut net = Network::new_empty(params);
        let n = params.n();
        let half = params.half();

        // Inter-switch cables: for every switch at level l+1 (the lower
        // switch), wire each of its m/2 up-ports to the corresponding
        // parent at level l.
        for l in 0..n.saturating_sub(1) {
            for upper in SwitchLabel::all_at_level(params, Level(l as u8)) {
                // Down-ports of the upper switch: k = w'_l of the lower
                // switch. At level 0 the rewritten digit (digit 0 of a
                // level-1 switch) has radix m; elsewhere radix m/2.
                let radix = params.switch_digit_radix(l + 1, l as usize);
                for k in 0..radix {
                    let mut w_lower = *upper.w();
                    w_lower[l as usize] = k as u8;
                    let lower = SwitchLabel::new(params, w_lower.as_slice(), Level(l as u8 + 1))
                        .expect("derived child label is valid");
                    let upper_port = PortNum(k as u8 + 1);
                    let lower_port = PortNum((u32::from(upper.digit(l as usize)) + half) as u8 + 1);
                    net.connect(
                        Peer {
                            device: DeviceRef::Switch(upper.id(params)),
                            port: upper_port,
                        },
                        Peer {
                            device: DeviceRef::Switch(lower.id(params)),
                            port: lower_port,
                        },
                    );
                }
            }
        }

        // Node cables: leaf switch SW<w, n-1> port p_{n-1} to P(w · p_{n-1}).
        for leaf in SwitchLabel::all_at_level(params, Level(n as u8 - 1)) {
            // The final node digit has radix m/2 for n >= 2; for n = 1 the
            // single leaf-level switch is also the root and fans out to all
            // m nodes (digit 0 has radix m).
            let radix = params.node_digit_radix(params.node_digits() - 1);
            for k in 0..radix {
                let mut digits = [0u8; crate::digits::MAX_DIGITS];
                let nd = params.node_digits();
                digits[..nd - 1].copy_from_slice(leaf.w().as_slice());
                digits[nd - 1] = k as u8;
                let node = NodeLabel::new(params, &digits[..nd]).expect("derived node label");
                net.connect(
                    Peer {
                        device: DeviceRef::Switch(leaf.id(params)),
                        port: PortNum(k as u8 + 1),
                    },
                    Peer {
                        device: DeviceRef::Node(node.id(params)),
                        port: PortNum(1),
                    },
                );
            }
        }

        net
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{NodeId, SwitchId};

    fn build(m: u32, n: u32) -> Network {
        Network::mport_ntree(TreeParams::new(m, n).unwrap())
    }

    #[test]
    fn paper_4port_3tree_counts_and_validation() {
        let net = build(4, 3);
        assert_eq!(net.num_nodes(), 16);
        assert_eq!(net.num_switches(), 20);
        // 16 node links + (8 + 8) * 2 inter-switch links.
        assert_eq!(net.links().len(), 16 + 32);
        net.validate().unwrap();
    }

    #[test]
    fn evaluation_configs_validate() {
        for (m, n) in [(4, 2), (4, 3), (8, 2), (8, 3), (16, 2), (32, 2), (2, 3)] {
            let net = build(m, n);
            net.validate()
                .unwrap_or_else(|e| panic!("IBFT({m},{n}): {e}"));
        }
    }

    #[test]
    fn paper_wiring_example() {
        // The paper's example: SW<00, 0> port 2 (0-based) connects to
        // SW<20, 1> port 2 (0-based: w_0 + m/2 = 0 + 2). In IB numbering:
        // port 3 of SW<00,0> to port 3 of SW<20,1>.
        let params = TreeParams::new(4, 3).unwrap();
        let net = Network::mport_ntree(params);
        let upper = SwitchLabel::new(params, &[0, 0], Level(0)).unwrap();
        let lower = SwitchLabel::new(params, &[2, 0], Level(1)).unwrap();
        let peer = net
            .peer_of(DeviceRef::Switch(upper.id(params)), PortNum(3))
            .unwrap();
        assert_eq!(peer.device, DeviceRef::Switch(lower.id(params)));
        assert_eq!(peer.port, PortNum(3));
    }

    #[test]
    fn leaf_wiring_example() {
        // SW<11, 2> port p_2 = 1 connects to P(111) (paper: port SW<w,n-1>_k
        // connected to P(p) iff w = p0 p1 and k = p2).
        let params = TreeParams::new(4, 3).unwrap();
        let net = Network::mport_ntree(params);
        let leaf = SwitchLabel::new(params, &[1, 1], Level(2)).unwrap();
        let node = NodeLabel::new(params, &[1, 1, 1]).unwrap();
        let peer = net
            .peer_of(DeviceRef::Switch(leaf.id(params)), PortNum(2))
            .unwrap();
        assert_eq!(peer.device, DeviceRef::Node(node.id(params)));
    }

    #[test]
    fn non_root_switch_port_split() {
        // Levels >= 1: ports 1..=m/2 go down, m/2+1..=m go up.
        let params = TreeParams::new(4, 3).unwrap();
        let net = Network::mport_ntree(params);
        for label in SwitchLabel::all(params) {
            let id = label.id(params);
            for (port, peer) in net.switch(id).peers() {
                let peer_level = match peer.device {
                    DeviceRef::Switch(s) => Some(SwitchLabel::from_id(params, s).level().0 as i32),
                    DeviceRef::Node(_) => None, // below everything
                };
                let my_level = label.level().0 as i32;
                let goes_down = match peer_level {
                    Some(pl) => pl > my_level,
                    None => true,
                };
                if label.level().0 == 0 {
                    assert!(goes_down, "{label} {port} must go down (root)");
                } else if port.0 <= params.half() as u8 {
                    assert!(goes_down, "{label} {port} should go down");
                } else {
                    assert!(!goes_down, "{label} {port} should go up");
                }
            }
        }
    }

    #[test]
    fn node_zero_connects_to_leftmost_leaf() {
        let params = TreeParams::new(8, 3).unwrap();
        let net = Network::mport_ntree(params);
        let peer = net.peer_of(DeviceRef::Node(NodeId(0)), PortNum(1)).unwrap();
        match peer.device {
            DeviceRef::Switch(s) => {
                let label = SwitchLabel::from_id(params, s);
                assert_eq!(label.level().0 as u32, params.n() - 1);
                assert!(label.w().iter().all(|d| d == 0));
            }
            _ => panic!("node cabled to a node"),
        }
        assert_eq!(peer.port, PortNum(1));
    }

    #[test]
    fn single_level_tree() {
        // FT(4, 1): one switch, all 4 ports to nodes.
        let net = build(4, 1);
        assert_eq!(net.num_switches(), 1);
        assert_eq!(net.num_nodes(), 4);
        net.validate().unwrap();
        let sw = net.switch(SwitchId(0));
        assert_eq!(sw.peers().count(), 4);
        assert!(sw
            .peers()
            .all(|(_, p)| matches!(p.device, DeviceRef::Node(_))));
    }

    #[test]
    fn every_link_joins_adjacent_levels() {
        let params = TreeParams::new(8, 3).unwrap();
        let net = Network::mport_ntree(params);
        for link in net.links() {
            let lv = |d: DeviceRef| match d {
                DeviceRef::Switch(s) => SwitchLabel::from_id(params, s).level().0 as i32,
                DeviceRef::Node(_) => params.n() as i32, // conceptually one below leaves
            };
            let (la, lb) = (lv(link.a.device), lv(link.b.device));
            assert_eq!((la - lb).abs(), 1, "link {:?} skips levels", link);
        }
    }
}
