/root/repo/target/debug/deps/bench-bbe044ddd84619f4.d: crates/bench/src/lib.rs crates/bench/src/trajectory.rs

/root/repo/target/debug/deps/libbench-bbe044ddd84619f4.rmeta: crates/bench/src/lib.rs crates/bench/src/trajectory.rs

crates/bench/src/lib.rs:
crates/bench/src/trajectory.rs:
