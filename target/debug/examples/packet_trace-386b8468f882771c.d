/root/repo/target/debug/examples/packet_trace-386b8468f882771c.d: examples/packet_trace.rs

/root/repo/target/debug/examples/libpacket_trace-386b8468f882771c.rmeta: examples/packet_trace.rs

examples/packet_trace.rs:
