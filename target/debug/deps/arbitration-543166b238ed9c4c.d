/root/repo/target/debug/deps/arbitration-543166b238ed9c4c.d: crates/sim/tests/arbitration.rs

/root/repo/target/debug/deps/arbitration-543166b238ed9c4c: crates/sim/tests/arbitration.rs

crates/sim/tests/arbitration.rs:
