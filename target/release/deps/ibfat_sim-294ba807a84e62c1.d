/root/repo/target/release/deps/ibfat_sim-294ba807a84e62c1.d: crates/sim/src/lib.rs crates/sim/src/bounds.rs crates/sim/src/config.rs crates/sim/src/engine.rs crates/sim/src/metrics.rs crates/sim/src/packet.rs crates/sim/src/runner.rs crates/sim/src/sim.rs crates/sim/src/trace.rs crates/sim/src/traffic.rs crates/sim/src/vlarb.rs

/root/repo/target/release/deps/libibfat_sim-294ba807a84e62c1.rlib: crates/sim/src/lib.rs crates/sim/src/bounds.rs crates/sim/src/config.rs crates/sim/src/engine.rs crates/sim/src/metrics.rs crates/sim/src/packet.rs crates/sim/src/runner.rs crates/sim/src/sim.rs crates/sim/src/trace.rs crates/sim/src/traffic.rs crates/sim/src/vlarb.rs

/root/repo/target/release/deps/libibfat_sim-294ba807a84e62c1.rmeta: crates/sim/src/lib.rs crates/sim/src/bounds.rs crates/sim/src/config.rs crates/sim/src/engine.rs crates/sim/src/metrics.rs crates/sim/src/packet.rs crates/sim/src/runner.rs crates/sim/src/sim.rs crates/sim/src/trace.rs crates/sim/src/traffic.rs crates/sim/src/vlarb.rs

crates/sim/src/lib.rs:
crates/sim/src/bounds.rs:
crates/sim/src/config.rs:
crates/sim/src/engine.rs:
crates/sim/src/metrics.rs:
crates/sim/src/packet.rs:
crates/sim/src/runner.rs:
crates/sim/src/sim.rs:
crates/sim/src/trace.rs:
crates/sim/src/traffic.rs:
crates/sim/src/vlarb.rs:
