/root/repo/target/debug/deps/proptests-6cb85f5a500b18d5.d: crates/topology/tests/proptests.rs Cargo.toml

/root/repo/target/debug/deps/libproptests-6cb85f5a500b18d5.rmeta: crates/topology/tests/proptests.rs Cargo.toml

crates/topology/tests/proptests.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
