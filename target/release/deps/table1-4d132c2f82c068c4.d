/root/repo/target/release/deps/table1-4d132c2f82c068c4.d: crates/bench/src/bin/table1.rs

/root/repo/target/release/deps/table1-4d132c2f82c068c4: crates/bench/src/bin/table1.rs

crates/bench/src/bin/table1.rs:
