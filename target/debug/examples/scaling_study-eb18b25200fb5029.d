/root/repo/target/debug/examples/scaling_study-eb18b25200fb5029.d: examples/scaling_study.rs Cargo.toml

/root/repo/target/debug/examples/libscaling_study-eb18b25200fb5029.rmeta: examples/scaling_study.rs Cargo.toml

examples/scaling_study.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
