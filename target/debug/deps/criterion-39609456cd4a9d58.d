/root/repo/target/debug/deps/criterion-39609456cd4a9d58.d: /root/stubdeps/criterion/src/lib.rs

/root/repo/target/debug/deps/libcriterion-39609456cd4a9d58.rlib: /root/stubdeps/criterion/src/lib.rs

/root/repo/target/debug/deps/libcriterion-39609456cd4a9d58.rmeta: /root/stubdeps/criterion/src/lib.rs

/root/stubdeps/criterion/src/lib.rs:
