/root/repo/target/debug/deps/ibfat_cli-5fdd3ca24a8b16f8.d: crates/cli/src/lib.rs crates/cli/src/args.rs crates/cli/src/commands.rs

/root/repo/target/debug/deps/ibfat_cli-5fdd3ca24a8b16f8: crates/cli/src/lib.rs crates/cli/src/args.rs crates/cli/src/commands.rs

crates/cli/src/lib.rs:
crates/cli/src/args.rs:
crates/cli/src/commands.rs:
