/root/repo/target/debug/deps/ibfat_sm-b5209cfaab2defdb.d: crates/sm/src/lib.rs crates/sm/src/discovery.rs crates/sm/src/mad.rs crates/sm/src/manager.rs crates/sm/src/recognize.rs Cargo.toml

/root/repo/target/debug/deps/libibfat_sm-b5209cfaab2defdb.rmeta: crates/sm/src/lib.rs crates/sm/src/discovery.rs crates/sm/src/mad.rs crates/sm/src/manager.rs crates/sm/src/recognize.rs Cargo.toml

crates/sm/src/lib.rs:
crates/sm/src/discovery.rs:
crates/sm/src/mad.rs:
crates/sm/src/manager.rs:
crates/sm/src/recognize.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
