/root/repo/target/release/deps/figures-9504956e76e77837.d: crates/bench/src/bin/figures.rs

/root/repo/target/release/deps/figures-9504956e76e77837: crates/bench/src/bin/figures.rs

crates/bench/src/bin/figures.rs:
