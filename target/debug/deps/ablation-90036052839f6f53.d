/root/repo/target/debug/deps/ablation-90036052839f6f53.d: crates/bench/src/bin/ablation.rs

/root/repo/target/debug/deps/libablation-90036052839f6f53.rmeta: crates/bench/src/bin/ablation.rs

crates/bench/src/bin/ablation.rs:
