/root/repo/target/debug/deps/ibfat_topology-393e55f3c9fd8632.d: crates/topology/src/lib.rs crates/topology/src/analysis_impl.rs crates/topology/src/build.rs crates/topology/src/digits.rs crates/topology/src/error.rs crates/topology/src/graph.rs crates/topology/src/ids.rs crates/topology/src/label.rs crates/topology/src/params.rs crates/topology/src/prefix.rs

/root/repo/target/debug/deps/ibfat_topology-393e55f3c9fd8632: crates/topology/src/lib.rs crates/topology/src/analysis_impl.rs crates/topology/src/build.rs crates/topology/src/digits.rs crates/topology/src/error.rs crates/topology/src/graph.rs crates/topology/src/ids.rs crates/topology/src/label.rs crates/topology/src/params.rs crates/topology/src/prefix.rs

crates/topology/src/lib.rs:
crates/topology/src/analysis_impl.rs:
crates/topology/src/build.rs:
crates/topology/src/digits.rs:
crates/topology/src/error.rs:
crates/topology/src/graph.rs:
crates/topology/src/ids.rs:
crates/topology/src/label.rs:
crates/topology/src/params.rs:
crates/topology/src/prefix.rs:
