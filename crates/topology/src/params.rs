use crate::TopologyError;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Validated parameters of an m-port n-tree `FT(m, n)`.
///
/// * `m` — ports per switch; must be a power of two, `m >= 2`.
/// * `n` — number of switch levels; `n >= 1`.
///
/// The LID space of InfiniBand is 16 bits and the MLID scheme consumes
/// `num_nodes * 2^LMC` LIDs with `LMC = (n-1) * log2(m/2)`, so construction
/// rejects combinations that would not fit (`num_nodes * (m/2)^(n-1) > 0xBFFF`,
/// the top of the unicast LID range).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct TreeParams {
    m: u32,
    n: u32,
}

impl TreeParams {
    /// Create validated parameters for `FT(m, n)`.
    pub fn new(m: u32, n: u32) -> Result<Self, TopologyError> {
        if m < 2 || !m.is_power_of_two() {
            return Err(TopologyError::InvalidPortCount { m });
        }
        if n < 1 {
            return Err(TopologyError::InvalidTreeHeight { n });
        }
        let half = (m / 2) as u64;
        // num_nodes = 2 * half^n; reject anything beyond 2^20 nodes outright.
        let nodes = 2u64
            .checked_mul(half.checked_pow(n).ok_or(TopologyError::TooLarge {
                m,
                n,
                detail: "node count overflows u64",
            })?)
            .ok_or(TopologyError::TooLarge {
                m,
                n,
                detail: "node count overflows u64",
            })?;
        if nodes > 1 << 20 {
            return Err(TopologyError::TooLarge {
                m,
                n,
                detail: "more than 2^20 processing nodes",
            });
        }
        // MLID consumes nodes * half^(n-1) LIDs starting at LID 1; InfiniBand
        // unicast LIDs span 0x0001..=0xBFFF.
        let lids = nodes * half.pow(n - 1);
        if lids > 0xBFFF {
            return Err(TopologyError::TooLarge {
                m,
                n,
                detail: "MLID LID space exceeds the 0xBFFF unicast LID range",
            });
        }
        Ok(TreeParams { m, n })
    }

    /// Ports per switch, `m`.
    #[inline]
    pub fn m(&self) -> u32 {
        self.m
    }

    /// Number of switch levels, `n`.
    #[inline]
    pub fn n(&self) -> u32 {
        self.n
    }

    /// `m/2`: the down-arity of non-root switches (and the digit radix for
    /// all label positions except the first).
    #[inline]
    pub fn half(&self) -> u32 {
        self.m / 2
    }

    /// Number of processing nodes, `2 * (m/2)^n`.
    #[inline]
    pub fn num_nodes(&self) -> u32 {
        2 * self.half().pow(self.n)
    }

    /// Number of switches, `(2n - 1) * (m/2)^(n-1)`.
    #[inline]
    pub fn num_switches(&self) -> u32 {
        (2 * self.n - 1) * self.half().pow(self.n - 1)
    }

    /// Number of switches at `level`: `(m/2)^(n-1)` at level 0 (roots, whose
    /// first label digit ranges over `0..m/2`), and `2 * (m/2)^(n-1)` at
    /// every level `1..n` (first digit ranges over `0..m`).
    #[inline]
    pub fn switches_at_level(&self, level: u32) -> u32 {
        debug_assert!(level < self.n);
        if level == 0 {
            self.half().pow(self.n - 1)
        } else {
            2 * self.half().pow(self.n - 1)
        }
    }

    /// Dense-id offset of the first switch of `level` (ids are level-major).
    #[inline]
    pub fn level_offset(&self, level: u32) -> u32 {
        debug_assert!(level < self.n);
        if level == 0 {
            0
        } else {
            self.half().pow(self.n - 1) * (1 + 2 * (level - 1))
        }
    }

    /// The height of the fat tree as defined in the paper, `n + 1`
    /// (n switch levels plus the processing-node level).
    #[inline]
    pub fn height(&self) -> u32 {
        self.n + 1
    }

    /// The LID Mask Control value used by the MLID scheme:
    /// `LMC = log2((m/2)^(n-1)) = (n-1) * log2(m/2)`.
    ///
    /// Each node is assigned `2^LMC` consecutive LIDs; IBA caps LMC at 7
    /// bits (128 paths), which [`TreeParams::new`] indirectly enforces via
    /// the LID-space bound for every practical configuration.
    #[inline]
    pub fn lmc(&self) -> u32 {
        (self.n - 1) * self.half().trailing_zeros()
    }

    /// `2^LMC = (m/2)^(n-1)`: LIDs per node under MLID, which is also the
    /// number of distinct least common ancestors (and hence paths) between
    /// two maximally distant processing nodes.
    #[inline]
    pub fn lids_per_node(&self) -> u32 {
        self.half().pow(self.n - 1)
    }

    /// Number of digits in a node label (`n`).
    #[inline]
    pub fn node_digits(&self) -> usize {
        self.n as usize
    }

    /// Number of digits in a switch label (`n - 1`).
    #[inline]
    pub fn switch_digits(&self) -> usize {
        (self.n - 1) as usize
    }

    /// Radix of node-label digit `i`: `m` for digit 0, `m/2` otherwise.
    #[inline]
    pub fn node_digit_radix(&self, i: usize) -> u32 {
        if i == 0 {
            self.m
        } else {
            self.half()
        }
    }

    /// Radix of switch-label digit `i` at `level`: digit 0 has radix `m/2`
    /// for root switches (level 0) and `m` for all lower levels; the
    /// remaining digits always have radix `m/2`.
    #[inline]
    pub fn switch_digit_radix(&self, level: u32, i: usize) -> u32 {
        if i == 0 && level > 0 {
            self.m
        } else {
            self.half()
        }
    }

    /// Number of least common ancestors of two nodes whose greatest common
    /// prefix has length `alpha`: `(m/2)^(n-1-alpha)`.
    #[inline]
    pub fn num_lcas(&self, alpha: u32) -> u32 {
        debug_assert!(alpha < self.n);
        self.half().pow(self.n - 1 - alpha)
    }

    /// Size of a greatest-common-prefix group `gcpg(x, alpha)`:
    /// all `2 (m/2)^n` nodes for `alpha = 0`, otherwise `(m/2)^(n-alpha)`.
    #[inline]
    pub fn gcpg_size(&self, alpha: u32) -> u32 {
        debug_assert!(alpha <= self.n);
        if alpha == 0 {
            self.num_nodes()
        } else {
            self.half().pow(self.n - alpha)
        }
    }
}

impl fmt::Display for TreeParams {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "FT({}, {})", self.m, self.n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_example_4port_3tree() {
        // The paper's running example: a 4-port 3-tree has 16 processing
        // nodes and 20 communication switches, height 4.
        let p = TreeParams::new(4, 3).unwrap();
        assert_eq!(p.num_nodes(), 16);
        assert_eq!(p.num_switches(), 20);
        assert_eq!(p.height(), 4);
        assert_eq!(p.switches_at_level(0), 4);
        assert_eq!(p.switches_at_level(1), 8);
        assert_eq!(p.switches_at_level(2), 8);
        assert_eq!(p.lmc(), 2);
        assert_eq!(p.lids_per_node(), 4);
    }

    #[test]
    fn evaluation_configs() {
        for (m, n, nodes, switches) in [
            (4, 3, 16, 20),
            (8, 3, 128, 80),
            (16, 2, 128, 24),
            (32, 2, 512, 48),
        ] {
            let p = TreeParams::new(m, n).unwrap();
            assert_eq!(p.num_nodes(), nodes, "FT({m},{n}) nodes");
            assert_eq!(p.num_switches(), switches, "FT({m},{n}) switches");
        }
    }

    #[test]
    fn level_offsets_partition_switch_ids() {
        let p = TreeParams::new(8, 3).unwrap();
        let mut total = 0;
        for l in 0..p.n() {
            assert_eq!(p.level_offset(l), total);
            total += p.switches_at_level(l);
        }
        assert_eq!(total, p.num_switches());
    }

    #[test]
    fn rejects_bad_parameters() {
        assert!(matches!(
            TreeParams::new(3, 2),
            Err(TopologyError::InvalidPortCount { m: 3 })
        ));
        assert!(matches!(
            TreeParams::new(6, 2),
            Err(TopologyError::InvalidPortCount { m: 6 })
        ));
        assert!(matches!(
            TreeParams::new(0, 2),
            Err(TopologyError::InvalidPortCount { m: 0 })
        ));
        assert!(matches!(
            TreeParams::new(4, 0),
            Err(TopologyError::InvalidTreeHeight { n: 0 })
        ));
        // 64-port 4-tree: 2 * 32^4 = 2M nodes — too large.
        assert!(matches!(
            TreeParams::new(64, 4),
            Err(TopologyError::TooLarge { .. })
        ));
    }

    #[test]
    fn lid_space_bound_enforced() {
        // FT(16, 4): 2*8^4 = 8192 nodes, 8^3 = 512 LIDs each -> 4M LIDs,
        // far beyond 0xBFFF.
        assert!(matches!(
            TreeParams::new(16, 4),
            Err(TopologyError::TooLarge { .. })
        ));
        // FT(8, 4): 2*4^4 = 512 nodes * 64 LIDs = 32768 LIDs <= 0xBFFF. OK.
        assert!(TreeParams::new(8, 4).is_ok());
    }

    #[test]
    fn m_equals_two_degenerates_to_path() {
        // FT(2, n): half = 1, 2 nodes, (2n-1) switches in a chain.
        let p = TreeParams::new(2, 3).unwrap();
        assert_eq!(p.num_nodes(), 2);
        assert_eq!(p.num_switches(), 5);
        assert_eq!(p.lmc(), 0);
        assert_eq!(p.lids_per_node(), 1);
    }

    #[test]
    fn gcpg_sizes_match_paper() {
        let p = TreeParams::new(4, 3).unwrap();
        assert_eq!(p.gcpg_size(0), 16);
        assert_eq!(p.gcpg_size(1), 4); // the paper's gcpg("1", 1) has 4 nodes
        assert_eq!(p.gcpg_size(2), 2);
        assert_eq!(p.gcpg_size(3), 1);
        assert_eq!(p.num_lcas(1), 2); // lca(P(100), P(111)) = 2 switches
        assert_eq!(p.num_lcas(0), 4); // 4 roots
    }
}
