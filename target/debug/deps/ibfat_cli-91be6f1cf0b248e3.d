/root/repo/target/debug/deps/ibfat_cli-91be6f1cf0b248e3.d: crates/cli/src/lib.rs crates/cli/src/args.rs crates/cli/src/commands.rs Cargo.toml

/root/repo/target/debug/deps/libibfat_cli-91be6f1cf0b248e3.rmeta: crates/cli/src/lib.rs crates/cli/src/args.rs crates/cli/src/commands.rs Cargo.toml

crates/cli/src/lib.rs:
crates/cli/src/args.rs:
crates/cli/src/commands.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
