/root/repo/target/debug/examples/hotspot_study-578a82f66fcb7996.d: examples/hotspot_study.rs

/root/repo/target/debug/examples/hotspot_study-578a82f66fcb7996: examples/hotspot_study.rs

examples/hotspot_study.rs:
