use ibfat_topology::NodeId;
use std::fmt;

use crate::Lid;

/// Errors raised while tracing or verifying routes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RoutingError {
    /// The DLID maps to no assigned endport.
    UnknownLid(Lid),
    /// A switch's forwarding table has no entry for the DLID.
    NoLftEntry { switch: u32, lid: Lid },
    /// An LFT entry points at an uncabled port.
    DanglingPort { switch: u32, port: u8 },
    /// The source node's endport has no cable — it cannot inject.
    DisconnectedSource(NodeId),
    /// The route exceeded the hop budget — a forwarding loop.
    LoopDetected { src: NodeId, lid: Lid },
    /// The route terminated at the wrong endport.
    Misdelivered {
        src: NodeId,
        lid: Lid,
        expected: NodeId,
        actual: NodeId,
    },
    /// A verification pass found a property violation.
    PropertyViolation(String),
}

impl fmt::Display for RoutingError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RoutingError::UnknownLid(lid) => write!(f, "LID {lid} is not assigned"),
            RoutingError::NoLftEntry { switch, lid } => {
                write!(f, "switch S{switch} has no LFT entry for {lid}")
            }
            RoutingError::DanglingPort { switch, port } => {
                write!(f, "switch S{switch} LFT points at uncabled port {port}")
            }
            RoutingError::DisconnectedSource(node) => {
                write!(f, "{node}'s endport is uncabled; it cannot inject")
            }
            RoutingError::LoopDetected { src, lid } => {
                write!(f, "forwarding loop from {src} toward {lid}")
            }
            RoutingError::Misdelivered {
                src,
                lid,
                expected,
                actual,
            } => write!(
                f,
                "packet from {src} with DLID {lid} reached {actual}, expected {expected}"
            ),
            RoutingError::PropertyViolation(s) => write!(f, "routing property violated: {s}"),
        }
    }
}

impl std::error::Error for RoutingError {}
