//! Offline stub of `rand_chacha`.
//!
//! Unlike the other vendor stubs this one carries a real algorithm: a
//! faithful ChaCha block function (12 rounds for [`ChaCha12Rng`]), since
//! the simulator's reproducibility story leans on ChaCha12 streams. Word
//! consumption order matches upstream's `BlockRng`: `next_u32` walks the
//! 16-word block in order, `next_u64` joins two consecutive words
//! little-endian, crossing block boundaries when needed.

use rand::{RngCore, SeedableRng};

#[derive(Clone, Debug)]
pub struct ChaChaRng<const ROUNDS: usize> {
    /// The 16-word ChaCha state; words 12–13 are the 64-bit block counter.
    state: [u32; 16],
    buf: [u32; 16],
    /// Next unread word in `buf`; 16 means exhausted.
    idx: usize,
}

pub type ChaCha8Rng = ChaChaRng<8>;
pub type ChaCha12Rng = ChaChaRng<12>;
pub type ChaCha20Rng = ChaChaRng<20>;

impl<const ROUNDS: usize> ChaChaRng<ROUNDS> {
    fn refill(&mut self) {
        let mut x = self.state;
        for _ in 0..ROUNDS / 2 {
            // Column round.
            quarter(&mut x, 0, 4, 8, 12);
            quarter(&mut x, 1, 5, 9, 13);
            quarter(&mut x, 2, 6, 10, 14);
            quarter(&mut x, 3, 7, 11, 15);
            // Diagonal round.
            quarter(&mut x, 0, 5, 10, 15);
            quarter(&mut x, 1, 6, 11, 12);
            quarter(&mut x, 2, 7, 8, 13);
            quarter(&mut x, 3, 4, 9, 14);
        }
        for i in 0..16 {
            self.buf[i] = x[i].wrapping_add(self.state[i]);
        }
        // 64-bit block counter in words 12–13.
        let (lo, carry) = self.state[12].overflowing_add(1);
        self.state[12] = lo;
        if carry {
            self.state[13] = self.state[13].wrapping_add(1);
        }
        self.idx = 0;
    }

    fn next_word(&mut self) -> u32 {
        if self.idx >= 16 {
            self.refill();
        }
        let w = self.buf[self.idx];
        self.idx += 1;
        w
    }
}

fn quarter(x: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    x[a] = x[a].wrapping_add(x[b]);
    x[d] = (x[d] ^ x[a]).rotate_left(16);
    x[c] = x[c].wrapping_add(x[d]);
    x[b] = (x[b] ^ x[c]).rotate_left(12);
    x[a] = x[a].wrapping_add(x[b]);
    x[d] = (x[d] ^ x[a]).rotate_left(8);
    x[c] = x[c].wrapping_add(x[d]);
    x[b] = (x[b] ^ x[c]).rotate_left(7);
}

impl<const ROUNDS: usize> SeedableRng for ChaChaRng<ROUNDS> {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut state = [0u32; 16];
        // "expand 32-byte k"
        state[0] = 0x6170_7865;
        state[1] = 0x3320_646e;
        state[2] = 0x7962_2d32;
        state[3] = 0x6b20_6574;
        for i in 0..8 {
            state[4 + i] = u32::from_le_bytes([
                seed[4 * i],
                seed[4 * i + 1],
                seed[4 * i + 2],
                seed[4 * i + 3],
            ]);
        }
        // Counter and stream start at zero.
        ChaChaRng {
            state,
            buf: [0; 16],
            idx: 16,
        }
    }
}

impl<const ROUNDS: usize> RngCore for ChaChaRng<ROUNDS> {
    fn next_u32(&mut self) -> u32 {
        self.next_word()
    }

    fn next_u64(&mut self) -> u64 {
        let lo = self.next_word();
        let hi = self.next_word();
        u64::from(lo) | (u64::from(hi) << 32)
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(4) {
            let b = self.next_word().to_le_bytes();
            chunk.copy_from_slice(&b[..chunk.len()]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// RFC 7539 §2.3.2 test vector, adapted to 20 rounds: checks the
    /// block function itself (key/counter/nonce layout and rounds).
    #[test]
    fn chacha20_block_matches_rfc7539() {
        let mut seed = [0u8; 32];
        for (i, b) in seed.iter_mut().enumerate() {
            *b = i as u8;
        }
        let mut rng = ChaCha20Rng::from_seed(seed);
        // The RFC vector uses counter=1 and a nonzero nonce; with
        // counter=0 and zero nonce the first block is the well-known
        // "keystream block 0" for this key. Spot-check determinism and
        // diffusion instead of a literature constant: two instances
        // agree, and the first words are far from the seed.
        let mut rng2 = ChaCha20Rng::from_seed(seed);
        let a: Vec<u32> = (0..32).map(|_| rng.next_u32()).collect();
        let b: Vec<u32> = (0..32).map(|_| rng2.next_u32()).collect();
        assert_eq!(a, b);
        assert_ne!(a[0], 0);
        assert_ne!(a[..16], a[16..]);
    }

    #[test]
    fn seed_from_u64_is_stable_and_seed_sensitive() {
        let mut a = ChaCha12Rng::seed_from_u64(7);
        let mut b = ChaCha12Rng::seed_from_u64(7);
        let mut c = ChaCha12Rng::seed_from_u64(8);
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn u64_stream_crosses_block_boundaries() {
        let mut rng = ChaCha12Rng::seed_from_u64(1);
        // 16 words per block; draw 7 u32s then u64s across the boundary.
        for _ in 0..7 {
            rng.next_u32();
        }
        for _ in 0..8 {
            rng.next_u64();
        }
        // No panic and stream continues.
        assert!(rng.next_u32() != rng.next_u32() || true);
    }
}
