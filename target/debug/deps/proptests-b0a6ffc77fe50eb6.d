/root/repo/target/debug/deps/proptests-b0a6ffc77fe50eb6.d: crates/topology/tests/proptests.rs

/root/repo/target/debug/deps/proptests-b0a6ffc77fe50eb6: crates/topology/tests/proptests.rs

crates/topology/tests/proptests.rs:
