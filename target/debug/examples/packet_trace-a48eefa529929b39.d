/root/repo/target/debug/examples/packet_trace-a48eefa529929b39.d: examples/packet_trace.rs Cargo.toml

/root/repo/target/debug/examples/libpacket_trace-a48eefa529929b39.rmeta: examples/packet_trace.rs Cargo.toml

examples/packet_trace.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
