//! Serialization and degraded-fabric behaviour through the public API.

use ib_fabric::prelude::*;

#[test]
fn routing_survives_a_serde_round_trip() {
    // A subnet manager might persist its computed state; the routing must
    // round-trip losslessly.
    for kind in [RoutingKind::Mlid, RoutingKind::Slid] {
        let fabric = Fabric::builder(4, 3).routing(kind).build().unwrap();
        let json = serde_json::to_string(fabric.routing()).unwrap();
        let back: Routing = serde_json::from_str(&json).unwrap();
        assert_eq!(back.lfts(), fabric.routing().lfts());
        assert_eq!(back.lid_space(), fabric.routing().lid_space());
        assert_eq!(back.kind(), kind);
        // The revived routing still routes.
        let route = back
            .trace(
                fabric.network(),
                NodeId(0),
                back.select_dlid(NodeId(0), NodeId(7)),
            )
            .unwrap();
        assert_eq!(route.dst, NodeId(7));
    }
}

#[test]
fn network_survives_a_serde_round_trip() {
    let net = Network::mport_ntree(TreeParams::new(8, 2).unwrap());
    let json = serde_json::to_string(&net).unwrap();
    let back: Network = serde_json::from_str(&json).unwrap();
    back.validate().unwrap();
    assert_eq!(back.num_nodes(), net.num_nodes());
    assert_eq!(back.links().len(), net.links().len());
    assert_eq!(back.params(), net.params());
}

#[test]
fn sim_report_serializes_with_all_extensions_enabled() {
    let fabric = Fabric::builder(4, 2).build().unwrap();
    let report = fabric
        .experiment()
        .duration_ns(50_000)
        .collect_link_stats(true)
        .trace_first_packets(4)
        .run();
    let json = serde_json::to_string(&report).unwrap();
    let back: SimReport = serde_json::from_str(&json).unwrap();
    assert_eq!(back.delivered, report.delivered);
    assert_eq!(
        back.link_utilization.as_ref().map(Vec::len),
        report.link_utilization.as_ref().map(Vec::len)
    );
    assert_eq!(back.traces.as_ref().map(Vec::len), Some(4));
}

#[test]
fn with_failed_links_deduplicates_and_handles_unsorted_input() {
    let fabric = Fabric::builder(4, 2).build().unwrap();
    let inter = fabric.network().inter_switch_link_indices();
    let (a, b) = (inter[0], inter[3]);
    // Duplicates and reverse order must both work.
    let degraded = fabric.with_failed_links(&[b, a, b, a]);
    assert_eq!(
        degraded.network().links().len(),
        fabric.network().links().len() - 2
    );
    degraded.network().is_connected();
}

#[test]
fn config_round_trips_including_policies() {
    let mut cfg = SimConfig::paper(4);
    cfg.path_selection = PathSelection::RoundRobinPerSource;
    cfg.vl_assignment = VlAssignment::DestinationHash;
    cfg.vl_arbitration = VlArbitration::Weighted(vec![(0, 3), (1, 1), (2, 1), (3, 1)]);
    cfg.adaptive_up = true;
    let json = serde_json::to_string(&cfg).unwrap();
    let back: SimConfig = serde_json::from_str(&json).unwrap();
    assert_eq!(back, cfg);
}
