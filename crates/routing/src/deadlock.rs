//! Deadlock-freedom verification via the channel dependency graph (CDG).
//!
//! A deterministic routing is deadlock-free iff the directed graph whose
//! vertices are network channels (directed links) and whose edges connect
//! channel `c1` to `c2` whenever some packet may hold `c1` while requesting
//! `c2` is acyclic (Dally & Seitz). Fat-tree up/down routing never turns
//! from a down channel back to an up channel, so its CDG is acyclic; this
//! module proves that mechanically for the programmed tables instead of
//! trusting the argument.

use crate::{Routing, RoutingError};
use ibfat_topology::{DeviceRef, Network, NodeId, PortNum};
use std::collections::HashMap;

/// A directed channel: traffic leaving `device` through `port`.
type Channel = (DeviceRef, u8);

/// Summary of a channel-dependency-graph construction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CdgReport {
    /// Number of distinct channels that appear in at least one route.
    pub channels: usize,
    /// Number of distinct dependency edges.
    pub dependencies: usize,
    /// Whether the graph is acyclic (deadlock-free routing).
    pub acyclic: bool,
}

/// Build the channel dependency graph induced by routing **every assigned
/// LID from every source** (the full reachable behaviour of the tables,
/// not just the path-selection pairs), and check it for cycles.
pub fn channel_dependency_graph(
    net: &Network,
    routing: &Routing,
) -> Result<CdgReport, RoutingError> {
    let space = routing.lid_space();
    let mut index: HashMap<Channel, usize> = HashMap::new();
    let mut edges: Vec<Vec<usize>> = Vec::new();
    let mut intern = |c: Channel, edges: &mut Vec<Vec<usize>>| -> usize {
        let next = index.len();
        let id = *index.entry(c).or_insert(next);
        if id == edges.len() {
            edges.push(Vec::new());
        }
        id
    };
    let mut edge_set: std::collections::HashSet<(usize, usize)> = Default::default();

    for src in 0..net.num_nodes() as u32 {
        for lid_raw in 1..=space.max_lid().0 {
            let route = match routing.trace(net, NodeId(src), crate::Lid(lid_raw)) {
                Ok(route) => route,
                // An unprogrammed entry means the switch *discards* the
                // packet (IBA semantics on degraded subnets) — it holds
                // no further channels, so it adds no dependencies.
                Err(crate::RoutingError::NoLftEntry { .. }) => continue,
                Err(e) => return Err(e),
            };
            let links = route.directed_links();
            for pair in links.windows(2) {
                let a = intern((pair[0].0, pair[0].1 .0), &mut edges);
                let b = intern((pair[1].0, pair[1].1 .0), &mut edges);
                if edge_set.insert((a, b)) {
                    edges[a].push(b);
                }
            }
        }
    }

    let acyclic = is_acyclic(&edges);
    Ok(CdgReport {
        channels: edges.len(),
        dependencies: edge_set.len(),
        acyclic,
    })
}

/// Verify a routing is deadlock-free; error with diagnostics otherwise.
pub fn verify_deadlock_free(net: &Network, routing: &Routing) -> Result<CdgReport, RoutingError> {
    let report = channel_dependency_graph(net, routing)?;
    if !report.acyclic {
        return Err(RoutingError::PropertyViolation(format!(
            "channel dependency graph has a cycle ({} channels, {} deps)",
            report.channels, report.dependencies
        )));
    }
    Ok(report)
}

/// Iterative three-color DFS cycle detection.
fn is_acyclic(adj: &[Vec<usize>]) -> bool {
    #[derive(Clone, Copy, PartialEq)]
    enum Color {
        White,
        Gray,
        Black,
    }
    let mut color = vec![Color::White; adj.len()];
    for start in 0..adj.len() {
        if color[start] != Color::White {
            continue;
        }
        // Stack of (node, next-child-index).
        let mut stack = vec![(start, 0usize)];
        color[start] = Color::Gray;
        while let Some(&(node, next)) = stack.last() {
            if next < adj[node].len() {
                stack.last_mut().expect("nonempty").1 += 1;
                let child = adj[node][next];
                match color[child] {
                    Color::Gray => return false,
                    Color::White => {
                        color[child] = Color::Gray;
                        stack.push((child, 0));
                    }
                    Color::Black => {}
                }
            } else {
                color[node] = Color::Black;
                stack.pop();
            }
        }
    }
    true
}

/// Expose the port-typed channel constructor for tests.
#[allow(dead_code)]
fn channel(device: DeviceRef, port: PortNum) -> Channel {
    (device, port.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::RoutingKind;
    use ibfat_topology::TreeParams;

    #[test]
    fn mlid_and_slid_are_deadlock_free() {
        for kind in [RoutingKind::Slid, RoutingKind::Mlid] {
            for (m, n) in [(4, 2), (4, 3), (8, 2)] {
                let params = TreeParams::new(m, n).unwrap();
                let net = Network::mport_ntree(params);
                let routing = Routing::build(&net, kind);
                let report = verify_deadlock_free(&net, &routing)
                    .unwrap_or_else(|e| panic!("{kind} IBFT({m},{n}): {e}"));
                assert!(report.channels > 0);
                assert!(report.acyclic);
            }
        }
    }

    #[test]
    fn cycle_detector_finds_cycles() {
        // 0 -> 1 -> 2 -> 0
        assert!(!is_acyclic(&[vec![1], vec![2], vec![0]]));
        // 0 -> 1 -> 2
        assert!(is_acyclic(&[vec![1], vec![2], vec![]]));
        // self-loop
        assert!(!is_acyclic(&[vec![0]]));
        // empty
        assert!(is_acyclic(&[]));
        // diamond (acyclic)
        assert!(is_acyclic(&[vec![1, 2], vec![3], vec![3], vec![]]));
    }
}
