/root/repo/target/debug/deps/proptest-da48bf73ed0f489c.d: /root/stubdeps/proptest/src/lib.rs

/root/repo/target/debug/deps/libproptest-da48bf73ed0f489c.rmeta: /root/stubdeps/proptest/src/lib.rs

/root/stubdeps/proptest/src/lib.rs:
