/root/repo/target/debug/deps/ib_fabric-865c70274b50a4d3.d: crates/core/src/lib.rs crates/core/src/builder.rs crates/core/src/experiment.rs

/root/repo/target/debug/deps/libib_fabric-865c70274b50a4d3.rmeta: crates/core/src/lib.rs crates/core/src/builder.rs crates/core/src/experiment.rs

crates/core/src/lib.rs:
crates/core/src/builder.rs:
crates/core/src/experiment.rs:
