//! Argument parsing for the `ibfat` CLI (no external parser crate).
#![allow(clippy::module_name_repetitions)]

use ib_fabric::{
    FaultPolicy, NodeId, PartitionKind, RouteBackend, RoutingKind, TraceSampling, TrafficPattern,
};

/// Usage text.
pub const USAGE: &str = "\
usage: ibfat <command> <MxN> [options]

commands:
  info <MxN>                     network facts (Table-1 row)
  route <MxN> <src> <dst>        trace the selected route
  verify <MxN>                   delivery / minimality / deadlock checks
  discover <MxN>                 subnet-manager sweep + label recovery
  simulate <MxN>                 one simulation run (alias: run)
  sweep <MxN>                    load sweep, CSV on stdout
  counters <MxN>                 one run + IB-style port counters and
                                 per-level utilization (hot-spot view)
  loads <MxN>                    static channel-load analysis (no
                                 simulation): all-to-all flow counts per
                                 link, rolled up by tree level
  workload <MxN>                 drive a message-level workload (collective,
                                 closed-loop, or trace replay) to completion
                                 and report per-message latency + skew
  trace <MxN>                    flight recorder: run once and emit sampled
                                 per-packet lifecycle spans (inject, per-hop
                                 arbitration, credit stalls, deliver) as
                                 JSONL on stdout
  faults <MxN>                   live fault injection: kill seeded
                                 inter-switch cables mid-run, let the SM
                                 reconverge with incremental LFT patches,
                                 and report the disruption (packets lost /
                                 stalled / rerouted, reconvergence cost,
                                 MLID-vs-SLID surviving paths, per-level
                                 load imbalance)

options:
  --scheme mlid|slid|updown      routing scheme        (default mlid)
  --pattern uniform|centric|bitcomp                    (default uniform)
  --load L                       offered load, (0,1]   (default 0.3)
  --loads a,b,c                  sweep grid            (default 0.1..1.0)
  --vls V                        virtual lanes         (default 1)
  --time-us T                    simulated microseconds (default 200)
  --seed S                       RNG seed
  --threads N                    simulation worker threads (default 1;
                                 0 = all cores; any N yields
                                 bit-identical results)
  --processes N                  simulate/run: split the sharded engine
                                 across N worker processes (composes
                                 with --threads: the shard count is
                                 max(threads, processes), placed N
                                 workers wide; reports stay
                                 bit-identical at any process count;
                                 pristine fabric only)
  --partition fat-tree|block     parallel shard partitioner
                                 (default fat-tree)
  --route-backend table|oracle   simulate/run, sweep, counters, workload,
                                 trace: forwarding-state backend — flat
                                 LFT lookups, or the closed-form routing
                                 oracle with no tables in memory
                                 (default table; oracle is mlid/slid
                                 only, pristine fabric only; reports are
                                 bit-identical across backends)
  --fail-links i,j,k             remove cables by index before anything else
  --kill K                       faults: seeded inter-switch cables to cut
                                 mid-run (default 1; selection is pinned
                                 by --seed)
  --at NS                        faults: the fault instant in simulated ns
                                 (default time/4)
  --policy drop|stall            faults: dead-port packet treatment during
                                 the stale-table window (default drop;
                                 stall is lossless — heads park until the
                                 SM reroutes them)
  --detect-ns N                  faults: SM detection latency (default 10000)
  --per-switch-ns N              faults: SM per-switch reprogram latency
                                 (default 100)
  --sample-interval-ns N         counters time-series period (default time/50)
  --top K                        ports listed in counters/loads rankings
                                 (default 8)
  --hotspot D                    loads: all-to-one matrix towards node D
                                 (id or P(...) label) instead of all-to-all
  --oracle                       loads: stream the closed-form routing
                                 oracle instead of walking the tables
                                 (mlid/slid only, pristine fabric only)
  --kind K                       workload kind: allreduce-ring|allreduce-rd|
                                 alltoall|bcast|closed-loop|replay
                                 (default allreduce-ring)
  --bytes B                      workload payload per node/message in bytes
                                 (default 4096)
  --in-flight K                  closed-loop: messages in flight per node
                                 (default 4)
  --messages M                   closed-loop: total messages per node
                                 (default 32)
  --trace FILE                   replay: JSONL trace, one
                                 {src, dst, bytes, depends_on} per line
  --packets N                    trace: flight-recorder slots (default 16)
  --one-in N                     trace: sample 1 in N flows (by flow hash;
                                 default: first packets generated)
  --pairs s:d,s:d                trace: only these (src, dst) flows
  --telemetry                    simulate/run: print engine self-telemetry
                                 (per-shard windows, barrier waits, mailbox
                                 volume) as JSONL after the report
  --profile                      workload: print the engine's per-phase
                                 self-profile table after the report
  --json                         machine-readable output";

/// A parsed invocation.
#[derive(Debug, Clone, PartialEq)]
pub struct Cmd {
    /// Which subcommand.
    pub action: Action,
    /// Ports per switch.
    pub m: u32,
    /// Tree levels.
    pub n: u32,
    /// Routing scheme.
    pub scheme: RoutingKind,
    /// Traffic pattern (None = bit-complement, instantiated later).
    pub pattern: Option<TrafficPattern>,
    /// Offered load for `simulate`.
    pub load: f64,
    /// Load grid for `sweep`.
    pub loads: Vec<f64>,
    /// Virtual lanes.
    pub vls: u8,
    /// Simulated time, ns.
    pub time_ns: u64,
    /// RNG seed.
    pub seed: Option<u64>,
    /// Simulation worker threads (1 = sequential engine, 0 = all cores).
    pub threads: usize,
    /// Worker processes for `simulate` (1 = in-process engine).
    pub processes: usize,
    /// Shard partitioner for the parallel engine.
    pub partition: PartitionKind,
    /// Forwarding-state backend for the packet engine (table or oracle).
    pub route_backend: RouteBackend,
    /// Cables to fail before acting.
    pub fail_links: Vec<usize>,
    /// `faults`: seeded inter-switch cables to cut mid-run.
    pub kill: usize,
    /// `faults`: the fault instant in ns (None = time/4).
    pub fault_at: Option<u64>,
    /// `faults`: dead-port packet treatment during the stale window.
    pub fault_policy: FaultPolicy,
    /// `faults`: SM detection latency in ns.
    pub detect_ns: u64,
    /// `faults`: SM per-switch reprogram latency in ns.
    pub per_switch_ns: u64,
    /// Time-series period for `counters` (None = duration / 50).
    pub sample_interval_ns: Option<u64>,
    /// List length for the `counters` / `loads` port rankings.
    pub top: usize,
    /// `loads`: all-to-one matrix towards this node (None = all-to-all).
    pub hotspot: Option<NodeRef>,
    /// `loads`: stream the closed-form oracle instead of the tables.
    pub oracle: bool,
    /// `workload`: which workload to drive.
    pub wl_kind: WlKind,
    /// `workload`: payload bytes per node (collectives) or per message
    /// (closed-loop).
    pub bytes: u64,
    /// `workload` closed-loop: messages kept in flight per node.
    pub in_flight: u32,
    /// `workload` closed-loop: total messages per node.
    pub messages: u32,
    /// `workload` replay: path to a JSONL trace.
    pub trace: Option<String>,
    /// `trace`: flight-recorder slots to fill.
    pub trace_packets: u32,
    /// `trace`: which flows may claim recorder slots.
    pub sampling: TraceSampling,
    /// `simulate`: print engine self-telemetry after the report.
    pub telemetry: bool,
    /// `workload`: print the per-phase self-profile after the report.
    pub profile: bool,
    /// Emit JSON instead of text.
    pub json: bool,
}

/// The subcommands.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Action {
    Info,
    Route { src: NodeRef, dst: NodeRef },
    Verify,
    Discover,
    Simulate,
    Sweep,
    Counters,
    Loads,
    Workload,
    Trace,
    Faults,
}

/// Workload families for the `workload` subcommand.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WlKind {
    /// Ring allreduce: reduce-scatter + allgather, 2(n-1) steps.
    AllreduceRing,
    /// Recursive-doubling allreduce (power-of-two fabrics).
    AllreduceRd,
    /// Pairwise-exchange all-to-all, n-1 rounds.
    AllToAll,
    /// Binomial-tree broadcast from node 0.
    Bcast,
    /// Closed-loop uniform traffic: k messages in flight per node.
    ClosedLoop,
    /// Replay a JSONL trace (`--trace FILE`).
    Replay,
}

impl WlKind {
    fn parse(s: &str) -> Result<Self, String> {
        Ok(match s {
            "allreduce-ring" => WlKind::AllreduceRing,
            "allreduce-rd" => WlKind::AllreduceRd,
            "alltoall" => WlKind::AllToAll,
            "bcast" => WlKind::Bcast,
            "closed-loop" => WlKind::ClosedLoop,
            "replay" => WlKind::Replay,
            other => return Err(format!("unknown workload kind '{other}'")),
        })
    }

    /// Short name for reports.
    pub fn as_str(self) -> &'static str {
        match self {
            WlKind::AllreduceRing => "allreduce-ring",
            WlKind::AllreduceRd => "allreduce-rd",
            WlKind::AllToAll => "alltoall",
            WlKind::Bcast => "bcast",
            WlKind::ClosedLoop => "closed-loop",
            WlKind::Replay => "replay",
        }
    }
}

/// A node given either as a dense id (`5`) or a paper label (`P(010)`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NodeRef {
    /// Dense id.
    Id(NodeId),
    /// Label text, resolved against the fabric's parameters later.
    Label(String),
}

impl NodeRef {
    fn parse(s: &str) -> Result<Self, String> {
        if s.starts_with('P') {
            Ok(NodeRef::Label(s.to_string()))
        } else {
            Ok(NodeRef::Id(NodeId(
                s.parse().map_err(|_| format!("bad node '{s}'"))?,
            )))
        }
    }

    /// Resolve to a node id for the given parameters.
    pub fn resolve(&self, params: ib_fabric::TreeParams) -> Result<NodeId, String> {
        match self {
            NodeRef::Id(id) => Ok(*id),
            NodeRef::Label(text) => ib_fabric::NodeLabel::parse(params, text)
                .map(|l| l.id(params))
                .map_err(|e| e.to_string()),
        }
    }
}

/// Parse argv (without the program name).
pub fn parse(argv: &[String]) -> Result<Cmd, String> {
    let mut it = argv.iter();
    let action_word = it.next().ok_or("missing command")?;
    let config = it.next().ok_or("missing network size (MxN)")?;
    let (m, n) = parse_config(config)?;

    let mut positional: Vec<&String> = Vec::new();
    let mut cmd = Cmd {
        action: Action::Info, // placeholder until resolved below
        m,
        n,
        scheme: RoutingKind::Mlid,
        pattern: Some(TrafficPattern::Uniform),
        load: 0.3,
        loads: vec![0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0],
        vls: 1,
        time_ns: 200_000,
        seed: None,
        threads: 1,
        processes: 1,
        partition: PartitionKind::FatTree,
        route_backend: RouteBackend::Table,
        fail_links: Vec::new(),
        kill: 1,
        fault_at: None,
        fault_policy: FaultPolicy::Drop,
        detect_ns: 10_000,
        per_switch_ns: 100,
        sample_interval_ns: None,
        top: 8,
        hotspot: None,
        oracle: false,
        wl_kind: WlKind::AllreduceRing,
        bytes: 4096,
        in_flight: 4,
        messages: 32,
        trace: None,
        trace_packets: 16,
        sampling: TraceSampling::FirstN,
        telemetry: false,
        profile: false,
        json: false,
    };

    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--scheme" => {
                cmd.scheme = next_value(&mut it, arg)?.parse::<RoutingKind>()?;
            }
            "--pattern" => {
                cmd.pattern = match next_value(&mut it, arg)?.as_str() {
                    "uniform" => Some(TrafficPattern::Uniform),
                    "centric" => Some(TrafficPattern::paper_centric()),
                    "bitcomp" => None,
                    other => return Err(format!("unknown pattern '{other}'")),
                };
            }
            "--load" => cmd.load = parse_num(next_value(&mut it, arg)?, "load")?,
            "--loads" => {
                cmd.loads = next_value(&mut it, arg)?
                    .split(',')
                    .map(|s| parse_num(s, "load"))
                    .collect::<Result<_, _>>()?;
            }
            "--vls" => {
                cmd.vls = next_value(&mut it, arg)?
                    .parse()
                    .map_err(|_| "bad --vls value".to_string())?;
            }
            "--time-us" => {
                let us: u64 = next_value(&mut it, arg)?
                    .parse()
                    .map_err(|_| "bad --time-us value".to_string())?;
                cmd.time_ns = us * 1_000;
            }
            "--seed" => {
                cmd.seed = Some(
                    next_value(&mut it, arg)?
                        .parse()
                        .map_err(|_| "bad --seed value".to_string())?,
                );
            }
            "--threads" => {
                cmd.threads = next_value(&mut it, arg)?
                    .parse()
                    .map_err(|_| "bad --threads value".to_string())?;
            }
            "--processes" => {
                let p: usize = next_value(&mut it, arg)?
                    .parse()
                    .map_err(|_| "bad --processes value".to_string())?;
                if p == 0 {
                    return Err("--processes must be positive".into());
                }
                cmd.processes = p;
            }
            "--partition" => {
                cmd.partition = match next_value(&mut it, arg)?.as_str() {
                    "fat-tree" => PartitionKind::FatTree,
                    "block" => PartitionKind::Block,
                    other => return Err(format!("unknown partition '{other}'")),
                };
            }
            "--route-backend" => {
                cmd.route_backend = next_value(&mut it, arg)?.parse::<RouteBackend>()?;
            }
            "--fail-links" => {
                cmd.fail_links = next_value(&mut it, arg)?
                    .split(',')
                    .map(|s| s.parse().map_err(|_| format!("bad link index '{s}'")))
                    .collect::<Result<_, _>>()?;
            }
            "--kill" => {
                let k: usize = next_value(&mut it, arg)?
                    .parse()
                    .map_err(|_| "bad --kill value".to_string())?;
                if k == 0 {
                    return Err("--kill must be positive".into());
                }
                cmd.kill = k;
            }
            "--at" => {
                cmd.fault_at = Some(
                    next_value(&mut it, arg)?
                        .parse()
                        .map_err(|_| "bad --at value".to_string())?,
                );
            }
            "--policy" => {
                cmd.fault_policy = match next_value(&mut it, arg)?.as_str() {
                    "drop" => FaultPolicy::Drop,
                    "stall" => FaultPolicy::Stall,
                    other => return Err(format!("unknown policy '{other}'")),
                };
            }
            "--detect-ns" => {
                cmd.detect_ns = next_value(&mut it, arg)?
                    .parse()
                    .map_err(|_| "bad --detect-ns value".to_string())?;
            }
            "--per-switch-ns" => {
                cmd.per_switch_ns = next_value(&mut it, arg)?
                    .parse()
                    .map_err(|_| "bad --per-switch-ns value".to_string())?;
            }
            "--sample-interval-ns" => {
                let ns: u64 = next_value(&mut it, arg)?
                    .parse()
                    .map_err(|_| "bad --sample-interval-ns value".to_string())?;
                if ns == 0 {
                    return Err("--sample-interval-ns must be positive".into());
                }
                cmd.sample_interval_ns = Some(ns);
            }
            "--top" => {
                cmd.top = next_value(&mut it, arg)?
                    .parse()
                    .map_err(|_| "bad --top value".to_string())?;
            }
            "--hotspot" => cmd.hotspot = Some(NodeRef::parse(next_value(&mut it, arg)?)?),
            "--oracle" => cmd.oracle = true,
            "--kind" => cmd.wl_kind = WlKind::parse(next_value(&mut it, arg)?)?,
            "--bytes" => {
                let bytes: u64 = next_value(&mut it, arg)?
                    .parse()
                    .map_err(|_| "bad --bytes value".to_string())?;
                if bytes == 0 {
                    return Err("--bytes must be positive".into());
                }
                cmd.bytes = bytes;
            }
            "--in-flight" => {
                let k: u32 = next_value(&mut it, arg)?
                    .parse()
                    .map_err(|_| "bad --in-flight value".to_string())?;
                if k == 0 {
                    return Err("--in-flight must be positive".into());
                }
                cmd.in_flight = k;
            }
            "--messages" => {
                let m: u32 = next_value(&mut it, arg)?
                    .parse()
                    .map_err(|_| "bad --messages value".to_string())?;
                if m == 0 {
                    return Err("--messages must be positive".into());
                }
                cmd.messages = m;
            }
            "--trace" => cmd.trace = Some(next_value(&mut it, arg)?.clone()),
            "--packets" => {
                let n: u32 = next_value(&mut it, arg)?
                    .parse()
                    .map_err(|_| "bad --packets value".to_string())?;
                if n == 0 {
                    return Err("--packets must be positive".into());
                }
                cmd.trace_packets = n;
            }
            "--one-in" => {
                let n: u32 = next_value(&mut it, arg)?
                    .parse()
                    .map_err(|_| "bad --one-in value".to_string())?;
                if n == 0 {
                    return Err("--one-in must be positive".into());
                }
                cmd.sampling = TraceSampling::OneInN(n);
            }
            "--pairs" => {
                let pairs = next_value(&mut it, arg)?
                    .split(',')
                    .map(|p| {
                        let (s, d) = p
                            .split_once(':')
                            .ok_or_else(|| format!("bad pair '{p}', expected src:dst"))?;
                        Ok((
                            s.parse().map_err(|_| format!("bad src in '{p}'"))?,
                            d.parse().map_err(|_| format!("bad dst in '{p}'"))?,
                        ))
                    })
                    .collect::<Result<Vec<(u32, u32)>, String>>()?;
                if pairs.is_empty() {
                    return Err("--pairs needs at least one src:dst".into());
                }
                cmd.sampling = TraceSampling::Pairs(pairs);
            }
            "--telemetry" => cmd.telemetry = true,
            "--profile" => cmd.profile = true,
            "--json" => cmd.json = true,
            other if !other.starts_with("--") => positional.push(arg),
            other => return Err(format!("unknown flag '{other}'")),
        }
    }

    cmd.action = match action_word.as_str() {
        "info" => Action::Info,
        "verify" => Action::Verify,
        "discover" => Action::Discover,
        "simulate" | "run" => Action::Simulate,
        "sweep" => Action::Sweep,
        "counters" => Action::Counters,
        "loads" => Action::Loads,
        "trace" => Action::Trace,
        "faults" => Action::Faults,
        "workload" => {
            if cmd.wl_kind == WlKind::Replay && cmd.trace.is_none() {
                return Err("--kind replay needs --trace FILE".into());
            }
            Action::Workload
        }
        "route" => {
            let [src, dst] = positional.as_slice() else {
                return Err("route needs <src> <dst> (ids or P(...) labels)".into());
            };
            Action::Route {
                src: NodeRef::parse(src)?,
                dst: NodeRef::parse(dst)?,
            }
        }
        other => return Err(format!("unknown command '{other}'")),
    };
    Ok(cmd)
}

fn parse_config(s: &str) -> Result<(u32, u32), String> {
    let (m, n) = s
        .split_once(['x', 'X'])
        .ok_or_else(|| format!("expected MxN, got '{s}'"))?;
    Ok((
        m.parse().map_err(|_| "bad port count".to_string())?,
        n.parse().map_err(|_| "bad level count".to_string())?,
    ))
}

fn next_value<'a>(it: &mut std::slice::Iter<'a, String>, flag: &str) -> Result<&'a String, String> {
    it.next().ok_or_else(|| format!("missing value for {flag}"))
}

fn parse_num(s: &str, what: &str) -> Result<f64, String> {
    s.parse().map_err(|_| format!("bad {what} '{s}'"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(String::from).collect()
    }

    #[test]
    fn parses_info() {
        let cmd = parse(&argv("info 8x3")).unwrap();
        assert_eq!(cmd.action, Action::Info);
        assert_eq!((cmd.m, cmd.n), (8, 3));
        assert_eq!(cmd.scheme, RoutingKind::Mlid);
    }

    #[test]
    fn parses_route_with_scheme() {
        let cmd = parse(&argv("route 4x3 0 15 --scheme slid")).unwrap();
        assert_eq!(
            cmd.action,
            Action::Route {
                src: NodeRef::Id(NodeId(0)),
                dst: NodeRef::Id(NodeId(15))
            }
        );
        assert_eq!(cmd.scheme, RoutingKind::Slid);
    }

    #[test]
    fn parses_route_with_labels() {
        let cmd = parse(&argv("route 4x3 P(000) P(100)")).unwrap();
        let Action::Route { src, dst } = cmd.action else {
            panic!("expected route");
        };
        let params = ib_fabric::TreeParams::new(4, 3).unwrap();
        assert_eq!(src.resolve(params).unwrap(), NodeId(0));
        assert_eq!(dst.resolve(params).unwrap(), NodeId(4));
        assert!(NodeRef::Label("P(9)".into()).resolve(params).is_err());
    }

    #[test]
    fn parses_simulate_options() {
        let cmd = parse(&argv(
            "simulate 16x2 --pattern centric --load 0.4 --vls 2 --time-us 300 --seed 7 --json",
        ))
        .unwrap();
        assert_eq!(cmd.action, Action::Simulate);
        assert_eq!(cmd.pattern, Some(TrafficPattern::paper_centric()));
        assert!((cmd.load - 0.4).abs() < 1e-12);
        assert_eq!(cmd.vls, 2);
        assert_eq!(cmd.time_ns, 300_000);
        assert_eq!(cmd.seed, Some(7));
        assert!(cmd.json);
    }

    #[test]
    fn parses_sweep_loads_and_failures() {
        let cmd = parse(&argv("sweep 8x2 --loads 0.1,0.5 --fail-links 3,9")).unwrap();
        assert_eq!(cmd.action, Action::Sweep);
        assert_eq!(cmd.loads, vec![0.1, 0.5]);
        assert_eq!(cmd.fail_links, vec![3, 9]);
    }

    #[test]
    fn parses_counters_options() {
        let cmd = parse(&argv(
            "counters 4x2 --scheme slid --pattern centric --sample-interval-ns 5000 --top 3",
        ))
        .unwrap();
        assert_eq!(cmd.action, Action::Counters);
        assert_eq!(cmd.scheme, RoutingKind::Slid);
        assert_eq!(cmd.sample_interval_ns, Some(5000));
        assert_eq!(cmd.top, 3);
        // Defaults: auto interval, top 8.
        let cmd = parse(&argv("counters 4x2")).unwrap();
        assert_eq!(cmd.sample_interval_ns, None);
        assert_eq!(cmd.top, 8);
        assert!(parse(&argv("counters 4x2 --sample-interval-ns 0")).is_err());
        assert!(parse(&argv("counters 4x2 --top many")).is_err());
    }

    #[test]
    fn parses_loads_options() {
        let cmd = parse(&argv("loads 4x3 --scheme slid --hotspot 0 --top 4")).unwrap();
        assert_eq!(cmd.action, Action::Loads);
        assert_eq!(cmd.scheme, RoutingKind::Slid);
        assert_eq!(cmd.hotspot, Some(NodeRef::Id(NodeId(0))));
        assert_eq!(cmd.top, 4);
        assert!(!cmd.oracle);
        // Defaults: all-to-all, table-walked.
        let cmd = parse(&argv("loads 8x3 --oracle")).unwrap();
        assert_eq!(cmd.hotspot, None);
        assert!(cmd.oracle);
        // Labels resolve later, like `route` arguments.
        let cmd = parse(&argv("loads 4x3 --hotspot P(000)")).unwrap();
        assert_eq!(cmd.hotspot, Some(NodeRef::Label("P(000)".into())));
        assert!(parse(&argv("loads 4x3 --hotspot")).is_err());
    }

    #[test]
    fn parses_threads_and_run_alias() {
        let cmd = parse(&argv("run 4x2 --threads 4")).unwrap();
        assert_eq!(cmd.action, Action::Simulate);
        assert_eq!(cmd.threads, 4);
        // Default is the sequential engine.
        let cmd = parse(&argv("sweep 4x2")).unwrap();
        assert_eq!(cmd.threads, 1);
        // 0 = auto-detect available cores (resolved by the builder).
        let cmd = parse(&argv("run 4x2 --threads 0")).unwrap();
        assert_eq!(cmd.threads, 0);
        assert!(parse(&argv("run 4x2 --threads lots")).is_err());
    }

    #[test]
    fn parses_processes() {
        let cmd = parse(&argv("run 8x3 --processes 2")).unwrap();
        assert_eq!(cmd.processes, 2);
        assert_eq!(cmd.threads, 1);
        // Composes with --threads: both survive parsing untouched.
        let cmd = parse(&argv("run 8x3 --threads 4 --processes 2")).unwrap();
        assert_eq!((cmd.threads, cmd.processes), (4, 2));
        // Default is the in-process engine.
        let cmd = parse(&argv("run 8x3")).unwrap();
        assert_eq!(cmd.processes, 1);
        assert!(parse(&argv("run 8x3 --processes 0")).is_err());
        assert!(parse(&argv("run 8x3 --processes many")).is_err());
    }

    #[test]
    fn parses_partition_kind() {
        let cmd = parse(&argv("run 4x2")).unwrap();
        assert_eq!(cmd.partition, PartitionKind::FatTree);
        let cmd = parse(&argv("run 4x2 --partition block")).unwrap();
        assert_eq!(cmd.partition, PartitionKind::Block);
        let cmd = parse(&argv("run 4x2 --partition fat-tree")).unwrap();
        assert_eq!(cmd.partition, PartitionKind::FatTree);
        assert!(parse(&argv("run 4x2 --partition diagonal")).is_err());
    }

    #[test]
    fn parses_workload_options() {
        let cmd = parse(&argv(
            "workload 8x3 --kind alltoall --bytes 2048 --scheme slid --threads 4",
        ))
        .unwrap();
        assert_eq!(cmd.action, Action::Workload);
        assert_eq!(cmd.wl_kind, WlKind::AllToAll);
        assert_eq!(cmd.bytes, 2048);
        assert_eq!(cmd.scheme, RoutingKind::Slid);
        assert_eq!(cmd.threads, 4);
        // Defaults.
        let cmd = parse(&argv("workload 4x2")).unwrap();
        assert_eq!(cmd.wl_kind, WlKind::AllreduceRing);
        assert_eq!((cmd.bytes, cmd.in_flight, cmd.messages), (4096, 4, 32));
        // Closed-loop knobs.
        let cmd = parse(&argv(
            "workload 4x2 --kind closed-loop --in-flight 2 --messages 8",
        ))
        .unwrap();
        assert_eq!(cmd.wl_kind, WlKind::ClosedLoop);
        assert_eq!((cmd.in_flight, cmd.messages), (2, 8));
        // Replay requires a trace file; zero knobs are rejected.
        assert!(parse(&argv("workload 4x2 --kind replay")).is_err());
        let cmd = parse(&argv("workload 4x2 --kind replay --trace t.jsonl")).unwrap();
        assert_eq!(cmd.trace.as_deref(), Some("t.jsonl"));
        assert!(parse(&argv("workload 4x2 --kind nope")).is_err());
        assert!(parse(&argv("workload 4x2 --bytes 0")).is_err());
        assert!(parse(&argv("workload 4x2 --in-flight 0")).is_err());
        assert!(parse(&argv("workload 4x2 --messages 0")).is_err());
    }

    #[test]
    fn parses_trace_options() {
        let cmd = parse(&argv("trace 4x2 --packets 8 --one-in 3 --scheme slid")).unwrap();
        assert_eq!(cmd.action, Action::Trace);
        assert_eq!(cmd.trace_packets, 8);
        assert_eq!(cmd.sampling, TraceSampling::OneInN(3));
        assert_eq!(cmd.scheme, RoutingKind::Slid);
        // Defaults: 16 slots, first packets generated.
        let cmd = parse(&argv("trace 4x2")).unwrap();
        assert_eq!(cmd.trace_packets, 16);
        assert_eq!(cmd.sampling, TraceSampling::FirstN);
        // Explicit flow filters.
        let cmd = parse(&argv("trace 4x2 --pairs 0:5,3:1")).unwrap();
        assert_eq!(cmd.sampling, TraceSampling::Pairs(vec![(0, 5), (3, 1)]));
        assert!(parse(&argv("trace 4x2 --packets 0")).is_err());
        assert!(parse(&argv("trace 4x2 --one-in 0")).is_err());
        assert!(parse(&argv("trace 4x2 --pairs 5")).is_err());
        assert!(parse(&argv("trace 4x2 --pairs x:1")).is_err());
    }

    #[test]
    fn parses_faults_options() {
        let cmd = parse(&argv(
            "faults 8x3 --kill 2 --at 25000 --policy stall --detect-ns 5000 --per-switch-ns 50",
        ))
        .unwrap();
        assert_eq!(cmd.action, Action::Faults);
        assert_eq!(cmd.kill, 2);
        assert_eq!(cmd.fault_at, Some(25_000));
        assert_eq!(cmd.fault_policy, FaultPolicy::Stall);
        assert_eq!((cmd.detect_ns, cmd.per_switch_ns), (5_000, 50));
        // Defaults: one seeded kill at time/4, lossy dead ports.
        let cmd = parse(&argv("faults 8x3 --json")).unwrap();
        assert_eq!(cmd.kill, 1);
        assert_eq!(cmd.fault_at, None);
        assert_eq!(cmd.fault_policy, FaultPolicy::Drop);
        assert_eq!((cmd.detect_ns, cmd.per_switch_ns), (10_000, 100));
        assert!(cmd.json);
        assert!(parse(&argv("faults 8x3 --kill 0")).is_err());
        assert!(parse(&argv("faults 8x3 --policy maybe")).is_err());
        assert!(parse(&argv("faults 8x3 --at soon")).is_err());
    }

    #[test]
    fn parses_route_backend() {
        let cmd = parse(&argv("run 4x2")).unwrap();
        assert_eq!(cmd.route_backend, RouteBackend::Table);
        let cmd = parse(&argv("run 4x2 --route-backend oracle")).unwrap();
        assert_eq!(cmd.route_backend, RouteBackend::Oracle);
        let cmd = parse(&argv("workload 4x2 --route-backend table")).unwrap();
        assert_eq!(cmd.route_backend, RouteBackend::Table);
        assert!(parse(&argv("run 4x2 --route-backend magic")).is_err());
        assert!(parse(&argv("run 4x2 --route-backend")).is_err());
    }

    #[test]
    fn parses_telemetry_and_profile_flags() {
        let cmd = parse(&argv("run 4x2 --threads 2 --telemetry")).unwrap();
        assert!(cmd.telemetry);
        let cmd = parse(&argv("workload 4x2 --profile")).unwrap();
        assert!(cmd.profile);
        let cmd = parse(&argv("run 4x2")).unwrap();
        assert!(!cmd.telemetry && !cmd.profile);
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse(&argv("bogus 4x2")).is_err());
        assert!(parse(&argv("info")).is_err());
        assert!(parse(&argv("info 4by2")).is_err());
        assert!(parse(&argv("route 4x2 0")).is_err());
        assert!(parse(&argv("info 4x2 --nope")).is_err());
        assert!(parse(&argv("simulate 4x2 --load abc")).is_err());
    }

    #[test]
    fn bitcomp_is_deferred() {
        let cmd = parse(&argv("simulate 4x2 --pattern bitcomp")).unwrap();
        assert_eq!(cmd.pattern, None);
    }
}
