//! Cost of the subnet-manager role: building a full set of linear
//! forwarding tables for each evaluated network size and scheme. This is
//! the work re-done at every subnet (re)initialization, so it matters for
//! fabric bring-up time.

use bench::EVAL_CONFIGS;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ib_fabric::prelude::*;
use std::hint::black_box;

fn bench_lft_build(c: &mut Criterion) {
    let mut group = c.benchmark_group("lft_build");
    for &(m, n) in &EVAL_CONFIGS {
        let params = TreeParams::new(m, n).unwrap();
        let net = Network::mport_ntree(params);
        for kind in [RoutingKind::Slid, RoutingKind::Mlid, RoutingKind::UpDown] {
            group.bench_with_input(
                BenchmarkId::new(kind.as_str(), format!("{m}x{n}")),
                &net,
                |b, net| b.iter(|| black_box(Routing::build(black_box(net), kind))),
            );
        }
    }
    group.finish();
}

fn bench_topology_build(c: &mut Criterion) {
    let mut group = c.benchmark_group("topology_build");
    for &(m, n) in &EVAL_CONFIGS {
        let params = TreeParams::new(m, n).unwrap();
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{m}x{n}")),
            &params,
            |b, &params| b.iter(|| black_box(Network::mport_ntree(params))),
        );
    }
    group.finish();
}

fn bench_verification(c: &mut Criterion) {
    // The full delivery sweep is the expensive half of `Fabric::verify`;
    // it bounds how often an operator can re-validate a live fabric.
    let mut group = c.benchmark_group("verify_all_lids");
    group.sample_size(10);
    for (m, n) in [(4, 3), (8, 2)] {
        let fabric = Fabric::builder(m, n).build().unwrap();
        group.bench_function(BenchmarkId::from_parameter(format!("{m}x{n}")), |b| {
            b.iter(|| {
                ib_fabric::routing::verify_all_lids_deliver(fabric.network(), fabric.routing())
                    .unwrap()
            })
        });
    }
    group.finish();
}

fn bench_sm_bring_up(c: &mut Criterion) {
    // Discovery + recognition + table computation (the SM role), per size.
    let mut group = c.benchmark_group("sm_initialize");
    for &(m, n) in &EVAL_CONFIGS {
        let net = Network::mport_ntree(TreeParams::new(m, n).unwrap());
        let sm = ib_fabric::SubnetManager::new(RoutingKind::Mlid, NodeId(0));
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{m}x{n}")),
            &net,
            |b, net| b.iter(|| black_box(sm.initialize(black_box(net)).unwrap())),
        );
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_lft_build,
    bench_topology_build,
    bench_verification,
    bench_sm_bring_up
);
criterion_main!(benches);
