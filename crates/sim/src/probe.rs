//! Zero-cost observability probes.
//!
//! The simulator is generic over a [`Probe`] — a sink for fine-grained
//! fabric events (per-port transmissions, crossbar waits, credit stalls)
//! and for self-profiling timing. Dispatch is static: every hook call in
//! the hot path is guarded by the associated consts [`Probe::COUNTERS`] /
//! [`Probe::TIMING`], so with the default [`NoopProbe`] the compiler
//! removes both the calls *and* the computation of their arguments. The
//! probed and unprobed simulators are separate monomorphizations; the
//! unprobed one is bit-identical in behaviour and (to within measurement
//! noise) in speed to a simulator with no probe layer at all.
//!
//! Two probes ship with the crate:
//!
//! * [`FabricCounters`](crate::FabricCounters) — IB-style per-port
//!   counters plus a sampled time-series (see [`crate::counters`]);
//! * [`PhaseProfile`] — wall-clock per event-loop phase, for the bench
//!   trajectory's self-profiling rows.
//!
//! Probes compose: `(A, B)` is a probe that forwards every hook to both.

use crate::engine::Time;

/// Event-loop phases for self-profiling, classifying every simulator
/// event by the pipeline stage it advances.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// Traffic generation and source-queue service (injection side).
    Generation,
    /// Header arrival, table lookup and input-buffer bookkeeping.
    Routing,
    /// Output-port VL arbitration, transmission and credit returns.
    Arbitration,
    /// Final delivery into the destination endport.
    Delivery,
}

/// Number of [`Phase`] variants (array-sized accumulators).
pub const NUM_PHASES: usize = 4;

impl Phase {
    /// Stable dense index in `0..NUM_PHASES`.
    #[inline]
    pub fn index(self) -> usize {
        match self {
            Phase::Generation => 0,
            Phase::Routing => 1,
            Phase::Arbitration => 2,
            Phase::Delivery => 3,
        }
    }

    /// All phases in index order.
    pub fn all() -> [Phase; NUM_PHASES] {
        [
            Phase::Generation,
            Phase::Routing,
            Phase::Arbitration,
            Phase::Delivery,
        ]
    }

    /// Short stable name (used in the bench trajectory JSON).
    pub fn name(self) -> &'static str {
        match self {
            Phase::Generation => "generation",
            Phase::Routing => "routing",
            Phase::Arbitration => "arbitration",
            Phase::Delivery => "delivery",
        }
    }
}

/// A sink for simulator observability events.
///
/// All hooks have empty default bodies, so a probe implements only what
/// it consumes. Hook call sites in the simulator are guarded by
/// [`COUNTERS`](Probe::COUNTERS) / [`TIMING`](Probe::TIMING): a probe
/// that leaves a flag `false` pays nothing for the hooks behind it —
/// including the computation of their arguments.
///
/// Times are simulation nanoseconds except [`phase_time`]'s
/// `wall_ns`, which is host wall-clock. `bytes` is always the configured
/// packet size (the model has fixed-size packets). Switch ports are
/// 0-based here, matching the simulator's internal numbering; add 1 for
/// IB port numbers.
///
/// [`phase_time`]: Probe::phase_time
pub trait Probe {
    /// Enables the fabric-counter hooks (everything except
    /// [`phase_time`](Probe::phase_time)).
    const COUNTERS: bool;
    /// Enables wall-clock timing of each dispatched event by [`Phase`].
    /// Costs two `Instant::now()` calls per event when on.
    const TIMING: bool;

    /// A node started transmitting a packet on its injection link.
    #[inline]
    fn node_xmit(&mut self, now: Time, node: u32, vl: u8, bytes: u32) {
        let _ = (now, node, vl, bytes);
    }

    /// A packet was delivered to a node. `latency_ns` is measured from
    /// generation (source queueing included).
    #[inline]
    fn node_rcv(&mut self, now: Time, node: u32, vl: u8, bytes: u32, latency_ns: u64) {
        let _ = (now, node, vl, bytes, latency_ns);
    }

    /// A packet header arrived at a switch input buffer; `depth` is the
    /// buffer occupancy after the arrival (for high-water tracking).
    #[inline]
    fn sw_rcv(&mut self, now: Time, sw: u32, port: u8, vl: u8, bytes: u32, depth: u8) {
        let _ = (now, sw, port, vl, bytes, depth);
    }

    /// A switch output port started transmitting a packet.
    #[inline]
    fn sw_xmit(&mut self, now: Time, sw: u32, port: u8, vl: u8, bytes: u32) {
        let _ = (now, sw, port, vl, bytes);
    }

    /// A switch discarded a packet (no LFT entry; degraded fabrics only).
    #[inline]
    fn sw_drop(&mut self, now: Time, sw: u32) {
        let _ = (now, sw);
    }

    /// A packet was granted into an output buffer; `depth` is the buffer
    /// occupancy after the grant.
    #[inline]
    fn out_buffer_depth(&mut self, sw: u32, port: u8, vl: u8, depth: u8) {
        let _ = (sw, port, vl, depth);
    }

    /// The routed head of input `(in_port, vl)` found output `out_port`
    /// full and started waiting — the onset of `xmit_wait` (the paper's
    /// congestion signal, accounted to the *output* port).
    #[inline]
    fn xmit_wait_start(&mut self, now: Time, sw: u32, in_port: u8, vl: u8, out_port: u8) {
        let _ = (now, sw, in_port, vl, out_port);
    }

    /// The waiting head of input `(in_port, vl)` was granted.
    #[inline]
    fn xmit_wait_end(&mut self, now: Time, sw: u32, in_port: u8, vl: u8) {
        let _ = (now, sw, in_port, vl);
    }

    /// At an arbitration instant, output `(port, vl)` had a packet ready
    /// but no downstream credit. Fired at every such observation; probes
    /// treat the first as the stall onset.
    #[inline]
    fn credit_stall_start(&mut self, now: Time, sw: u32, port: u8, vl: u8) {
        let _ = (now, sw, port, vl);
    }

    /// A credit returned to output `(port, vl)`, ending any open stall.
    #[inline]
    fn credit_stall_end(&mut self, now: Time, sw: u32, port: u8, vl: u8) {
        let _ = (now, sw, port, vl);
    }

    /// Called once per dispatched event, before dispatch. `in_flight` is
    /// the number of live packets (source queues included). Drives
    /// time-series sampling.
    #[inline]
    fn tick(&mut self, now: Time, in_flight: usize) {
        let _ = (now, in_flight);
    }

    /// Wall-clock duration of one dispatched event (only when
    /// [`TIMING`](Probe::TIMING) is set).
    #[inline]
    fn phase_time(&mut self, phase: Phase, wall_ns: u64) {
        let _ = (phase, wall_ns);
    }

    /// The run ended at simulation time `now` (final sample flush).
    #[inline]
    fn finish(&mut self, now: Time) {
        let _ = now;
    }
}

/// A probe that can ride the parallel engine: the root probe forks one
/// shard-local child per worker (same configuration, zeroed
/// accumulators), each worker feeds its own child with zero
/// synchronization, and the children are absorbed back into the root
/// after the final barrier.
///
/// Absorption must be commutative over children for the merged result to
/// be deterministic — every shipped probe accumulates sums/maxima, which
/// are. Time-series probes additionally see only *shard-local* event
/// streams (`tick`'s `in_flight` counts the shard's packets, not the
/// fabric's), so merged samples are per-shard interleavings rather than
/// global snapshots; see `FabricCounters`' docs.
pub trait ParProbe: Probe + Send {
    /// A fresh probe with this probe's configuration and zeroed state.
    fn fork(&self) -> Self;
    /// Fold a finished shard-local child back into `self`.
    fn absorb(&mut self, child: Self);
}

/// The default probe: observes nothing, costs nothing. With this probe
/// every hook site in the simulator compiles away.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NoopProbe;

impl Probe for NoopProbe {
    const COUNTERS: bool = false;
    const TIMING: bool = false;
}

impl ParProbe for NoopProbe {
    #[inline]
    fn fork(&self) -> Self {
        NoopProbe
    }
    #[inline]
    fn absorb(&mut self, _child: Self) {}
}

impl<A: ParProbe, B: ParProbe> ParProbe for (A, B) {
    fn fork(&self) -> Self {
        (self.0.fork(), self.1.fork())
    }
    fn absorb(&mut self, child: Self) {
        self.0.absorb(child.0);
        self.1.absorb(child.1);
    }
}

/// Composition: forward every hook to both probes. Flags are OR-ed, so a
/// `(FabricCounters, PhaseProfile)` pair collects counters *and* phase
/// timing in one run.
impl<A: Probe, B: Probe> Probe for (A, B) {
    const COUNTERS: bool = A::COUNTERS || B::COUNTERS;
    const TIMING: bool = A::TIMING || B::TIMING;

    #[inline]
    fn node_xmit(&mut self, now: Time, node: u32, vl: u8, bytes: u32) {
        self.0.node_xmit(now, node, vl, bytes);
        self.1.node_xmit(now, node, vl, bytes);
    }
    #[inline]
    fn node_rcv(&mut self, now: Time, node: u32, vl: u8, bytes: u32, latency_ns: u64) {
        self.0.node_rcv(now, node, vl, bytes, latency_ns);
        self.1.node_rcv(now, node, vl, bytes, latency_ns);
    }
    #[inline]
    fn sw_rcv(&mut self, now: Time, sw: u32, port: u8, vl: u8, bytes: u32, depth: u8) {
        self.0.sw_rcv(now, sw, port, vl, bytes, depth);
        self.1.sw_rcv(now, sw, port, vl, bytes, depth);
    }
    #[inline]
    fn sw_xmit(&mut self, now: Time, sw: u32, port: u8, vl: u8, bytes: u32) {
        self.0.sw_xmit(now, sw, port, vl, bytes);
        self.1.sw_xmit(now, sw, port, vl, bytes);
    }
    #[inline]
    fn sw_drop(&mut self, now: Time, sw: u32) {
        self.0.sw_drop(now, sw);
        self.1.sw_drop(now, sw);
    }
    #[inline]
    fn out_buffer_depth(&mut self, sw: u32, port: u8, vl: u8, depth: u8) {
        self.0.out_buffer_depth(sw, port, vl, depth);
        self.1.out_buffer_depth(sw, port, vl, depth);
    }
    #[inline]
    fn xmit_wait_start(&mut self, now: Time, sw: u32, in_port: u8, vl: u8, out_port: u8) {
        self.0.xmit_wait_start(now, sw, in_port, vl, out_port);
        self.1.xmit_wait_start(now, sw, in_port, vl, out_port);
    }
    #[inline]
    fn xmit_wait_end(&mut self, now: Time, sw: u32, in_port: u8, vl: u8) {
        self.0.xmit_wait_end(now, sw, in_port, vl);
        self.1.xmit_wait_end(now, sw, in_port, vl);
    }
    #[inline]
    fn credit_stall_start(&mut self, now: Time, sw: u32, port: u8, vl: u8) {
        self.0.credit_stall_start(now, sw, port, vl);
        self.1.credit_stall_start(now, sw, port, vl);
    }
    #[inline]
    fn credit_stall_end(&mut self, now: Time, sw: u32, port: u8, vl: u8) {
        self.0.credit_stall_end(now, sw, port, vl);
        self.1.credit_stall_end(now, sw, port, vl);
    }
    #[inline]
    fn tick(&mut self, now: Time, in_flight: usize) {
        self.0.tick(now, in_flight);
        self.1.tick(now, in_flight);
    }
    #[inline]
    fn phase_time(&mut self, phase: Phase, wall_ns: u64) {
        self.0.phase_time(phase, wall_ns);
        self.1.phase_time(phase, wall_ns);
    }
    #[inline]
    fn finish(&mut self, now: Time) {
        self.0.finish(now);
        self.1.finish(now);
    }
}

/// Self-profiling probe: wall-clock time and event count per event-loop
/// [`Phase`]. Used by the bench trajectory's `sim_profile` rows.
#[derive(Debug, Clone, Default)]
pub struct PhaseProfile {
    wall_ns: [u64; NUM_PHASES],
    events: [u64; NUM_PHASES],
}

impl PhaseProfile {
    /// A zeroed profile.
    pub fn new() -> Self {
        PhaseProfile::default()
    }

    /// Accumulated wall time (ns) spent dispatching `phase` events.
    pub fn wall_ns(&self, phase: Phase) -> u64 {
        self.wall_ns[phase.index()]
    }

    /// Events dispatched in `phase`.
    pub fn events(&self, phase: Phase) -> u64 {
        self.events[phase.index()]
    }

    /// Total dispatch wall time over all phases (ns).
    pub fn total_wall_ns(&self) -> u64 {
        self.wall_ns.iter().sum()
    }

    /// Total events over all phases.
    pub fn total_events(&self) -> u64 {
        self.events.iter().sum()
    }

    /// `(phase, wall_ns, events)` rows in index order.
    pub fn rows(&self) -> [(Phase, u64, u64); NUM_PHASES] {
        let mut out = [(Phase::Generation, 0, 0); NUM_PHASES];
        for (i, phase) in Phase::all().into_iter().enumerate() {
            out[i] = (phase, self.wall_ns[i], self.events[i]);
        }
        out
    }
}

impl Probe for PhaseProfile {
    const COUNTERS: bool = false;
    const TIMING: bool = true;

    #[inline]
    fn phase_time(&mut self, phase: Phase, wall_ns: u64) {
        self.wall_ns[phase.index()] += wall_ns;
        self.events[phase.index()] += 1;
    }
}

impl ParProbe for PhaseProfile {
    fn fork(&self) -> Self {
        PhaseProfile::new()
    }
    fn absorb(&mut self, child: Self) {
        for i in 0..NUM_PHASES {
            self.wall_ns[i] += child.wall_ns[i];
            self.events[i] += child.events[i];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phase_indices_are_dense_and_named() {
        for (i, p) in Phase::all().into_iter().enumerate() {
            assert_eq!(p.index(), i);
            assert!(!p.name().is_empty());
        }
    }

    #[test]
    fn phase_profile_accumulates() {
        let mut p = PhaseProfile::new();
        p.phase_time(Phase::Routing, 10);
        p.phase_time(Phase::Routing, 5);
        p.phase_time(Phase::Delivery, 7);
        assert_eq!(p.wall_ns(Phase::Routing), 15);
        assert_eq!(p.events(Phase::Routing), 2);
        assert_eq!(p.total_wall_ns(), 22);
        assert_eq!(p.total_events(), 3);
    }

    #[test]
    fn tuple_probe_forwards_to_both() {
        let mut pair = (PhaseProfile::new(), PhaseProfile::new());
        pair.phase_time(Phase::Generation, 3);
        assert_eq!(pair.0.total_wall_ns(), 3);
        assert_eq!(pair.1.total_wall_ns(), 3);
        const { assert!(<(PhaseProfile, NoopProbe) as Probe>::TIMING) };
        const { assert!(!<(NoopProbe, NoopProbe) as Probe>::COUNTERS) };
    }
}
