//! The persisted bench trajectory: a schema-stable `BENCH_sim.json` at
//! the repo root, written by the `bench` binary and compared across
//! commits.
//!
//! The format is emitted and parsed by hand (a tiny JSON subset) so the
//! trajectory does not depend on any serialization crate: the file is
//! byte-stable for unchanged measurements modulo the numbers themselves,
//! and the comparison step runs anywhere the workspace compiles.

use ibfat_sim::json::{self, escape};
use std::fmt::Write as _;

/// Version stamp of the JSON layout. Bump only on breaking changes;
/// the comparator refuses to diff across schema versions.
pub const SCHEMA_VERSION: u32 = 1;

/// Wall time and event count attributed to one simulator phase by the
/// self-profiling probe (the `sim_profile` workload).
#[derive(Debug, Clone, PartialEq)]
pub struct PhaseSplit {
    /// Phase name, e.g. `arbitration`.
    pub name: String,
    /// Wall time spent dispatching this phase's events, ns.
    pub wall_ns: u64,
    /// Events dispatched in this phase.
    pub events: u64,
}

/// Sharded-engine self-telemetry attached to a `sim_engine_par` row:
/// the structural summary of one representative (untimed) telemetry run
/// at the row's thread count. Wall-clock context for the row's own wall
/// time — a high `barrier_wait_ns` or `event_imbalance` explains a slow
/// tN row better than the number alone.
#[derive(Debug, Clone, PartialEq)]
pub struct SimTelemetry {
    /// Worker threads (= shards) the telemetry run used.
    pub threads: u32,
    /// Conservative windows executed, summed over shards.
    pub windows: u64,
    /// Wall time spent waiting at the window barrier, summed over shards, ns.
    pub barrier_wait_ns: u64,
    /// Cross-shard messages sent, summed over shards.
    pub msgs: u64,
    /// Inter-shard links cut by the partition.
    pub edge_cut: u64,
    /// Max/mean per-shard event count (1.0 = perfectly balanced).
    pub event_imbalance: f64,
}

/// One measured workload configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadResult {
    /// Stable identifier, e.g. `sim_engine/8x3/vl4`.
    pub name: String,
    /// Best-of-iterations wall time, ns.
    pub wall_ns: u64,
    /// Work units processed per iteration (simulator events, LID lookups,
    /// …; 0 when the workload has no natural unit).
    pub events: u64,
    /// `events / wall`, in units per second (0 when `events` is 0).
    pub events_per_sec: f64,
    /// Iterations the minimum was taken over.
    pub iters: u32,
    /// Cores available on the measuring host, recorded for rows whose
    /// wall time depends on the core count (the `sim_engine_par` rows) —
    /// a t4 row measured on 1 CPU is overhead, not parallelism, and the
    /// comparator needs to know which it is looking at. Omitted from the
    /// JSON when 0 (host-independent rows, pre-recording snapshots), so
    /// the schema version stands.
    pub threads_available: u32,
    /// Peak resident set (VmHWM, kB) of the hungriest worker process,
    /// for the multi-process `sim_engine_proc` rows — the number that
    /// shows the per-worker subfabric views paying off on big fabrics.
    /// Omitted from the JSON when 0 (in-process rows, pre-driver
    /// snapshots), so the schema version stands.
    pub worker_rss_kb: u64,
    /// Bytes serialized through the inter-process bridge, summed over
    /// workers, for the `sim_engine_proc` rows; 0 elsewhere and omitted
    /// from the JSON, so the schema version stands.
    pub bridge_bytes: u64,
    /// Per-phase breakdown of the best iteration; empty for workloads
    /// that do not self-profile. Omitted from the JSON when empty, and
    /// absent in pre-profiling snapshots, so the schema version stands.
    pub phases: Vec<PhaseSplit>,
    /// Sharded-engine telemetry context for `sim_engine_par` rows;
    /// `None` everywhere else. Omitted from the JSON when absent, and
    /// absent in pre-telemetry snapshots, so the schema version stands.
    pub sim_telemetry: Option<SimTelemetry>,
}

/// A whole trajectory snapshot.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchReport {
    /// Layout version ([`SCHEMA_VERSION`]).
    pub schema: u32,
    /// All measured workloads, in a stable order.
    pub workloads: Vec<WorkloadResult>,
}

impl BenchReport {
    /// A report of the current schema version.
    pub fn new(workloads: Vec<WorkloadResult>) -> Self {
        BenchReport {
            schema: SCHEMA_VERSION,
            workloads,
        }
    }

    /// Find a workload by name.
    pub fn get(&self, name: &str) -> Option<&WorkloadResult> {
        self.workloads.iter().find(|w| w.name == name)
    }

    /// Serialize to the canonical pretty-printed JSON layout.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "{{");
        let _ = writeln!(out, "  \"schema\": {},", self.schema);
        let _ = writeln!(out, "  \"workloads\": [");
        for (i, w) in self.workloads.iter().enumerate() {
            let comma = if i + 1 < self.workloads.len() {
                ","
            } else {
                ""
            };
            let _ = writeln!(out, "    {{");
            let _ = writeln!(out, "      \"name\": \"{}\",", escape(&w.name));
            let _ = writeln!(out, "      \"wall_ns\": {},", w.wall_ns);
            let _ = writeln!(out, "      \"events\": {},", w.events);
            let _ = writeln!(out, "      \"events_per_sec\": {:.1},", w.events_per_sec);
            if w.threads_available > 0 {
                let _ = writeln!(out, "      \"threads_available\": {},", w.threads_available);
            }
            if w.worker_rss_kb > 0 {
                let _ = writeln!(out, "      \"worker_rss_kb\": {},", w.worker_rss_kb);
            }
            if w.bridge_bytes > 0 {
                let _ = writeln!(out, "      \"bridge_bytes\": {},", w.bridge_bytes);
            }
            if let Some(t) = &w.sim_telemetry {
                let _ = writeln!(
                    out,
                    "      \"sim_telemetry\": {{ \"threads\": {}, \"windows\": {}, \
                     \"barrier_wait_ns\": {}, \"msgs\": {}, \"edge_cut\": {}, \
                     \"event_imbalance\": {:.3} }},",
                    t.threads, t.windows, t.barrier_wait_ns, t.msgs, t.edge_cut, t.event_imbalance
                );
            }
            if w.phases.is_empty() {
                let _ = writeln!(out, "      \"iters\": {}", w.iters);
            } else {
                let _ = writeln!(out, "      \"iters\": {},", w.iters);
                let _ = writeln!(out, "      \"phases\": [");
                for (j, p) in w.phases.iter().enumerate() {
                    let pc = if j + 1 < w.phases.len() { "," } else { "" };
                    let _ = writeln!(
                        out,
                        "        {{ \"name\": \"{}\", \"wall_ns\": {}, \"events\": {} }}{pc}",
                        escape(&p.name),
                        p.wall_ns,
                        p.events
                    );
                }
                let _ = writeln!(out, "      ]");
            }
            let _ = writeln!(out, "    }}{comma}");
        }
        let _ = writeln!(out, "  ]");
        out.push_str("}\n");
        out
    }

    /// Read a snapshot from disk. A missing or empty file yields
    /// `Ok(None)` — a fresh clone has no trajectory yet and that must not
    /// abort the run that would seed one. A present-but-unparsable file
    /// is still an error: silently discarding a corrupt baseline would
    /// hide regressions.
    pub fn load(path: &str) -> Result<Option<BenchReport>, String> {
        match std::fs::read_to_string(path) {
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(None),
            Err(e) => Err(format!("cannot read {path}: {e}")),
            Ok(text) if text.trim().is_empty() => Ok(None),
            Ok(text) => Self::parse(&text).map(Some),
        }
    }

    /// Parse a report previously written by [`to_json`](Self::to_json)
    /// (tolerant of whitespace and key order; uses the workspace-shared
    /// subset parser in [`ibfat_sim::json`]).
    pub fn parse(text: &str) -> Result<BenchReport, String> {
        let value = json::parse(text)?;
        let obj = value.as_object("top level")?;
        let schema = obj.field("schema")?.as_u64("schema")? as u32;
        let mut workloads = Vec::new();
        for (i, item) in obj
            .field("workloads")?
            .as_array("workloads")?
            .iter()
            .enumerate()
        {
            let w = item.as_object(&format!("workloads[{i}]"))?;
            // `phases` arrived after the first snapshots were committed;
            // its absence simply means "no breakdown recorded".
            let phases = match w.field("phases") {
                Err(_) => Vec::new(),
                Ok(v) => v
                    .as_array("phases")?
                    .iter()
                    .map(|p| {
                        let p = p.as_object("phases[]")?;
                        Ok(PhaseSplit {
                            name: p.field("name")?.as_string("name")?.to_string(),
                            wall_ns: p.field("wall_ns")?.as_u64("wall_ns")?,
                            events: p.field("events")?.as_u64("events")?,
                        })
                    })
                    .collect::<Result<_, String>>()?,
            };
            // `sim_telemetry` arrived after the first snapshots were
            // committed; absence means "no telemetry context recorded".
            let sim_telemetry = match w.field("sim_telemetry") {
                Err(_) => None,
                Ok(v) => {
                    let t = v.as_object("sim_telemetry")?;
                    Some(SimTelemetry {
                        threads: t.field("threads")?.as_u64("threads")? as u32,
                        windows: t.field("windows")?.as_u64("windows")?,
                        barrier_wait_ns: t.field("barrier_wait_ns")?.as_u64("barrier_wait_ns")?,
                        msgs: t.field("msgs")?.as_u64("msgs")?,
                        edge_cut: t.field("edge_cut")?.as_u64("edge_cut")?,
                        event_imbalance: t.field("event_imbalance")?.as_f64("event_imbalance")?,
                    })
                }
            };
            workloads.push(WorkloadResult {
                name: w.field("name")?.as_string("name")?.to_string(),
                wall_ns: w.field("wall_ns")?.as_u64("wall_ns")?,
                events: w.field("events")?.as_u64("events")?,
                events_per_sec: w.field("events_per_sec")?.as_f64("events_per_sec")?,
                iters: w.field("iters")?.as_u64("iters")? as u32,
                // Absent in snapshots that predate the recording — 0
                // means "host core count unknown".
                threads_available: match w.field("threads_available") {
                    Err(_) => 0,
                    Ok(v) => v.as_u64("threads_available")? as u32,
                },
                // Absent in snapshots that predate the multi-process
                // driver — 0 means "not a process row".
                worker_rss_kb: match w.field("worker_rss_kb") {
                    Err(_) => 0,
                    Ok(v) => v.as_u64("worker_rss_kb")?,
                },
                bridge_bytes: match w.field("bridge_bytes") {
                    Err(_) => 0,
                    Ok(v) => v.as_u64("bridge_bytes")?,
                },
                phases,
                sim_telemetry,
            });
        }
        Ok(BenchReport { schema, workloads })
    }
}

// ----- comparison ------------------------------------------------------

/// How one workload moved between two snapshots.
#[derive(Debug, Clone, PartialEq)]
pub struct Delta {
    /// Workload name.
    pub name: String,
    /// Baseline wall time, ns.
    pub base_wall_ns: u64,
    /// Current wall time, ns.
    pub cur_wall_ns: u64,
    /// `current / baseline` (> 1 is slower).
    pub ratio: f64,
}

impl Delta {
    /// Whether this delta exceeds the regression threshold (e.g. `0.25`
    /// = fail when more than 25% slower than the baseline).
    pub fn is_regression(&self, threshold: f64) -> bool {
        self.ratio > 1.0 + threshold
    }
}

/// Compare two snapshots workload-by-workload (intersection by name).
///
/// # Errors
/// Fails when the schema versions differ — deltas across layouts are
/// meaningless.
pub fn compare(baseline: &BenchReport, current: &BenchReport) -> Result<Vec<Delta>, String> {
    if baseline.schema != current.schema {
        return Err(format!(
            "schema mismatch: baseline v{}, current v{}",
            baseline.schema, current.schema
        ));
    }
    Ok(current
        .workloads
        .iter()
        .filter_map(|cur| {
            let base = baseline.get(&cur.name)?;
            (base.wall_ns > 0).then(|| Delta {
                name: cur.name.clone(),
                base_wall_ns: base.wall_ns,
                cur_wall_ns: cur.wall_ns,
                ratio: cur.wall_ns as f64 / base.wall_ns as f64,
            })
        })
        .collect())
}

/// Speedup of every `sim_engine_par/…/tN` workload over its own `t1`
/// twin on the same snapshot: `(name, threads, t1_wall / tN_wall)`.
///
/// Purely derived from wall times already in the report — nothing extra
/// is persisted, so the JSON layout (and [`SCHEMA_VERSION`]) stand.
/// Rows without a `t1` twin, with an unparsable thread suffix, or with a
/// zero wall time are skipped. The `t1` row itself is included (speedup
/// 1.0 by construction) so tables print a complete column.
pub fn par_speedups(report: &BenchReport) -> Vec<(String, u32, f64)> {
    report
        .workloads
        .iter()
        .filter_map(|w| {
            let (stem, t) = w.name.rsplit_once("/t")?;
            if !stem.starts_with("sim_engine_par") {
                return None;
            }
            let threads: u32 = t.parse().ok()?;
            let base = report.get(&format!("{stem}/t1"))?;
            (base.wall_ns > 0 && w.wall_ns > 0).then(|| {
                (
                    w.name.clone(),
                    threads,
                    base.wall_ns as f64 / w.wall_ns as f64,
                )
            })
        })
        .collect()
}

/// Speedup of every `sim_engine_proc/…/pN` workload over its own `p1`
/// twin on the same snapshot: `(name, processes, p1_wall / pN_wall)`.
///
/// The multi-process analogue of [`par_speedups`]: derived from wall
/// times already in the report, nothing extra persisted. Rows without a
/// `p1` twin, with an unparsable process suffix, or with a zero wall
/// time are skipped; the `p1` row itself is included (speedup 1.0) so
/// tables print a complete column.
pub fn proc_speedups(report: &BenchReport) -> Vec<(String, u32, f64)> {
    report
        .workloads
        .iter()
        .filter_map(|w| {
            let (stem, p) = w.name.rsplit_once("/p")?;
            if !stem.starts_with("sim_engine_proc") {
                return None;
            }
            let processes: u32 = p.parse().ok()?;
            let base = report.get(&format!("{stem}/p1"))?;
            (base.wall_ns > 0 && w.wall_ns > 0).then(|| {
                (
                    w.name.clone(),
                    processes,
                    base.wall_ns as f64 / w.wall_ns as f64,
                )
            })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> BenchReport {
        BenchReport::new(vec![
            WorkloadResult {
                name: "sim_engine/8x3/vl4".into(),
                wall_ns: 123_456_789,
                events: 1_000_000,
                events_per_sec: 8_100_000.5,
                iters: 3,
                threads_available: 0,
                worker_rss_kb: 0,
                bridge_bytes: 0,
                phases: Vec::new(),
                sim_telemetry: None,
            },
            WorkloadResult {
                name: "lft_build/32x2/mlid".into(),
                wall_ns: 42_000,
                events: 0,
                events_per_sec: 0.0,
                iters: 5,
                threads_available: 0,
                worker_rss_kb: 0,
                bridge_bytes: 0,
                phases: Vec::new(),
                sim_telemetry: None,
            },
        ])
    }

    #[test]
    fn json_round_trips() {
        let report = sample();
        let text = report.to_json();
        let back = BenchReport::parse(&text).unwrap();
        assert_eq!(back.schema, SCHEMA_VERSION);
        assert_eq!(back.workloads.len(), 2);
        assert_eq!(back.workloads[0].name, "sim_engine/8x3/vl4");
        assert_eq!(back.workloads[0].wall_ns, 123_456_789);
        assert_eq!(back.workloads[1].events, 0);
        // Emit is canonical: a second round trip is byte-identical.
        assert_eq!(back.to_json(), text);
    }

    #[test]
    fn phases_round_trip_and_tolerate_absence() {
        let mut report = sample();
        report.workloads[0].phases = vec![
            PhaseSplit {
                name: "generation".into(),
                wall_ns: 10_000,
                events: 500,
            },
            PhaseSplit {
                name: "arbitration".into(),
                wall_ns: 90_000,
                events: 4_500,
            },
        ];
        let text = report.to_json();
        let back = BenchReport::parse(&text).unwrap();
        assert_eq!(back, report);
        assert_eq!(back.to_json(), text);
        // A pre-profiling snapshot (no "phases" key anywhere) still parses.
        let old = sample().to_json();
        assert!(!old.contains("phases"));
        assert!(BenchReport::parse(&old).unwrap().workloads[0]
            .phases
            .is_empty());
    }

    #[test]
    fn threads_available_round_trips_and_tolerates_absence() {
        let mut report = sample();
        report.workloads[0].threads_available = 4;
        let text = report.to_json();
        assert!(text.contains("\"threads_available\": 4"));
        // Host-independent rows (0) omit the key entirely.
        assert_eq!(text.matches("threads_available").count(), 1);
        let back = BenchReport::parse(&text).unwrap();
        assert_eq!(back, report);
        assert_eq!(back.to_json(), text);
        // Snapshots from before the field was recorded still parse.
        let old = sample().to_json();
        assert!(!old.contains("threads_available"));
        assert_eq!(
            BenchReport::parse(&old).unwrap().workloads[0].threads_available,
            0
        );
    }

    #[test]
    fn proc_fields_round_trip_and_tolerate_absence() {
        let mut report = sample();
        report.workloads[0].worker_rss_kb = 18_432;
        report.workloads[0].bridge_bytes = 77_000;
        let text = report.to_json();
        assert!(text.contains("\"worker_rss_kb\": 18432"));
        assert!(text.contains("\"bridge_bytes\": 77000"));
        // In-process rows (0) omit both keys entirely.
        assert_eq!(text.matches("worker_rss_kb").count(), 1);
        assert_eq!(text.matches("bridge_bytes").count(), 1);
        let back = BenchReport::parse(&text).unwrap();
        assert_eq!(back, report);
        assert_eq!(back.to_json(), text);
        // Snapshots from before the driver existed still parse.
        let old = sample().to_json();
        assert!(!old.contains("worker_rss_kb"));
        let parsed = BenchReport::parse(&old).unwrap();
        assert_eq!(parsed.workloads[0].worker_rss_kb, 0);
        assert_eq!(parsed.workloads[0].bridge_bytes, 0);
    }

    #[test]
    fn sim_telemetry_round_trips_and_tolerates_absence() {
        let mut report = sample();
        report.workloads[0].sim_telemetry = Some(SimTelemetry {
            threads: 4,
            windows: 1_234,
            barrier_wait_ns: 56_789,
            msgs: 4_321,
            edge_cut: 96,
            event_imbalance: 1.25,
        });
        let text = report.to_json();
        assert!(text.contains("\"sim_telemetry\": { \"threads\": 4,"));
        // Rows without telemetry omit the key entirely.
        assert_eq!(text.matches("sim_telemetry").count(), 1);
        let back = BenchReport::parse(&text).unwrap();
        assert_eq!(back, report);
        assert_eq!(back.to_json(), text);
        // Snapshots from before the field was recorded still parse.
        let old = sample().to_json();
        assert!(!old.contains("sim_telemetry"));
        assert!(BenchReport::parse(&old).unwrap().workloads[0]
            .sim_telemetry
            .is_none());
    }

    #[test]
    fn load_tolerates_missing_and_empty_baselines() {
        let dir = std::env::temp_dir().join("ibfat-trajectory-load-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = |name: &str| dir.join(name).to_string_lossy().into_owned();

        let missing = path("definitely-absent.json");
        let _ = std::fs::remove_file(&missing);
        assert_eq!(BenchReport::load(&missing).unwrap(), None);

        let empty = path("empty.json");
        std::fs::write(&empty, "  \n").unwrap();
        assert_eq!(BenchReport::load(&empty).unwrap(), None);

        let good = path("good.json");
        std::fs::write(&good, sample().to_json()).unwrap();
        assert_eq!(BenchReport::load(&good).unwrap(), Some(sample()));

        // Corruption is still loud: a broken baseline must not be
        // mistaken for "no baseline".
        let bad = path("bad.json");
        std::fs::write(&bad, "{ not json").unwrap();
        assert!(BenchReport::load(&bad).is_err());
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(BenchReport::parse("").is_err());
        assert!(BenchReport::parse("{}").is_err(), "missing fields");
        assert!(BenchReport::parse("{\"schema\": 1}").is_err());
        assert!(BenchReport::parse("not json").is_err());
        assert!(BenchReport::parse("{\"schema\": 1, \"workloads\": []} x").is_err());
    }

    #[test]
    fn compare_flags_only_real_regressions() {
        let base = sample();
        let mut cur = sample();
        cur.workloads[0].wall_ns = 123_456_789 * 2; // 2.0x slower
        cur.workloads[1].wall_ns = 43_000; // ~2% slower: noise
        let deltas = compare(&base, &cur).unwrap();
        assert_eq!(deltas.len(), 2);
        let slow = deltas
            .iter()
            .find(|d| d.name.contains("sim_engine"))
            .unwrap();
        assert!(slow.is_regression(0.25));
        assert!((slow.ratio - 2.0).abs() < 1e-9);
        let ok = deltas
            .iter()
            .find(|d| d.name.contains("lft_build"))
            .unwrap();
        assert!(!ok.is_regression(0.25));
    }

    #[test]
    fn par_speedups_derive_from_the_t1_twin() {
        let row = |name: &str, wall_ns: u64| WorkloadResult {
            name: name.into(),
            wall_ns,
            events: 1_000,
            events_per_sec: 1.0,
            iters: 3,
            threads_available: 0,
            worker_rss_kb: 0,
            bridge_bytes: 0,
            phases: Vec::new(),
            sim_telemetry: None,
        };
        let report = BenchReport::new(vec![
            row("sim_engine/8x3/vl4", 100), // not a par row: ignored
            row("sim_engine_par/8x3/vl4/t1", 90),
            row("sim_engine_par/8x3/vl4/t2", 45),
            row("sim_engine_par/8x3/vl4/t4", 60),
            row("sim_engine_par/4x2/vl1/t2", 10), // no t1 twin: skipped
        ]);
        let speedups = par_speedups(&report);
        assert_eq!(speedups.len(), 3);
        assert_eq!(speedups[0], ("sim_engine_par/8x3/vl4/t1".into(), 1, 1.0));
        assert_eq!(speedups[1], ("sim_engine_par/8x3/vl4/t2".into(), 2, 2.0));
        assert_eq!(speedups[2].1, 4);
        assert!((speedups[2].2 - 1.5).abs() < 1e-9);
    }

    #[test]
    fn proc_speedups_derive_from_the_p1_twin() {
        let row = |name: &str, wall_ns: u64| WorkloadResult {
            name: name.into(),
            wall_ns,
            events: 1_000,
            events_per_sec: 1.0,
            iters: 3,
            threads_available: 0,
            worker_rss_kb: 0,
            bridge_bytes: 0,
            phases: Vec::new(),
            sim_telemetry: None,
        };
        let report = BenchReport::new(vec![
            row("sim_engine_par/8x3/vl4/t2", 45), // thread row: ignored here
            row("sim_engine_proc/8x3/vl4/p1", 120),
            row("sim_engine_proc/8x3/vl4/p2", 60),
            row("sim_engine_proc/8x3/vl4/p4", 80),
            row("sim_engine_proc/16x3/vl1/p2", 10), // no p1 twin: skipped
        ]);
        let speedups = proc_speedups(&report);
        assert_eq!(speedups.len(), 3);
        assert_eq!(speedups[0], ("sim_engine_proc/8x3/vl4/p1".into(), 1, 1.0));
        assert_eq!(speedups[1], ("sim_engine_proc/8x3/vl4/p2".into(), 2, 2.0));
        assert_eq!(speedups[2].1, 4);
        assert!((speedups[2].2 - 1.5).abs() < 1e-9);
    }

    #[test]
    fn compare_ignores_unmatched_names_and_checks_schema() {
        let base = sample();
        let mut cur = sample();
        cur.workloads[0].name = "renamed".into();
        assert_eq!(compare(&base, &cur).unwrap().len(), 1);
        cur.schema = SCHEMA_VERSION + 1;
        assert!(compare(&base, &cur).is_err());
    }
}
