/root/repo/target/debug/deps/ibfat_sim-948f2338d2bdebea.d: crates/sim/src/lib.rs crates/sim/src/bounds.rs crates/sim/src/config.rs crates/sim/src/engine.rs crates/sim/src/metrics.rs crates/sim/src/packet.rs crates/sim/src/runner.rs crates/sim/src/sim.rs crates/sim/src/trace.rs crates/sim/src/traffic.rs crates/sim/src/vlarb.rs Cargo.toml

/root/repo/target/debug/deps/libibfat_sim-948f2338d2bdebea.rmeta: crates/sim/src/lib.rs crates/sim/src/bounds.rs crates/sim/src/config.rs crates/sim/src/engine.rs crates/sim/src/metrics.rs crates/sim/src/packet.rs crates/sim/src/runner.rs crates/sim/src/sim.rs crates/sim/src/trace.rs crates/sim/src/traffic.rs crates/sim/src/vlarb.rs Cargo.toml

crates/sim/src/lib.rs:
crates/sim/src/bounds.rs:
crates/sim/src/config.rs:
crates/sim/src/engine.rs:
crates/sim/src/metrics.rs:
crates/sim/src/packet.rs:
crates/sim/src/runner.rs:
crates/sim/src/sim.rs:
crates/sim/src/trace.rs:
crates/sim/src/traffic.rs:
crates/sim/src/vlarb.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
