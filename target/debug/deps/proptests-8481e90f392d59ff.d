/root/repo/target/debug/deps/proptests-8481e90f392d59ff.d: crates/routing/tests/proptests.rs

/root/repo/target/debug/deps/libproptests-8481e90f392d59ff.rmeta: crates/routing/tests/proptests.rs

crates/routing/tests/proptests.rs:
