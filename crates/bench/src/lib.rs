//! Shared experiment harness for regenerating the paper's table and
//! figures. The binaries (`table1`, `figures`, `ablation`) and the
//! criterion benches all build on this.

pub mod trajectory;

use ib_fabric::prelude::*;
use serde::Serialize;

/// The four evaluated network sizes (Table 1). The OCR of the paper lost
//  the digits; DESIGN.md §3 explains the reconstruction: two small-radix
/// and two large-radix configurations, matching the observations'
/// "not large (·-port or ·-port)" vs "large (·-port or ·-port)" split.
pub const EVAL_CONFIGS: [(u32, u32); 4] = [(4, 3), (8, 3), (16, 2), (32, 2)];

/// Virtual-lane counts the paper sweeps.
pub const EVAL_VLS: [u8; 3] = [1, 2, 4];

/// Default offered-load grid, from low load to saturation.
pub fn default_loads() -> Vec<f64> {
    vec![0.05, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0]
}

/// A load grid adapted to the traffic pattern on a given network size.
///
/// Uniform and permutation patterns use [`default_loads`]. For a hot-spot
/// pattern the interesting region is around the load where the aggregate
/// hot traffic reaches the destination link's capacity,
/// `load* = 1 / (num_nodes * fraction)`; on large networks that is far
/// below the uniform grid (every point of which would sit in deep
/// collapse), so the grid is laid out geometrically around `load*`.
pub fn loads_for(pattern: &TrafficPattern, num_nodes: u32) -> Vec<f64> {
    match pattern {
        TrafficPattern::Centric { fraction, .. } => {
            let knee = 1.0 / (f64::from(num_nodes) * fraction);
            let mut loads: Vec<f64> = [0.25, 0.5, 0.75, 1.0, 1.25, 1.5, 2.0, 3.0, 5.0, 8.0]
                .iter()
                .map(|&k| (k * knee).min(1.0))
                .collect();
            loads.dedup_by(|a, b| (*a - *b).abs() < 1e-12);
            loads
        }
        _ => default_loads(),
    }
}

/// One curve of a figure: a scheme at a VL count swept over offered load.
#[derive(Debug, Clone, Serialize)]
pub struct Series {
    /// Scheme name ("SLID" / "MLID").
    pub scheme: String,
    /// Virtual lanes.
    pub vls: u8,
    /// Points in load order.
    pub points: Vec<Point>,
}

/// One operating point of a curve.
#[derive(Debug, Clone, Serialize)]
pub struct Point {
    /// Normalized offered load.
    pub offered_load: f64,
    /// Accepted traffic, bytes/ns per node (the figures' x-axis).
    pub accepted: f64,
    /// Average message latency, ns (the figures' y-axis).
    pub avg_latency_ns: f64,
    /// 99th-percentile latency, ns (extension).
    pub p99_latency_ns: u64,
    /// Packets delivered in the measurement window.
    pub delivered: u64,
}

impl Point {
    fn from_report(r: &SimReport) -> Point {
        Point {
            offered_load: r.offered_load,
            accepted: r.accepted_bytes_per_ns_per_node,
            avg_latency_ns: r.avg_latency_ns(),
            p99_latency_ns: r.latency.quantile(0.99),
            delivered: r.delivered,
        }
    }
}

/// A whole figure: all six curves for one (network size, traffic pattern).
#[derive(Debug, Clone, Serialize)]
pub struct Figure {
    /// Switch ports.
    pub m: u32,
    /// Tree levels.
    pub n: u32,
    /// Pattern name ("uniform" / "centric50").
    pub pattern: String,
    /// The curves: {SLID, MLID} × {1, 2, 4} VLs.
    pub series: Vec<Series>,
}

/// Run every curve of one figure.
///
/// `sim_time_ns` trades accuracy for wall time; 200 µs with a 20% warm-up
/// reproduces the paper's shapes well on every evaluated size.
pub fn run_figure(
    m: u32,
    n: u32,
    pattern: &TrafficPattern,
    loads: &[f64],
    sim_time_ns: u64,
    vls: &[u8],
) -> Figure {
    let mut series = Vec::new();
    for kind in [RoutingKind::Slid, RoutingKind::Mlid] {
        let fabric = Fabric::builder(m, n)
            .routing(kind)
            .build()
            .expect("evaluated configs are valid");
        for &vl in vls {
            let reports = fabric
                .experiment()
                .virtual_lanes(vl)
                .traffic(pattern.clone())
                .duration_ns(sim_time_ns)
                .run_sweep(loads);
            series.push(Series {
                scheme: kind.as_str().to_uppercase(),
                vls: vl,
                points: reports.iter().map(Point::from_report).collect(),
            });
        }
    }
    Figure {
        m,
        n,
        pattern: pattern.name(),
        series,
    }
}

/// One row of Table 1 (network sizes).
#[derive(Debug, Clone, Serialize)]
pub struct Table1Row {
    /// Switch ports.
    pub m: u32,
    /// Tree levels.
    pub n: u32,
    /// Processing nodes, `2 (m/2)^n`.
    pub nodes: u32,
    /// Switches, `(2n-1)(m/2)^(n-1)`.
    pub switches: u32,
    /// Links (node links + inter-switch links).
    pub links: usize,
    /// LMC under the MLID scheme.
    pub lmc: u32,
    /// LIDs per node, `2^LMC`.
    pub lids_per_node: u32,
    /// Paths between maximally distant nodes.
    pub max_paths: u32,
}

/// Compute Table 1.
pub fn table1() -> Vec<Table1Row> {
    EVAL_CONFIGS
        .iter()
        .map(|&(m, n)| {
            let params = TreeParams::new(m, n).expect("valid");
            let net = Network::mport_ntree(params);
            Table1Row {
                m,
                n,
                nodes: params.num_nodes(),
                switches: params.num_switches(),
                links: net.links().len(),
                lmc: params.lmc(),
                lids_per_node: params.lids_per_node(),
                max_paths: params.num_lcas(0),
            }
        })
        .collect()
}

/// Render a figure's curves as an aligned text table, one block per curve
/// — the same rows the paper plots.
pub fn render_figure_text(fig: &Figure) -> String {
    use std::fmt::Write;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "# {}-port {}-tree, {} traffic, 256-byte packets",
        fig.m, fig.n, fig.pattern
    );
    for s in &fig.series {
        let _ = writeln!(out, "\n## {} VL{}", s.scheme, s.vls);
        let _ = writeln!(
            out,
            "{:>8} {:>18} {:>16} {:>12}",
            "offered", "accepted(B/ns/nd)", "avg-lat(ns)", "p99(ns)"
        );
        for p in &s.points {
            let _ = writeln!(
                out,
                "{:>8.2} {:>18.4} {:>16.1} {:>12}",
                p.offered_load, p.accepted, p.avg_latency_ns, p.p99_latency_ns
            );
        }
    }
    out
}

/// Write a figure as CSV (long format: one row per point).
pub fn figure_to_csv(fig: &Figure) -> String {
    let mut out = String::from(
        "m,n,pattern,scheme,vls,offered,accepted,avg_latency_ns,p99_latency_ns,delivered\n",
    );
    for s in &fig.series {
        for p in &s.points {
            out.push_str(&format!(
                "{},{},{},{},{},{},{},{},{},{}\n",
                fig.m,
                fig.n,
                fig.pattern,
                s.scheme,
                s.vls,
                p.offered_load,
                p.accepted,
                p.avg_latency_ns,
                p.p99_latency_ns,
                p.delivered
            ));
        }
    }
    out
}

/// Saturation throughput of a curve: the maximum accepted traffic over the
/// sweep (bytes/ns per node).
pub fn saturation(series: &Series) -> f64 {
    series.points.iter().map(|p| p.accepted).fold(0.0, f64::max)
}

/// Find a curve by scheme and VL count.
pub fn find_series<'a>(fig: &'a Figure, scheme: &str, vls: u8) -> Option<&'a Series> {
    fig.series
        .iter()
        .find(|s| s.scheme.eq_ignore_ascii_case(scheme) && s.vls == vls)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_matches_closed_forms() {
        let rows = table1();
        assert_eq!(rows.len(), 4);
        let by = |m: u32, n: u32| rows.iter().find(|r| r.m == m && r.n == n).unwrap();
        assert_eq!(by(4, 3).nodes, 16);
        assert_eq!(by(4, 3).switches, 20);
        assert_eq!(by(8, 3).nodes, 128);
        assert_eq!(by(8, 3).switches, 80);
        assert_eq!(by(16, 2).nodes, 128);
        assert_eq!(by(16, 2).switches, 24);
        assert_eq!(by(32, 2).nodes, 512);
        assert_eq!(by(32, 2).switches, 48);
        for r in &rows {
            assert_eq!(r.lids_per_node, 1 << r.lmc);
            assert_eq!(r.max_paths, r.lids_per_node);
        }
    }

    #[test]
    fn small_figure_runs_and_orders_schemes_under_hotspot() {
        let fig = run_figure(
            4,
            3,
            &TrafficPattern::paper_centric(),
            &[0.3, 0.8],
            120_000,
            &[1],
        );
        assert_eq!(fig.series.len(), 2);
        let slid = find_series(&fig, "SLID", 1).unwrap();
        let mlid = find_series(&fig, "MLID", 1).unwrap();
        assert!(saturation(mlid) > saturation(slid));
        let text = render_figure_text(&fig);
        assert!(text.contains("MLID VL1"));
        let csv = figure_to_csv(&fig);
        assert_eq!(csv.lines().count(), 1 + 2 * 2);
    }
}

/// Render a figure as an ASCII scatter plot — accepted traffic on the
/// x-axis, average latency (log scale) on the y-axis, one glyph per curve
/// — mirroring how the paper presents Figures 12–19.
pub fn render_figure_plot(fig: &Figure, width: usize, height: usize) -> String {
    use std::fmt::Write;
    const GLYPHS: [char; 6] = ['s', 'S', '$', 'm', 'M', 'W'];
    let mut grid = vec![vec![' '; width]; height];

    let points: Vec<(usize, f64, f64)> = fig
        .series
        .iter()
        .enumerate()
        .flat_map(|(si, s)| {
            s.points
                .iter()
                .filter(|p| p.avg_latency_ns > 0.0)
                .map(move |p| (si, p.accepted, p.avg_latency_ns))
        })
        .collect();
    if points.is_empty() {
        return "(no data)\n".into();
    }
    let x_max = points.iter().map(|&(_, x, _)| x).fold(0.0, f64::max) * 1.05;
    let (y_min, y_max) = points
        .iter()
        .fold((f64::MAX, 0.0f64), |(lo, hi), &(_, _, y)| {
            (lo.min(y), hi.max(y))
        });
    let (ly_min, ly_max) = (y_min.ln(), (y_max * 1.1).ln());
    let y_span = (ly_max - ly_min).max(1e-9);

    for &(si, x, y) in &points {
        let col = ((x / x_max) * (width - 1) as f64).round() as usize;
        let row = (((y.ln() - ly_min) / y_span) * (height - 1) as f64).round() as usize;
        let row = height - 1 - row.min(height - 1);
        grid[row][col.min(width - 1)] = GLYPHS[si % GLYPHS.len()];
    }

    let mut out = String::new();
    let _ = writeln!(
        out,
        "avg latency (log, {:.0}..{:.0} ns) vs accepted traffic (0..{x_max:.3} B/ns/node)",
        y_min, y_max
    );
    for row in &grid {
        let _ = writeln!(out, "|{}", row.iter().collect::<String>());
    }
    let _ = writeln!(out, "+{}", "-".repeat(width));
    for (si, s) in fig.series.iter().enumerate() {
        let _ = write!(
            out,
            "  {} = {} VL{}",
            GLYPHS[si % GLYPHS.len()],
            s.scheme,
            s.vls
        );
    }
    out.push('\n');
    out
}

#[cfg(test)]
mod plot_tests {
    use super::*;

    fn tiny_figure() -> Figure {
        Figure {
            m: 4,
            n: 2,
            pattern: "uniform".into(),
            series: vec![Series {
                scheme: "MLID".into(),
                vls: 1,
                points: vec![
                    Point {
                        offered_load: 0.1,
                        accepted: 0.1,
                        avg_latency_ns: 700.0,
                        p99_latency_ns: 1024,
                        delivered: 10,
                    },
                    Point {
                        offered_load: 0.9,
                        accepted: 0.42,
                        avg_latency_ns: 90_000.0,
                        p99_latency_ns: 1 << 17,
                        delivered: 40,
                    },
                ],
            }],
        }
    }

    #[test]
    fn plot_renders_points_and_legend() {
        let text = render_figure_plot(&tiny_figure(), 40, 10);
        assert!(text.contains("s = MLID VL1"));
        assert!(text.matches('s').count() >= 2, "{text}");
        assert_eq!(text.lines().filter(|l| l.starts_with('|')).count(), 10);
    }

    #[test]
    fn empty_figure_is_handled() {
        let mut fig = tiny_figure();
        fig.series[0].points.clear();
        assert_eq!(render_figure_plot(&fig, 40, 10), "(no data)\n");
    }
}
