/root/repo/target/release/deps/serde-b78729b0d0241e85.d: /root/stubdeps/serde/src/lib.rs

/root/repo/target/release/deps/libserde-b78729b0d0241e85.rlib: /root/stubdeps/serde/src/lib.rs

/root/repo/target/release/deps/libserde-b78729b0d0241e85.rmeta: /root/stubdeps/serde/src/lib.rs

/root/stubdeps/serde/src/lib.rs:
