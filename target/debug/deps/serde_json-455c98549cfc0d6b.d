/root/repo/target/debug/deps/serde_json-455c98549cfc0d6b.d: /root/stubdeps/serde_json/src/lib.rs

/root/repo/target/debug/deps/libserde_json-455c98549cfc0d6b.rlib: /root/stubdeps/serde_json/src/lib.rs

/root/repo/target/debug/deps/libserde_json-455c98549cfc0d6b.rmeta: /root/stubdeps/serde_json/src/lib.rs

/root/stubdeps/serde_json/src/lib.rs:
