/root/repo/target/debug/deps/sim_behavior-00a2f6742780b87f.d: crates/sim/tests/sim_behavior.rs

/root/repo/target/debug/deps/libsim_behavior-00a2f6742780b87f.rmeta: crates/sim/tests/sim_behavior.rs

crates/sim/tests/sim_behavior.rs:
