/root/repo/target/debug/deps/dbg_persist-204e562c800f3519.d: crates/core/tests/dbg_persist.rs

/root/repo/target/debug/deps/dbg_persist-204e562c800f3519: crates/core/tests/dbg_persist.rs

crates/core/tests/dbg_persist.rs:
