//! IB-style fabric counters and sampled time-series.
//!
//! [`FabricCounters`] is the standard consumer of the [`Probe`] hooks: it
//! maintains per-switch/per-port/per-VL counters modeled on InfiniBand's
//! PortCounters attribute —
//!
//! * `xmit_bytes`/`xmit_pkts`, `rcv_bytes`/`rcv_pkts` (PortXmitData /
//!   PortRcvData, in bytes rather than 32-bit words),
//! * `xmit_wait_ns` — time a routed packet sat at an input with the
//!   output buffer full, accounted to the *output* port it waited for
//!   (the spirit of PortXmitWait, in ns rather than ticks),
//! * `credit_stall_ns` — time an output head was ready but un-granted for
//!   lack of downstream credits, measured between arbitration instants,
//! * input/output buffer high-water marks —
//!
//! plus an optional sampled time-series: every `sample_interval_ns` of
//! simulated time it snapshots accepted throughput, in-flight packets,
//! event rate, interval latency percentiles, and the top-k hottest ports
//! into a bounded ring buffer. Everything exports to JSON (hand-rolled,
//! `std`-only) alongside the `SimReport`.
//!
//! All counters are totals over the *whole* run (warm-up included):
//! they model hardware registers, which know nothing of measurement
//! windows. Time-series samples carry their own timestamps, so a warm-up
//! cut can be applied downstream.

use crate::engine::Time;
use crate::json::JsonBuf;
use crate::metrics::LatencyStats;
use crate::probe::{ParProbe, Probe};
use ibfat_topology::Network;
use std::collections::VecDeque;

/// Schema tag on the counters JSON export.
pub const COUNTERS_SCHEMA_VERSION: u32 = 1;

/// Counters for one (switch, port, VL) — or an aggregate over VLs.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PortVlCounters {
    /// Bytes transmitted out of this port.
    pub xmit_bytes: u64,
    /// Packets transmitted out of this port.
    pub xmit_pkts: u64,
    /// Bytes received into this port's input buffers.
    pub rcv_bytes: u64,
    /// Packets received into this port's input buffers.
    pub rcv_pkts: u64,
    /// Time packets spent routed-but-blocked waiting for *this* output
    /// port's buffer (IB PortXmitWait analogue, ns).
    pub xmit_wait_ns: u64,
    /// Time this output had a head ready but zero downstream credits,
    /// observed between arbitration instants (ns).
    pub credit_stall_ns: u64,
    /// Input-buffer occupancy high-water mark (packets).
    pub in_buf_high_water: u8,
    /// Output-buffer occupancy high-water mark (packets).
    pub out_buf_high_water: u8,
}

impl PortVlCounters {
    fn absorb(&mut self, o: &PortVlCounters) {
        self.xmit_bytes += o.xmit_bytes;
        self.xmit_pkts += o.xmit_pkts;
        self.rcv_bytes += o.rcv_bytes;
        self.rcv_pkts += o.rcv_pkts;
        self.xmit_wait_ns += o.xmit_wait_ns;
        self.credit_stall_ns += o.credit_stall_ns;
        self.in_buf_high_water = self.in_buf_high_water.max(o.in_buf_high_water);
        self.out_buf_high_water = self.out_buf_high_water.max(o.out_buf_high_water);
    }
}

/// Injection/delivery counters for one end node.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NodeCounters {
    pub xmit_bytes: u64,
    pub xmit_pkts: u64,
    pub rcv_bytes: u64,
    pub rcv_pkts: u64,
}

/// One entry of a sample's top-k hottest-ports list.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HotPort {
    pub sw: u32,
    /// IB 1-based port number.
    pub port: u8,
    /// Bytes transmitted (delta within the sample interval for
    /// time-series entries; cumulative for [`FabricCounters::hottest_ports`]).
    pub xmit_bytes: u64,
}

/// One time-series snapshot. Interval quantities cover the span since the
/// previous sample.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Sample {
    /// Simulated time of the snapshot (ns).
    pub t_ns: Time,
    /// Packets delivered in the interval.
    pub delivered_pkts: u64,
    /// Bytes delivered in the interval.
    pub delivered_bytes: u64,
    /// Live packets (source queues included) at the snapshot instant.
    pub in_flight: u64,
    /// Events dispatched in the interval.
    pub events: u64,
    /// p50/p95/p99 of delivery latency within the interval (ns; zero when
    /// nothing was delivered).
    pub latency_p50_ns: u64,
    pub latency_p95_ns: u64,
    pub latency_p99_ns: u64,
    /// The interval's hottest switch ports by transmitted bytes.
    pub top_ports: Vec<HotPort>,
}

/// IB-style fabric counters plus an optional sampled time-series; plugs
/// into the simulator as a [`Probe`].
///
/// ```
/// use ibfat_topology::{Network, TreeParams};
/// use ibfat_routing::{Routing, RoutingKind};
/// use ibfat_sim::{FabricCounters, SimConfig, Simulator, TrafficPattern};
///
/// let net = Network::mport_ntree(TreeParams::new(4, 2).unwrap());
/// let routing = Routing::build(&net, RoutingKind::Mlid);
/// let cfg = SimConfig::paper(1);
/// let probe = FabricCounters::new(&net, cfg.num_vls).with_sampling(10_000, 4);
/// let sim = Simulator::with_probe(
///     &net, &routing, cfg, TrafficPattern::Uniform, 0.2, 100_000, 0, probe,
/// );
/// let (report, counters) = sim.run_observed();
/// assert_eq!(counters.node_totals().xmit_pkts, report.total_generated);
/// ```
#[derive(Debug, Clone)]
pub struct FabricCounters {
    num_switches: usize,
    ports_per_switch: usize,
    num_vls: usize,

    /// Flat `[(sw * ports + port) * num_vls + vl]` counter store.
    per_vl: Vec<PortVlCounters>,
    nodes: Vec<NodeCounters>,
    /// Unroutable-packet discards per switch.
    drops: Vec<u64>,

    /// Open xmit-wait intervals, keyed like `per_vl` by the *waiting
    /// input* `(sw, in_port, vl)` (`Time::MAX` = none open; at most one
    /// routed head can wait per input VL).
    wait_start: Vec<Time>,
    /// The output port each open wait is charged to.
    wait_out: Vec<u8>,
    /// Open credit-stall intervals, keyed by the stalled *output*
    /// `(sw, port, vl)` (`Time::MAX` = none open).
    stall_start: Vec<Time>,

    // --- time-series ---
    /// Sampling period in simulated ns; 0 disables the time-series.
    sample_interval_ns: u64,
    /// Ring capacity; the oldest sample is dropped beyond this.
    max_samples: usize,
    /// Hottest-ports list length per sample.
    top_k: usize,
    next_sample: Time,
    samples: VecDeque<Sample>,
    samples_dropped: u64,
    interval_delivered_pkts: u64,
    interval_delivered_bytes: u64,
    interval_events: u64,
    interval_latency: LatencyStats,
    /// Cumulative per-port (VL-summed) transmitted bytes, for top-k deltas.
    port_xmit_bytes: Vec<u64>,
    /// `port_xmit_bytes` as of the previous sample.
    last_port_xmit: Vec<u64>,
    /// Most recent in-flight count seen by `tick` (for the final sample).
    last_in_flight: u64,

    // --- streaming congestion signals (see `CongestionView`) ---
    /// EWMA smoothing factor in `(0, 1]`; 0 disables the stream.
    ewma_alpha: f64,
    /// Serialization time per byte (ns), converting interval bytes to
    /// link utilization.
    byte_time_ns: u64,
    /// Per-port EWMA of interval link utilization in `[0, 1]`.
    ewma_util: Vec<f64>,
    /// Per-port EWMA of the credit-stalled fraction of each interval.
    ewma_stall: Vec<f64>,
    /// Cumulative per-port (VL-summed) credit-stall ns, for deltas.
    port_stall_ns: Vec<u64>,
    /// `port_stall_ns` as of the previous sample.
    last_port_stall: Vec<u64>,
    /// Simulated time of the previous sample flush.
    last_sample_t: Time,

    end_time: Time,
}

impl FabricCounters {
    /// Counters sized for `net`, time-series disabled.
    pub fn new(net: &Network, num_vls: u8) -> FabricCounters {
        let num_switches = net.num_switches();
        let ports = net.params().m() as usize;
        let num_vls = num_vls as usize;
        let cells = num_switches * ports * num_vls;
        FabricCounters {
            num_switches,
            ports_per_switch: ports,
            num_vls,
            per_vl: vec![PortVlCounters::default(); cells],
            nodes: vec![NodeCounters::default(); net.num_nodes()],
            drops: vec![0; num_switches],
            wait_start: vec![Time::MAX; cells],
            wait_out: vec![0; cells],
            stall_start: vec![Time::MAX; cells],
            sample_interval_ns: 0,
            max_samples: 4096,
            top_k: 4,
            next_sample: Time::MAX,
            samples: VecDeque::new(),
            samples_dropped: 0,
            interval_delivered_pkts: 0,
            interval_delivered_bytes: 0,
            interval_events: 0,
            interval_latency: LatencyStats::new(),
            port_xmit_bytes: vec![0; num_switches * ports],
            last_port_xmit: vec![0; num_switches * ports],
            last_in_flight: 0,
            ewma_alpha: 0.0,
            byte_time_ns: 0,
            ewma_util: vec![0.0; num_switches * ports],
            ewma_stall: vec![0.0; num_switches * ports],
            port_stall_ns: vec![0; num_switches * ports],
            last_port_stall: vec![0; num_switches * ports],
            last_sample_t: 0,
            end_time: 0,
        }
    }

    /// Enable the time-series: snapshot every `interval_ns` of simulated
    /// time, listing the `top_k` hottest ports per sample.
    ///
    /// # Panics
    /// Panics if `interval_ns` is zero.
    pub fn with_sampling(mut self, interval_ns: u64, top_k: usize) -> FabricCounters {
        assert!(interval_ns > 0, "sample interval must be positive");
        self.sample_interval_ns = interval_ns;
        self.top_k = top_k;
        self.next_sample = interval_ns;
        self
    }

    /// Bound the sample ring (default 4096); the oldest samples are
    /// dropped beyond this and counted in
    /// [`samples_dropped`](FabricCounters::samples_dropped).
    pub fn with_sample_capacity(mut self, cap: usize) -> FabricCounters {
        self.max_samples = cap.max(1);
        self
    }

    /// Enable streaming congestion signals: per-port EWMAs of link
    /// utilization and credit-stall rate, updated incrementally at each
    /// sample flush and read through [`congestion`](Self::congestion).
    /// `alpha` in `(0, 1]` weights the newest interval; `byte_time_ns`
    /// is the link's serialization time per byte (see
    /// `SimConfig::byte_time_ns`), converting interval bytes to
    /// utilization.
    ///
    /// # Panics
    /// Panics unless [`with_sampling`](Self::with_sampling) was enabled
    /// first (the EWMAs ride the sampling clock), or on an out-of-range
    /// `alpha`, or a zero `byte_time_ns`.
    pub fn with_congestion(mut self, alpha: f64, byte_time_ns: u64) -> FabricCounters {
        assert!(
            self.sample_interval_ns > 0,
            "congestion signals ride the sampling clock: call with_sampling first"
        );
        assert!(alpha > 0.0 && alpha <= 1.0, "EWMA alpha must be in (0, 1]");
        assert!(byte_time_ns > 0, "byte time must be positive");
        self.ewma_alpha = alpha;
        self.byte_time_ns = byte_time_ns;
        self
    }

    #[inline]
    fn cell(&self, sw: u32, port: u8, vl: u8) -> usize {
        debug_assert!((port as usize) < self.ports_per_switch && (vl as usize) < self.num_vls);
        (sw as usize * self.ports_per_switch + port as usize) * self.num_vls + vl as usize
    }

    #[inline]
    fn pcell(&self, sw: u32, port: u8) -> usize {
        sw as usize * self.ports_per_switch + port as usize
    }

    // ----- accessors ----------------------------------------------------

    pub fn num_switches(&self) -> usize {
        self.num_switches
    }

    pub fn ports_per_switch(&self) -> usize {
        self.ports_per_switch
    }

    pub fn num_vls(&self) -> usize {
        self.num_vls
    }

    /// Simulated end time recorded by [`finish`](Probe::finish).
    pub fn end_time_ns(&self) -> Time {
        self.end_time
    }

    /// Counters of one (switch, 0-based port, VL).
    pub fn port_vl(&self, sw: u32, port: u8, vl: u8) -> &PortVlCounters {
        &self.per_vl[self.cell(sw, port, vl)]
    }

    /// VL-aggregated counters of one (switch, 0-based port).
    pub fn port(&self, sw: u32, port: u8) -> PortVlCounters {
        let mut out = PortVlCounters::default();
        for vl in 0..self.num_vls {
            out.absorb(&self.per_vl[self.cell(sw, port, vl as u8)]);
        }
        out
    }

    /// Counters of one end node.
    pub fn node(&self, node: u32) -> &NodeCounters {
        &self.nodes[node as usize]
    }

    /// Unroutable-packet discards at one switch.
    pub fn drops(&self, sw: u32) -> u64 {
        self.drops[sw as usize]
    }

    /// Fabric-wide totals over all switch ports.
    pub fn switch_totals(&self) -> PortVlCounters {
        let mut out = PortVlCounters::default();
        for c in &self.per_vl {
            out.absorb(c);
        }
        out
    }

    /// Fabric-wide totals over all end nodes.
    pub fn node_totals(&self) -> NodeCounters {
        let mut out = NodeCounters::default();
        for n in &self.nodes {
            out.xmit_bytes += n.xmit_bytes;
            out.xmit_pkts += n.xmit_pkts;
            out.rcv_bytes += n.rcv_bytes;
            out.rcv_pkts += n.rcv_pkts;
        }
        out
    }

    /// Total discards over all switches.
    pub fn total_drops(&self) -> u64 {
        self.drops.iter().sum()
    }

    /// The `k` switch ports with the most transmitted bytes over the run,
    /// descending; ties break toward the lower `(sw, port)` so the order
    /// is deterministic. Idle ports are never listed.
    pub fn hottest_ports(&self, k: usize) -> Vec<HotPort> {
        self.top_by(k, |i| self.port_xmit_bytes[i])
    }

    /// The `k` switch ports with the most `xmit_wait_ns` — where routed
    /// packets queued for the longest. This is the congestion signal: on
    /// a hot-spot workload these are the saturated root/up ports. The
    /// returned `xmit_bytes` field carries the wait time (ns).
    pub fn most_congested_ports(&self, k: usize) -> Vec<HotPort> {
        self.top_by(k, |i| {
            let base = i * self.num_vls;
            self.per_vl[base..base + self.num_vls]
                .iter()
                .map(|c| c.xmit_wait_ns)
                .sum()
        })
    }

    fn top_by(&self, k: usize, metric: impl Fn(usize) -> u64) -> Vec<HotPort> {
        let mut ranked: Vec<(u64, usize)> = (0..self.num_switches * self.ports_per_switch)
            .filter_map(|i| {
                let m = metric(i);
                (m > 0).then_some((m, i))
            })
            .collect();
        ranked.sort_unstable_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)));
        ranked.truncate(k);
        ranked
            .into_iter()
            .map(|(m, i)| HotPort {
                sw: (i / self.ports_per_switch) as u32,
                port: (i % self.ports_per_switch) as u8 + 1,
                xmit_bytes: m,
            })
            .collect()
    }

    /// The recorded time-series (empty unless sampling was enabled).
    pub fn samples(&self) -> &VecDeque<Sample> {
        &self.samples
    }

    /// Samples evicted from the ring because it was full.
    pub fn samples_dropped(&self) -> u64 {
        self.samples_dropped
    }

    pub fn sample_interval_ns(&self) -> u64 {
        self.sample_interval_ns
    }

    // ----- sampling internals -------------------------------------------

    fn flush_sample(&mut self, now: Time, in_flight: u64) {
        let mut deltas: Vec<(u64, usize)> = self
            .port_xmit_bytes
            .iter()
            .zip(&self.last_port_xmit)
            .enumerate()
            .filter_map(|(i, (cur, last))| {
                let d = cur - last;
                (d > 0).then_some((d, i))
            })
            .collect();
        deltas.sort_unstable_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)));
        deltas.truncate(self.top_k);
        let top_ports = deltas
            .into_iter()
            .map(|(d, i)| HotPort {
                sw: (i / self.ports_per_switch) as u32,
                port: (i % self.ports_per_switch) as u8 + 1,
                xmit_bytes: d,
            })
            .collect();
        let p = self.interval_latency.percentiles();
        if self.samples.len() == self.max_samples {
            self.samples.pop_front();
            self.samples_dropped += 1;
        }
        self.samples.push_back(Sample {
            t_ns: now,
            delivered_pkts: self.interval_delivered_pkts,
            delivered_bytes: self.interval_delivered_bytes,
            in_flight,
            events: self.interval_events,
            latency_p50_ns: p.p50,
            latency_p95_ns: p.p95,
            latency_p99_ns: p.p99,
            top_ports,
        });
        // Streaming congestion EWMAs: decay every port by the interval's
        // observation before the xmit snapshot below overwrites the
        // deltas. A stall interval still open at the flush contributes
        // when it closes (clamped to 1.0), so long stalls register late
        // but are never lost.
        if self.ewma_alpha > 0.0 {
            let span = now.saturating_sub(self.last_sample_t).max(1) as f64;
            let a = self.ewma_alpha;
            let byte_ns = self.byte_time_ns as f64;
            for i in 0..self.port_xmit_bytes.len() {
                let bytes = (self.port_xmit_bytes[i] - self.last_port_xmit[i]) as f64;
                let util = (bytes * byte_ns / span).min(1.0);
                self.ewma_util[i] = a * util + (1.0 - a) * self.ewma_util[i];
                let stall =
                    ((self.port_stall_ns[i] - self.last_port_stall[i]) as f64 / span).min(1.0);
                self.ewma_stall[i] = a * stall + (1.0 - a) * self.ewma_stall[i];
            }
            self.last_port_stall.copy_from_slice(&self.port_stall_ns);
        }
        self.interval_delivered_pkts = 0;
        self.interval_delivered_bytes = 0;
        self.interval_events = 0;
        self.interval_latency = LatencyStats::new();
        self.last_port_xmit.copy_from_slice(&self.port_xmit_bytes);
        self.last_sample_t = now;
        // Re-align to the grid; a quiet stretch yields one late sample
        // covering the whole gap, not a burst of empty ones.
        self.next_sample = (now / self.sample_interval_ns + 1) * self.sample_interval_ns;
    }

    /// Streaming congestion signals over this probe's EWMAs (empty
    /// unless [`with_congestion`](Self::with_congestion) was enabled).
    pub fn congestion(&self) -> CongestionView<'_> {
        CongestionView { c: self }
    }

    // ----- JSON export --------------------------------------------------

    /// Serialize everything to JSON (via the shared [`crate::json`]
    /// writer; schema documented in EXPERIMENTS.md § Observability).
    /// Per-VL breakdowns are included only when more than one VL is in
    /// use; the `congestion` array only when the EWMA stream is enabled.
    pub fn to_json(&self) -> String {
        let mut j = JsonBuf::with_capacity(4096);
        j.begin_obj();
        j.field_u64("schema", u64::from(COUNTERS_SCHEMA_VERSION));
        j.field_u64("end_time_ns", self.end_time);
        j.field_u64("num_vls", self.num_vls as u64);
        j.field_u64("sample_interval_ns", self.sample_interval_ns);
        j.field_u64("samples_dropped", self.samples_dropped);

        j.key("switches");
        j.begin_arr();
        for sw in 0..self.num_switches as u32 {
            j.begin_obj();
            j.field_u64("sw", u64::from(sw));
            j.field_u64("drops", self.drops(sw));
            j.key("ports");
            j.begin_arr();
            for port in 0..self.ports_per_switch as u8 {
                j.begin_obj();
                j.field_u64("port", u64::from(port) + 1);
                write_counter_fields(&mut j, &self.port(sw, port));
                if self.num_vls > 1 {
                    j.key("vls");
                    j.begin_arr();
                    for vl in 0..self.num_vls as u8 {
                        j.begin_obj();
                        j.field_u64("vl", u64::from(vl));
                        write_counter_fields(&mut j, self.port_vl(sw, port, vl));
                        j.end_obj();
                    }
                    j.end_arr();
                }
                j.end_obj();
            }
            j.end_arr();
            j.end_obj();
        }
        j.end_arr();

        j.key("nodes");
        j.begin_arr();
        for (i, n) in self.nodes.iter().enumerate() {
            j.begin_obj();
            j.field_u64("node", i as u64);
            j.field_u64("xmit_bytes", n.xmit_bytes);
            j.field_u64("xmit_pkts", n.xmit_pkts);
            j.field_u64("rcv_bytes", n.rcv_bytes);
            j.field_u64("rcv_pkts", n.rcv_pkts);
            j.end_obj();
        }
        j.end_arr();

        j.key("samples");
        j.begin_arr();
        for sm in &self.samples {
            j.begin_obj();
            j.field_u64("t_ns", sm.t_ns);
            j.field_u64("delivered_pkts", sm.delivered_pkts);
            j.field_u64("delivered_bytes", sm.delivered_bytes);
            j.field_u64("in_flight", sm.in_flight);
            j.field_u64("events", sm.events);
            j.field_u64("latency_p50_ns", sm.latency_p50_ns);
            j.field_u64("latency_p95_ns", sm.latency_p95_ns);
            j.field_u64("latency_p99_ns", sm.latency_p99_ns);
            j.key("top_ports");
            j.begin_arr();
            for h in &sm.top_ports {
                j.begin_obj();
                j.field_u64("sw", u64::from(h.sw));
                j.field_u64("port", u64::from(h.port));
                j.field_u64("xmit_bytes", h.xmit_bytes);
                j.end_obj();
            }
            j.end_arr();
            j.end_obj();
        }
        j.end_arr();

        if self.ewma_alpha > 0.0 {
            j.field_f64("ewma_alpha", self.ewma_alpha, 4);
            j.key("congestion");
            j.begin_arr();
            for i in 0..self.ewma_util.len() {
                if self.ewma_util[i] == 0.0 && self.ewma_stall[i] == 0.0 {
                    continue;
                }
                j.begin_obj();
                j.field_u64("sw", (i / self.ports_per_switch) as u64);
                j.field_u64("port", (i % self.ports_per_switch) as u64 + 1);
                j.field_f64("util", self.ewma_util[i], 4);
                j.field_f64("stall_rate", self.ewma_stall[i], 4);
                j.end_obj();
            }
            j.end_arr();
        }
        j.end_obj();
        j.into_string()
    }
}

fn write_counter_fields(j: &mut JsonBuf, c: &PortVlCounters) {
    j.field_u64("xmit_bytes", c.xmit_bytes);
    j.field_u64("xmit_pkts", c.xmit_pkts);
    j.field_u64("rcv_bytes", c.rcv_bytes);
    j.field_u64("rcv_pkts", c.rcv_pkts);
    j.field_u64("xmit_wait_ns", c.xmit_wait_ns);
    j.field_u64("credit_stall_ns", c.credit_stall_ns);
    j.field_u64("in_buf_high_water", u64::from(c.in_buf_high_water));
    j.field_u64("out_buf_high_water", u64::from(c.out_buf_high_water));
}

/// Read-only view over [`FabricCounters`]' streaming congestion EWMAs —
/// the sensor seam an adaptive MLID path-selection policy consumes
/// (ROADMAP item 1). Rates are dimensionless in `[0, 1]`: `utilization`
/// is the EWMA of each interval's transmitted-bytes serialization time
/// over the interval span; `stall_rate` is the EWMA of the
/// credit-stalled fraction of the interval.
///
/// Under the parallel engine each port's series is computed wholly on
/// the shard owning its switch, so per-port values are exact sums at
/// merge time — but the sampling grid is shard-local, so values may
/// differ (harmlessly) from a sequential run, like the time-series
/// samples themselves.
#[derive(Debug, Clone, Copy)]
pub struct CongestionView<'a> {
    c: &'a FabricCounters,
}

impl CongestionView<'_> {
    /// Whether the stream was enabled (`with_congestion`).
    pub fn enabled(&self) -> bool {
        self.c.ewma_alpha > 0.0
    }

    /// The EWMA smoothing factor (0 when disabled).
    pub fn alpha(&self) -> f64 {
        self.c.ewma_alpha
    }

    /// EWMA link utilization of one (switch, 0-based port).
    pub fn utilization(&self, sw: u32, port: u8) -> f64 {
        self.c.ewma_util[self.c.pcell(sw, port)]
    }

    /// EWMA credit-stall rate of one (switch, 0-based port).
    pub fn stall_rate(&self, sw: u32, port: u8) -> f64 {
        self.c.ewma_stall[self.c.pcell(sw, port)]
    }

    /// The `k` ports with the highest EWMA utilization, descending
    /// (ties toward the lower `(sw, port)`; idle ports never listed).
    /// Ports are IB 1-based.
    pub fn hottest(&self, k: usize) -> Vec<(u32, u8, f64)> {
        self.top_by(k, &self.c.ewma_util)
    }

    /// The `k` ports with the highest EWMA credit-stall rate.
    pub fn most_stalled(&self, k: usize) -> Vec<(u32, u8, f64)> {
        self.top_by(k, &self.c.ewma_stall)
    }

    fn top_by(&self, k: usize, series: &[f64]) -> Vec<(u32, u8, f64)> {
        let mut ranked: Vec<(f64, usize)> = series
            .iter()
            .enumerate()
            .filter_map(|(i, &v)| (v > 0.0).then_some((v, i)))
            .collect();
        ranked.sort_by(|a, b| b.0.partial_cmp(&a.0).unwrap().then(a.1.cmp(&b.1)));
        ranked.truncate(k);
        ranked
            .into_iter()
            .map(|(v, i)| {
                (
                    (i / self.c.ports_per_switch) as u32,
                    (i % self.c.ports_per_switch) as u8 + 1,
                    v,
                )
            })
            .collect()
    }
}

impl Probe for FabricCounters {
    const COUNTERS: bool = true;
    const TIMING: bool = false;

    #[inline]
    fn node_xmit(&mut self, _now: Time, node: u32, _vl: u8, bytes: u32) {
        let n = &mut self.nodes[node as usize];
        n.xmit_bytes += u64::from(bytes);
        n.xmit_pkts += 1;
    }

    #[inline]
    fn node_rcv(&mut self, _now: Time, node: u32, _vl: u8, bytes: u32, latency_ns: u64) {
        let n = &mut self.nodes[node as usize];
        n.rcv_bytes += u64::from(bytes);
        n.rcv_pkts += 1;
        if self.sample_interval_ns > 0 {
            self.interval_delivered_pkts += 1;
            self.interval_delivered_bytes += u64::from(bytes);
            self.interval_latency.record(latency_ns);
        }
    }

    #[inline]
    fn sw_rcv(&mut self, _now: Time, sw: u32, port: u8, vl: u8, bytes: u32, depth: u8) {
        let c = &mut self.per_vl
            [(sw as usize * self.ports_per_switch + port as usize) * self.num_vls + vl as usize];
        c.rcv_bytes += u64::from(bytes);
        c.rcv_pkts += 1;
        c.in_buf_high_water = c.in_buf_high_water.max(depth);
    }

    #[inline]
    fn sw_xmit(&mut self, _now: Time, sw: u32, port: u8, vl: u8, bytes: u32) {
        let cell = self.cell(sw, port, vl);
        let c = &mut self.per_vl[cell];
        c.xmit_bytes += u64::from(bytes);
        c.xmit_pkts += 1;
        let p = self.pcell(sw, port);
        self.port_xmit_bytes[p] += u64::from(bytes);
    }

    #[inline]
    fn sw_drop(&mut self, _now: Time, sw: u32) {
        self.drops[sw as usize] += 1;
    }

    #[inline]
    fn out_buffer_depth(&mut self, sw: u32, port: u8, vl: u8, depth: u8) {
        let cell = self.cell(sw, port, vl);
        let c = &mut self.per_vl[cell];
        c.out_buf_high_water = c.out_buf_high_water.max(depth);
    }

    #[inline]
    fn xmit_wait_start(&mut self, now: Time, sw: u32, in_port: u8, vl: u8, out_port: u8) {
        let cell = self.cell(sw, in_port, vl);
        debug_assert_eq!(self.wait_start[cell], Time::MAX, "nested xmit wait");
        self.wait_start[cell] = now;
        self.wait_out[cell] = out_port;
    }

    #[inline]
    fn xmit_wait_end(&mut self, now: Time, sw: u32, in_port: u8, vl: u8) {
        let cell = self.cell(sw, in_port, vl);
        let start = self.wait_start[cell];
        debug_assert_ne!(start, Time::MAX, "xmit wait ended without start");
        self.wait_start[cell] = Time::MAX;
        let out_cell = self.cell(sw, self.wait_out[cell], vl);
        self.per_vl[out_cell].xmit_wait_ns += now - start;
    }

    #[inline]
    fn credit_stall_start(&mut self, now: Time, sw: u32, port: u8, vl: u8) {
        let cell = self.cell(sw, port, vl);
        // Arbitration re-observes an ongoing stall; only the first
        // observation opens the interval.
        if self.stall_start[cell] == Time::MAX {
            self.stall_start[cell] = now;
        }
    }

    #[inline]
    fn credit_stall_end(&mut self, now: Time, sw: u32, port: u8, vl: u8) {
        let cell = self.cell(sw, port, vl);
        let start = self.stall_start[cell];
        if start != Time::MAX {
            self.stall_start[cell] = Time::MAX;
            self.per_vl[cell].credit_stall_ns += now - start;
            self.port_stall_ns[cell / self.num_vls] += now - start;
        }
    }

    #[inline]
    fn tick(&mut self, now: Time, in_flight: usize) {
        if self.sample_interval_ns > 0 {
            self.interval_events += 1;
            self.last_in_flight = in_flight as u64;
            if now >= self.next_sample {
                self.flush_sample(now, in_flight as u64);
            }
        }
    }

    fn finish(&mut self, now: Time) {
        self.end_time = now;
        // Close every open wait/stall interval at the end of the run so
        // a saturated fabric is not under-counted.
        for cell in 0..self.per_vl.len() {
            let ws = self.wait_start[cell];
            if ws != Time::MAX {
                self.wait_start[cell] = Time::MAX;
                let sw = (cell / self.num_vls / self.ports_per_switch) as u32;
                let vl = (cell % self.num_vls) as u8;
                let out_cell = self.cell(sw, self.wait_out[cell], vl);
                self.per_vl[out_cell].xmit_wait_ns += now - ws;
            }
            let ss = self.stall_start[cell];
            if ss != Time::MAX {
                self.stall_start[cell] = Time::MAX;
                self.per_vl[cell].credit_stall_ns += now - ss;
                self.port_stall_ns[cell / self.num_vls] += now - ss;
            }
        }
        if self.sample_interval_ns > 0
            && (self.interval_events > 0
                || self.interval_delivered_pkts > 0
                || self.port_xmit_bytes != self.last_port_xmit)
        {
            self.flush_sample(now, self.last_in_flight);
        }
    }
}

/// Parallel-engine support: each shard gets a full-fabric-sized child (a
/// shard only ever touches the cells of devices it owns, so the sums are
/// disjoint and absorption is exact for every register-style counter —
/// per-port/per-VL counters, node counters, drops, cumulative port
/// bytes). Open wait/stall intervals are closed by each shard's `finish`
/// at the globally agreed end time before absorption, which matches the
/// sequential closure exactly.
///
/// The *time-series* is the one approximate surface: each shard samples
/// its own event stream, so `in_flight`/`events` in merged samples are
/// shard-local and the merged ring is the time-ordered interleaving of
/// per-shard samples, not a sequence of global snapshots. Register
/// counters and totals remain bit-exact.
impl ParProbe for FabricCounters {
    fn fork(&self) -> Self {
        let cells = self.per_vl.len();
        let pcells = self.port_xmit_bytes.len();
        FabricCounters {
            num_switches: self.num_switches,
            ports_per_switch: self.ports_per_switch,
            num_vls: self.num_vls,
            per_vl: vec![PortVlCounters::default(); cells],
            nodes: vec![NodeCounters::default(); self.nodes.len()],
            drops: vec![0; self.num_switches],
            wait_start: vec![Time::MAX; cells],
            wait_out: vec![0; cells],
            stall_start: vec![Time::MAX; cells],
            sample_interval_ns: self.sample_interval_ns,
            max_samples: self.max_samples,
            top_k: self.top_k,
            next_sample: if self.sample_interval_ns > 0 {
                self.sample_interval_ns
            } else {
                Time::MAX
            },
            samples: VecDeque::new(),
            samples_dropped: 0,
            interval_delivered_pkts: 0,
            interval_delivered_bytes: 0,
            interval_events: 0,
            interval_latency: LatencyStats::new(),
            port_xmit_bytes: vec![0; pcells],
            last_port_xmit: vec![0; pcells],
            last_in_flight: 0,
            ewma_alpha: self.ewma_alpha,
            byte_time_ns: self.byte_time_ns,
            ewma_util: vec![0.0; pcells],
            ewma_stall: vec![0.0; pcells],
            port_stall_ns: vec![0; pcells],
            last_port_stall: vec![0; pcells],
            last_sample_t: 0,
            end_time: 0,
        }
    }

    fn absorb(&mut self, child: Self) {
        debug_assert_eq!(self.per_vl.len(), child.per_vl.len());
        for (c, o) in self.per_vl.iter_mut().zip(&child.per_vl) {
            c.absorb(o);
        }
        for (n, o) in self.nodes.iter_mut().zip(&child.nodes) {
            n.xmit_bytes += o.xmit_bytes;
            n.xmit_pkts += o.xmit_pkts;
            n.rcv_bytes += o.rcv_bytes;
            n.rcv_pkts += o.rcv_pkts;
        }
        for (d, o) in self.drops.iter_mut().zip(&child.drops) {
            *d += o;
        }
        for (p, o) in self.port_xmit_bytes.iter_mut().zip(&child.port_xmit_bytes) {
            *p += o;
        }
        for (p, o) in self.port_stall_ns.iter_mut().zip(&child.port_stall_ns) {
            *p += o;
        }
        // Each port's EWMA is computed wholly on the shard owning its
        // switch; other shards contribute exact zeros, so addition is
        // exact.
        for (e, o) in self.ewma_util.iter_mut().zip(&child.ewma_util) {
            *e += o;
        }
        for (e, o) in self.ewma_stall.iter_mut().zip(&child.ewma_stall) {
            *e += o;
        }
        self.end_time = self.end_time.max(child.end_time);
        self.samples_dropped += child.samples_dropped;
        // Interleave shard sample streams in time order (stable, so a
        // tie keeps already-absorbed shards first — shard order is the
        // deterministic tiebreak).
        self.samples.extend(child.samples);
        self.samples
            .make_contiguous()
            .sort_by_key(|s: &Sample| s.t_ns);
        while self.samples.len() > self.max_samples {
            self.samples.pop_front();
            self.samples_dropped += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ibfat_topology::TreeParams;

    fn counters() -> FabricCounters {
        let net = Network::mport_ntree(TreeParams::new(4, 2).unwrap());
        FabricCounters::new(&net, 2)
    }

    #[test]
    fn xmit_wait_charged_to_output_port() {
        let mut c = counters();
        c.xmit_wait_start(100, 3, 0, 1, 2); // input port 0 waits for output 2
        c.xmit_wait_end(350, 3, 0, 1);
        assert_eq!(c.port_vl(3, 2, 1).xmit_wait_ns, 250);
        assert_eq!(c.port_vl(3, 0, 1).xmit_wait_ns, 0);
    }

    #[test]
    fn credit_stall_first_observation_wins() {
        let mut c = counters();
        c.credit_stall_start(100, 0, 1, 0);
        c.credit_stall_start(180, 0, 1, 0); // re-observed, must not reset
        c.credit_stall_end(300, 0, 1, 0);
        assert_eq!(c.port_vl(0, 1, 0).credit_stall_ns, 200);
        // An end without a start is a no-op.
        c.credit_stall_end(400, 0, 1, 0);
        assert_eq!(c.port_vl(0, 1, 0).credit_stall_ns, 200);
    }

    #[test]
    fn finish_closes_open_intervals() {
        let mut c = counters();
        c.xmit_wait_start(100, 1, 3, 0, 2);
        c.credit_stall_start(150, 1, 2, 0);
        c.finish(500);
        assert_eq!(c.port_vl(1, 2, 0).xmit_wait_ns, 400);
        assert_eq!(c.port_vl(1, 2, 0).credit_stall_ns, 350);
        assert_eq!(c.end_time_ns(), 500);
    }

    #[test]
    fn sampling_flushes_on_interval_and_finish() {
        let mut c = counters().with_sampling(1_000, 2);
        c.tick(10, 1);
        c.sw_xmit(10, 0, 2, 0, 256);
        c.node_rcv(500, 1, 0, 256, 480);
        c.tick(1_500, 3); // crosses the 1_000 boundary → sample
        assert_eq!(c.samples().len(), 1);
        let s = &c.samples()[0];
        assert_eq!(s.t_ns, 1_500);
        assert_eq!(s.delivered_pkts, 1);
        assert_eq!(s.in_flight, 3);
        assert_eq!(s.top_ports.len(), 1);
        assert_eq!((s.top_ports[0].sw, s.top_ports[0].port), (0, 3));
        assert!(s.latency_p50_ns >= 480);
        // Partial tail flushed by finish.
        c.sw_xmit(1_600, 0, 1, 0, 256);
        c.finish(1_700);
        assert_eq!(c.samples().len(), 2);
        assert_eq!(c.samples()[1].top_ports[0].port, 2);
    }

    #[test]
    fn ring_buffer_drops_oldest() {
        let mut c = counters().with_sampling(10, 1).with_sample_capacity(3);
        for i in 1..=6u64 {
            c.tick(i * 10, 0); // each tick lands on a boundary → 6 flushes
        }
        assert_eq!(c.samples().len(), 3);
        assert_eq!(c.samples_dropped(), 3);
        assert_eq!(c.samples()[0].t_ns, 40);
    }

    #[test]
    fn top_k_is_deterministic_on_ties() {
        let mut c = counters();
        c.sw_xmit(0, 2, 1, 0, 256);
        c.sw_xmit(0, 1, 3, 0, 256);
        c.sw_xmit(0, 1, 3, 0, 256);
        c.sw_xmit(0, 2, 0, 0, 256);
        let hot = c.hottest_ports(10);
        assert_eq!(hot.len(), 3);
        assert_eq!((hot[0].sw, hot[0].port, hot[0].xmit_bytes), (1, 4, 512));
        // Tied ports order by (sw, port).
        assert_eq!((hot[1].sw, hot[1].port), (2, 1));
        assert_eq!((hot[2].sw, hot[2].port), (2, 2));
    }

    #[test]
    fn json_has_schema_and_balanced_braces() {
        let mut c = counters().with_sampling(100, 2);
        c.sw_xmit(10, 0, 0, 1, 256);
        c.node_xmit(10, 0, 1, 256);
        c.tick(150, 1);
        c.finish(200);
        let json = c.to_json();
        assert!(json.starts_with("{\"schema\":1,"));
        assert!(json.contains("\"sample_interval_ns\":100"));
        assert!(json.contains("\"samples_dropped\":0"));
        assert!(json.contains("\"switches\":["));
        assert!(json.contains("\"vls\":[")); // 2 VLs → per-VL breakdown
        assert!(json.contains("\"samples\":["));
        let open = json.chars().filter(|&ch| ch == '{').count();
        let close = json.chars().filter(|&ch| ch == '}').count();
        assert_eq!(open, close);
        let o = json.chars().filter(|&ch| ch == '[').count();
        let cl = json.chars().filter(|&ch| ch == ']').count();
        assert_eq!(o, cl);
        // The shared parser reads the export back.
        let doc = crate::json::parse(&json).expect("valid JSON");
        let obj = doc.as_object("counters").unwrap();
        assert_eq!(obj.field("schema").unwrap().as_u64("schema").unwrap(), 1);
    }

    #[test]
    fn congestion_ewma_tracks_utilization_and_stalls() {
        // Port (0, p2): 500 bytes/interval at 1 ns/byte over 1000 ns
        // intervals -> utilization 0.5 per interval.
        let mut c = counters().with_sampling(1_000, 2).with_congestion(0.5, 1);
        c.sw_xmit(100, 0, 2, 0, 500);
        c.credit_stall_start(0, 0, 3, 0);
        c.credit_stall_end(250, 0, 3, 0); // stalled 25% of the interval
        c.tick(1_000, 1);
        {
            let v = c.congestion();
            assert!(v.enabled());
            assert!((v.utilization(0, 2) - 0.25).abs() < 1e-9); // 0.5 * 0.5
            assert!((v.stall_rate(0, 3) - 0.125).abs() < 1e-9); // 0.5 * 0.25
        }
        // Second, idle interval decays both EWMAs.
        c.tick(2_000, 1);
        let v = c.congestion();
        assert!((v.utilization(0, 2) - 0.125).abs() < 1e-9);
        assert!((v.stall_rate(0, 3) - 0.0625).abs() < 1e-9);
        let hot = v.hottest(4);
        assert_eq!((hot[0].0, hot[0].1), (0, 3)); // 1-based port
        let stalled = v.most_stalled(4);
        assert_eq!((stalled[0].0, stalled[0].1), (0, 4));
        // The export grows a congestion section.
        let json = c.to_json();
        assert!(json.contains("\"congestion\":["));
        crate::json::parse(&json).expect("valid JSON");
    }

    #[test]
    fn congestion_absorb_is_exact_for_disjoint_ports() {
        let parent = counters().with_sampling(1_000, 2).with_congestion(0.5, 1);
        let mut a = ParProbe::fork(&parent);
        let mut b = ParProbe::fork(&parent);
        a.sw_xmit(100, 0, 2, 0, 500);
        a.tick(1_000, 1);
        b.sw_xmit(100, 1, 0, 0, 1_000);
        b.tick(1_000, 1);
        let mut merged = parent.clone();
        merged.absorb(a);
        merged.absorb(b);
        let v = merged.congestion();
        assert!((v.utilization(0, 2) - 0.25).abs() < 1e-9);
        assert!((v.utilization(1, 0) - 0.5).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "with_sampling")]
    fn congestion_without_sampling_panics() {
        let _ = counters().with_congestion(0.5, 1);
    }
}
