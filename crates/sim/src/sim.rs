//! The InfiniBand subnet simulator.
//!
//! ## Model (Section 5 of the paper)
//!
//! * **Switches** are `m`-port crossbars. Every port has one input and one
//!   output buffer *per virtual lane*, each holding `buffer_packets`
//!   packets (the paper: exactly one). The crossbar lets any number of
//!   disjoint input→output transfers proceed simultaneously; transfers to
//!   the same output buffer serialize through arbitration.
//! * **Virtual cut-through**: a packet begins leaving a switch as soon as
//!   its header has been routed and the output buffer is free — it never
//!   waits for its own tail. A buffer is held from the moment a packet is
//!   granted into it until the packet's tail has left it.
//! * **Credit-based link-level flow control**: a sender may start a packet
//!   on a link only while it holds a credit for the downstream input
//!   buffer of that VL; the credit returns (one wire flight later) when
//!   the packet's tail vacates that buffer.
//! * **Timing**: header routing costs `routing_time_ns` per switch; wire
//!   propagation costs `fly_time_ns` per link; serialization costs
//!   `packet_bytes * byte_time_ns` per link.
//! * **End nodes** generate packets at a constant (or Poisson) rate into
//!   an unbounded source queue, draining it in FIFO order onto their
//!   injection link; they consume arriving packets immediately.
//!
//! The simulation is single-threaded and fully deterministic for a given
//! seed: events at equal timestamps fire in scheduling order.

use crate::engine::{ChainClass, ChainQueue, EventQueue, Time};
use crate::metrics::{LatencyStats, SimReport};
use crate::packet::{Packet, PacketId, PacketSlab};
use crate::probe::{NoopProbe, Phase, Probe};
use crate::trace::{PacketTrace, TraceEvent};
use crate::vlarb::VlArbiter;
use crate::{
    InjectionProcess, PathSelection, RouteBackend, SimConfig, SimError, TrafficPattern,
    VlAssignment,
};
use ibfat_routing::{RouteOracle, Routing};
use ibfat_topology::{DeviceRef, Network, NodeId, PortNum};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha12Rng;
use std::cell::RefCell;
use std::collections::VecDeque;

/// The scheduler seam: handlers emit future events through this trait,
/// so the same dispatch code drives both the sequential engine (events go
/// into the fused [`ChainQueue`]) and the parallel engine (events are
/// keyed for deterministic ordering and routed to the owning shard's
/// calendar or a cross-shard mailbox — see `par.rs`).
pub trait Sched {
    fn schedule(&mut self, at: Time, ev: Ev);

    /// Schedule an event whose delay is one of the run-constant
    /// [`ChainClass`]es. The sequential engine diverts these onto FIFO
    /// delay lines; every other scheduler falls back to the general
    /// calendar, so the class is a pure performance hint — never a
    /// semantic one.
    #[inline]
    fn schedule_chain(&mut self, class: ChainClass, at: Time, ev: Ev) {
        let _ = class;
        self.schedule(at, ev);
    }
}

impl Sched for EventQueue<Ev> {
    #[inline]
    fn schedule(&mut self, at: Time, ev: Ev) {
        EventQueue::schedule(self, at, ev);
    }
}

impl Sched for ChainQueue<Ev> {
    #[inline]
    fn schedule(&mut self, at: Time, ev: Ev) {
        ChainQueue::schedule(self, at, ev);
    }

    #[inline]
    fn schedule_chain(&mut self, class: ChainClass, at: Time, ev: Ev) {
        ChainQueue::schedule_chain(self, class, at, ev);
    }
}

/// What a switch port's output side is cabled to.
#[derive(Debug, Clone, Copy)]
pub(crate) enum PeerRef {
    SwitchPort {
        sw: u32,
        port: u8,
    },
    Node {
        node: u32,
    },
    /// Uncabled (failed) port — carries no traffic.
    Dead,
}

/// A packet held in an input buffer.
#[derive(Debug, Clone, Copy)]
struct InEntry {
    pkt: PacketId,
    state: InState,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum InState {
    /// Header is being routed (the `routing_time_ns` pipeline stage).
    Routing,
    /// Routed, waiting for space in the output buffer `out_port`.
    Waiting(u8),
    /// Granted to the output buffer; tail is streaming out.
    Departing,
}

/// A packet held in an output buffer.
#[derive(Debug, Clone, Copy)]
struct OutEntry {
    pkt: PacketId,
    transmitting: bool,
}

/// One switch port: input and output state per VL.
#[derive(Debug)]
pub(crate) struct SwPort {
    peer: PeerRef,
    /// Link output direction is serialized until this time.
    busy_until: Time,
    /// A `SwTryOutput` retry is already scheduled for `busy_until`.
    retry_pending: bool,
    /// Egress VL arbitration state (table lives on the simulator).
    arb: VlArbiter,
    /// Credits held for the downstream input buffers, per VL.
    credits: Vec<u8>,
    /// Output buffers, per VL (FIFO within a VL).
    out_q: Vec<VecDeque<OutEntry>>,
    /// Input ports whose routed head waits for space in this output, per VL.
    waiters: Vec<VecDeque<u8>>,
    /// Input buffers, per VL.
    in_q: Vec<VecDeque<InEntry>>,
    /// Accumulated transmission time on the outgoing direction (ns).
    pub(crate) busy_ns: u64,
}

/// One end node.
#[derive(Debug)]
pub(crate) struct NodeSt {
    pub(crate) peer_sw: u32,
    peer_port: u8,
    /// Unbounded FIFO source queues, one per VL. Real HCAs arbitrate VLs
    /// at the egress port, so a lane stalled on credits never blocks the
    /// others (per-VL queues avoid cross-VL head-of-line blocking).
    pub(crate) inj_q: Vec<VecDeque<PacketId>>,
    /// Egress VL arbitration state for the injection link.
    arb: VlArbiter,
    busy_until: Time,
    retry_pending: bool,
    /// Credits for the leaf switch's input buffers, per VL.
    credits: Vec<u8>,
    /// Next generation instant (f64 to carry fractional inter-arrivals).
    pub(crate) next_gen: f64,
    /// Whether this node generates traffic at all (permutation patterns
    /// may silence self-mapped nodes).
    pub(crate) active: bool,
    /// Round-robin offset cursor for `PathSelection::RoundRobinPerSource`.
    pub(crate) rr_offset: u32,
    pub(crate) busy_ns: u64,
}

/// How the data plane resolves `(switch, dlid) → output port` — the
/// materialization behind [`RouteBackend`].
#[derive(Debug)]
pub(crate) enum RouteState {
    /// All forwarding tables in one contiguous buffer:
    /// `lft[sw * stride + lid]` is the 0-based output port
    /// (`u8::MAX` = no entry). One allocation, stride-indexed, so the
    /// per-hop lookup stays in cache across switches.
    Table { lft: Vec<u8>, stride: usize },
    /// Subfabric view of the flattened tables (a worker process in the
    /// multi-process driver): only owned switches get a row, so the
    /// resident table footprint scales with the shard, not the fabric.
    /// `row_of[sw]` is the row index (`u32::MAX` = unowned; never
    /// consulted, because a worker only dispatches events of switches it
    /// owns).
    TableView {
        row_of: Vec<u32>,
        lft: Vec<u8>,
        stride: usize,
    },
    /// Closed-form per-hop lookup (the paper's Eq. 1/Eq. 2) — no tables
    /// in memory. `route_hop` returns `None` exactly where a pristine
    /// table has no entry, so the drop semantics line up bit-for-bit
    /// with the flattened table's `u8::MAX`.
    Oracle(RouteOracle),
}

/// Simulator events.
#[derive(Debug, Clone, Copy)]
pub enum Ev {
    /// Generate the next packet at a node.
    Inject { node: u32 },
    /// Attempt to start transmitting the node's queue head.
    TryNodeSend { node: u32 },
    /// A packet header reached a switch input buffer.
    SwHeaderArrive {
        sw: u32,
        port: u8,
        vl: u8,
        pkt: PacketId,
    },
    /// Routing of the input-buffer head finished.
    SwRouteDone { sw: u32, port: u8, vl: u8 },
    /// The tail of the input-buffer head left through the crossbar.
    SwInputDeparted { sw: u32, port: u8, vl: u8 },
    /// Attempt to start a transmission on a switch output port.
    SwTryOutput { sw: u32, port: u8 },
    /// The tail of a transmitting packet left the output buffer.
    SwOutputDeparted { sw: u32, port: u8, vl: u8 },
    /// A credit came back to a switch output port.
    CreditToSwitch { sw: u32, port: u8, vl: u8 },
    /// A credit came back to a node's injection side.
    CreditToNode { node: u32, vl: u8 },
    /// A packet's tail arrived at its destination endport.
    Deliver { node: u32, vl: u8, pkt: PacketId },
    /// A discarded (unroutable) packet finished draining into its input
    /// buffer; free the buffer.
    SwDiscardDone { sw: u32, port: u8, vl: u8 },
    /// Workload mode: one dependency of message `msg` completed (or the
    /// priming pseudo-dependency of a root). Fires at the message's
    /// source node one wire flight after the completing delivery, in
    /// both engines — which keeps the notification a legal cross-shard
    /// event under the parallel engine's lookahead.
    WlArm { node: u32, msg: u32 },
    /// A scheduled fault fires: swap the live dead-port masks and
    /// killed-switch flags to the compiled post-fault state. Exists on
    /// every shard of a parallel run (it touches only shared-shape
    /// state), so event accounting stays engine-invariant.
    FaultApply { fault: u32 },
    /// The subnet manager finishes reprogramming one switch's forwarding
    /// table with the patch set of fault `fault`, then re-routes input
    /// heads that were parked on a dead output.
    SwReprogram { fault: u32, sw: u32 },
}

/// The discrete-event simulator for one (network, routing, traffic, load)
/// operating point.
///
/// Borrows the routing for its whole lifetime — building a simulator
/// copies nothing heavier than the forwarding tables it flattens, so
/// sweeps and replications share one `Routing` across threads.
///
/// Generic over a [`Probe`] observability sink (default: the free
/// [`NoopProbe`]). Every probe hook site is guarded by the probe's
/// associated consts, so the unprobed simulator monomorphizes to exactly
/// the pre-observability hot path.
pub struct Simulator<'a, P: Probe = NoopProbe, Q = ChainQueue<Ev>> {
    pub(crate) cfg: SimConfig,
    pub(crate) pattern: TrafficPattern,
    pub(crate) offered_load: f64,
    pub(crate) interarrival_ns: f64,
    pub(crate) sim_time_ns: Time,
    pub(crate) warmup_ns: Time,

    pub(crate) pkt_ns: u64,
    pub(crate) fly: u64,
    pub(crate) route_ns: u64,
    pub(crate) num_vls: usize,
    pub(crate) cap: u8,
    /// Shared VL arbitration entry table.
    pub(crate) arb_table: Vec<(u8, u8)>,

    pub(crate) routing: &'a Routing,
    /// Per-hop route lookup state (flattened tables or the closed-form
    /// oracle), per `cfg.route_backend`.
    pub(crate) route: RouteState,
    /// Per-switch 0-based first up-port (= m/2), or `u8::MAX` for roots
    /// (which have no up-ports). Used by adaptive upward routing.
    pub(crate) up_ports_from: Vec<u8>,

    pub(crate) switches: Vec<Vec<SwPort>>,
    pub(crate) nodes: Vec<NodeSt>,

    pub(crate) queue: Q,
    pub(crate) slab: PacketSlab,
    pub(crate) rng: ChaCha12Rng,
    pub(crate) now: Time,

    // measurement
    /// Next sequence number per (src, dst, vl) flow. InfiniBand only
    /// orders traffic within a lane, so the flow key includes the VL.
    pub(crate) flow_next_seq: Vec<u32>,
    /// Highest delivered sequence per (src, dst, vl) flow (u32::MAX = none).
    pub(crate) flow_delivered: Vec<u32>,
    pub(crate) out_of_order: u64,
    pub(crate) dropped: u64,
    pub(crate) total_generated: u64,
    pub(crate) total_delivered: u64,
    pub(crate) generated_in_window: u64,
    pub(crate) delivered_in_window: u64,
    pub(crate) delivered_bytes_in_window: u64,
    pub(crate) latency: LatencyStats,
    pub(crate) network_latency: LatencyStats,
    pub(crate) events_processed: u64,
    pub(crate) traces: Vec<PacketTrace>,
    /// Flight-recorder slot per live packet id (`u32::MAX` = untraced) —
    /// the side table that keeps the slot out of the 32-byte hot
    /// [`Packet`]. Maintained only when tracing is enabled.
    pub(crate) trace_slots: Vec<u32>,
    /// Pre-drawn injections per node, consumed instead of the RNG. The
    /// parallel engine runs its sequential injection pre-pass, then hands
    /// each shard the records for its own nodes, so parallel dispatch
    /// never touches the (globally ordered) random stream.
    pub(crate) scripted_inj: Option<Vec<VecDeque<InjectRec>>>,
    /// Workload-mode state (message DAG, dependency counters, timings);
    /// `None` in pattern mode — the hot-path hooks cost one branch.
    pub(crate) wl: Option<Box<crate::workload::WlState>>,
    /// First engine-invariant violation observed during dispatch (release
    /// builds; debug builds assert instead). Checked by the run loops,
    /// which abort and surface it through the `try_run_*` entry points.
    pub(crate) invariant_err: Option<SimError>,
    /// Live fault-injection state; `None` when the config carries no
    /// fault plan, so the subsystem costs one branch on the hot paths.
    pub(crate) faults: Option<Box<crate::faults::FaultState>>,

    pub(crate) probe: P,
}

/// Cap per queue family on the thread-local pool of recycled per-(port,
/// VL) buffers: enough for an FT(16,3) simulator's full complement, and
/// a few hundred KiB at most if a larger fabric drains into it.
const POOL_CAP: usize = 1 << 16;

/// Thread-local freelists of the per-(port, VL) `VecDeque` buffers. A
/// finished run returns its (cleared) queues here and the next
/// construction on the same thread draws from them, so sweeps and
/// replications stop paying thousands of small allocations per operating
/// point. Purely an allocation cache: drawn buffers are empty, and only
/// their capacity differs from a fresh one.
struct QueuePool {
    in_q: Vec<VecDeque<InEntry>>,
    out_q: Vec<VecDeque<OutEntry>>,
    waiters: Vec<VecDeque<u8>>,
    inj_q: Vec<VecDeque<PacketId>>,
}

thread_local! {
    static QUEUE_POOL: RefCell<QueuePool> = const {
        RefCell::new(QueuePool {
            in_q: Vec::new(),
            out_q: Vec::new(),
            waiters: Vec::new(),
            inj_q: Vec::new(),
        })
    };
}

/// Draw a buffer from one pool family (or allocate), guaranteeing at
/// least `capacity` slots so the hot path never reallocates.
fn pool_draw<T>(store: &mut Vec<VecDeque<T>>, capacity: usize) -> VecDeque<T> {
    match store.pop() {
        Some(mut q) => {
            debug_assert!(q.is_empty(), "pooled queue was not cleared");
            if q.capacity() < capacity {
                q.reserve(capacity);
            }
            q
        }
        None => VecDeque::with_capacity(capacity),
    }
}

/// Clear a drained simulator's buffer and return it to its pool family.
fn pool_put<T>(store: &mut Vec<VecDeque<T>>, mut q: VecDeque<T>) {
    if store.len() < POOL_CAP {
        q.clear();
        store.push(q);
    }
}

/// Recycle every per-(port, VL) buffer of a finished simulator into the
/// thread-local pool.
pub(crate) fn recycle_queues(switches: Vec<Vec<SwPort>>, nodes: Vec<NodeSt>) {
    QUEUE_POOL.with(|pool| {
        let pool = &mut *pool.borrow_mut();
        for ports in switches {
            for p in ports {
                for q in p.in_q {
                    pool_put(&mut pool.in_q, q);
                }
                for q in p.out_q {
                    pool_put(&mut pool.out_q, q);
                }
                for q in p.waiters {
                    pool_put(&mut pool.waiters, q);
                }
            }
        }
        for n in nodes {
            for q in n.inj_q {
                pool_put(&mut pool.inj_q, q);
            }
        }
    });
}

/// One pre-drawn injection event (see
/// [`draw_injection`](Simulator::draw_injection)).
#[derive(Debug, Clone)]
pub(crate) struct InjectRec {
    /// Fire time, already clamped the way the sequential engine schedules
    /// it (`next_gen.max(now)` at draw time).
    pub(crate) at: Time,
    /// `None` when the pattern was silent for this draw (the node stops
    /// generating).
    pub(crate) payload: Option<InjectPayload>,
}

/// The RNG-dependent half of one injection: everything
/// [`apply_injection`](Simulator::apply_injection) needs to materialize
/// the packet without consuming random numbers or shared-counter state.
#[derive(Debug, Clone, Copy)]
pub(crate) struct InjectPayload {
    pub(crate) dlid: ibfat_routing::Lid,
    pub(crate) vl: u8,
    pub(crate) flow_seq: u32,
    /// Flight-recorder slot (`u32::MAX` = untraced).
    pub(crate) trace_slot: u32,
}

impl<'a> Simulator<'a> {
    /// Build an unprobed simulator. `offered_load` is normalized to the
    /// injection link bandwidth (`1.0` = one packet every
    /// `packet_time_ns`).
    ///
    /// # Panics
    /// Panics on invalid configuration or a subnet with fewer than two
    /// nodes.
    pub fn new(
        net: &Network,
        routing: &'a Routing,
        cfg: SimConfig,
        pattern: TrafficPattern,
        offered_load: f64,
        sim_time_ns: Time,
        warmup_ns: Time,
    ) -> Simulator<'a> {
        Simulator::with_probe(
            net,
            routing,
            cfg,
            pattern,
            offered_load,
            sim_time_ns,
            warmup_ns,
            NoopProbe,
        )
    }
}

impl<'a, P: Probe> Simulator<'a, P> {
    /// Build a simulator observed by `probe` (see [`Probe`]); retrieve
    /// the probe with [`run_observed`](Simulator::run_observed).
    #[allow(clippy::too_many_arguments)]
    pub fn with_probe(
        net: &Network,
        routing: &'a Routing,
        cfg: SimConfig,
        pattern: TrafficPattern,
        offered_load: f64,
        sim_time_ns: Time,
        warmup_ns: Time,
        probe: P,
    ) -> Simulator<'a, P> {
        let queue = ChainQueue::with_kind_and_horizon(cfg.calendar, cfg.wheel_horizon_hint());
        Simulator::with_queue(
            net,
            routing,
            cfg,
            pattern,
            offered_load,
            sim_time_ns,
            warmup_ns,
            queue,
            probe,
        )
    }
}

impl<'a, P: Probe, Q: Sched> Simulator<'a, P, Q> {
    /// Build a simulator over an arbitrary scheduler seam — the shared
    /// constructor behind [`with_probe`](Simulator::with_probe) (sequential
    /// calendar) and the parallel engine's per-shard instances.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn with_queue(
        net: &Network,
        routing: &'a Routing,
        cfg: SimConfig,
        pattern: TrafficPattern,
        offered_load: f64,
        sim_time_ns: Time,
        warmup_ns: Time,
        queue: Q,
        probe: P,
    ) -> Simulator<'a, P, Q> {
        cfg.validate().expect("invalid simulator configuration");
        if let Err(e) = pattern.validate(net.num_nodes() as u32) {
            panic!("{e}");
        }
        assert!(net.num_nodes() >= 2, "need at least two nodes");
        assert!(warmup_ns < sim_time_ns, "warm-up must end before the run");
        let num_vls = cfg.num_vls as usize;
        let cap = cfg.buffer_packets;
        let arb_table = cfg.vl_arbitration.table(cfg.num_vls);

        let route = match cfg.route_backend {
            RouteBackend::Table => {
                assert!(
                    routing.has_tables(),
                    "table route backend needs materialized forwarding tables; \
                     this routing was built table-free"
                );
                // Flatten forwarding tables to 0-based ports for the hot
                // path: one contiguous stride-indexed buffer across all
                // switches. A subfabric view (a worker process of the
                // multi-process driver) flattens only its owned rows, so
                // the dominant O(switches × LIDs) buffer scales with the
                // shard instead of the fabric.
                let stride = routing.lid_space().max_lid().index() + 1;
                if routing.is_view() {
                    let mut row_of = vec![u32::MAX; net.num_switches()];
                    let mut rows = 0u32;
                    for (sw, slot) in row_of.iter_mut().enumerate() {
                        if !routing.lfts()[sw].is_empty() {
                            *slot = rows;
                            rows += 1;
                        }
                    }
                    let mut lft = vec![u8::MAX; rows as usize * stride];
                    for (sw, &row) in row_of.iter().enumerate() {
                        if row == u32::MAX {
                            continue;
                        }
                        let table = routing.lft(ibfat_topology::SwitchId(sw as u32));
                        let row = &mut lft[row as usize * stride..(row as usize + 1) * stride];
                        for (lid, port) in table.entries() {
                            row[lid.index()] = port.0 - 1;
                        }
                    }
                    RouteState::TableView {
                        row_of,
                        lft,
                        stride,
                    }
                } else {
                    let mut lft = vec![u8::MAX; net.num_switches() * stride];
                    for sw in 0..net.num_switches() {
                        let table = routing.lft(ibfat_topology::SwitchId(sw as u32));
                        let row = &mut lft[sw * stride..(sw + 1) * stride];
                        for (lid, port) in table.entries() {
                            row[lid.index()] = port.0 - 1;
                        }
                    }
                    RouteState::Table { lft, stride }
                }
            }
            RouteBackend::Oracle => RouteState::Oracle(
                RouteOracle::for_routing(routing)
                    .expect("oracle route backend supports only the SLID/MLID schemes"),
            ),
        };

        let params = net.params();
        let up_ports_from: Vec<u8> = (0..net.num_switches())
            .map(|sw| {
                let label = ibfat_topology::SwitchLabel::from_id(
                    params,
                    ibfat_topology::SwitchId(sw as u32),
                );
                if label.level().0 == 0 {
                    u8::MAX
                } else {
                    params.half() as u8
                }
            })
            .collect();
        if cfg.adaptive_up || cfg.route_backend == RouteBackend::Oracle {
            let intact = (0..net.num_switches()).all(|sw| {
                net.switch(ibfat_topology::SwitchId(sw as u32))
                    .peers()
                    .count()
                    == params.m() as usize
            });
            if cfg.adaptive_up {
                assert!(intact, "adaptive upward routing requires an intact fabric");
            }
            if cfg.route_backend == RouteBackend::Oracle {
                // The oracle reproduces *pristine* tables; fault-repaired
                // routings deviate from the closed form, so degraded
                // fabrics must use the table backend.
                assert!(
                    intact,
                    "oracle route backend requires an intact fabric (repaired \
                     routings deviate from the closed-form tables)"
                );
            }
        }

        // Pre-size every per-(port, VL) queue from the topology: buffers
        // hold at most `cap` packets, and at most `m` inputs can wait on
        // one output — so the hot path never reallocates. Buffers come
        // from the thread-local freelist a previous run on this thread
        // left behind (see [`QueuePool`]); only capacity is reused.
        let m = net.params().m() as usize;
        let (switches, nodes) = QUEUE_POOL.with(|pool| {
            let pool = &mut *pool.borrow_mut();
            fn queues<T>(
                store: &mut Vec<VecDeque<T>>,
                num_vls: usize,
                capacity: usize,
            ) -> Vec<VecDeque<T>> {
                (0..num_vls).map(|_| pool_draw(store, capacity)).collect()
            }
            let switches: Vec<Vec<SwPort>> = (0..net.num_switches())
                .map(|sw| {
                    (0..net.params().m())
                        .map(|p| {
                            let port = PortNum(p as u8 + 1);
                            // Degraded subnets may have uncabled (failed)
                            // ports; a repaired routing never forwards into
                            // them, which `sw_try_output` asserts.
                            let peer = net
                                .peer_of(
                                    DeviceRef::Switch(ibfat_topology::SwitchId(sw as u32)),
                                    port,
                                )
                                .map(|peer| match peer.device {
                                    DeviceRef::Switch(s) => PeerRef::SwitchPort {
                                        sw: s.0,
                                        port: peer.port.0 - 1,
                                    },
                                    DeviceRef::Node(n) => PeerRef::Node { node: n.0 },
                                })
                                .unwrap_or(PeerRef::Dead);
                            SwPort {
                                peer,
                                busy_until: 0,
                                retry_pending: false,
                                arb: VlArbiter::new(&arb_table),
                                credits: vec![cap; num_vls],
                                out_q: queues(&mut pool.out_q, num_vls, cap as usize),
                                waiters: queues(&mut pool.waiters, num_vls, m),
                                in_q: queues(&mut pool.in_q, num_vls, cap as usize),
                                busy_ns: 0,
                            }
                        })
                        .collect()
                })
                .collect();

            let nodes: Vec<NodeSt> = (0..net.num_nodes())
                .map(|n| {
                    // An isolated node (failed endport cable) neither sends
                    // nor receives; peers may still address it, and those
                    // packets are dropped at the first unprogrammed LFT entry.
                    let peer = net.peer_of(DeviceRef::Node(NodeId(n as u32)), PortNum(1));
                    let (peer_sw, peer_port, active) = match peer {
                        Some(p) => match p.device {
                            DeviceRef::Switch(s) => (s.0, p.port.0 - 1, true),
                            DeviceRef::Node(_) => unreachable!("endports attach to switches"),
                        },
                        None => (u32::MAX, u8::MAX, false),
                    };
                    NodeSt {
                        peer_sw,
                        peer_port,
                        // Source queues are unbounded; a few slots of headroom
                        // covers the common transient backlog without growth.
                        inj_q: queues(&mut pool.inj_q, num_vls, 8),
                        arb: VlArbiter::new(&arb_table),
                        busy_until: 0,
                        retry_pending: false,
                        credits: vec![cap; num_vls],
                        next_gen: 0.0,
                        active,
                        rr_offset: 0,
                        busy_ns: 0,
                    }
                })
                .collect();
            (switches, nodes)
        });

        // Fault-injection state. The schedule compiles eagerly when this
        // simulator holds full tables; a view-routed shard (a worker of
        // the multi-process driver) cannot compile from its partial
        // tables, so its worker builds the full routing once, compiles,
        // and installs the shared runtime before the run starts.
        let faults = if cfg.faults.is_empty() {
            None
        } else {
            let runtime = (routing.has_tables() && !routing.is_view())
                .then(|| std::sync::Arc::new(crate::faults::compile(net, routing, &cfg.faults)));
            Some(Box::new(crate::faults::FaultState::new(
                net,
                &cfg.faults,
                runtime,
            )))
        };

        Simulator {
            pkt_ns: cfg.packet_time_ns(),
            fly: cfg.fly_time_ns,
            route_ns: cfg.routing_time_ns,
            num_vls,
            cap,
            arb_table,
            interarrival_ns: cfg.interarrival_ns(offered_load),
            offered_load,
            sim_time_ns,
            warmup_ns,
            pattern,
            routing,
            route,
            up_ports_from,
            switches,
            nodes,
            queue,
            slab: PacketSlab::new(),
            rng: ChaCha12Rng::seed_from_u64(cfg.seed),
            now: 0,
            flow_next_seq: vec![0; net.num_nodes() * net.num_nodes() * num_vls],
            flow_delivered: vec![u32::MAX; net.num_nodes() * net.num_nodes() * num_vls],
            out_of_order: 0,
            dropped: 0,
            total_generated: 0,
            total_delivered: 0,
            generated_in_window: 0,
            delivered_in_window: 0,
            delivered_bytes_in_window: 0,
            latency: LatencyStats::new(),
            network_latency: LatencyStats::new(),
            events_processed: 0,
            // Pre-size the flight recorder; clamp huge trace requests so
            // an accidental `u32::MAX` does not reserve gigabytes.
            traces: Vec::with_capacity(cfg.trace_first_packets.min(65_536) as usize),
            trace_slots: Vec::new(),
            scripted_inj: None,
            wl: None,
            invariant_err: None,
            faults,
            cfg,
            probe,
        }
    }

    /// Install the shared compiled fault schedule on a view-routed shard
    /// (multi-process worker), which cannot compile it from its partial
    /// tables. Must run before the first event dispatches.
    pub(crate) fn install_fault_runtime(
        &mut self,
        rt: std::sync::Arc<crate::faults::FaultRuntime>,
    ) {
        self.faults
            .as_mut()
            .expect("installing a fault runtime without a fault plan")
            .runtime = Some(rt);
    }
}

impl<'a, P: Probe> Simulator<'a, P> {
    /// Run to completion and produce the report.
    ///
    /// # Panics
    /// Panics if an engine invariant is violated mid-run; use
    /// [`try_run`](Simulator::try_run) to get a [`SimError`] instead.
    pub fn run(self) -> SimReport {
        self.run_observed().0
    }

    /// Run to completion; return the report and the probe with whatever
    /// it observed. Panics like [`run`](Simulator::run).
    pub fn run_observed(self) -> (SimReport, P) {
        self.try_run_observed().unwrap_or_else(|e| panic!("{e}"))
    }

    /// Run to completion, surfacing engine-invariant violations as a
    /// [`SimError::EngineInvariant`] instead of panicking.
    pub fn try_run(self) -> Result<SimReport, SimError> {
        Ok(self.try_run_observed()?.0)
    }

    /// Fallible twin of [`run_observed`](Simulator::run_observed).
    pub fn try_run_observed(mut self) -> Result<(SimReport, P), SimError> {
        let wall_start = std::time::Instant::now();
        // Prime every node with a randomly phased first injection so the
        // deterministic process does not fire in lockstep across nodes.
        for node in 0..self.nodes.len() as u32 {
            if !self.nodes[node as usize].active {
                continue;
            }
            let phase = self.rng.gen_range(0.0..self.interarrival_ns);
            self.nodes[node as usize].next_gen = phase;
            self.queue.schedule(phase as Time, Ev::Inject { node });
        }
        self.schedule_fault_events();

        while let Some((t, ev)) = self.queue.pop() {
            if t >= self.sim_time_ns {
                break;
            }
            debug_assert!(t >= self.now, "time went backwards");
            self.now = t;
            self.events_processed += 1;
            if P::COUNTERS {
                self.probe.tick(t, self.slab.live());
            }
            if P::TIMING {
                let phase = phase_of(&ev);
                let t0 = std::time::Instant::now();
                self.dispatch(ev);
                self.probe.phase_time(phase, t0.elapsed().as_nanos() as u64);
            } else {
                self.dispatch(ev);
            }
            if let Some(err) = self.invariant_err.take() {
                return Err(err);
            }
        }
        if P::COUNTERS || P::TIMING {
            self.probe.finish(self.now);
        }
        let wall = wall_start.elapsed().as_secs_f64();
        Ok(self.report(wall))
    }
}

impl<'a, P: Probe, Q: Sched> Simulator<'a, P, Q> {
    pub(crate) fn dispatch(&mut self, ev: Ev) {
        if let Some(f) = &self.faults {
            // A powered-off switch neither buffers, routes, arbitrates
            // nor returns credits: its in-flight events dissolve here.
            // SM reprogramming still lands (a later revive must see
            // fresh tables) and `FaultApply` is global, so neither is
            // filtered.
            match ev {
                Ev::SwHeaderArrive { sw, pkt, .. } if f.sw_killed[sw as usize] => {
                    self.fault_drop_arrival(sw, pkt);
                    return;
                }
                Ev::SwRouteDone { sw, .. }
                | Ev::SwInputDeparted { sw, .. }
                | Ev::SwTryOutput { sw, .. }
                | Ev::SwOutputDeparted { sw, .. }
                | Ev::CreditToSwitch { sw, .. }
                | Ev::SwDiscardDone { sw, .. }
                    if f.sw_killed[sw as usize] =>
                {
                    return;
                }
                _ => {}
            }
        }
        match ev {
            Ev::Inject { node } => self.inject(node),
            Ev::TryNodeSend { node } => {
                self.nodes[node as usize].retry_pending = false;
                self.try_node_send(node);
            }
            Ev::SwHeaderArrive { sw, port, vl, pkt } => self.sw_header_arrive(sw, port, vl, pkt),
            Ev::SwRouteDone { sw, port, vl } => self.sw_route_done(sw, port, vl),
            Ev::SwInputDeparted { sw, port, vl } => self.sw_input_departed(sw, port, vl),
            Ev::SwTryOutput { sw, port } => {
                self.switches[sw as usize][port as usize].retry_pending = false;
                self.sw_try_output(sw, port);
            }
            Ev::SwOutputDeparted { sw, port, vl } => self.sw_output_departed(sw, port, vl),
            Ev::CreditToSwitch { sw, port, vl } => {
                let p = &mut self.switches[sw as usize][port as usize];
                p.credits[vl as usize] += 1;
                debug_assert!(p.credits[vl as usize] <= self.cap);
                if P::COUNTERS {
                    self.probe.credit_stall_end(self.now, sw, port, vl);
                }
                self.sw_try_output(sw, port);
            }
            Ev::CreditToNode { node, vl } => {
                let n = &mut self.nodes[node as usize];
                n.credits[vl as usize] += 1;
                debug_assert!(n.credits[vl as usize] <= self.cap);
                self.try_node_send(node);
            }
            Ev::Deliver { node, vl, pkt } => self.deliver(node, vl, pkt),
            Ev::SwDiscardDone { sw, port, vl } => self.sw_discard_done(sw, port, vl),
            Ev::WlArm { node, msg } => self.wl_arm(node, msg),
            Ev::FaultApply { fault } => self.fault_apply(fault),
            Ev::SwReprogram { fault, sw } => self.sw_reprogram(fault, sw),
        }
    }

    // ----- fault injection ---------------------------------------------

    /// Schedule the compiled fault plan into the event queue: per fault,
    /// one `FaultApply` at the fault instant and one `SwReprogram` per
    /// patched switch at the reprogram instant. Called once, right after
    /// injection priming, by the sequential run loops; the parallel and
    /// distributed engines seed their shard calendars with the same
    /// events under synthetic deterministic keys instead.
    pub(crate) fn schedule_fault_events(&mut self) {
        let Some(rt) = self.faults.as_ref().and_then(|f| f.runtime.clone()) else {
            return;
        };
        for (fi, cf) in rt.faults.iter().enumerate() {
            let fault = fi as u32;
            self.queue.schedule(cf.at, Ev::FaultApply { fault });
            for &(sw, _) in &cf.patches {
                self.queue
                    .schedule(cf.reprogram_at, Ev::SwReprogram { fault, sw });
            }
        }
    }

    /// Discard a packet whose header arrived through a dead port (or at a
    /// powered-off switch): it never occupies an input buffer, so no
    /// credit returns — the upstream sender leaks that credit, which is
    /// exactly as deterministic as the wire it lost.
    fn fault_drop_arrival(&mut self, sw: u32, pkt: PacketId) {
        self.dropped += 1;
        if P::COUNTERS {
            self.probe.sw_drop(self.now, sw);
        }
        self.record(pkt, TraceEvent::Dropped { sw });
        self.slab.remove(pkt);
        self.faults.as_mut().expect("fault drop without state").lost += 1;
    }

    /// A scheduled fault fires: copy the compiled post-fault dead-port
    /// masks into the live state. Packets already buffered or in flight
    /// are untouched here — the guards on the arrival/routing/departure
    /// paths react to the new masks as those packets progress.
    fn fault_apply(&mut self, fault: u32) {
        // Fault events are control-plane bookkeeping shared by every
        // engine shard; keeping them out of the event count keeps
        // `events_processed` identical across thread/process counts.
        self.events_processed -= 1;
        let f = self.faults.as_mut().expect("fault event without state");
        let rt = f.runtime.clone().expect("fault event without runtime");
        let cf = &rt.faults[fault as usize];
        f.sw_dead.copy_from_slice(&cf.sw_dead);
        f.sw_killed.copy_from_slice(&cf.sw_killed);
    }

    /// The SM's reprogramming of one switch lands: apply the fault's LFT
    /// patches to the flattened table, then rescue input heads parked on
    /// an output that is dead (or whose grant signal — an output
    /// departure — can never come because the output buffer drained while
    /// the port was dead): reset them to the routing stage so they look
    /// up the freshly patched table.
    fn sw_reprogram(&mut self, fault: u32, sw: u32) {
        self.events_processed -= 1;
        let st = self.faults.as_ref().expect("fault event without state");
        let rt = st.runtime.clone().expect("fault event without runtime");
        let cf = &rt.faults[fault as usize];
        let patches = cf
            .patches
            .iter()
            .find(|(s, _)| *s == sw)
            .map(|(_, p)| p.as_slice())
            .unwrap_or(&[]);
        match &mut self.route {
            RouteState::Table { lft, stride } => {
                let row = &mut lft[sw as usize * *stride..(sw as usize + 1) * *stride];
                for &(lid, port) in patches {
                    row[lid as usize] = port;
                }
            }
            RouteState::TableView {
                row_of,
                lft,
                stride,
            } => {
                let r = row_of[sw as usize];
                debug_assert_ne!(r, u32::MAX, "reprogramming an unowned switch");
                if r != u32::MAX {
                    let row = &mut lft[r as usize * *stride..(r as usize + 1) * *stride];
                    for &(lid, port) in patches {
                        row[lid as usize] = port;
                    }
                }
            }
            RouteState::Oracle(_) => unreachable!("fault plans require the table backend"),
        }
        let st = self.faults.as_ref().expect("checked above");
        if st.sw_killed[sw as usize] {
            return; // tables updated for a later revive; nothing to rescue
        }
        let dead_mask = st.sw_dead[sw as usize];
        let num_ports = self.switches[sw as usize].len() as u8;
        let mut rescued = 0u64;
        for in_port in 0..num_ports {
            for vl in 0..self.num_vls as u8 {
                let Some(head) = self.switches[sw as usize][in_port as usize].in_q[vl as usize]
                    .front()
                    .copied()
                else {
                    continue;
                };
                let InState::Waiting(out) = head.state else {
                    continue;
                };
                let out_dead = dead_mask & (1u64 << out) != 0;
                let out_idle =
                    self.switches[sw as usize][out as usize].out_q[vl as usize].is_empty();
                if !(out_dead || out_idle) {
                    continue; // a live departure on `out` will grant it
                }
                let w = &mut self.switches[sw as usize][out as usize].waiters[vl as usize];
                if let Some(pos) = w.iter().position(|&p| p == in_port) {
                    w.remove(pos);
                }
                self.switches[sw as usize][in_port as usize].in_q[vl as usize]
                    .front_mut()
                    .expect("checked nonempty")
                    .state = InState::Routing;
                if P::COUNTERS {
                    self.probe.xmit_wait_end(self.now, sw, in_port, vl);
                }
                self.queue.schedule_chain(
                    ChainClass::Route,
                    self.now + self.route_ns,
                    Ev::SwRouteDone {
                        sw,
                        port: in_port,
                        vl,
                    },
                );
                rescued += 1;
            }
        }
        self.faults.as_mut().expect("checked above").rerouted += rescued;
    }

    /// Append a flight-recorder event for a traced packet.
    #[inline]
    fn record(&mut self, pkt: PacketId, ev: TraceEvent) {
        if self.cfg.trace_first_packets == 0 {
            return;
        }
        let slot = self.trace_slots[pkt as usize];
        if slot != u32::MAX {
            self.traces[slot as usize].events.push((self.now, ev));
        }
    }

    /// Bind a packet id to a flight-recorder slot (`u32::MAX` = untraced).
    /// Must be called at every slab insert while tracing, because slab ids
    /// are reused and the side table would otherwise go stale.
    #[inline]
    pub(crate) fn set_trace_slot(&mut self, pkt: PacketId, slot: u32) {
        if self.cfg.trace_first_packets == 0 {
            return;
        }
        let i = pkt as usize;
        if i >= self.trace_slots.len() {
            self.trace_slots.resize(i + 1, u32::MAX);
        }
        self.trace_slots[i] = slot;
    }

    // ----- end-node behaviour ------------------------------------------

    fn inject(&mut self, node: u32) {
        let (payload, next_at) = if self.scripted_inj.is_some() {
            self.next_scripted_injection(node)
        } else {
            self.draw_injection(node)
        };
        if let Some(p) = payload {
            self.apply_injection(node, p);
        }
        if let Some(at) = next_at {
            self.queue.schedule(at, Ev::Inject { node });
        }
    }

    /// The RNG half of an injection: sample the pattern, pick the DLID
    /// and VL, assign the flight-recorder slot and flow sequence number,
    /// and draw the next generation instant. Consumes random numbers in
    /// exactly the order the pre-split `inject` did (the injection-side
    /// draws are the simulator's only RNG consumers, which is what lets
    /// the parallel engine replay them in a sequential pre-pass).
    ///
    /// Returns the payload (`None` = the pattern silenced the node) and
    /// the next `Inject` fire time (`None` = no further generation).
    pub(crate) fn draw_injection(&mut self, node: u32) -> (Option<InjectPayload>, Option<Time>) {
        let num_nodes = self.nodes.len() as u32;
        let src = NodeId(node);
        let dst = self.pattern.sample(src, num_nodes, &mut self.rng);
        let Some(dst) = dst else {
            // Silent under this pattern: stop generating.
            self.nodes[node as usize].active = false;
            return (None, None);
        };
        let dlid = match self.cfg.path_selection {
            PathSelection::Paper => self.routing.select_dlid(src, dst),
            PathSelection::RandomPerPacket => {
                let space = self.routing.lid_space();
                let offset = self.rng.gen_range(0..space.lids_per_node());
                space.lid_with_offset(dst, offset)
            }
            PathSelection::RoundRobinPerSource => {
                let space = self.routing.lid_space();
                let st = &mut self.nodes[node as usize];
                let offset = st.rr_offset % space.lids_per_node();
                st.rr_offset = st.rr_offset.wrapping_add(1);
                space.lid_with_offset(dst, offset)
            }
        };
        let vl = match self.cfg.vl_assignment {
            VlAssignment::Random => self.rng.gen_range(0..self.num_vls) as u8,
            VlAssignment::DestinationHash => (dst.0 as usize % self.num_vls) as u8,
            VlAssignment::SourceHash => (node as usize % self.num_vls) as u8,
        };
        // Slot assignment is a pure function of (pattern draw, sampling
        // policy, slots already taken) — no RNG, no time — so the
        // parallel engine's sequential injection pre-pass reproduces the
        // exact same slots at any thread count.
        let trace_slot = if (self.traces.len() as u32) < self.cfg.trace_first_packets
            && self.cfg.trace_sampling.samples(node, dst.0, self.cfg.seed)
        {
            self.traces.push(PacketTrace {
                src: node,
                dst: dst.0,
                dlid: dlid.0,
                vl,
                events: Vec::new(),
            });
            (self.traces.len() - 1) as u32
        } else {
            u32::MAX
        };
        let flow = (node as usize * self.nodes.len() + dst.index()) * self.num_vls + vl as usize;
        let flow_seq = self.flow_next_seq[flow];
        self.flow_next_seq[flow] += 1;

        // Draw the next generation instant. (No RNG consumer sits between
        // this draw and the pre-split code's position for it, so the
        // stream order is unchanged.)
        let next = match self.cfg.injection {
            InjectionProcess::Deterministic => {
                self.nodes[node as usize].next_gen + self.interarrival_ns
            }
            InjectionProcess::Poisson => {
                let u: f64 = self.rng.gen_range(f64::EPSILON..1.0);
                self.now as f64 - self.interarrival_ns * u.ln()
            }
        };
        self.nodes[node as usize].next_gen = next;
        let at = next as Time;
        // A node whose leaf switch is scheduled to die stops generating
        // at the kill instant. The cut-off is a pure function of
        // (network, fault plan), so the parallel engine's sequential
        // injection pre-pass replays it bit-for-bit.
        let horizon = self.faults.as_ref().map_or(self.sim_time_ns, |f| {
            self.sim_time_ns.min(f.node_kill[node as usize])
        });
        let next_at = (at < horizon).then(|| at.max(self.now));
        (
            Some(InjectPayload {
                dlid,
                vl,
                flow_seq,
                trace_slot,
            }),
            next_at,
        )
    }

    /// Consume the next pre-drawn injection for `node` (parallel shards).
    fn next_scripted_injection(&mut self, node: u32) -> (Option<InjectPayload>, Option<Time>) {
        let script = self.scripted_inj.as_mut().expect("scripted mode checked");
        let rec = script[node as usize]
            .pop_front()
            .expect("scripted injection underrun");
        debug_assert_eq!(rec.at, self.now, "scripted injection fired off-schedule");
        if rec.payload.is_none() {
            self.nodes[node as usize].active = false;
        }
        let next_at = script[node as usize].front().map(|r| r.at);
        (rec.payload, next_at)
    }

    /// The deterministic half of an injection: materialize the packet and
    /// start the source queue, given a pre-drawn payload.
    pub(crate) fn apply_injection(&mut self, node: u32, p: InjectPayload) {
        let pkt = self.slab.insert(Packet {
            src: node,
            dlid: p.dlid,
            vl: p.vl,
            t_gen: self.now,
            t_inject: 0,
            flow_seq: p.flow_seq,
        });
        self.set_trace_slot(pkt, p.trace_slot);
        self.record(pkt, TraceEvent::Generated);
        self.total_generated += 1;
        if self.now >= self.warmup_ns {
            self.generated_in_window += 1;
        }
        self.nodes[node as usize].inj_q[p.vl as usize].push_back(pkt);
        self.try_node_send(node);
    }

    pub(crate) fn try_node_send(&mut self, node: u32) {
        let num_vls = self.num_vls;
        let n = &mut self.nodes[node as usize];
        let sendable = |n: &NodeSt, vl: usize| !n.inj_q[vl].is_empty() && n.credits[vl] > 0;
        if n.busy_until > self.now {
            if !n.retry_pending && (0..num_vls).any(|vl| sendable(n, vl)) {
                n.retry_pending = true;
                self.queue.schedule(n.busy_until, Ev::TryNodeSend { node });
            }
            return;
        }
        // VL arbitration on the injection link, mirroring the switches'
        // egress arbitration (weighted tables included).
        let mask: u16 = (0..num_vls)
            .filter(|&vl| sendable(n, vl))
            .fold(0, |m, vl| m | (1 << vl));
        let Some(vl) = n
            .arb
            .grant(&self.arb_table, |vl| mask & (1 << vl) != 0)
            .map(usize::from)
        else {
            return; // woken by CreditToNode or the next Inject
        };
        // Start transmission.
        let head = n.inj_q[vl].pop_front().expect("checked nonempty");
        n.credits[vl] -= 1;
        let tx_end = self.now + self.pkt_ns;
        n.busy_until = tx_end;
        n.busy_ns += self.pkt_ns.min(self.sim_time_ns - self.now);
        let (sw, port) = (n.peer_sw, n.peer_port);
        self.slab.get_mut(head).t_inject = self.now;
        self.record(head, TraceEvent::InjectionStart);
        if self.wl.is_some() {
            self.wl_note_injected(head);
        }
        if P::COUNTERS {
            self.probe
                .node_xmit(self.now, node, vl as u8, self.cfg.packet_bytes);
        }
        self.queue.schedule_chain(
            ChainClass::Fly,
            self.now + self.fly,
            Ev::SwHeaderArrive {
                sw,
                port,
                vl: vl as u8,
                pkt: head,
            },
        );
        // The next queued packet can follow once the link is clear.
        self.queue
            .schedule_chain(ChainClass::Pkt, tx_end, Ev::TryNodeSend { node });
        self.nodes[node as usize].retry_pending = true;
    }

    fn deliver(&mut self, node: u32, vl: u8, pkt: PacketId) {
        self.record(pkt, TraceEvent::Delivered);
        let p = self.slab.remove(pkt);
        debug_assert_eq!(
            self.routing.lid_space().resolve(p.dlid).map(|(n, _)| n.0),
            Some(node),
            "packet delivered to a node that does not own its DLID"
        );
        {
            let flow =
                (p.src as usize * self.nodes.len() + node as usize) * self.num_vls + vl as usize;
            let last = &mut self.flow_delivered[flow];
            if *last != u32::MAX && p.flow_seq < *last {
                self.out_of_order += 1;
            } else {
                *last = p.flow_seq;
            }
        }
        self.total_delivered += 1;
        if self.now >= self.warmup_ns {
            self.delivered_in_window += 1;
            self.delivered_bytes_in_window += u64::from(self.cfg.packet_bytes);
            if p.t_gen >= self.warmup_ns {
                self.latency.record(self.now - p.t_gen);
                self.network_latency.record(self.now - p.t_inject);
            }
        }
        if P::COUNTERS {
            self.probe.node_rcv(
                self.now,
                node,
                vl,
                self.cfg.packet_bytes,
                self.now - p.t_gen,
            );
        }
        // Immediate consumption: the endport buffer frees now; the credit
        // flies back to the leaf switch.
        let n = &self.nodes[node as usize];
        self.queue.schedule_chain(
            ChainClass::Fly,
            self.now + self.fly,
            Ev::CreditToSwitch {
                sw: n.peer_sw,
                port: n.peer_port,
                vl,
            },
        );
        if self.wl.is_some() {
            self.wl_note_delivered(pkt);
        }
    }

    // ----- switch behaviour --------------------------------------------

    fn sw_header_arrive(&mut self, sw: u32, port: u8, vl: u8, pkt: PacketId) {
        if let Some(f) = &self.faults {
            // Under the drop policy a packet that was mid-wire when its
            // link died is lost on arrival. Under the stall policy the
            // wire is lossless: the packet buffers normally and only
            // the (repaired) tables steer future traffic away.
            if f.sw_dead[sw as usize] & (1u64 << port) != 0
                && matches!(f.policy, crate::FaultPolicy::Drop)
            {
                self.fault_drop_arrival(sw, pkt);
                return;
            }
        }
        self.record(pkt, TraceEvent::HeaderArrive { sw, port });
        let p = &mut self.switches[sw as usize][port as usize];
        let q = &mut p.in_q[vl as usize];
        debug_assert!(
            q.len() < self.cap as usize,
            "credit protocol overflowed an input buffer"
        );
        q.push_back(InEntry {
            pkt,
            state: InState::Routing,
        });
        let depth = q.len();
        if P::COUNTERS {
            self.probe
                .sw_rcv(self.now, sw, port, vl, self.cfg.packet_bytes, depth as u8);
        }
        if depth == 1 {
            self.queue.schedule_chain(
                ChainClass::Route,
                self.now + self.route_ns,
                Ev::SwRouteDone { sw, port, vl },
            );
        }
    }

    fn sw_route_done(&mut self, sw: u32, port: u8, vl: u8) {
        let Some(head) = self.switches[sw as usize][port as usize].in_q[vl as usize]
            .front()
            .copied()
        else {
            debug_assert!(false, "route-done with empty input buffer");
            self.invariant_err = Some(SimError::EngineInvariant(format!(
                "route-done with empty input buffer (switch {sw}, port {port}, \
                 vl {vl}, t={})",
                self.now
            )));
            return;
        };
        debug_assert_eq!(head.state, InState::Routing);
        let dlid = self.slab.get(head.pkt).dlid;
        let out_port = match &self.route {
            RouteState::Table { lft, stride } => lft[sw as usize * stride + dlid.index()],
            RouteState::TableView {
                row_of,
                lft,
                stride,
            } => {
                let row = row_of[sw as usize];
                debug_assert_ne!(row, u32::MAX, "routing through an unowned switch");
                if row == u32::MAX {
                    u8::MAX
                } else {
                    lft[row as usize * stride + dlid.index()]
                }
            }
            RouteState::Oracle(o) => o
                .route_hop(ibfat_topology::SwitchId(sw), dlid)
                .map_or(u8::MAX, |p| p.0 - 1),
        };
        if out_port == u8::MAX {
            // No LFT entry (possible on degraded fabrics): the switch
            // discards the packet, per IBA semantics. The input buffer
            // frees once the tail has fully arrived; model that as the
            // remaining serialization time from now (the header has been
            // in the buffer for exactly `route_ns`).
            self.dropped += 1;
            if P::COUNTERS {
                self.probe.sw_drop(self.now, sw);
            }
            self.record(head.pkt, TraceEvent::Dropped { sw });
            self.slab.remove(head.pkt);
            let head_mut = self.switches[sw as usize][port as usize].in_q[vl as usize]
                .front_mut()
                .expect("checked nonempty");
            head_mut.state = InState::Departing;
            let drain = self.pkt_ns.saturating_sub(self.route_ns);
            self.queue
                .schedule(self.now + drain, Ev::SwDiscardDone { sw, port, vl });
            return;
        }
        // Adaptive upward routing: any parent reaches every destination
        // that is not below this switch, so a climbing packet may take the
        // least-occupied up-port instead of the designated one.
        let out_port = if self.cfg.adaptive_up {
            self.adaptive_out_port(sw, vl, out_port)
        } else {
            out_port
        };
        // The table still names a dead output in the window between a
        // fault and the SM's reprogram of this switch. Drop policy:
        // discard exactly like a missing LFT entry. Stall policy: park
        // the head; `sw_reprogram` re-routes it against the patched
        // table.
        if let Some(f) = &self.faults {
            if f.sw_dead[sw as usize] & (1u64 << out_port) != 0 {
                let drop = matches!(f.policy, crate::FaultPolicy::Drop);
                if drop {
                    self.dropped += 1;
                    if P::COUNTERS {
                        self.probe.sw_drop(self.now, sw);
                    }
                    self.record(head.pkt, TraceEvent::Dropped { sw });
                    self.slab.remove(head.pkt);
                    let head_mut = self.switches[sw as usize][port as usize].in_q[vl as usize]
                        .front_mut()
                        .expect("checked nonempty");
                    head_mut.state = InState::Departing;
                    let drain = self.pkt_ns.saturating_sub(self.route_ns);
                    self.queue
                        .schedule(self.now + drain, Ev::SwDiscardDone { sw, port, vl });
                    self.faults.as_mut().expect("checked above").lost += 1;
                } else {
                    let head_mut = self.switches[sw as usize][port as usize].in_q[vl as usize]
                        .front_mut()
                        .expect("checked nonempty");
                    head_mut.state = InState::Waiting(out_port);
                    self.switches[sw as usize][out_port as usize].waiters[vl as usize]
                        .push_back(port);
                    if P::COUNTERS {
                        self.probe.xmit_wait_start(self.now, sw, port, vl, out_port);
                    }
                    self.faults.as_mut().expect("checked above").stalled += 1;
                }
                return;
            }
        }
        self.record(head.pkt, TraceEvent::Routed { sw, out_port });
        self.sw_request_output(sw, port, vl, out_port);
    }

    /// Pick the best up-port for a climbing packet: prefer output buffers
    /// with space, then fewer queued packets, then available credits; the
    /// scan starts at the designated port so ties keep the table's choice.
    fn adaptive_out_port(&self, sw: u32, vl: u8, designated: u8) -> u8 {
        let first_up = self.up_ports_from[sw as usize];
        if first_up == u8::MAX || designated < first_up {
            return designated; // descending (or a root): the path is forced
        }
        let ports = &self.switches[sw as usize];
        let m = ports.len() as u8;
        let score = |port: u8| -> u32 {
            let p = &ports[port as usize];
            let q = p.out_q[vl as usize].len() as u32;
            let no_space = u32::from(q >= self.cap as u32);
            let no_credit = u32::from(p.credits[vl as usize] == 0);
            (no_space << 16) + (q << 1) + no_credit
        };
        let span = m - first_up;
        let mut best = designated;
        let mut best_score = score(designated);
        for i in 1..span {
            let port = first_up + (designated - first_up + i) % span;
            let s = score(port);
            if s < best_score {
                best = port;
                best_score = s;
            }
        }
        best
    }

    /// A discarded packet's tail has fully arrived; free the buffer and
    /// return the credit, then route the next head if any.
    fn sw_discard_done(&mut self, sw: u32, port: u8, vl: u8) {
        // Identical bookkeeping to a departure, except the packet is gone.
        self.sw_input_departed(sw, port, vl);
    }

    /// The routed head of input `(port, vl)` requests output `out_port`.
    fn sw_request_output(&mut self, sw: u32, in_port: u8, vl: u8, out_port: u8) {
        let ports = &mut self.switches[sw as usize];
        let has_space = ports[out_port as usize].out_q[vl as usize].len() < self.cap as usize;
        if has_space {
            let head = ports[in_port as usize].in_q[vl as usize]
                .front_mut()
                .expect("granting an empty input");
            let was_waiting = matches!(head.state, InState::Waiting(_));
            head.state = InState::Departing;
            let pkt = head.pkt;
            ports[out_port as usize].out_q[vl as usize].push_back(OutEntry {
                pkt,
                transmitting: false,
            });
            if P::COUNTERS {
                let depth = ports[out_port as usize].out_q[vl as usize].len() as u8;
                if was_waiting {
                    self.probe.xmit_wait_end(self.now, sw, in_port, vl);
                }
                self.probe.out_buffer_depth(sw, out_port, vl, depth);
            }
            self.record(pkt, TraceEvent::Granted { sw, out_port });
            self.queue.schedule_chain(
                ChainClass::Pkt,
                self.now + self.pkt_ns,
                Ev::SwInputDeparted {
                    sw,
                    port: in_port,
                    vl,
                },
            );
            self.sw_try_output(sw, out_port);
        } else {
            let head = ports[in_port as usize].in_q[vl as usize]
                .front_mut()
                .expect("blocking an empty input");
            head.state = InState::Waiting(out_port);
            ports[out_port as usize].waiters[vl as usize].push_back(in_port);
            if P::COUNTERS {
                self.probe
                    .xmit_wait_start(self.now, sw, in_port, vl, out_port);
            }
        }
    }

    fn sw_input_departed(&mut self, sw: u32, port: u8, vl: u8) {
        let p = &mut self.switches[sw as usize][port as usize];
        let gone = p.in_q[vl as usize]
            .pop_front()
            .expect("departed from empty");
        debug_assert_eq!(gone.state, InState::Departing);
        let upstream = p.peer;
        let next_head = p.in_q[vl as usize].front().copied();
        // The freed buffer's credit flies back to whoever feeds this port.
        match upstream {
            PeerRef::SwitchPort {
                sw: usw,
                port: uport,
            } => self.queue.schedule_chain(
                ChainClass::Fly,
                self.now + self.fly,
                Ev::CreditToSwitch {
                    sw: usw,
                    port: uport,
                    vl,
                },
            ),
            PeerRef::Node { node } => self.queue.schedule_chain(
                ChainClass::Fly,
                self.now + self.fly,
                Ev::CreditToNode { node, vl },
            ),
            PeerRef::Dead => unreachable!("packets never arrive through a failed port"),
        }
        // The next buffered packet (fully or partially arrived) becomes
        // head and enters the routing stage.
        if let Some(entry) = next_head {
            debug_assert_eq!(entry.state, InState::Routing);
            self.queue.schedule_chain(
                ChainClass::Route,
                self.now + self.route_ns,
                Ev::SwRouteDone { sw, port, vl },
            );
        }
    }

    fn sw_try_output(&mut self, sw: u32, port: u8) {
        let num_vls = self.num_vls;
        let p = &mut self.switches[sw as usize][port as usize];
        // Anything eligible at all?
        let eligible = |p: &SwPort, vl: usize| {
            p.credits[vl] > 0 && p.out_q[vl].front().is_some_and(|head| !head.transmitting)
        };
        if p.busy_until > self.now {
            if !p.retry_pending && (0..num_vls).any(|vl| eligible(p, vl)) {
                p.retry_pending = true;
                self.queue
                    .schedule(p.busy_until, Ev::SwTryOutput { sw, port });
            }
            return;
        }
        // VL arbitration (round-robin or weighted table).
        let mask: u16 = (0..num_vls)
            .filter(|&vl| eligible(p, vl))
            .fold(0, |m, vl| m | (1 << vl));
        let granted = p
            .arb
            .grant(&self.arb_table, |vl| mask & (1 << vl) != 0)
            .map(usize::from);
        if let Some(vl) = granted {
            let head = p.out_q[vl].front_mut().expect("checked nonempty");
            head.transmitting = true;
            let pkt = head.pkt;
            p.credits[vl] -= 1;
            let tx_end = self.now + self.pkt_ns;
            let tx_record = pkt;
            p.busy_until = tx_end;
            p.busy_ns += self.pkt_ns.min(self.sim_time_ns - self.now);
            let peer = p.peer;
            self.queue.schedule_chain(
                ChainClass::Pkt,
                tx_end,
                Ev::SwOutputDeparted {
                    sw,
                    port,
                    vl: vl as u8,
                },
            );
            match peer {
                PeerRef::SwitchPort {
                    sw: dsw,
                    port: dport,
                } => self.queue.schedule_chain(
                    ChainClass::Fly,
                    self.now + self.fly,
                    Ev::SwHeaderArrive {
                        sw: dsw,
                        port: dport,
                        vl: vl as u8,
                        pkt,
                    },
                ),
                PeerRef::Node { node } => self.queue.schedule_chain(
                    ChainClass::FlyPkt,
                    self.now + self.fly + self.pkt_ns,
                    Ev::Deliver {
                        node,
                        vl: vl as u8,
                        pkt,
                    },
                ),
                PeerRef::Dead => panic!("routing forwarded a packet into a failed port"),
            }
            self.record(tx_record, TraceEvent::TransmitStart { sw, out_port: port });
            if P::COUNTERS {
                self.probe
                    .sw_xmit(self.now, sw, port, vl as u8, self.cfg.packet_bytes);
            }
        }
        if P::COUNTERS || self.cfg.trace_first_packets > 0 {
            // Credit-stall detection at this arbitration instant: a VL
            // whose head is ready but holds no credits is stalled on
            // link-level flow control (ended by `CreditToSwitch`). Both
            // the probe and the flight recorder observe it; recording
            // mutates nothing but the trace buffer, so a recorded run
            // stays bit-identical to an unrecorded one.
            let p = &self.switches[sw as usize][port as usize];
            let mut stalled: u16 = 0;
            let mut heads: [PacketId; 16] = [0; 16];
            for (vl, head) in heads.iter_mut().enumerate().take(num_vls) {
                if p.credits[vl] == 0 {
                    if let Some(h) = p.out_q[vl].front() {
                        if !h.transmitting {
                            stalled |= 1 << vl;
                            *head = h.pkt;
                        }
                    }
                }
            }
            for (vl, &head) in heads.iter().enumerate().take(num_vls) {
                if stalled & (1 << vl) != 0 {
                    if P::COUNTERS {
                        self.probe.credit_stall_start(self.now, sw, port, vl as u8);
                    }
                    self.record(head, TraceEvent::CreditStalled { sw, out_port: port });
                }
            }
        }
    }

    fn sw_output_departed(&mut self, sw: u32, port: u8, vl: u8) {
        // While the port is dead, parked heads must not be granted into
        // it — they stay in the waiter queue for `sw_reprogram` to
        // re-route.
        let fault_dead = self
            .faults
            .as_ref()
            .is_some_and(|f| f.sw_dead[sw as usize] & (1u64 << port) != 0);
        let p = &mut self.switches[sw as usize][port as usize];
        let gone = p.out_q[vl as usize]
            .pop_front()
            .expect("departed from empty");
        debug_assert!(gone.transmitting);
        // Space freed: grant the oldest waiter for this (port, vl), if any.
        if fault_dead {
            // The link is still free for other buffered VLs to drain.
            self.sw_try_output(sw, port);
            return;
        }
        if let Some(in_port) = p.waiters[vl as usize].pop_front() {
            let head = self.switches[sw as usize][in_port as usize].in_q[vl as usize]
                .front()
                .copied()
                .expect("waiter with empty input");
            debug_assert_eq!(head.state, InState::Waiting(port));
            self.sw_request_output(sw, in_port, vl, port);
        }
        // The link is free exactly now; another VL may proceed.
        self.sw_try_output(sw, port);
    }

    // ----- reporting ----------------------------------------------------

    fn report(self, wall_secs: f64) -> (SimReport, P) {
        let window = (self.sim_time_ns - self.warmup_ns) as f64;
        let nodes = self.nodes.len() as f64;
        let accepted = self.delivered_bytes_in_window as f64 / window / nodes;
        let offered = self.cfg.packet_bytes as f64 / self.interarrival_ns;

        let mut total_busy = 0u64;
        let mut max_busy = 0u64;
        let mut links = 0u64;
        for ports in &self.switches {
            for p in ports {
                total_busy += p.busy_ns;
                max_busy = max_busy.max(p.busy_ns);
                links += 1;
            }
        }
        for n in &self.nodes {
            total_busy += n.busy_ns;
            max_busy = max_busy.max(n.busy_ns);
            links += 1;
        }
        let span = self.sim_time_ns as f64;

        let link_utilization = self.cfg.collect_link_stats.then(|| {
            let mut out = Vec::new();
            for (sw, ports) in self.switches.iter().enumerate() {
                for (port, p) in ports.iter().enumerate() {
                    out.push(crate::metrics::LinkUse {
                        from: format!("S{sw}"),
                        port: port as u8 + 1,
                        utilization: p.busy_ns as f64 / span,
                    });
                }
            }
            for (n, node) in self.nodes.iter().enumerate() {
                out.push(crate::metrics::LinkUse {
                    from: format!("N{n}"),
                    port: 1,
                    utilization: node.busy_ns as f64 / span,
                });
            }
            out
        });

        let report = SimReport {
            offered_load: self.offered_load,
            sim_time_ns: self.sim_time_ns,
            warmup_ns: self.warmup_ns,
            generated: self.generated_in_window,
            dropped: self.dropped,
            total_generated: self.total_generated,
            total_delivered: self.total_delivered,
            delivered: self.delivered_in_window,
            delivered_bytes: self.delivered_bytes_in_window,
            in_flight_at_end: self.slab.live() as u64,
            accepted_bytes_per_ns_per_node: accepted,
            offered_bytes_per_ns_per_node: offered,
            latency: self.latency,
            network_latency: self.network_latency,
            events_processed: self.events_processed,
            events_per_sec: if wall_secs > 0.0 {
                self.events_processed as f64 / wall_secs
            } else {
                0.0
            },
            packets_per_sec: if wall_secs > 0.0 {
                self.total_delivered as f64 / wall_secs
            } else {
                0.0
            },
            mean_link_utilization: total_busy as f64 / (links as f64 * span),
            max_link_utilization: max_busy as f64 / span,
            link_utilization,
            traces: (self.cfg.trace_first_packets > 0).then_some(self.traces),
            out_of_order: self.out_of_order,
            fault_lost: self.faults.as_ref().map_or(0, |f| f.lost),
            fault_stalled: self.faults.as_ref().map_or(0, |f| f.stalled),
            fault_rerouted: self.faults.as_ref().map_or(0, |f| f.rerouted),
        };
        recycle_queues(self.switches, self.nodes);
        (report, self.probe)
    }
}

/// Classify an event by the pipeline stage it advances (self-profiling).
pub(crate) fn phase_of(ev: &Ev) -> Phase {
    match ev {
        Ev::Inject { .. } | Ev::TryNodeSend { .. } | Ev::CreditToNode { .. } | Ev::WlArm { .. } => {
            Phase::Generation
        }
        Ev::SwHeaderArrive { .. }
        | Ev::SwRouteDone { .. }
        | Ev::SwInputDeparted { .. }
        | Ev::SwDiscardDone { .. }
        | Ev::FaultApply { .. }
        | Ev::SwReprogram { .. } => Phase::Routing,
        Ev::SwTryOutput { .. } | Ev::SwOutputDeparted { .. } | Ev::CreditToSwitch { .. } => {
            Phase::Arbitration
        }
        Ev::Deliver { .. } => Phase::Delivery,
    }
}
