//! Wall-clock throughput of the discrete-event engine: how fast the
//! simulator chews through a fixed amount of simulated fabric time at a
//! moderate load. The interesting figure is simulated-ns per wall-second,
//! which criterion exposes via the per-iteration time of a fixed 50 µs
//! simulation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ib_fabric::prelude::*;
use ib_fabric::sim::{run_once, RunSpec};
use std::hint::black_box;

fn bench_sim(c: &mut Criterion) {
    let mut group = c.benchmark_group("sim_50us");
    group.sample_size(10);
    for (m, n) in [(4, 3), (8, 3), (16, 2)] {
        let fabric = Fabric::builder(m, n).build().unwrap();
        for vls in [1u8, 4] {
            group.bench_function(
                BenchmarkId::new(format!("{m}x{n}"), format!("vl{vls}")),
                |b| {
                    b.iter(|| {
                        let report = run_once(
                            fabric.network(),
                            fabric.routing(),
                            SimConfig::paper(vls),
                            TrafficPattern::Uniform,
                            RunSpec::new(0.5, 50_000),
                        );
                        black_box(report.events_processed)
                    })
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_sim);
criterion_main!(benches);
