/root/repo/target/release/deps/ibfat_repro-ce4c55cbce627f31.d: src/lib.rs

/root/repo/target/release/deps/ibfat_repro-ce4c55cbce627f31: src/lib.rs

src/lib.rs:
