/root/repo/target/debug/deps/api_surface-49e5e62b85be6eb4.d: crates/core/tests/api_surface.rs Cargo.toml

/root/repo/target/debug/deps/libapi_surface-49e5e62b85be6eb4.rmeta: crates/core/tests/api_surface.rs Cargo.toml

crates/core/tests/api_surface.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
