/root/repo/target/debug/deps/proptests-7e24ec2c3cbd3eb1.d: crates/sm/tests/proptests.rs

/root/repo/target/debug/deps/proptests-7e24ec2c3cbd3eb1: crates/sm/tests/proptests.rs

crates/sm/tests/proptests.rs:
