/root/repo/target/debug/deps/sim_behavior-243e415398cb599f.d: crates/sim/tests/sim_behavior.rs

/root/repo/target/debug/deps/sim_behavior-243e415398cb599f: crates/sim/tests/sim_behavior.rs

crates/sim/tests/sim_behavior.rs:
