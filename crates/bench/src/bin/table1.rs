//! Regenerates **Table 1** of the paper: the simulated network sizes.
//!
//! ```text
//! cargo run --release -p bench --bin table1
//! ```

fn main() {
    let rows = bench::table1();
    println!("Table 1: simulated m-port n-tree InfiniBand networks");
    println!(
        "{:>6} {:>4} {:>7} {:>9} {:>7} {:>5} {:>14} {:>10}",
        "ports", "n", "nodes", "switches", "links", "LMC", "LIDs/node", "max paths"
    );
    for r in &rows {
        println!(
            "{:>6} {:>4} {:>7} {:>9} {:>7} {:>5} {:>14} {:>10}",
            r.m, r.n, r.nodes, r.switches, r.links, r.lmc, r.lids_per_node, r.max_paths
        );
    }
    println!(
        "\n(machine-readable: {})",
        serde_json::to_string(&rows).expect("rows serialize")
    );

    // Extension: the subnet-manager bring-up cost per size (directed-route
    // SMPs, serial timing per docs/MODEL.md constants).
    println!("\nSubnet bring-up (SM sweep + LID assignment + LFT install, serial SMPs):");
    println!(
        "{:>6} {:>4} {:>10} {:>12} {:>12}",
        "ports", "n", "SMPs", "time(ms)", "max hops"
    );
    for r in &rows {
        let params = ib_fabric::TreeParams::new(r.m, r.n).expect("valid");
        let net = ib_fabric::Network::mport_ntree(params);
        let (report, _) = ib_fabric::sm::time_bring_up(
            &net,
            ib_fabric::NodeId(0),
            ib_fabric::sm::MadCosts::default(),
        );
        println!(
            "{:>6} {:>4} {:>10} {:>12.2} {:>12}",
            r.m,
            r.n,
            report.total_smps(),
            report.total_time_ns as f64 / 1e6,
            report.max_route_hops
        );
    }
}
