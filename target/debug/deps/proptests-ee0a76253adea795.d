/root/repo/target/debug/deps/proptests-ee0a76253adea795.d: crates/sim/tests/proptests.rs

/root/repo/target/debug/deps/proptests-ee0a76253adea795: crates/sim/tests/proptests.rs

crates/sim/tests/proptests.rs:
