//! The multi-process execution seam: everything a worker *process*
//! needs to run a contiguous range of [`crate::ParSimulator`] shards
//! behind a byte-level message bridge, plus the parent-side helpers
//! that mirror the window protocol and merge the results.
//!
//! ## Shape
//!
//! The in-process engine runs one thread per shard and exchanges
//! [`Msg`]s through swap-buffered mailbox lanes. The multi-process
//! driver (`ibfat-driver`) instead assigns each worker process a
//! contiguous shard range `lo..hi`; the worker runs its shards
//! *sequentially* inside each synchronization window (shards share no
//! state within a window, so any execution order is exact) and performs
//! one bridge exchange per window: it submits its vote — the earliest
//! simulation time any of its shards still knows about — together with
//! its outbound cross-process message blobs, and receives the agreed
//! global minimum `g` plus its inbound blobs. The parent is a pure
//! router and clock: it never simulates, it only takes the min of the
//! votes, forwards blobs by destination, and mirrors the bound-update
//! formula ([`WindowClock`]) to know when every child breaks.
//!
//! ## Determinism contract
//!
//! The child loop replays `run_shard`'s discipline exactly — drain in
//! ascending source order (packet-slab insertion happens at drain, so
//! slab id sequences are reproduced), dispatch strictly below the
//! bound in lineage-key order, vote `min(next_local, in_flight_min)`,
//! adaptive bound jump `(g / W + 1) * W` — so per-shard state evolves
//! bit-identically to the threaded engine at any process count.
//! Reports are merged through the same [`merge_partials`] fold the
//! threaded engine uses. The only subtlety is the lineage tie-break
//! key: serialized [`EvKey`]s deserialize into fresh `Arc`s, so
//! `cmp_key` falls back to value equality (`(sched, tb)` plus
//! rootedness) when pointer identity fails — see its docs.
//!
//! ## Wire format
//!
//! Everything is hand-rolled little-endian (std only, no serde on the
//! hot path). Lineage keys are interned per ordered `(src shard, dst
//! shard)` channel: each key is encoded as the count of
//! not-yet-interned ancestors, a table reference for the deepest known
//! ancestor (`u32::MAX` = rootless), and the new `(sched, tb)` nodes
//! bottom-up. Sender and receiver grow their tables in lockstep
//! because blobs on a channel are produced and consumed in window
//! order, so an ancestry chain crosses the wire once, not once per
//! message.

use crate::engine::Time;
use crate::error::SimError;
use crate::metrics::{LatencyStats, SimReport};
use crate::packet::Packet;
use crate::par::{
    dispatch_window, injection_prepass, merge_partials, schedule_inbound, EvKey, Msg, MsgKind,
    ParEntry, ShardMap, ShardPartial, ShardQueue,
};
use crate::probe::NoopProbe;
use crate::sim::{Ev, InjectRec, Simulator};
use crate::telemetry::{ShardTelemetry, WindowRecord};
use crate::trace::TraceEvent;
use crate::{
    CalendarKind, InjectionProcess, PartitionKind, PathSelection, RouteBackend, SimConfig,
    TraceSampling, TrafficPattern, VlArbitration, VlAssignment, WindowPolicy,
};
use ibfat_routing::{Lid, Routing, RoutingKind};
use ibfat_topology::{Network, TreeParams};
use std::collections::{HashMap, VecDeque};
use std::sync::Arc;

/// Wire-format version, first byte of every [`DistSpec`] blob. Parent
/// and workers ship in one binary, so this only guards against a stale
/// `IBFAT_WORKER_EXE` pointing at an old build.
pub const WIRE_VERSION: u8 = 1;

fn bridge_err(msg: impl Into<String>) -> SimError {
    SimError::Bridge(msg.into())
}

// ---------------------------------------------------------------------
// Byte codec primitives (little-endian, std only)
// ---------------------------------------------------------------------

fn put_u8(o: &mut Vec<u8>, v: u8) {
    o.push(v);
}

fn put_u32(o: &mut Vec<u8>, v: u32) {
    o.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(o: &mut Vec<u8>, v: u64) {
    o.extend_from_slice(&v.to_le_bytes());
}

fn put_f64(o: &mut Vec<u8>, v: f64) {
    put_u64(o, v.to_bits());
}

fn put_bool(o: &mut Vec<u8>, v: bool) {
    put_u8(o, v as u8);
}

/// Checked little-endian reader over a received blob. Every read is
/// bounds-checked and surfaces [`SimError::Bridge`] instead of
/// panicking: a truncated or corrupt frame must fail the run cleanly.
struct Rd<'a> {
    b: &'a [u8],
    pos: usize,
}

impl<'a> Rd<'a> {
    fn new(b: &'a [u8]) -> Rd<'a> {
        Rd { b, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], SimError> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.b.len())
            .ok_or_else(|| bridge_err("truncated frame"))?;
        let s = &self.b[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, SimError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, SimError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, SimError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn f64(&mut self) -> Result<f64, SimError> {
        Ok(f64::from_bits(self.u64()?))
    }

    fn bool(&mut self) -> Result<bool, SimError> {
        Ok(self.u8()? != 0)
    }

    /// A u32 length prefix, sanity-capped so a corrupt frame cannot
    /// provoke a huge allocation before the bounds checks kick in.
    fn len(&mut self) -> Result<usize, SimError> {
        let n = self.u32()? as usize;
        if n > self
            .b
            .len()
            .saturating_sub(self.pos)
            .saturating_add(1 << 20)
        {
            return Err(bridge_err("implausible length prefix"));
        }
        Ok(n)
    }

    fn finish(self) -> Result<(), SimError> {
        if self.pos == self.b.len() {
            Ok(())
        } else {
            Err(bridge_err("trailing bytes after frame payload"))
        }
    }
}

// ---------------------------------------------------------------------
// DistSpec: the run description shipped to every worker
// ---------------------------------------------------------------------

/// Everything a worker process needs to reconstruct its slice of the
/// run: fabric parameters (workers rebuild the `Network` and a
/// subfabric-view `Routing` locally — topology and tables are
/// deterministic, so only the parameters travel), the full
/// [`SimConfig`], the traffic pattern, the shard count, and this
/// worker's contiguous shard range `lo..hi`.
#[derive(Debug, Clone, PartialEq)]
pub struct DistSpec {
    /// Switch port count of the m-port n-tree.
    pub m: u32,
    /// Tree height.
    pub n: u32,
    /// Routing scheme.
    pub kind: RoutingKind,
    /// Full simulator configuration (workers validate it again).
    pub cfg: SimConfig,
    /// Traffic pattern.
    pub pattern: TrafficPattern,
    /// Normalized offered load.
    pub offered_load: f64,
    /// Simulated horizon (ns).
    pub sim_time_ns: Time,
    /// Warm-up cutoff (ns).
    pub warmup_ns: Time,
    /// Total shard count across all workers.
    pub shards: u32,
    /// First shard this worker owns.
    pub lo: u32,
    /// One past the last shard this worker owns.
    pub hi: u32,
    /// Collect per-shard engine telemetry.
    pub telemetry: bool,
}

impl DistSpec {
    /// Serialize for the bridge's Hello frame.
    pub fn encode(&self) -> Vec<u8> {
        let mut o = Vec::with_capacity(128);
        put_u8(&mut o, WIRE_VERSION);
        put_u32(&mut o, self.m);
        put_u32(&mut o, self.n);
        put_u8(
            &mut o,
            match self.kind {
                RoutingKind::Slid => 0,
                RoutingKind::Mlid => 1,
                RoutingKind::UpDown => 2,
            },
        );
        let c = &self.cfg;
        put_u32(&mut o, c.packet_bytes);
        put_u64(&mut o, c.byte_time_ns);
        put_u64(&mut o, c.fly_time_ns);
        put_u64(&mut o, c.routing_time_ns);
        put_u8(&mut o, c.num_vls);
        put_u8(&mut o, c.buffer_packets);
        put_u8(
            &mut o,
            match c.injection {
                InjectionProcess::Deterministic => 0,
                InjectionProcess::Poisson => 1,
            },
        );
        put_u8(
            &mut o,
            match c.path_selection {
                PathSelection::Paper => 0,
                PathSelection::RandomPerPacket => 1,
                PathSelection::RoundRobinPerSource => 2,
            },
        );
        put_u8(
            &mut o,
            match c.vl_assignment {
                VlAssignment::Random => 0,
                VlAssignment::DestinationHash => 1,
                VlAssignment::SourceHash => 2,
            },
        );
        match &c.vl_arbitration {
            VlArbitration::RoundRobin => put_u8(&mut o, 0),
            VlArbitration::Weighted(entries) => {
                put_u8(&mut o, 1);
                put_u32(&mut o, entries.len() as u32);
                for &(vl, w) in entries {
                    put_u8(&mut o, vl);
                    put_u8(&mut o, w);
                }
            }
        }
        put_u64(&mut o, c.seed);
        put_bool(&mut o, c.collect_link_stats);
        put_u32(&mut o, c.trace_first_packets);
        match &c.trace_sampling {
            TraceSampling::FirstN => put_u8(&mut o, 0),
            TraceSampling::OneInN(n) => {
                put_u8(&mut o, 1);
                put_u32(&mut o, *n);
            }
            TraceSampling::Pairs(pairs) => {
                put_u8(&mut o, 2);
                put_u32(&mut o, pairs.len() as u32);
                for &(s, d) in pairs {
                    put_u32(&mut o, s);
                    put_u32(&mut o, d);
                }
            }
        }
        put_bool(&mut o, c.adaptive_up);
        put_u8(
            &mut o,
            match c.calendar {
                CalendarKind::TimingWheel => 0,
                CalendarKind::BinaryHeap => 1,
            },
        );
        put_u8(
            &mut o,
            match c.partition {
                PartitionKind::FatTree => 0,
                PartitionKind::Block => 1,
            },
        );
        put_u8(
            &mut o,
            match c.window_policy {
                WindowPolicy::Fixed => 0,
                WindowPolicy::Adaptive => 1,
            },
        );
        put_u8(
            &mut o,
            match c.route_backend {
                RouteBackend::Table => 0,
                RouteBackend::Oracle => 1,
            },
        );
        put_u32(&mut o, c.faults.events.len() as u32);
        for ev in &c.faults.events {
            put_u64(&mut o, ev.at_ns);
            let (tag, id) = match ev.action {
                crate::FaultAction::KillLink(l) => (0u8, l),
                crate::FaultAction::KillSwitch(s) => (1, s),
                crate::FaultAction::ReviveLink(l) => (2, l),
                crate::FaultAction::ReviveSwitch(s) => (3, s),
            };
            put_u8(&mut o, tag);
            put_u32(&mut o, id);
        }
        put_u8(
            &mut o,
            match c.faults.policy {
                crate::FaultPolicy::Drop => 0,
                crate::FaultPolicy::Stall => 1,
            },
        );
        put_u64(&mut o, c.faults.detect_ns);
        put_u64(&mut o, c.faults.per_switch_ns);
        match &self.pattern {
            TrafficPattern::Uniform => put_u8(&mut o, 0),
            TrafficPattern::Centric { hotspot, fraction } => {
                put_u8(&mut o, 1);
                put_u32(&mut o, hotspot.0);
                put_f64(&mut o, *fraction);
            }
            TrafficPattern::Permutation(perm) => {
                put_u8(&mut o, 2);
                put_u32(&mut o, perm.len() as u32);
                for p in perm {
                    put_u32(&mut o, p.0);
                }
            }
        }
        put_f64(&mut o, self.offered_load);
        put_u64(&mut o, self.sim_time_ns);
        put_u64(&mut o, self.warmup_ns);
        put_u32(&mut o, self.shards);
        put_u32(&mut o, self.lo);
        put_u32(&mut o, self.hi);
        put_bool(&mut o, self.telemetry);
        o
    }

    /// Deserialize a Hello frame.
    pub fn decode(bytes: &[u8]) -> Result<DistSpec, SimError> {
        let mut r = Rd::new(bytes);
        let ver = r.u8()?;
        if ver != WIRE_VERSION {
            return Err(bridge_err(format!(
                "wire version mismatch: parent speaks {WIRE_VERSION}, frame says {ver} \
                 (stale IBFAT_WORKER_EXE?)"
            )));
        }
        let m = r.u32()?;
        let n = r.u32()?;
        let kind = match r.u8()? {
            0 => RoutingKind::Slid,
            1 => RoutingKind::Mlid,
            2 => RoutingKind::UpDown,
            t => return Err(bridge_err(format!("bad routing kind tag {t}"))),
        };
        let packet_bytes = r.u32()?;
        let byte_time_ns = r.u64()?;
        let fly_time_ns = r.u64()?;
        let routing_time_ns = r.u64()?;
        let num_vls = r.u8()?;
        let buffer_packets = r.u8()?;
        let injection = match r.u8()? {
            0 => InjectionProcess::Deterministic,
            1 => InjectionProcess::Poisson,
            t => return Err(bridge_err(format!("bad injection tag {t}"))),
        };
        let path_selection = match r.u8()? {
            0 => PathSelection::Paper,
            1 => PathSelection::RandomPerPacket,
            2 => PathSelection::RoundRobinPerSource,
            t => return Err(bridge_err(format!("bad path-selection tag {t}"))),
        };
        let vl_assignment = match r.u8()? {
            0 => VlAssignment::Random,
            1 => VlAssignment::DestinationHash,
            2 => VlAssignment::SourceHash,
            t => return Err(bridge_err(format!("bad vl-assignment tag {t}"))),
        };
        let vl_arbitration = match r.u8()? {
            0 => VlArbitration::RoundRobin,
            1 => {
                let k = r.len()?;
                let mut entries = Vec::with_capacity(k);
                for _ in 0..k {
                    let vl = r.u8()?;
                    let w = r.u8()?;
                    entries.push((vl, w));
                }
                VlArbitration::Weighted(entries)
            }
            t => return Err(bridge_err(format!("bad vl-arbitration tag {t}"))),
        };
        let seed = r.u64()?;
        let collect_link_stats = r.bool()?;
        let trace_first_packets = r.u32()?;
        let trace_sampling = match r.u8()? {
            0 => TraceSampling::FirstN,
            1 => TraceSampling::OneInN(r.u32()?),
            2 => {
                let k = r.len()?;
                let mut pairs = Vec::with_capacity(k);
                for _ in 0..k {
                    let s = r.u32()?;
                    let d = r.u32()?;
                    pairs.push((s, d));
                }
                TraceSampling::Pairs(pairs)
            }
            t => return Err(bridge_err(format!("bad trace-sampling tag {t}"))),
        };
        let adaptive_up = r.bool()?;
        let calendar = match r.u8()? {
            0 => CalendarKind::TimingWheel,
            1 => CalendarKind::BinaryHeap,
            t => return Err(bridge_err(format!("bad calendar tag {t}"))),
        };
        let partition = match r.u8()? {
            0 => PartitionKind::FatTree,
            1 => PartitionKind::Block,
            t => return Err(bridge_err(format!("bad partition tag {t}"))),
        };
        let window_policy = match r.u8()? {
            0 => WindowPolicy::Fixed,
            1 => WindowPolicy::Adaptive,
            t => return Err(bridge_err(format!("bad window-policy tag {t}"))),
        };
        let route_backend = match r.u8()? {
            0 => RouteBackend::Table,
            1 => RouteBackend::Oracle,
            t => return Err(bridge_err(format!("bad route-backend tag {t}"))),
        };
        let fault_events = {
            let k = r.len()?;
            let mut events = Vec::with_capacity(k);
            for _ in 0..k {
                let at_ns = r.u64()?;
                let tag = r.u8()?;
                let id = r.u32()?;
                let action = match tag {
                    0 => crate::FaultAction::KillLink(id),
                    1 => crate::FaultAction::KillSwitch(id),
                    2 => crate::FaultAction::ReviveLink(id),
                    3 => crate::FaultAction::ReviveSwitch(id),
                    t => return Err(bridge_err(format!("bad fault-action tag {t}"))),
                };
                events.push(crate::FaultEvent { at_ns, action });
            }
            events
        };
        let fault_policy = match r.u8()? {
            0 => crate::FaultPolicy::Drop,
            1 => crate::FaultPolicy::Stall,
            t => return Err(bridge_err(format!("bad fault-policy tag {t}"))),
        };
        let fault_detect_ns = r.u64()?;
        let fault_per_switch_ns = r.u64()?;
        let pattern = match r.u8()? {
            0 => TrafficPattern::Uniform,
            1 => {
                let hotspot = ibfat_topology::NodeId(r.u32()?);
                let fraction = r.f64()?;
                TrafficPattern::Centric { hotspot, fraction }
            }
            2 => {
                let k = r.len()?;
                let mut perm = Vec::with_capacity(k);
                for _ in 0..k {
                    perm.push(ibfat_topology::NodeId(r.u32()?));
                }
                TrafficPattern::Permutation(perm)
            }
            t => return Err(bridge_err(format!("bad traffic-pattern tag {t}"))),
        };
        let offered_load = r.f64()?;
        let sim_time_ns = r.u64()?;
        let warmup_ns = r.u64()?;
        let shards = r.u32()?;
        let lo = r.u32()?;
        let hi = r.u32()?;
        let telemetry = r.bool()?;
        r.finish()?;
        Ok(DistSpec {
            m,
            n,
            kind,
            cfg: SimConfig {
                packet_bytes,
                byte_time_ns,
                fly_time_ns,
                routing_time_ns,
                num_vls,
                buffer_packets,
                injection,
                path_selection,
                vl_assignment,
                vl_arbitration,
                seed,
                collect_link_stats,
                trace_first_packets,
                trace_sampling,
                adaptive_up,
                calendar,
                partition,
                window_policy,
                route_backend,
                faults: crate::FaultPlan {
                    events: fault_events,
                    policy: fault_policy,
                    detect_ns: fault_detect_ns,
                    per_switch_ns: fault_per_switch_ns,
                },
            },
            pattern,
            offered_load,
            sim_time_ns,
            warmup_ns,
            shards,
            lo,
            hi,
            telemetry,
        })
    }
}

// ---------------------------------------------------------------------
// Lineage-key interning codec (per ordered channel)
// ---------------------------------------------------------------------

/// Sender side of one `(src shard, dst shard)` channel's lineage-key
/// interning. The `pin` vector keeps every interned `Arc` alive so the
/// pointer-keyed map stays sound (a freed-and-reused allocation would
/// otherwise alias an old id).
#[derive(Default)]
struct KeyEncoder {
    ids: HashMap<usize, u32>,
    pin: Vec<Arc<EvKey>>,
}

impl KeyEncoder {
    /// Encode a key: walk up to the first already-interned ancestor,
    /// then emit the new nodes bottom-up, interning them as we go (the
    /// decoder appends in the same order, keeping the tables aligned).
    fn encode(&mut self, out: &mut Vec<u8>, key: &Arc<EvKey>) {
        let mut chain: Vec<Arc<EvKey>> = Vec::new();
        let mut base = u32::MAX;
        let mut cur = key.clone();
        loop {
            if let Some(&id) = self.ids.get(&(Arc::as_ptr(&cur) as usize)) {
                base = id;
                break;
            }
            chain.push(cur.clone());
            let parent = match &cur.parent {
                Some(p) => p.clone(),
                None => break,
            };
            cur = parent;
        }
        put_u32(out, chain.len() as u32);
        put_u32(out, base);
        for node in chain.iter().rev() {
            put_u64(out, node.sched);
            put_u64(out, node.tb);
            let id = self.pin.len() as u32;
            self.ids.insert(Arc::as_ptr(node) as usize, id);
            self.pin.push(node.clone());
        }
    }
}

/// Receiver side: the table mirror. Entry `i` is the `i`-th node the
/// sender interned.
#[derive(Default)]
struct KeyDecoder {
    table: Vec<Arc<EvKey>>,
}

impl KeyDecoder {
    fn decode(&mut self, r: &mut Rd) -> Result<Arc<EvKey>, SimError> {
        let count = r.len()?;
        let base = r.u32()?;
        let mut parent: Option<Arc<EvKey>> = if base == u32::MAX {
            None
        } else {
            Some(
                self.table
                    .get(base as usize)
                    .cloned()
                    .ok_or_else(|| bridge_err("lineage table reference out of range"))?,
            )
        };
        if count == 0 {
            return parent.ok_or_else(|| bridge_err("empty lineage chain with no base"));
        }
        let mut key = None;
        for _ in 0..count {
            let sched = r.u64()?;
            let tb = r.u64()?;
            let node = Arc::new(EvKey { sched, tb, parent });
            self.table.push(node.clone());
            parent = Some(node.clone());
            key = Some(node);
        }
        Ok(key.expect("count > 0"))
    }
}

// ---------------------------------------------------------------------
// Message blob codec
// ---------------------------------------------------------------------

/// Entries a channel's intern table may hold before the next blob
/// resets it. Interning exists to compress shared lineage *prefixes*;
/// unbounded, the pinned `Arc`s grow with the total traffic a channel
/// ever carried and come to dominate a long run's resident set. The
/// reset is a pure function of the channel's message history (the
/// sender's table size), so every run replays it identically and the
/// decoder mirrors it via a one-byte flag — determinism is untouched,
/// the post-reset blobs just spell out their first lineages in full
/// again.
const KEY_INTERN_CAP: usize = 32_768;

fn encode_msgs(enc: &mut KeyEncoder, msgs: &[Msg], out: &mut Vec<u8>) {
    encode_msgs_with_cap(enc, msgs, out, KEY_INTERN_CAP);
}

fn encode_msgs_with_cap(enc: &mut KeyEncoder, msgs: &[Msg], out: &mut Vec<u8>, cap: usize) {
    if enc.pin.len() >= cap {
        enc.ids.clear();
        enc.pin.clear();
        put_u8(out, 1);
    } else {
        put_u8(out, 0);
    }
    put_u32(out, msgs.len() as u32);
    for m in msgs {
        put_u64(out, m.at);
        enc.encode(out, &m.key);
        match &m.kind {
            MsgKind::Arrive {
                sw,
                port,
                vl,
                packet,
                trace_slot,
                wl_msg,
            } => {
                put_u8(out, 0);
                put_u32(out, *sw);
                put_u8(out, *port);
                put_u8(out, *vl);
                put_u32(out, packet.src);
                put_u32(out, packet.dlid.0);
                put_u8(out, packet.vl);
                put_u64(out, packet.t_gen);
                put_u64(out, packet.t_inject);
                put_u32(out, packet.flow_seq);
                put_u32(out, *trace_slot);
                put_u32(out, *wl_msg);
            }
            MsgKind::Credit { sw, port, vl } => {
                put_u8(out, 1);
                put_u32(out, *sw);
                put_u8(out, *port);
                put_u8(out, *vl);
            }
            MsgKind::Arm { node, msg } => {
                put_u8(out, 2);
                put_u32(out, *node);
                put_u32(out, *msg);
            }
        }
    }
}

fn decode_msgs(dec: &mut KeyDecoder, r: &mut Rd) -> Result<Vec<Msg>, SimError> {
    match r.u8()? {
        0 => {}
        1 => dec.table.clear(),
        other => return Err(bridge_err(format!("bad intern-reset flag {other}"))),
    }
    let n = r.len()?;
    let mut msgs = Vec::with_capacity(n);
    for _ in 0..n {
        let at = r.u64()?;
        let key = dec.decode(r)?;
        let kind = match r.u8()? {
            0 => {
                let sw = r.u32()?;
                let port = r.u8()?;
                let vl = r.u8()?;
                let src = r.u32()?;
                let dlid = Lid(r.u32()?);
                let pvl = r.u8()?;
                let t_gen = r.u64()?;
                let t_inject = r.u64()?;
                let flow_seq = r.u32()?;
                let trace_slot = r.u32()?;
                let wl_msg = r.u32()?;
                MsgKind::Arrive {
                    sw,
                    port,
                    vl,
                    packet: Packet {
                        src,
                        dlid,
                        vl: pvl,
                        t_gen,
                        t_inject,
                        flow_seq,
                    },
                    trace_slot,
                    wl_msg,
                }
            }
            1 => {
                let sw = r.u32()?;
                let port = r.u8()?;
                let vl = r.u8()?;
                MsgKind::Credit { sw, port, vl }
            }
            2 => {
                let node = r.u32()?;
                let msg = r.u32()?;
                MsgKind::Arm { node, msg }
            }
            t => return Err(bridge_err(format!("bad message tag {t}"))),
        };
        msgs.push(Msg { at, key, kind });
    }
    Ok(msgs)
}

// ---------------------------------------------------------------------
// ShardPartial / telemetry codecs (the Finished frame payloads)
// ---------------------------------------------------------------------

fn put_latency(o: &mut Vec<u8>, l: &LatencyStats) {
    let (count, sum, min, max, buckets) = l.raw_parts();
    put_u64(o, count);
    put_u64(o, sum);
    put_u64(o, min);
    put_u64(o, max);
    put_u32(o, buckets.len() as u32);
    for &b in buckets {
        put_u64(o, b);
    }
}

fn read_latency(r: &mut Rd) -> Result<LatencyStats, SimError> {
    let count = r.u64()?;
    let sum = r.u64()?;
    let min = r.u64()?;
    let max = r.u64()?;
    let k = r.len()?;
    let mut buckets = Vec::with_capacity(k);
    for _ in 0..k {
        buckets.push(r.u64()?);
    }
    Ok(LatencyStats::from_raw(count, sum, min, max, buckets))
}

fn put_trace_event(o: &mut Vec<u8>, ev: &TraceEvent) {
    match *ev {
        TraceEvent::Generated => put_u8(o, 0),
        TraceEvent::InjectionStart => put_u8(o, 1),
        TraceEvent::HeaderArrive { sw, port } => {
            put_u8(o, 2);
            put_u32(o, sw);
            put_u8(o, port);
        }
        TraceEvent::Routed { sw, out_port } => {
            put_u8(o, 3);
            put_u32(o, sw);
            put_u8(o, out_port);
        }
        TraceEvent::Granted { sw, out_port } => {
            put_u8(o, 4);
            put_u32(o, sw);
            put_u8(o, out_port);
        }
        TraceEvent::TransmitStart { sw, out_port } => {
            put_u8(o, 5);
            put_u32(o, sw);
            put_u8(o, out_port);
        }
        TraceEvent::CreditStalled { sw, out_port } => {
            put_u8(o, 6);
            put_u32(o, sw);
            put_u8(o, out_port);
        }
        TraceEvent::Delivered => put_u8(o, 7),
        TraceEvent::Dropped { sw } => {
            put_u8(o, 8);
            put_u32(o, sw);
        }
    }
}

fn read_trace_event(r: &mut Rd) -> Result<TraceEvent, SimError> {
    Ok(match r.u8()? {
        0 => TraceEvent::Generated,
        1 => TraceEvent::InjectionStart,
        2 => TraceEvent::HeaderArrive {
            sw: r.u32()?,
            port: r.u8()?,
        },
        3 => TraceEvent::Routed {
            sw: r.u32()?,
            out_port: r.u8()?,
        },
        4 => TraceEvent::Granted {
            sw: r.u32()?,
            out_port: r.u8()?,
        },
        5 => TraceEvent::TransmitStart {
            sw: r.u32()?,
            out_port: r.u8()?,
        },
        6 => TraceEvent::CreditStalled {
            sw: r.u32()?,
            out_port: r.u8()?,
        },
        7 => TraceEvent::Delivered,
        8 => TraceEvent::Dropped { sw: r.u32()? },
        t => return Err(bridge_err(format!("bad trace-event tag {t}"))),
    })
}

fn encode_partial(p: &ShardPartial) -> Vec<u8> {
    let mut o = Vec::with_capacity(256 + 8 * (p.sw_busy.len() + p.node_busy.len()));
    put_u64(&mut o, p.generated);
    put_u64(&mut o, p.dropped);
    put_u64(&mut o, p.total_generated);
    put_u64(&mut o, p.total_delivered);
    put_u64(&mut o, p.delivered);
    put_u64(&mut o, p.delivered_bytes);
    put_u64(&mut o, p.events_processed);
    put_u64(&mut o, p.out_of_order);
    put_u64(&mut o, p.fault_lost);
    put_u64(&mut o, p.fault_stalled);
    put_u64(&mut o, p.fault_rerouted);
    put_latency(&mut o, &p.latency);
    put_latency(&mut o, &p.network_latency);
    put_u32(&mut o, p.sw_busy.len() as u32);
    for &b in &p.sw_busy {
        put_u64(&mut o, b);
    }
    put_u32(&mut o, p.node_busy.len() as u32);
    for &b in &p.node_busy {
        put_u64(&mut o, b);
    }
    put_u32(&mut o, p.trace_events.len() as u32);
    for slot in &p.trace_events {
        put_u32(&mut o, slot.len() as u32);
        for (t, ev) in slot {
            put_u64(&mut o, *t);
            put_trace_event(&mut o, ev);
        }
    }
    o
}

fn decode_partial(bytes: &[u8]) -> Result<ShardPartial, SimError> {
    let mut r = Rd::new(bytes);
    let generated = r.u64()?;
    let dropped = r.u64()?;
    let total_generated = r.u64()?;
    let total_delivered = r.u64()?;
    let delivered = r.u64()?;
    let delivered_bytes = r.u64()?;
    let events_processed = r.u64()?;
    let out_of_order = r.u64()?;
    let fault_lost = r.u64()?;
    let fault_stalled = r.u64()?;
    let fault_rerouted = r.u64()?;
    let latency = read_latency(&mut r)?;
    let network_latency = read_latency(&mut r)?;
    let k = r.len()?;
    let mut sw_busy = Vec::with_capacity(k);
    for _ in 0..k {
        sw_busy.push(r.u64()?);
    }
    let k = r.len()?;
    let mut node_busy = Vec::with_capacity(k);
    for _ in 0..k {
        node_busy.push(r.u64()?);
    }
    let slots = r.len()?;
    let mut trace_events = Vec::with_capacity(slots);
    for _ in 0..slots {
        let k = r.len()?;
        let mut evs = Vec::with_capacity(k);
        for _ in 0..k {
            let t = r.u64()?;
            let ev = read_trace_event(&mut r)?;
            evs.push((t, ev));
        }
        trace_events.push(evs);
    }
    r.finish()?;
    Ok(ShardPartial {
        generated,
        dropped,
        total_generated,
        total_delivered,
        delivered,
        delivered_bytes,
        events_processed,
        out_of_order,
        fault_lost,
        fault_stalled,
        fault_rerouted,
        latency,
        network_latency,
        sw_busy,
        node_busy,
        trace_events,
    })
}

/// Serialize one shard's engine telemetry for the Finished frame.
pub fn encode_shard_telemetry(t: &ShardTelemetry) -> Vec<u8> {
    let mut o = Vec::with_capacity(128 + 56 * t.window_log.len());
    put_u32(&mut o, t.shard);
    put_u32(&mut o, t.switches);
    put_u32(&mut o, t.nodes);
    put_u64(&mut o, t.windows);
    put_u64(&mut o, t.skipped_windows);
    put_u64(&mut o, t.events);
    put_u64(&mut o, t.msgs_sent);
    put_u64(&mut o, t.msgs_recv);
    put_u64(&mut o, t.barrier_wait_ns);
    put_u64(&mut o, t.bridge_wait_ns);
    put_u64(&mut o, t.bridge_bytes);
    put_u64(&mut o, t.bridge_flushes);
    put_u64(&mut o, t.span_sum_ns);
    put_u64(&mut o, t.span_max_ns);
    put_u64(&mut o, t.window_log_dropped);
    put_u32(&mut o, t.window_log.len() as u32);
    for w in &t.window_log {
        put_u64(&mut o, w.bound_ns);
        put_u64(&mut o, w.span_ns);
        put_u64(&mut o, w.events);
        put_u64(&mut o, w.msgs_sent);
        put_u64(&mut o, w.msgs_recv);
        put_u64(&mut o, w.barrier_wait_ns);
        put_u64(&mut o, w.bridge_wait_ns);
    }
    o
}

/// Parse one shard's telemetry out of a Finished frame.
pub fn decode_shard_telemetry(bytes: &[u8]) -> Result<ShardTelemetry, SimError> {
    let mut r = Rd::new(bytes);
    let mut t = ShardTelemetry::new(r.u32()?, r.u32()?, r.u32()?);
    t.windows = r.u64()?;
    t.skipped_windows = r.u64()?;
    t.events = r.u64()?;
    t.msgs_sent = r.u64()?;
    t.msgs_recv = r.u64()?;
    t.barrier_wait_ns = r.u64()?;
    t.bridge_wait_ns = r.u64()?;
    t.bridge_bytes = r.u64()?;
    t.bridge_flushes = r.u64()?;
    t.span_sum_ns = r.u64()?;
    t.span_max_ns = r.u64()?;
    t.window_log_dropped = r.u64()?;
    let k = r.len()?;
    let mut log = Vec::with_capacity(k);
    for _ in 0..k {
        log.push(WindowRecord {
            bound_ns: r.u64()?,
            span_ns: r.u64()?,
            events: r.u64()?,
            msgs_sent: r.u64()?,
            msgs_recv: r.u64()?,
            barrier_wait_ns: r.u64()?,
            bridge_wait_ns: r.u64()?,
        });
    }
    t.window_log = log;
    r.finish()?;
    Ok(t)
}

// ---------------------------------------------------------------------
// The window protocol
// ---------------------------------------------------------------------

/// One channel's worth of serialized cross-process messages for one
/// window, tagged with the ordered shard pair it belongs to.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChannelBlob {
    /// Sending (global) shard.
    pub src: u32,
    /// Receiving (global) shard.
    pub dst: u32,
    /// `encode_msgs` payload (lineage-interned against this channel).
    pub bytes: Vec<u8>,
}

/// The worker's view of the bridge: one synchronous exchange per
/// window. The transport (pipes, an in-process test harness, …) is the
/// driver's business; the protocol — votes in, global minimum and
/// routed blobs out — is fixed here.
pub trait ChildBridge {
    /// Submit this worker's vote (the earliest simulation time any of
    /// its shards still knows about, `u64::MAX` = nothing) and its
    /// outbound blobs; block until the parent answers with the agreed
    /// global minimum `g` and the blobs routed *to* this worker.
    fn exchange(
        &mut self,
        vote: u64,
        out: Vec<ChannelBlob>,
    ) -> Result<(u64, Vec<ChannelBlob>), SimError>;
}

/// The parent's mirror of `run_shard`'s bound sequence. The parent
/// never simulates; it only needs to know, after each round of votes,
/// whether every child just broke out of its window loop — which this
/// clock decides with the exact formula the children use, so parent
/// and children always agree on the final window.
#[derive(Debug, Clone)]
pub struct WindowClock {
    w: u64,
    horizon: u64,
    adaptive: bool,
    bound: u64,
}

impl WindowClock {
    /// A clock for one run. `horizon` is the simulated end time.
    ///
    /// # Panics
    /// Panics on a zero lookahead — such configurations cannot run
    /// sharded at all and must be caught before spawning workers.
    pub fn new(cfg: &SimConfig, horizon: u64) -> WindowClock {
        let w = cfg.lookahead_ns();
        assert!(w > 0, "zero lookahead cannot run sharded");
        WindowClock {
            w,
            horizon,
            adaptive: matches!(cfg.window_policy, WindowPolicy::Adaptive),
            bound: w.min(horizon),
        }
    }

    /// The bound of the window currently executing.
    pub fn bound(&self) -> u64 {
        self.bound
    }

    /// Fold in the agreed global next-event time `g` after a round of
    /// votes. Returns `true` when this was the final window (every
    /// child breaks; expect Finished frames next), otherwise advances
    /// the bound exactly as every child does.
    pub fn advance(&mut self, g: u64) -> bool {
        if self.bound >= self.horizon || g >= self.horizon {
            return true;
        }
        self.bound = if self.adaptive {
            (g / self.w)
                .saturating_add(1)
                .saturating_mul(self.w)
                .min(self.horizon)
        } else {
            self.bound.saturating_add(self.w).min(self.horizon)
        };
        false
    }
}

/// What a finished worker hands back to the driver for the Finished
/// frame.
pub struct ChildOutcome {
    /// Encoded [`ShardPartial`]s, one per owned shard, in global shard
    /// order (`lo..hi`). The parent feeds them to [`parent_report`].
    pub partials: Vec<Vec<u8>>,
    /// Encoded [`ShardTelemetry`] per owned shard (empty unless the
    /// spec asked for telemetry).
    pub telemetry: Vec<Vec<u8>>,
    /// Total bytes of message payload this worker serialized outbound.
    pub bridge_bytes_out: u64,
    /// Bridge exchanges performed (= synchronization windows run).
    pub windows: u64,
}

/// Per-shard per-window counters staged until the exchange completes
/// (the bridge wait is only known afterwards).
struct WinStat {
    events: u64,
    sent: u64,
    recv: u64,
    bytes: u64,
    dispatched: bool,
}

/// Run this worker's shard range to completion against the bridge.
/// This is the whole child: build the subfabric, replay the injection
/// pre-pass, then drive the window loop in lockstep with every other
/// worker. Pattern mode with the no-op probe only — the driver rejects
/// workload and probed runs before spawning anything.
pub fn run_child<B: ChildBridge>(
    spec: &DistSpec,
    bridge: &mut B,
) -> Result<ChildOutcome, SimError> {
    spec.cfg
        .validate()
        .map_err(|e| bridge_err(format!("invalid config in spec: {e}")))?;
    let params = TreeParams::new(spec.m, spec.n)
        .map_err(|e| bridge_err(format!("invalid tree parameters in spec: {e}")))?;
    let net = Network::mport_ntree(params);
    let shards = spec.shards as usize;
    let (lo, hi) = (spec.lo as usize, spec.hi as usize);
    if shards < 2 || shards > net.num_switches() || lo >= hi || hi > shards {
        return Err(bridge_err(format!(
            "bad shard range {lo}..{hi} of {shards} over {} switches",
            net.num_switches()
        )));
    }
    if spec.cfg.lookahead_ns() == 0 {
        return Err(bridge_err("zero lookahead cannot run sharded"));
    }
    let map = Arc::new(ShardMap::build(&net, shards, spec.cfg.partition));
    // The memory-scaling win: materialize forwarding tables only for
    // owned switches. `select_dlid` and the injection pre-pass never
    // consult tables, so the view is exact for everything this worker
    // does; the oracle backend holds no tables in any process.
    let routing = match spec.cfg.route_backend {
        RouteBackend::Table => {
            let owned: Vec<bool> = map
                .sw
                .iter()
                .map(|&s| (s as usize) >= lo && (s as usize) < hi)
                .collect();
            Routing::build_view(&net, spec.kind, &owned)
        }
        RouteBackend::Oracle => Routing::build_table_free(&net, spec.kind),
    };
    // A faulted run needs full tables to compile LFT patch sets, but the
    // shard routing above is a view that only materializes owned
    // switches. Build the full tables once per worker, compile the
    // runtime, and share it across every local shard; `validate()`
    // already rejected fault plans on the oracle backend.
    let fault_rt = if spec.cfg.faults.is_empty() {
        None
    } else {
        let full = Routing::build(&net, spec.kind);
        Some(Arc::new(crate::faults::compile(
            &net,
            &full,
            &spec.cfg.faults,
        )))
    };
    // Deterministic, so every worker replays it identically — but only
    // the nodes this worker actually injects at have their scripts
    // retained: the rest are drawn (the RNG sequence is global) and
    // dropped on the spot, keeping the worker's peak resident set
    // proportional to its shard range.
    let owned_nodes: Vec<bool> = map
        .node
        .iter()
        .map(|&s| (s as usize) >= lo && (s as usize) < hi)
        .collect();
    let (mut scripts, gen_traces) = injection_prepass(
        &net,
        &routing,
        &spec.cfg,
        &spec.pattern,
        spec.offered_load,
        spec.sim_time_ns,
        spec.warmup_ns,
        Some(&owned_nodes),
    );
    let num_nodes = net.num_nodes();
    let local = hi - lo;
    let mut sims: Vec<Simulator<'_, NoopProbe, ShardQueue>> = Vec::with_capacity(local);
    for me in lo as u32..hi as u32 {
        let queue = ShardQueue::new(me, map.clone(), &spec.cfg);
        let mut sim = Simulator::with_queue(
            &net,
            &routing,
            spec.cfg.clone(),
            spec.pattern.clone(),
            spec.offered_load,
            spec.sim_time_ns,
            spec.warmup_ns,
            queue,
            NoopProbe,
        );
        sim.traces = gen_traces.clone();
        let mut script: Vec<VecDeque<InjectRec>> =
            (0..num_nodes).map(|_| VecDeque::new()).collect();
        for node in 0..num_nodes {
            if map.node[node] == me {
                script[node] = std::mem::take(&mut scripts[node]);
            }
        }
        for (node, s) in script.iter().enumerate() {
            if let Some(first) = s.front() {
                sim.queue.cal.schedule(
                    first.at,
                    ParEntry {
                        key: EvKey::initial(node as u32),
                        ev: Ev::Inject { node: node as u32 },
                    },
                );
            }
        }
        sim.scripted_inj = Some(script);
        if let Some(rt) = &fault_rt {
            sim.install_fault_runtime(rt.clone());
            crate::par::schedule_fault_entries(&mut sim, &map, me);
        }
        sims.push(sim);
    }

    let w = spec.cfg.lookahead_ns();
    let horizon = spec.sim_time_ns;
    let adaptive = matches!(spec.cfg.window_policy, WindowPolicy::Adaptive);
    let mut cohort: Vec<ParEntry> = Vec::new();
    let mut outbox: Vec<Vec<Msg>> = (0..shards).map(|_| Vec::new()).collect();
    // `inbox[i][src]` is what global shard `src` sent to local shard
    // `i` in the previous window; drained in ascending `src` order,
    // exactly like the threaded engine's lane scan.
    let mut inbox: Vec<Vec<Vec<Msg>>> = (0..local)
        .map(|_| (0..shards).map(|_| Vec::new()).collect())
        .collect();
    let mut next_inbox: Vec<Vec<Vec<Msg>>> = (0..local)
        .map(|_| (0..shards).map(|_| Vec::new()).collect())
        .collect();
    let mut next_local: Vec<Time> = sims
        .iter_mut()
        .map(|s| s.queue.cal.peek_time().unwrap_or(u64::MAX))
        .collect();
    let mut encoders: HashMap<(u32, u32), KeyEncoder> = HashMap::new();
    let mut decoders: HashMap<(u32, u32), KeyDecoder> = HashMap::new();
    let mut tels: Vec<ShardTelemetry> = if spec.telemetry {
        (lo as u32..hi as u32)
            .map(|me| {
                let switches = map.sw.iter().filter(|&&s| s == me).count() as u32;
                let nodes = map.node.iter().filter(|&&s| s == me).count() as u32;
                ShardTelemetry::new(me, switches, nodes)
            })
            .collect()
    } else {
        Vec::new()
    };
    let mut bridge_bytes_out = 0u64;
    let mut windows = 0u64;
    let mut prev_bound: Time = 0;
    let mut bound = w.min(horizon);
    loop {
        let mut vote = u64::MAX;
        let mut out_blobs: Vec<ChannelBlob> = Vec::new();
        let mut stats: Vec<WinStat> = Vec::new();
        for i in 0..local {
            let me = (lo + i) as u32;
            let mut drained = 0usize;
            for slot in inbox[i].iter_mut() {
                if slot.is_empty() {
                    continue;
                }
                let msgs = std::mem::take(slot);
                drained += msgs.len();
                schedule_inbound(&mut sims[i], prev_bound, msgs.into_iter());
            }
            let events_before = sims[i].events_processed;
            let dispatched = drained > 0 || next_local[i] < bound;
            let mut in_flight_min = u64::MAX;
            let mut sent = 0u64;
            let mut shard_bytes = 0u64;
            if dispatched {
                next_local[i] = dispatch_window(&mut sims[i], bound, &mut cohort, &mut outbox)?;
                for dst in 0..shards {
                    if outbox[dst].is_empty() {
                        continue;
                    }
                    let staged = std::mem::take(&mut outbox[dst]);
                    for m in &staged {
                        in_flight_min = in_flight_min.min(m.at);
                    }
                    sent += staged.len() as u64;
                    if (lo..hi).contains(&dst) {
                        // Local delivery: visible at the next window's
                        // drain, same as a lane publish.
                        debug_assert!(next_inbox[dst - lo][me as usize].is_empty());
                        next_inbox[dst - lo][me as usize] = staged;
                    } else {
                        let enc = encoders.entry((me, dst as u32)).or_default();
                        let mut bytes = Vec::new();
                        encode_msgs(enc, &staged, &mut bytes);
                        shard_bytes += bytes.len() as u64;
                        out_blobs.push(ChannelBlob {
                            src: me,
                            dst: dst as u32,
                            bytes,
                        });
                    }
                }
            }
            vote = vote.min(next_local[i].min(in_flight_min));
            if spec.telemetry {
                stats.push(WinStat {
                    events: sims[i].events_processed - events_before,
                    sent,
                    recv: drained as u64,
                    bytes: shard_bytes,
                    dispatched,
                });
            }
        }
        bridge_bytes_out += out_blobs.iter().map(|b| b.bytes.len() as u64).sum::<u64>();
        windows += 1;
        let t0 = spec.telemetry.then(std::time::Instant::now);
        let (g, in_blobs) = bridge.exchange(vote, out_blobs)?;
        if let Some(t0) = t0 {
            let wait = t0.elapsed().as_nanos() as u64;
            for (t, s) in tels.iter_mut().zip(&stats) {
                t.on_window(
                    WindowRecord {
                        bound_ns: bound,
                        span_ns: bound - prev_bound,
                        events: s.events,
                        msgs_sent: s.sent,
                        msgs_recv: s.recv,
                        barrier_wait_ns: 0,
                        bridge_wait_ns: wait,
                    },
                    s.dispatched,
                );
                t.bridge_bytes += s.bytes;
                t.bridge_flushes += 1;
            }
        }
        // Same exit as `run_shard`: every worker computes this from
        // the same `g` and the same bound sequence, so all of them
        // break in the same window (the parent's WindowClock agrees).
        if bound >= horizon || g >= horizon {
            break;
        }
        debug_assert!(g >= bound, "next-event time below the dispatched bound");
        for blob in in_blobs {
            let dst = blob.dst as usize;
            if !(lo..hi).contains(&dst) {
                return Err(bridge_err("blob routed to the wrong worker"));
            }
            let dec = decoders.entry((blob.src, blob.dst)).or_default();
            let mut r = Rd::new(&blob.bytes);
            let msgs = decode_msgs(dec, &mut r)?;
            r.finish()?;
            let slot = &mut next_inbox[dst - lo][blob.src as usize];
            if !slot.is_empty() {
                return Err(bridge_err("duplicate channel blob in one window"));
            }
            *slot = msgs;
        }
        prev_bound = bound;
        bound = if adaptive {
            (g / w).saturating_add(1).saturating_mul(w).min(horizon)
        } else {
            bound.saturating_add(w).min(horizon)
        };
        std::mem::swap(&mut inbox, &mut next_inbox);
    }

    let m_ports = net.params().m() as usize;
    let partials = sims
        .iter()
        .map(|s| encode_partial(&ShardPartial::from_sim(s, m_ports)))
        .collect();
    let telemetry = tels.iter().map(encode_shard_telemetry).collect();
    Ok(ChildOutcome {
        partials,
        telemetry,
        bridge_bytes_out,
        windows,
    })
}

/// Parent-side close-out: replay the injection pre-pass for the trace
/// headers (the parent holds the full fabric anyway), decode every
/// worker's partials, and fold them through the *same*
/// [`merge_partials`] the threaded engine uses — bit-identical reports
/// by construction. `partial_blobs` must hold one blob per shard;
/// order does not affect the result (the fold is commutative — same-
/// time trace events of one packet never sit in different shards), but
/// global shard order is the convention.
#[allow(clippy::too_many_arguments)]
pub fn parent_report(
    net: &Network,
    routing: &Routing,
    cfg: &SimConfig,
    pattern: &TrafficPattern,
    offered_load: f64,
    sim_time_ns: Time,
    warmup_ns: Time,
    partial_blobs: &[Vec<u8>],
    wall_secs: f64,
) -> Result<SimReport, SimError> {
    // Only the globally assigned trace headers matter here; retain no
    // scripts at all (the workers injected every packet already).
    let keep_none = vec![false; net.num_nodes()];
    let (_, gen_traces) = injection_prepass(
        net,
        routing,
        cfg,
        pattern,
        offered_load,
        sim_time_ns,
        warmup_ns,
        Some(&keep_none),
    );
    let partials = partial_blobs
        .iter()
        .map(|b| decode_partial(b))
        .collect::<Result<Vec<_>, _>>()?;
    if cfg.trace_first_packets > 0 {
        for p in &partials {
            if p.trace_events.len() != gen_traces.len() {
                return Err(bridge_err(format!(
                    "partial carries {} trace slots, pre-pass assigned {}",
                    p.trace_events.len(),
                    gen_traces.len()
                )));
            }
        }
    }
    Ok(merge_partials(
        cfg,
        offered_load,
        sim_time_ns,
        warmup_ns,
        net.num_nodes(),
        net.num_switches(),
        net.params().m() as usize,
        partials,
        gen_traces,
        wall_secs,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::par::cmp_key;
    use crate::ParSimulator;
    use std::sync::mpsc;

    fn spec_for(cfg: SimConfig, pattern: TrafficPattern, load: f64, t: u64) -> DistSpec {
        DistSpec {
            m: 4,
            n: 3,
            kind: RoutingKind::Mlid,
            cfg,
            pattern,
            offered_load: load,
            sim_time_ns: t,
            warmup_ns: 0,
            shards: 4,
            lo: 0,
            hi: 2,
            telemetry: false,
        }
    }

    #[test]
    fn spec_roundtrip_covers_every_enum_arm() {
        let mut cfg = SimConfig::paper(4);
        cfg.injection = InjectionProcess::Poisson;
        cfg.path_selection = PathSelection::RoundRobinPerSource;
        cfg.vl_assignment = VlAssignment::DestinationHash;
        cfg.vl_arbitration = VlArbitration::Weighted(vec![(0, 3), (1, 1), (2, 2), (3, 1)]);
        cfg.collect_link_stats = true;
        cfg.trace_first_packets = 16;
        cfg.trace_sampling = TraceSampling::Pairs(vec![(1, 2), (7, 0)]);
        cfg.adaptive_up = true;
        cfg.calendar = CalendarKind::BinaryHeap;
        cfg.partition = PartitionKind::Block;
        cfg.window_policy = WindowPolicy::Fixed;
        cfg.route_backend = RouteBackend::Oracle;
        // Every fault action tag plus the non-default policy must
        // survive the wire. (This spec is for codec coverage only — a
        // real run would reject faults on the oracle backend.)
        cfg.faults = crate::FaultPlan {
            events: vec![
                crate::FaultEvent {
                    at_ns: 1_000,
                    action: crate::FaultAction::KillLink(7),
                },
                crate::FaultEvent {
                    at_ns: 2_000,
                    action: crate::FaultAction::KillSwitch(3),
                },
                crate::FaultEvent {
                    at_ns: 3_000,
                    action: crate::FaultAction::ReviveLink(7),
                },
                crate::FaultEvent {
                    at_ns: 4_000,
                    action: crate::FaultAction::ReviveSwitch(3),
                },
            ],
            policy: crate::FaultPolicy::Stall,
            detect_ns: 123,
            per_switch_ns: 45,
        };
        let spec = DistSpec {
            telemetry: true,
            ..spec_for(
                cfg,
                TrafficPattern::Centric {
                    hotspot: ibfat_topology::NodeId(3),
                    fraction: 0.5,
                },
                0.45,
                12_345,
            )
        };
        assert_eq!(DistSpec::decode(&spec.encode()).unwrap(), spec);

        let mut cfg2 = SimConfig::paper(1);
        cfg2.trace_sampling = TraceSampling::OneInN(8);
        let spec2 = spec_for(
            cfg2,
            TrafficPattern::Permutation((0..16).map(|i| ibfat_topology::NodeId(15 - i)).collect()),
            0.2,
            5_000,
        );
        assert_eq!(DistSpec::decode(&spec2.encode()).unwrap(), spec2);
    }

    #[test]
    fn spec_decode_rejects_garbage() {
        let spec = spec_for(SimConfig::paper(1), TrafficPattern::Uniform, 0.1, 100);
        let mut bytes = spec.encode();
        bytes[0] = 99; // wrong version
        assert!(matches!(DistSpec::decode(&bytes), Err(SimError::Bridge(_))));
        let bytes = spec.encode();
        assert!(DistSpec::decode(&bytes[..bytes.len() - 1]).is_err());
        let mut bytes = spec.encode();
        bytes.push(0); // trailing byte
        assert!(DistSpec::decode(&bytes).is_err());
    }

    #[test]
    fn key_codec_interns_shared_lineage() {
        // root <- a <- b ; root <- a <- c : encoding b then c must
        // reuse the interned (root, a) prefix, and the decoded keys
        // must preserve cmp_key order against each other.
        let root = EvKey::initial(7);
        let a = Arc::new(EvKey {
            sched: 10,
            tb: 1,
            parent: Some(root.clone()),
        });
        let b = Arc::new(EvKey {
            sched: 20,
            tb: 2,
            parent: Some(a.clone()),
        });
        let c = Arc::new(EvKey {
            sched: 20,
            tb: 3,
            parent: Some(a.clone()),
        });
        let mut enc = KeyEncoder::default();
        let mut buf = Vec::new();
        enc.encode(&mut buf, &b);
        let first_len = buf.len();
        enc.encode(&mut buf, &c);
        // Second key shares root and a: only one new node crosses.
        assert!(buf.len() - first_len < first_len, "interning must shrink");
        let mut dec = KeyDecoder::default();
        let mut r = Rd::new(&buf);
        let db = dec.decode(&mut r).unwrap();
        let dc = dec.decode(&mut r).unwrap();
        r.finish().unwrap();
        assert_eq!(dec.table.len(), enc.pin.len());
        assert_eq!(cmp_key(&db, &dc), std::cmp::Ordering::Less);
        assert_eq!(cmp_key(&dc, &db), std::cmp::Ordering::Greater);
        // Shared ancestor decoded once: pointer-equal parents.
        assert!(Arc::ptr_eq(
            db.parent.as_ref().unwrap(),
            dc.parent.as_ref().unwrap()
        ));
        // Cross-channel comparison (fresh Arcs vs the originals) takes
        // the value-equality path and still agrees.
        assert_eq!(cmp_key(&db, &c), std::cmp::Ordering::Less);
        assert_eq!(cmp_key(&b, &dc), std::cmp::Ordering::Less);
        assert_eq!(cmp_key(&db, &b), std::cmp::Ordering::Equal);
    }

    #[test]
    fn msg_blob_roundtrip() {
        let key = Arc::new(EvKey {
            sched: 5,
            tb: 42,
            parent: Some(EvKey::initial(1)),
        });
        let msgs = vec![
            Msg {
                at: 120,
                key: key.clone(),
                kind: MsgKind::Arrive {
                    sw: 9,
                    port: 3,
                    vl: 1,
                    packet: Packet {
                        src: 4,
                        dlid: Lid(77),
                        vl: 1,
                        t_gen: 100,
                        t_inject: 104,
                        flow_seq: 6,
                    },
                    trace_slot: u32::MAX,
                    wl_msg: u32::MAX,
                },
            },
            Msg {
                at: 125,
                key: key.clone(),
                kind: MsgKind::Credit {
                    sw: 2,
                    port: 1,
                    vl: 0,
                },
            },
            Msg {
                at: 130,
                key,
                kind: MsgKind::Arm { node: 11, msg: 5 },
            },
        ];
        let mut enc = KeyEncoder::default();
        let mut buf = Vec::new();
        encode_msgs(&mut enc, &msgs, &mut buf);
        let mut dec = KeyDecoder::default();
        let mut r = Rd::new(&buf);
        let got = decode_msgs(&mut dec, &mut r).unwrap();
        r.finish().unwrap();
        assert_eq!(got.len(), 3);
        assert_eq!(got[0].at, 120);
        match &got[0].kind {
            MsgKind::Arrive {
                sw, port, packet, ..
            } => {
                assert_eq!((*sw, *port), (9, 3));
                assert_eq!(packet.dlid, Lid(77));
                assert_eq!(packet.flow_seq, 6);
            }
            _ => panic!("wrong kind"),
        }
        assert!(matches!(
            got[1].kind,
            MsgKind::Credit {
                sw: 2,
                port: 1,
                vl: 0
            }
        ));
        assert!(matches!(got[2].kind, MsgKind::Arm { node: 11, msg: 5 }));
        // All three share one key: decoded once, pointer-shared.
        assert!(Arc::ptr_eq(&got[0].key, &got[1].key));
        assert_eq!(
            cmp_key(&got[0].key, &msgs[0].key),
            std::cmp::Ordering::Equal
        );
    }

    #[test]
    fn intern_cap_resets_both_sides_and_stays_aligned() {
        // Drive one channel for many windows with a tiny cap: the
        // sender must keep resetting, the decoder must follow via the
        // flag alone, and every key must still decode value-equal.
        let mut enc = KeyEncoder::default();
        let mut dec = KeyDecoder::default();
        let mut resets = 0;
        for window in 0..20u64 {
            let root = EvKey::initial(window as u32);
            let child = Arc::new(EvKey {
                sched: 100 + window,
                tb: 7 + window,
                parent: Some(root),
            });
            let msgs = vec![Msg {
                at: 1_000 + window,
                key: child.clone(),
                kind: MsgKind::Arm {
                    node: window as u32,
                    msg: 0,
                },
            }];
            let mut buf = Vec::new();
            encode_msgs_with_cap(&mut enc, &msgs, &mut buf, 3);
            if buf[0] == 1 {
                resets += 1;
            }
            let mut r = Rd::new(&buf);
            let got = decode_msgs(&mut dec, &mut r).unwrap();
            r.finish().unwrap();
            assert_eq!(cmp_key(&got[0].key, &child), std::cmp::Ordering::Equal);
            // Mirrored tables, bounded by the cap plus one window's chain.
            assert_eq!(dec.table.len(), enc.pin.len());
            assert!(enc.pin.len() <= 3 + 2, "cap must bound the table");
        }
        assert!(resets > 0, "the cap must actually trigger");
        // A garbled reset flag is a protocol error, not a guess.
        let bad = vec![9u8, 0, 0, 0, 0];
        let mut r = Rd::new(&bad);
        assert!(decode_msgs(&mut KeyDecoder::default(), &mut r).is_err());
    }

    #[test]
    fn partial_and_telemetry_roundtrip() {
        let mut latency = LatencyStats::new();
        latency.record(500);
        latency.record(1200);
        let p = ShardPartial {
            generated: 10,
            dropped: 1,
            total_generated: 12,
            total_delivered: 9,
            delivered: 8,
            delivered_bytes: 2048,
            events_processed: 333,
            out_of_order: 2,
            fault_lost: 4,
            fault_stalled: 6,
            fault_rerouted: 5,
            latency: latency.clone(),
            network_latency: latency,
            sw_busy: vec![1, 2, 3, 0, 9],
            node_busy: vec![7, 0],
            trace_events: vec![
                vec![(100, TraceEvent::Generated), (130, TraceEvent::Delivered)],
                vec![(200, TraceEvent::Routed { sw: 4, out_port: 2 })],
                vec![],
            ],
        };
        assert_eq!(decode_partial(&encode_partial(&p)).unwrap(), p);

        let mut t = ShardTelemetry::new(3, 2, 8);
        t.on_window(
            WindowRecord {
                bound_ns: 20,
                span_ns: 20,
                events: 5,
                msgs_sent: 2,
                msgs_recv: 1,
                barrier_wait_ns: 0,
                bridge_wait_ns: 900,
            },
            true,
        );
        t.bridge_bytes = 123;
        t.bridge_flushes = 1;
        assert_eq!(
            decode_shard_telemetry(&encode_shard_telemetry(&t)).unwrap(),
            t
        );
    }

    // -----------------------------------------------------------------
    // Full-protocol equivalence: run the child loop over an in-process
    // hub bridge (every byte serialized, exactly the driver's routing
    // and clock) and compare against the sequential engine.
    // -----------------------------------------------------------------

    struct TestBridge {
        idx: usize,
        vote_tx: mpsc::Sender<(usize, u64, Vec<ChannelBlob>)>,
        grant_rx: mpsc::Receiver<(u64, Vec<ChannelBlob>)>,
    }

    impl ChildBridge for TestBridge {
        fn exchange(
            &mut self,
            vote: u64,
            out: Vec<ChannelBlob>,
        ) -> Result<(u64, Vec<ChannelBlob>), SimError> {
            self.vote_tx
                .send((self.idx, vote, out))
                .map_err(|_| bridge_err("hub hung up"))?;
            self.grant_rx.recv().map_err(|_| bridge_err("hub hung up"))
        }
    }

    /// The driver's hub loop in miniature: collect one vote per child,
    /// agree on `g`, route blobs by destination, grant, repeat until
    /// the WindowClock says the children broke.
    fn run_hub(spec: &DistSpec, splits: &[(u32, u32)], wall_secs: f64) -> SimReport {
        let nchildren = splits.len();
        let (vote_tx, vote_rx) = mpsc::channel::<(usize, u64, Vec<ChannelBlob>)>();
        let mut grant_txs = Vec::new();
        let mut outcomes: Vec<Option<ChildOutcome>> = (0..nchildren).map(|_| None).collect();
        std::thread::scope(|scope| {
            let mut handles = Vec::new();
            for (idx, &(lo, hi)) in splits.iter().enumerate() {
                let (gtx, grx) = mpsc::channel();
                grant_txs.push(gtx);
                let child_spec = DistSpec {
                    lo,
                    hi,
                    ..spec.clone()
                };
                let vote_tx = vote_tx.clone();
                handles.push(scope.spawn(move || {
                    let mut bridge = TestBridge {
                        idx,
                        vote_tx,
                        grant_rx: grx,
                    };
                    run_child(&child_spec, &mut bridge).expect("child failed")
                }));
            }
            drop(vote_tx);
            let child_of = |shard: u32| {
                splits
                    .iter()
                    .position(|&(lo, hi)| (lo..hi).contains(&shard))
                    .expect("unowned shard")
            };
            let mut clock = WindowClock::new(&spec.cfg, spec.sim_time_ns);
            loop {
                let mut g = u64::MAX;
                let mut routed: Vec<Vec<ChannelBlob>> =
                    (0..nchildren).map(|_| Vec::new()).collect();
                for _ in 0..nchildren {
                    let (_, vote, blobs) = vote_rx.recv().expect("child died");
                    g = g.min(vote);
                    for blob in blobs {
                        routed[child_of(blob.dst)].push(blob);
                    }
                }
                for (gtx, blobs) in grant_txs.iter().zip(routed) {
                    gtx.send((g, blobs)).expect("child died");
                }
                if clock.advance(g) {
                    break;
                }
            }
            for (idx, h) in handles.into_iter().enumerate() {
                outcomes[idx] = Some(h.join().expect("child panicked"));
            }
        });
        let partials: Vec<Vec<u8>> = outcomes
            .into_iter()
            .flat_map(|o| o.expect("missing outcome").partials)
            .collect();
        assert_eq!(partials.len(), spec.shards as usize);
        let params = TreeParams::new(spec.m, spec.n).unwrap();
        let net = Network::mport_ntree(params);
        let routing = match spec.cfg.route_backend {
            RouteBackend::Oracle => Routing::build_table_free(&net, spec.kind),
            RouteBackend::Table => Routing::build(&net, spec.kind),
        };
        parent_report(
            &net,
            &routing,
            &spec.cfg,
            &spec.pattern,
            spec.offered_load,
            spec.sim_time_ns,
            spec.warmup_ns,
            &partials,
            wall_secs,
        )
        .expect("merge failed")
    }

    fn normalized(mut r: SimReport) -> SimReport {
        r.events_per_sec = 0.0;
        r.packets_per_sec = 0.0;
        r
    }

    #[test]
    fn bridged_run_matches_sequential_and_threaded() {
        let params = TreeParams::new(4, 3).unwrap();
        let net = Network::mport_ntree(params);
        for kind in [RoutingKind::Mlid, RoutingKind::Slid] {
            for num_vls in [1u8, 4] {
                let mut cfg = SimConfig::paper(num_vls);
                cfg.trace_first_packets = 8;
                cfg.collect_link_stats = true;
                let routing = Routing::build(&net, kind);
                let spec = DistSpec {
                    m: 4,
                    n: 3,
                    kind,
                    cfg: cfg.clone(),
                    pattern: TrafficPattern::Uniform,
                    offered_load: 0.6,
                    sim_time_ns: 15_000,
                    warmup_ns: 0,
                    shards: 4,
                    lo: 0,
                    hi: 0,
                    telemetry: false,
                };
                let seq = normalized(
                    Simulator::new(
                        &net,
                        &routing,
                        cfg.clone(),
                        TrafficPattern::Uniform,
                        0.6,
                        15_000,
                        0,
                    )
                    .run(),
                );
                let par = normalized(
                    ParSimulator::new(
                        &net,
                        &routing,
                        cfg.clone(),
                        TrafficPattern::Uniform,
                        0.6,
                        15_000,
                        0,
                        4,
                    )
                    .run()
                    .unwrap(),
                );
                assert_eq!(par, seq, "{kind} vl{num_vls}: threaded baseline drifted");
                // Even 2-way split, uneven 3-way split: both must
                // reproduce the sequential report bit for bit.
                for splits in [vec![(0u32, 2u32), (2, 4)], vec![(0, 1), (1, 3), (3, 4)]] {
                    let dist = normalized(run_hub(&spec, &splits, 0.0));
                    assert_eq!(
                        dist, seq,
                        "{kind} vl{num_vls} split {splits:?}: bridged run drifted"
                    );
                }
            }
        }
    }

    /// The acceptance fixed point at the process level: a mid-run link
    /// kill rides the spec across the bridge, every worker compiles the
    /// same fault runtime, and the merged report — fault counters
    /// included — is bit-identical to the sequential and threaded
    /// engines under both dead-port policies.
    #[test]
    fn bridged_faulted_run_matches_sequential_and_threaded() {
        let params = TreeParams::new(4, 3).unwrap();
        let net = Network::mport_ntree(params);
        let routing = Routing::build(&net, RoutingKind::Mlid);
        let kill = crate::FaultPlan::pick_links(&net, 2, 42);
        for policy in [crate::FaultPolicy::Drop, crate::FaultPolicy::Stall] {
            let mut plan = crate::FaultPlan::kill_links_at(&kill, 5_000);
            plan.policy = policy;
            plan.detect_ns = 1_000;
            plan.per_switch_ns = 50;
            let mut cfg = SimConfig::paper(2);
            cfg.faults = plan;
            let spec = DistSpec {
                m: 4,
                n: 3,
                kind: RoutingKind::Mlid,
                cfg: cfg.clone(),
                pattern: TrafficPattern::Uniform,
                offered_load: 0.6,
                sim_time_ns: 20_000,
                warmup_ns: 0,
                shards: 4,
                lo: 0,
                hi: 0,
                telemetry: false,
            };
            assert_eq!(DistSpec::decode(&spec.encode()).unwrap(), spec);
            let seq = normalized(
                Simulator::new(
                    &net,
                    &routing,
                    cfg.clone(),
                    TrafficPattern::Uniform,
                    0.6,
                    20_000,
                    0,
                )
                .run(),
            );
            match policy {
                crate::FaultPolicy::Drop => {
                    assert!(seq.fault_lost > 0, "dead cables under load must drop")
                }
                crate::FaultPolicy::Stall => {
                    assert!(seq.fault_stalled > 0, "heads must park on dead ports")
                }
            }
            let par = normalized(
                ParSimulator::new(
                    &net,
                    &routing,
                    cfg.clone(),
                    TrafficPattern::Uniform,
                    0.6,
                    20_000,
                    0,
                    4,
                )
                .run()
                .unwrap(),
            );
            assert_eq!(par, seq, "{policy:?}: threaded baseline drifted");
            for splits in [vec![(0u32, 2u32), (2, 4)], vec![(0, 1), (1, 3), (3, 4)]] {
                let dist = normalized(run_hub(&spec, &splits, 0.0));
                assert_eq!(
                    dist, seq,
                    "{policy:?} split {splits:?}: bridged run drifted"
                );
            }
        }
    }

    #[test]
    fn bridged_run_matches_with_oracle_backend_and_fixed_windows() {
        let params = TreeParams::new(4, 3).unwrap();
        let net = Network::mport_ntree(params);
        let mut cfg = SimConfig::paper(2);
        cfg.route_backend = RouteBackend::Oracle;
        cfg.window_policy = WindowPolicy::Fixed;
        cfg.calendar = CalendarKind::BinaryHeap;
        let routing = Routing::build_table_free(&net, RoutingKind::Mlid);
        let seq = normalized(
            Simulator::new(
                &net,
                &routing,
                cfg.clone(),
                TrafficPattern::Uniform,
                0.4,
                10_000,
                1_000,
            )
            .run(),
        );
        let spec = DistSpec {
            m: 4,
            n: 3,
            kind: RoutingKind::Mlid,
            cfg,
            pattern: TrafficPattern::Uniform,
            offered_load: 0.4,
            sim_time_ns: 10_000,
            warmup_ns: 1_000,
            shards: 3,
            lo: 0,
            hi: 0,
            telemetry: true,
        };
        let dist = normalized(run_hub(&spec, &[(0, 1), (1, 3)], 0.0));
        assert_eq!(dist, seq);
    }

    #[test]
    fn child_rejects_bad_ranges() {
        let spec = spec_for(SimConfig::paper(1), TrafficPattern::Uniform, 0.1, 1_000);
        struct NoBridge;
        impl ChildBridge for NoBridge {
            fn exchange(
                &mut self,
                _: u64,
                _: Vec<ChannelBlob>,
            ) -> Result<(u64, Vec<ChannelBlob>), SimError> {
                panic!("must not be reached");
            }
        }
        for (lo, hi, shards) in [(2, 2, 4), (3, 2, 4), (0, 5, 4), (0, 1, 1)] {
            let bad = DistSpec {
                lo,
                hi,
                shards,
                ..spec.clone()
            };
            assert!(
                matches!(run_child(&bad, &mut NoBridge), Err(SimError::Bridge(_))),
                "{lo}..{hi}/{shards} must be rejected"
            );
        }
    }
}
