//! Umbrella crate for the MLID fat-tree InfiniBand reproduction.
//!
//! This package exists to host the workspace-level `examples/` and `tests/`
//! directories; all functionality lives in the member crates and is
//! re-exported through [`ib_fabric`].

pub use ib_fabric::*;
