//! Library backing the `ibfat` binary — exposed so the command layer is
//! unit-testable.

pub mod args;
pub mod commands;
