/root/repo/target/release/deps/ibfat_repro-ecd639e4d35cf5e2.d: src/lib.rs

/root/repo/target/release/deps/libibfat_repro-ecd639e4d35cf5e2.rlib: src/lib.rs

/root/repo/target/release/deps/libibfat_repro-ecd639e4d35cf5e2.rmeta: src/lib.rs

src/lib.rs:
