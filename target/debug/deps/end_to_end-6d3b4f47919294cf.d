/root/repo/target/debug/deps/end_to_end-6d3b4f47919294cf.d: tests/end_to_end.rs

/root/repo/target/debug/deps/libend_to_end-6d3b4f47919294cf.rmeta: tests/end_to_end.rs

tests/end_to_end.rs:
