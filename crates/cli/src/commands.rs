//! Command implementations for the `ibfat` CLI.

use crate::args::{Action, Cmd, WlKind};
use ib_fabric::json::JsonBuf;
use ib_fabric::prelude::*;
use ib_fabric::sm::SubnetManager;
use ib_fabric::topology::analysis;
use ib_fabric::{EngineTelemetry, FaultPolicy, SwitchId};

/// Run a parsed command.
pub fn run(cmd: Cmd) -> Result<(), String> {
    if cmd.processes > 1 && !matches!(cmd.action, Action::Simulate | Action::Faults) {
        return Err("--processes is only supported for simulate/run and faults \
             (pattern mode); workload, counters and the other commands run \
             in-process — use --threads there"
            .into());
    }
    let fabric = build_fabric(&cmd)?;
    match cmd.action {
        Action::Info => info(&cmd, &fabric),
        Action::Route { ref src, ref dst } => {
            let src = src.resolve(fabric.params())?;
            let dst = dst.resolve(fabric.params())?;
            route(&cmd, &fabric, src, dst)
        }
        Action::Verify => verify(&fabric),
        Action::Discover => discover(&cmd, &fabric),
        Action::Simulate => simulate(&cmd, &fabric),
        Action::Sweep => sweep(&cmd, &fabric),
        Action::Counters => counters(&cmd, &fabric),
        Action::Loads => loads(&cmd, &fabric),
        Action::Workload => workload(&cmd, &fabric),
        Action::Trace => trace(&cmd, &fabric),
        Action::Faults => faults(&cmd, &fabric),
    }
}

fn build_fabric(cmd: &Cmd) -> Result<Fabric, String> {
    if cmd.route_backend == RouteBackend::Oracle {
        if cmd.scheme == RoutingKind::UpDown {
            return Err(
                "--route-backend oracle supports only the mlid/slid schemes \
                 (up*/down* has no closed-form route)"
                    .into(),
            );
        }
        if !cmd.fail_links.is_empty() {
            return Err("--route-backend oracle requires an intact fabric \
                 (fault-repaired tables deviate from the closed form); \
                 drop --fail-links or use --route-backend table"
                .into());
        }
    }
    let fabric = Fabric::builder(cmd.m, cmd.n)
        .routing(cmd.scheme)
        .build()
        .map_err(|e| e.to_string())?;
    if cmd.fail_links.is_empty() {
        return Ok(fabric);
    }
    let max = fabric.network().links().len();
    for &idx in &cmd.fail_links {
        if idx >= max {
            return Err(format!("link index {idx} out of range (fabric has {max})"));
        }
    }
    Ok(fabric.with_failed_links(&cmd.fail_links))
}

/// Workload mode drives a message DAG to completion, so a source whose
/// injection cable was cut can never finish its messages — the engine
/// would drain its calendar and die on a "workload stalled" assertion.
/// Surface the routing error as a clean message up front instead.
/// (Pattern mode tolerates the same damage: the island simply neither
/// sends nor receives.)
fn ensure_sources_cabled(fabric: &Fabric) -> Result<(), String> {
    use ib_fabric::topology::DeviceRef;
    for node in 0..fabric.num_nodes() {
        if fabric
            .network()
            .peer_of(DeviceRef::Node(NodeId(node)), ib_fabric::PortNum(1))
            .is_none()
        {
            return Err(format!(
                "{}; --fail-links cut its injection cable, so its workload \
                 messages can never complete — fail inter-switch cables \
                 instead (see `ibfat info`)",
                ib_fabric::RoutingError::DisconnectedSource(NodeId(node))
            ));
        }
    }
    Ok(())
}

fn pattern_of(cmd: &Cmd, fabric: &Fabric) -> TrafficPattern {
    cmd.pattern
        .clone()
        .unwrap_or_else(|| TrafficPattern::bit_complement(fabric.num_nodes()))
}

fn info(cmd: &Cmd, fabric: &Fabric) -> Result<(), String> {
    let p = fabric.params();
    if cmd.json {
        let value = serde_json::json!({
            "m": p.m(),
            "n": p.n(),
            "nodes": p.num_nodes(),
            "switches": p.num_switches(),
            "links": fabric.network().links().len(),
            "height": p.height(),
            "lmc": p.lmc(),
            "lids_per_node": p.lids_per_node(),
            "max_paths": p.num_lcas(0),
            "avg_min_hops": analysis::average_min_hops(p),
            "scheme": cmd.scheme.as_str(),
        });
        println!("{}", serde_json::to_string_pretty(&value).expect("json"));
        return Ok(());
    }
    println!("{p} under {} routing", cmd.scheme.as_str().to_uppercase());
    println!("  processing nodes : {}", p.num_nodes());
    println!("  switches         : {}", p.num_switches());
    println!("  cables           : {}", fabric.network().links().len());
    println!("  height           : {}", p.height());
    println!(
        "  LMC              : {} ({} LIDs per node)",
        p.lmc(),
        p.lids_per_node()
    );
    println!("  max disjoint LCAs: {}", p.num_lcas(0));
    println!("  avg minimal hops : {:.3}", analysis::average_min_hops(p));
    for w in analysis::level_wiring(p) {
        println!(
            "  level {}: {} switches, {} down / {} up cables each",
            w.level, w.switches, w.down_per_switch, w.up_per_switch
        );
    }
    Ok(())
}

fn route(cmd: &Cmd, fabric: &Fabric, src: NodeId, dst: NodeId) -> Result<(), String> {
    let nodes = fabric.num_nodes();
    if src.0 >= nodes || dst.0 >= nodes {
        return Err(format!("node ids must be < {nodes}"));
    }
    let route = fabric.route(src, dst).map_err(|e| e.to_string())?;
    let params = fabric.params();
    if cmd.json {
        // Hand-rolled JSON: the offline serde_json stub cannot serialize.
        let hops: Vec<serde_json::Value> = route
            .hops
            .iter()
            .map(|h| {
                serde_json::json!({
                    "switch": h.switch.0,
                    "in_port": h.in_port.0,
                    "out_port": h.out_port.0,
                })
            })
            .collect();
        let value = serde_json::json!({
            "src": route.src.0,
            "dlid": route.dlid.0,
            "dst": route.dst.0,
            "hops": serde_json::Value::Array(hops),
        });
        println!(
            "{}",
            serde_json::to_string_pretty(&value).expect("route serializes")
        );
        return Ok(());
    }
    println!(
        "{} -> {} via DLID {} ({} links):",
        NodeLabel::from_id(params, src),
        NodeLabel::from_id(params, dst),
        route.dlid.0,
        route.num_links()
    );
    for hop in &route.hops {
        println!(
            "  {:<12} in p{} -> out p{}",
            SwitchLabel::from_id(params, hop.switch).to_string(),
            hop.in_port.0,
            hop.out_port.0
        );
    }
    Ok(())
}

fn verify(fabric: &Fabric) -> Result<(), String> {
    let start = std::time::Instant::now();
    fabric.verify().map_err(|e| e.to_string())?;
    println!(
        "ok: every LID delivers from every source, selected routes are minimal,\n\
         and the channel dependency graph is acyclic ({} switches, {:.2?})",
        fabric.num_switches(),
        start.elapsed()
    );
    Ok(())
}

fn discover(cmd: &Cmd, fabric: &Fabric) -> Result<(), String> {
    let sm = SubnetManager::new(cmd.scheme, NodeId(0));
    match sm.initialize(fabric.network()) {
        Ok(outcome) => {
            let p = outcome.recovered.params;
            println!(
                "sweep from N0 found {} devices over {} cables",
                outcome.discovery.devices.len(),
                outcome.discovery.edges.len()
            );
            println!("recognized as {p}; labels recovered for every device");
            println!(
                "installed {} forwarding tables ({} entries each), LMC {}",
                outcome.routing.lfts().len(),
                outcome.routing.lid_space().max_lid().0,
                outcome.routing.lid_space().lmc()
            );
            let (bring_up, _) = ib_fabric::sm::time_bring_up(
                fabric.network(),
                NodeId(0),
                ib_fabric::sm::MadCosts::default(),
            );
            println!(
                "bring-up cost: {} SMPs ({} discovery, {} LID, {} LFT blocks), \
                 ~{:.2} ms serially, longest directed route {} hops",
                bring_up.total_smps(),
                bring_up.discovery_smps,
                bring_up.lid_smps,
                bring_up.lft_smps,
                bring_up.total_time_ns as f64 / 1e6,
                bring_up.max_route_hops
            );
            Ok(())
        }
        Err(e) => Err(e.to_string()),
    }
}

/// Run the configured operating point with engine self-telemetry
/// (exposed for tests). The report is bit-identical to a plain run.
pub fn collect_telemetry(
    cmd: &Cmd,
    fabric: &Fabric,
) -> Result<(SimReport, EngineTelemetry), String> {
    let mut experiment = fabric
        .experiment()
        .virtual_lanes(cmd.vls)
        .traffic(pattern_of(cmd, fabric))
        .offered_load(cmd.load)
        .duration_ns(cmd.time_ns)
        .threads(cmd.threads)
        .partition(cmd.partition)
        .route_backend(cmd.route_backend);
    if let Some(seed) = cmd.seed {
        experiment = experiment.seed(seed);
    }
    Ok(experiment.run_telemetry())
}

/// Run `simulate` on the multi-process driver: the same shard engine,
/// each contiguous shard range in its own worker process behind the
/// deterministic message bridge. Reports are bit-identical to the
/// in-process engines; workers materialize only their own switches'
/// forwarding state.
fn simulate_proc(
    cmd: &Cmd,
    fabric: &Fabric,
) -> Result<(SimReport, Option<EngineTelemetry>), String> {
    if !cmd.fail_links.is_empty() {
        return Err(
            "--processes requires a pristine fabric (workers rebuild the \
             topology from its parameters); drop --fail-links or run \
             in-process with --threads"
                .into(),
        );
    }
    let mut cfg = ibfat_sim::SimConfig {
        num_vls: cmd.vls,
        partition: cmd.partition,
        route_backend: cmd.route_backend,
        ..ibfat_sim::SimConfig::default()
    };
    if let Some(seed) = cmd.seed {
        cfg.seed = seed;
    }
    let threads = if cmd.threads == 0 {
        std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1)
    } else {
        cmd.threads
    };
    let sim = ibfat_driver::ProcSimulator::new(
        cmd.m,
        cmd.n,
        cmd.scheme,
        cfg,
        pattern_of(cmd, fabric),
        cmd.load,
        cmd.time_ns,
        cmd.time_ns / 5,
        threads.max(cmd.processes),
        cmd.processes,
    );
    if cmd.telemetry {
        let (report, _, tel) = sim.run_telemetry().map_err(|e| e.to_string())?;
        Ok((report, Some(tel)))
    } else {
        Ok((sim.run().map_err(|e| e.to_string())?, None))
    }
}

fn simulate(cmd: &Cmd, fabric: &Fabric) -> Result<(), String> {
    let (report, telemetry) = if cmd.processes > 1 {
        simulate_proc(cmd, fabric)?
    } else {
        let mut experiment = fabric
            .experiment()
            .virtual_lanes(cmd.vls)
            .traffic(pattern_of(cmd, fabric))
            .offered_load(cmd.load)
            .duration_ns(cmd.time_ns)
            .threads(cmd.threads)
            .partition(cmd.partition)
            .route_backend(cmd.route_backend);
        if let Some(seed) = cmd.seed {
            experiment = experiment.seed(seed);
        }
        if cmd.telemetry {
            let (r, t) = experiment.run_telemetry();
            (r, Some(t))
        } else {
            (experiment.run(), None)
        }
    };
    if cmd.json {
        println!("{}", report_to_json(&report));
        if let Some(t) = &telemetry {
            print!("{}", t.to_jsonl(false));
        }
        return Ok(());
    }
    println!(
        "simulated {} µs of {} under {} ({} VLs, offered {:.2}):",
        report.sim_time_ns / 1000,
        fabric.params(),
        pattern_of(cmd, fabric).name(),
        cmd.vls,
        cmd.load
    );
    println!(
        "  accepted   : {:.4} bytes/ns/node (offered {:.4})",
        report.accepted_bytes_per_ns_per_node, report.offered_bytes_per_ns_per_node
    );
    println!(
        "  latency    : avg {:.0} ns, p99 {} ns, min {} ns (network-only avg {:.0} ns)",
        report.avg_latency_ns(),
        report.latency.quantile(0.99),
        report.latency.min(),
        report.network_latency.mean()
    );
    println!(
        "  packets    : {} delivered, {} dropped, {} in flight at end",
        report.delivered, report.dropped, report.in_flight_at_end
    );
    println!(
        "  links      : mean utilization {:.1}%, peak {:.1}%",
        100.0 * report.mean_link_utilization,
        100.0 * report.max_link_utilization
    );
    println!(
        "  engine     : {} events ({:.2} Mev/s, {:.0} kpkt/s)",
        report.events_processed,
        report.events_per_sec / 1e6,
        report.packets_per_sec / 1e3
    );
    if let Some(t) = &telemetry {
        println!(
            "\nengine telemetry ({} shards, lookahead {} ns, edge cut {}, \
             imbalance {:.2}) — JSONL:",
            t.threads,
            t.lookahead_ns,
            t.edge_cut,
            t.event_imbalance()
        );
        print!("{}", t.to_jsonl(false));
    }
    Ok(())
}

/// Render a [`SimReport`] as one compact JSON object on the shared
/// [`JsonBuf`] writer (the offline serde stub cannot derive this).
/// Flight-recorder timelines are left to the `trace` subcommand.
pub fn report_to_json(report: &SimReport) -> String {
    fn latency(j: &mut JsonBuf, key: &str, s: &ib_fabric::sim::LatencyStats) {
        j.key(key);
        j.begin_obj();
        j.field_u64("count", s.count());
        j.field_f64("mean_ns", s.mean(), 1);
        j.field_u64("min_ns", s.min());
        j.field_u64("p50_ns", s.quantile(0.50));
        j.field_u64("p95_ns", s.quantile(0.95));
        j.field_u64("p99_ns", s.quantile(0.99));
        j.field_u64("max_ns", s.max());
        j.end_obj();
    }
    let mut j = JsonBuf::new();
    j.begin_obj();
    j.field_f64("offered_load", report.offered_load, 4);
    j.field_u64("sim_time_ns", report.sim_time_ns);
    j.field_u64("warmup_ns", report.warmup_ns);
    j.field_u64("generated", report.generated);
    j.field_u64("dropped", report.dropped);
    j.field_u64("total_generated", report.total_generated);
    j.field_u64("total_delivered", report.total_delivered);
    j.field_u64("delivered", report.delivered);
    j.field_u64("delivered_bytes", report.delivered_bytes);
    j.field_u64("in_flight_at_end", report.in_flight_at_end);
    j.field_f64(
        "accepted_bytes_per_ns_per_node",
        report.accepted_bytes_per_ns_per_node,
        6,
    );
    j.field_f64(
        "offered_bytes_per_ns_per_node",
        report.offered_bytes_per_ns_per_node,
        6,
    );
    latency(&mut j, "latency", &report.latency);
    latency(&mut j, "network_latency", &report.network_latency);
    j.field_u64("events_processed", report.events_processed);
    j.field_f64("events_per_sec", report.events_per_sec, 0);
    j.field_f64("packets_per_sec", report.packets_per_sec, 0);
    j.field_f64("mean_link_utilization", report.mean_link_utilization, 6);
    j.field_f64("max_link_utilization", report.max_link_utilization, 6);
    if let Some(links) = &report.link_utilization {
        j.key("link_utilization");
        j.begin_arr();
        for l in links {
            j.begin_obj();
            j.field_str("from", &l.from);
            j.field_u64("port", u64::from(l.port));
            j.field_f64("utilization", l.utilization, 6);
            j.end_obj();
        }
        j.end_arr();
    }
    j.field_u64("out_of_order", report.out_of_order);
    j.end_obj();
    j.into_string()
}

/// Run the flight recorder over the configured scenario and render the
/// sampled packet spans as JSONL (exposed for tests). Byte-identical at
/// any thread count.
pub fn collect_trace(cmd: &Cmd, fabric: &Fabric) -> Result<String, String> {
    let mut experiment = fabric
        .experiment()
        .virtual_lanes(cmd.vls)
        .traffic(pattern_of(cmd, fabric))
        .offered_load(cmd.load)
        .duration_ns(cmd.time_ns)
        .threads(cmd.threads)
        .partition(cmd.partition)
        .route_backend(cmd.route_backend)
        .trace_first_packets(cmd.trace_packets)
        .trace_sampling(cmd.sampling.clone());
    if let Some(seed) = cmd.seed {
        experiment = experiment.seed(seed);
    }
    let report = experiment.run();
    let traces = report.traces.as_deref().unwrap_or(&[]);
    Ok(ib_fabric::traces_to_jsonl(traces))
}

fn trace(cmd: &Cmd, fabric: &Fabric) -> Result<(), String> {
    print!("{}", collect_trace(cmd, fabric)?);
    Ok(())
}

/// Link-utilization and congestion roll-up for one tree level.
#[derive(Debug, Clone, PartialEq)]
pub struct LevelSummary {
    /// Tree level (0 = roots).
    pub level: u32,
    /// Switch ports at this level that carried traffic.
    pub active_ports: usize,
    /// Mean busy fraction over the level's cabled ports.
    pub mean_utilization: f64,
    /// Peak busy fraction at this level…
    pub max_utilization: f64,
    /// …and the (switch, IB port) achieving it.
    pub max_port: Option<(u32, u8)>,
    /// Total xmit-wait over the level's ports (ns).
    pub xmit_wait_ns: u64,
    /// Total credit-stall time over the level's ports (ns).
    pub credit_stall_ns: u64,
}

/// Everything the `counters` subcommand computes; exposed for tests.
#[derive(Debug)]
pub struct CountersReport {
    pub report: SimReport,
    pub counters: FabricCounters,
    /// Per-level roll-ups, roots first.
    pub levels: Vec<LevelSummary>,
}

/// Run the configured scenario with fabric counters attached and roll
/// the per-port numbers up by tree level.
pub fn collect_counters(cmd: &Cmd, fabric: &Fabric) -> Result<CountersReport, String> {
    let mut experiment = fabric
        .experiment()
        .virtual_lanes(cmd.vls)
        .traffic(pattern_of(cmd, fabric))
        .offered_load(cmd.load)
        .duration_ns(cmd.time_ns)
        .route_backend(cmd.route_backend);
    if let Some(seed) = cmd.seed {
        experiment = experiment.seed(seed);
    }
    let interval = cmd.sample_interval_ns.unwrap_or((cmd.time_ns / 50).max(1));
    let probe = FabricCounters::new(fabric.network(), cmd.vls).with_sampling(interval, cmd.top);
    let (report, counters) = experiment.run_observed(probe);

    let params = fabric.params();
    let span = report.sim_time_ns as f64;
    // The CLI runs the paper's timing: 1 ns per byte, so transmitted
    // bytes over elapsed time is exactly the busy fraction.
    let byte_ns = SimConfig::default().byte_time_ns as f64;
    let mut levels: Vec<LevelSummary> = (0..params.n())
        .map(|level| LevelSummary {
            level,
            active_ports: 0,
            mean_utilization: 0.0,
            max_utilization: 0.0,
            max_port: None,
            xmit_wait_ns: 0,
            credit_stall_ns: 0,
        })
        .collect();
    for sw in 0..counters.num_switches() as u32 {
        let level = SwitchLabel::from_id(params, SwitchId(sw)).level().0 as usize;
        let summary = &mut levels[level];
        for port in 0..counters.ports_per_switch() as u8 {
            let c = counters.port(sw, port);
            let util = c.xmit_bytes as f64 * byte_ns / span;
            if c.xmit_pkts > 0 {
                summary.active_ports += 1;
            }
            summary.mean_utilization += util;
            if util > summary.max_utilization {
                summary.max_utilization = util;
                summary.max_port = Some((sw, port + 1));
            }
            summary.xmit_wait_ns += c.xmit_wait_ns;
            summary.credit_stall_ns += c.credit_stall_ns;
        }
    }
    let ports_per_level = |l: &LevelSummary| {
        let switches = params.switches_at_level(l.level);
        (switches * params.m()) as f64
    };
    for l in &mut levels {
        l.mean_utilization /= ports_per_level(l).max(1.0);
    }
    Ok(CountersReport {
        report,
        counters,
        levels,
    })
}

fn counters(cmd: &Cmd, fabric: &Fabric) -> Result<(), String> {
    let out = collect_counters(cmd, fabric)?;
    if cmd.json {
        println!("{}", out.counters.to_json());
        return Ok(());
    }
    let params = fabric.params();
    println!(
        "counters for {} µs of {} under {} ({}, {} VLs, offered {:.2}):",
        out.report.sim_time_ns / 1000,
        params,
        pattern_of(cmd, fabric).name(),
        cmd.scheme.as_str().to_uppercase(),
        cmd.vls,
        cmd.load
    );
    println!(
        "  accepted {:.4} bytes/ns/node, {} delivered, {} in flight at end",
        out.report.accepted_bytes_per_ns_per_node,
        out.report.delivered,
        out.report.in_flight_at_end
    );
    println!("\nper-level link utilization (transmit side):");
    for l in &out.levels {
        let role = if l.level == 0 { "roots " } else { "level " };
        let peak = l
            .max_port
            .map(|(sw, port)| {
                format!(
                    "peak {:5.1}% at {} p{port}",
                    100.0 * l.max_utilization,
                    SwitchLabel::from_id(params, SwitchId(sw)),
                )
            })
            .unwrap_or_else(|| "idle".into());
        println!(
            "  {role}{}: mean {:5.1}% over {} active ports, {}; \
             xmit-wait {:.1} µs, credit-stall {:.1} µs",
            l.level,
            100.0 * l.mean_utilization,
            l.active_ports,
            peak,
            l.xmit_wait_ns as f64 / 1e3,
            l.credit_stall_ns as f64 / 1e3
        );
    }
    println!("\ntop {} ports by transmitted bytes:", cmd.top);
    for h in out.counters.hottest_ports(cmd.top) {
        let c = out.counters.port(h.sw, h.port - 1);
        println!(
            "  {:<12} p{}: {:7.1}% util, {} pkts, xmit-wait {:.1} µs",
            SwitchLabel::from_id(params, SwitchId(h.sw)).to_string(),
            h.port,
            100.0 * h.xmit_bytes as f64 / out.report.sim_time_ns as f64,
            c.xmit_pkts,
            c.xmit_wait_ns as f64 / 1e3
        );
    }
    println!("\ntop {} congested ports by xmit-wait:", cmd.top);
    let congested = out.counters.most_congested_ports(cmd.top);
    if congested.is_empty() {
        println!("  none — no packet ever waited for an output buffer");
    }
    for h in &congested {
        let c = out.counters.port(h.sw, h.port - 1);
        println!(
            "  {:<12} p{}: waited {:.1} µs, credit-stalled {:.1} µs, high-water in {} / out {}",
            SwitchLabel::from_id(params, SwitchId(h.sw)).to_string(),
            h.port,
            h.xmit_bytes as f64 / 1e3,
            c.credit_stall_ns as f64 / 1e3,
            c.in_buf_high_water,
            c.out_buf_high_water
        );
    }
    let samples = out.counters.samples();
    if !samples.is_empty() {
        println!(
            "\ntime-series: {} samples every {} ns (showing last 5)",
            samples.len(),
            out.counters.sample_interval_ns()
        );
        println!("  t_ns        delivered  in_flight  events  p50/p95/p99 ns");
        for s in samples
            .iter()
            .rev()
            .take(5)
            .collect::<Vec<_>>()
            .iter()
            .rev()
        {
            println!(
                "  {:<11} {:<10} {:<10} {:<7} {}/{}/{}",
                s.t_ns,
                s.delivered_pkts,
                s.in_flight,
                s.events,
                s.latency_p50_ns,
                s.latency_p95_ns,
                s.latency_p99_ns
            );
        }
    }
    Ok(())
}

/// Static flow counts for one tree level of switches (transmit side).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LevelLoads {
    /// Tree level (0 = roots).
    pub level: u32,
    /// Upward inter-switch links at this level carrying at least one flow.
    pub up_links: usize,
    /// Downward links at this level carrying at least one flow.
    pub down_links: usize,
    /// Heaviest upward link (0 at the roots, which have no up-ports).
    pub max_up: u32,
    /// Heaviest downward link.
    pub max_down: u32,
    /// Total flows over this level's upward links.
    pub up_flows: u64,
    /// Total flows over this level's downward links.
    pub down_flows: u64,
}

impl LevelLoads {
    /// Mean flows per *active* upward link.
    pub fn mean_up(&self) -> f64 {
        self.up_flows as f64 / (self.up_links.max(1)) as f64
    }

    /// Mean flows per *active* downward link.
    pub fn mean_down(&self) -> f64 {
        self.down_flows as f64 / (self.down_links.max(1)) as f64
    }
}

/// Everything the `loads` subcommand computes; exposed for tests.
#[derive(Debug, Clone)]
pub struct LoadsReport {
    /// The dense per-link analysis itself.
    pub loads: ChannelLoads,
    /// Per-level roll-ups, roots first.
    pub levels: Vec<LevelLoads>,
    /// Flows in the analyzed matrix.
    pub flows: u64,
    /// Heaviest node injection link.
    pub max_injection: u32,
}

/// Run the dense channel-load analysis for the configured matrix and roll
/// the per-link flow counts up by tree level. No simulation happens here:
/// this is the static control-plane view (the paper's Table 2/3 numbers).
pub fn collect_loads(cmd: &Cmd, fabric: &Fabric) -> Result<LoadsReport, String> {
    use ib_fabric::topology::DeviceRef;
    let params = fabric.params();
    if cmd.oracle && cmd.hotspot.is_some() {
        return Err("--oracle streams the all-to-all matrix; drop --hotspot".into());
    }
    if cmd.oracle && !cmd.fail_links.is_empty() {
        return Err("--oracle assumes a pristine fabric; drop --fail-links".into());
    }
    let nodes = fabric.num_nodes();
    let (loads, flows) = match &cmd.hotspot {
        Some(dst) => {
            let dst = dst.resolve(params)?;
            if dst.0 >= nodes {
                return Err(format!("hotspot node ids must be < {nodes}"));
            }
            let matrix: Vec<_> = (0..nodes)
                .filter(|&s| s != dst.0)
                .map(|s| (NodeId(s), dst))
                .collect();
            let loads = fabric
                .channel_loads_for(&matrix)
                .map_err(|e| e.to_string())?;
            (loads, matrix.len() as u64)
        }
        None => {
            let loads = if cmd.oracle {
                ib_fabric::all_to_all_loads_oracle(params, cmd.scheme).ok_or_else(|| {
                    format!(
                        "--oracle has no closed form for {} routing",
                        cmd.scheme.as_str()
                    )
                })?
            } else {
                fabric.channel_loads().map_err(|e| e.to_string())?
            };
            (loads, u64::from(nodes) * u64::from(nodes - 1))
        }
    };

    let half = params.half();
    let mut levels: Vec<LevelLoads> = (0..params.n())
        .map(|level| LevelLoads {
            level,
            up_links: 0,
            down_links: 0,
            max_up: 0,
            max_down: 0,
            up_flows: 0,
            down_flows: 0,
        })
        .collect();
    let mut max_injection = 0;
    for (device, port, load) in loads.iter() {
        match device {
            DeviceRef::Switch(sw) => {
                let level = params.switch_level_of(sw.0);
                let l = &mut levels[level as usize];
                if level > 0 && u32::from(port.0) > half {
                    l.up_links += 1;
                    l.max_up = l.max_up.max(load);
                    l.up_flows += u64::from(load);
                } else {
                    l.down_links += 1;
                    l.max_down = l.max_down.max(load);
                    l.down_flows += u64::from(load);
                }
            }
            DeviceRef::Node(_) => max_injection = max_injection.max(load),
        }
    }
    Ok(LoadsReport {
        loads,
        levels,
        flows,
        max_injection,
    })
}

fn loads(cmd: &Cmd, fabric: &Fabric) -> Result<(), String> {
    use ib_fabric::topology::DeviceRef;
    let out = collect_loads(cmd, fabric)?;
    let params = fabric.params();
    let matrix = match &cmd.hotspot {
        Some(dst) => format!("all-to-one towards N{}", dst.resolve(params)?.0),
        None => "all-to-all".into(),
    };
    if cmd.json {
        // Hand-rolled JSON (via the shared ib_fabric::json writer): the
        // offline serde_json stub cannot serialize.
        let mut j = JsonBuf::new();
        j.begin_obj();
        j.field_u64("m", u64::from(params.m()));
        j.field_u64("n", u64::from(params.n()));
        j.field_str("scheme", cmd.scheme.as_str());
        j.field_str("matrix", &matrix);
        j.field_u64("flows", out.flows);
        j.field_u64("used_links", out.loads.used_links as u64);
        j.field_u64("max", u64::from(out.loads.max()));
        j.field_u64("max_up", u64::from(out.loads.max_up));
        j.field_u64("max_down", u64::from(out.loads.max_down));
        j.field_u64("max_injection", u64::from(out.max_injection));
        j.key("levels");
        j.begin_arr();
        for l in &out.levels {
            j.begin_obj();
            j.field_u64("level", u64::from(l.level));
            j.field_u64("up_links", l.up_links as u64);
            j.field_u64("down_links", l.down_links as u64);
            j.field_u64("max_up", u64::from(l.max_up));
            j.field_u64("max_down", u64::from(l.max_down));
            j.field_f64("mean_up", l.mean_up(), 3);
            j.field_f64("mean_down", l.mean_down(), 3);
            j.end_obj();
        }
        j.end_arr();
        j.end_obj();
        println!("{}", j.into_string());
        return Ok(());
    }
    println!(
        "static channel loads for {} under {} ({matrix}, {} flows):",
        params,
        cmd.scheme.as_str().to_uppercase(),
        out.flows
    );
    println!(
        "  links carrying traffic : {} of {}",
        out.loads.used_links,
        fabric.network().links().len() * 2
    );
    println!(
        "  heaviest channel       : {} flows (injection links top out at {})",
        out.loads.max(),
        out.max_injection
    );
    println!(
        "  max upward / downward  : {} / {} flows",
        out.loads.max_up, out.loads.max_down
    );
    println!("\nper-level roll-up (switch transmit side, roots first):");
    for l in &out.levels {
        let role = if l.level == 0 { "roots " } else { "level " };
        let up = if l.level == 0 {
            "no up-ports".into()
        } else {
            format!(
                "up max {:>4} / mean {:7.2} over {:>3} links",
                l.max_up,
                l.mean_up(),
                l.up_links
            )
        };
        println!(
            "  {role}{}: {up}; down max {:>4} / mean {:7.2} over {:>3} links",
            l.level,
            l.max_down,
            l.mean_down(),
            l.down_links
        );
    }
    println!("\ntop {} hottest channels:", cmd.top);
    for (device, port, load) in out.loads.hottest(cmd.top) {
        let what = match device {
            DeviceRef::Switch(sw) => {
                let level = params.switch_level_of(sw.0);
                let dir = if level > 0 && u32::from(port.0) > params.half() {
                    "up"
                } else {
                    "down"
                };
                format!(
                    "{:<12} p{} ({dir})",
                    SwitchLabel::from_id(params, sw).to_string(),
                    port.0
                )
            }
            DeviceRef::Node(node) => format!("N{:<11} p{} (injection)", node.0, port.0),
        };
        println!("  {what}: {load} flows");
    }
    Ok(())
}

/// Build the workload the flags describe (exposed for tests).
pub fn build_workload(cmd: &Cmd, fabric: &Fabric) -> Result<Workload, String> {
    use ib_fabric::generators;
    ensure_sources_cabled(fabric)?;
    let nodes = fabric.num_nodes();
    let wl = match cmd.wl_kind {
        WlKind::AllreduceRing => generators::allreduce_ring(nodes, cmd.bytes),
        WlKind::AllreduceRd => {
            if !nodes.is_power_of_two() {
                return Err(format!(
                    "allreduce-rd needs a power-of-two node count; this fabric has {nodes} \
                     (use --kind allreduce-ring)"
                ));
            }
            generators::allreduce_recursive_doubling(nodes, cmd.bytes)
        }
        WlKind::AllToAll => generators::all_to_all(nodes, cmd.bytes),
        WlKind::Bcast => generators::bcast_binomial(nodes, NodeId(0), cmd.bytes),
        WlKind::ClosedLoop => generators::closed_loop(
            nodes,
            ib_fabric::ClosedLoopKind::Uniform,
            cmd.bytes,
            cmd.in_flight,
            cmd.messages,
            cmd.seed.unwrap_or(1),
        ),
        WlKind::Replay => {
            let path = cmd.trace.as_ref().expect("parser enforces --trace");
            let text = std::fs::read_to_string(path)
                .map_err(|e| format!("cannot read trace '{path}': {e}"))?;
            ib_fabric::sim::workload_trace::parse_jsonl(&text, nodes)?
        }
    };
    Ok(wl)
}

/// Drive the workload to completion (exposed for tests).
pub fn collect_workload(cmd: &Cmd, fabric: &Fabric) -> Result<WorkloadReport, String> {
    let wl = build_workload(cmd, fabric)?;
    let mut experiment = fabric
        .experiment()
        .virtual_lanes(cmd.vls)
        .threads(cmd.threads)
        .partition(cmd.partition)
        .route_backend(cmd.route_backend);
    if let Some(seed) = cmd.seed {
        experiment = experiment.seed(seed);
    }
    Ok(experiment.run_workload(&wl))
}

/// Drive the workload with the engine's per-phase self-profiler attached
/// (exposed for tests). The report matches [`collect_workload`] exactly;
/// only the wall-clock phase table is extra.
pub fn collect_workload_profiled(
    cmd: &Cmd,
    fabric: &Fabric,
) -> Result<(WorkloadReport, PhaseProfile), String> {
    let wl = build_workload(cmd, fabric)?;
    let mut experiment = fabric
        .experiment()
        .virtual_lanes(cmd.vls)
        .threads(cmd.threads)
        .partition(cmd.partition)
        .route_backend(cmd.route_backend);
    if let Some(seed) = cmd.seed {
        experiment = experiment.seed(seed);
    }
    Ok(experiment.run_workload_observed(&wl, PhaseProfile::new()))
}

fn print_phase_table(profile: &PhaseProfile) {
    println!("\nengine self-profile (dispatch wall time per phase):");
    let total = profile.total_wall_ns().max(1);
    println!("  phase        wall µs    share   events");
    for (phase, wall_ns, events) in profile.rows() {
        println!(
            "  {:<12} {:>8.1}   {:>5.1}%   {events}",
            phase.name(),
            wall_ns as f64 / 1e3,
            100.0 * wall_ns as f64 / total as f64
        );
    }
    println!(
        "  total        {:>8.1}            {}",
        profile.total_wall_ns() as f64 / 1e3,
        profile.total_events()
    );
}

fn workload(cmd: &Cmd, fabric: &Fabric) -> Result<(), String> {
    let (r, profile) = if cmd.profile {
        let (r, p) = collect_workload_profiled(cmd, fabric)?;
        (r, Some(p))
    } else {
        (collect_workload(cmd, fabric)?, None)
    };
    let params = fabric.params();
    if cmd.json {
        // Hand-rolled JSON (via the shared ib_fabric::json writer): the
        // offline serde_json stub cannot serialize.
        let mut j = JsonBuf::new();
        j.begin_obj();
        j.field_u64("m", u64::from(params.m()));
        j.field_u64("n", u64::from(params.n()));
        j.field_str("scheme", cmd.scheme.as_str());
        j.field_str("kind", cmd.wl_kind.as_str());
        j.field_u64("nodes", u64::from(r.num_nodes));
        j.field_u64("messages", r.messages);
        j.field_u64("packets", r.packets);
        j.field_u64("total_bytes", r.total_bytes);
        j.field_u64("makespan_ns", r.makespan_ns);
        j.key("latency");
        j.begin_obj();
        j.field_u64("min_ns", r.latency.min_ns);
        j.field_u64("p50_ns", r.latency.p50_ns);
        j.field_u64("p95_ns", r.latency.p95_ns);
        j.field_u64("p99_ns", r.latency.p99_ns);
        j.field_u64("max_ns", r.latency.max_ns);
        j.field_u64("mean_ns", r.latency.mean_ns);
        j.end_obj();
        j.field_u64("node_skew_ns", r.node_skew_ns);
        j.field_u64("events", r.events);
        j.key("groups");
        j.begin_arr();
        for g in &r.groups {
            j.begin_obj();
            j.field_str("name", &g.name);
            j.field_u64("messages", g.messages);
            j.field_u64("bytes", g.bytes);
            j.field_u64("start_ns", g.start_ns);
            j.field_u64("completion_ns", g.completion_ns);
            j.end_obj();
        }
        j.end_arr();
        if let Some(p) = &profile {
            j.key("phases");
            j.begin_arr();
            for (phase, wall_ns, events) in p.rows() {
                j.begin_obj();
                j.field_str("phase", phase.name());
                j.field_u64("wall_ns", wall_ns);
                j.field_u64("events", events);
                j.end_obj();
            }
            j.end_arr();
        }
        j.end_obj();
        println!("{}", j.into_string());
        return Ok(());
    }
    println!(
        "workload {} on {} under {} ({} VLs, {} B payload):",
        cmd.wl_kind.as_str(),
        params,
        cmd.scheme.as_str().to_uppercase(),
        cmd.vls,
        cmd.bytes
    );
    println!(
        "  messages   : {} over {} nodes ({} packets, {} bytes)",
        r.messages, r.num_nodes, r.packets, r.total_bytes
    );
    println!(
        "  makespan   : {} ns (first arm to last delivery), node skew {} ns",
        r.makespan_ns, r.node_skew_ns
    );
    println!(
        "  msg latency: p50 {} ns, p95 {} ns, p99 {} ns (min {}, max {}, mean {})",
        r.latency.p50_ns,
        r.latency.p95_ns,
        r.latency.p99_ns,
        r.latency.min_ns,
        r.latency.max_ns,
        r.latency.mean_ns
    );
    for g in &r.groups {
        println!(
            "  collective : {} — {} messages, {} bytes, completed in {} ns",
            g.name,
            g.messages,
            g.bytes,
            g.completion_ns - g.start_ns
        );
    }
    println!("  engine     : {} events", r.events);
    if let Some(p) = &profile {
        print_phase_table(p);
    }
    Ok(())
}

/// Everything the `faults` subcommand computes; exposed for tests.
#[derive(Debug, Clone)]
pub struct FaultsReport {
    /// The deterministic fault schedule the run executed.
    pub plan: ib_fabric::FaultPlan,
    /// The base-net link indices the seeded pick selected.
    pub killed_links: Vec<u32>,
    /// The faulted run itself.
    pub report: SimReport,
    /// Reconvergence cost, loss/stall/rescue counts and path survival.
    pub disruption: ib_fabric::DisruptionReport,
}

/// Build the seeded fault plan, run the degraded-fabric scenario on the
/// configured engine (sequential, threaded or multi-process — reports
/// are bit-identical across all three) and derive the disruption
/// analysis. Exposed for tests.
pub fn collect_faults(cmd: &Cmd, fabric: &Fabric) -> Result<FaultsReport, String> {
    use ib_fabric::FaultPlan;
    if !cmd.fail_links.is_empty() {
        return Err("faults schedules its own failures; drop --fail-links".into());
    }
    if cmd.scheme == RoutingKind::UpDown {
        return Err("faults relies on patch-level LFT repair, which only the \
             mlid/slid schemes support; model static up*/down* damage \
             with --fail-links instead"
            .into());
    }
    if cmd.route_backend == RouteBackend::Oracle {
        return Err(
            "--route-backend oracle answers routes from the intact-fabric \
             closed form; faulted runs need --route-backend table"
                .into(),
        );
    }
    let net = fabric.network();
    let killed = FaultPlan::pick_links(net, cmd.kill, cmd.seed.unwrap_or(1));
    if killed.len() < cmd.kill {
        return Err(format!(
            "--kill {} exceeds the fabric's {} inter-switch cables",
            cmd.kill,
            net.inter_switch_link_indices().len()
        ));
    }
    let at = cmd.fault_at.unwrap_or(cmd.time_ns / 4);
    if at >= cmd.time_ns {
        return Err(format!(
            "--at {at} is past the end of the run ({} ns)",
            cmd.time_ns
        ));
    }
    let mut plan = FaultPlan::kill_links_at(&killed, at);
    plan.policy = cmd.fault_policy;
    plan.detect_ns = cmd.detect_ns;
    plan.per_switch_ns = cmd.per_switch_ns;
    plan.validate(net)?;

    let report = if cmd.processes > 1 {
        let mut cfg = ibfat_sim::SimConfig {
            num_vls: cmd.vls,
            partition: cmd.partition,
            route_backend: cmd.route_backend,
            faults: plan.clone(),
            ..ibfat_sim::SimConfig::default()
        };
        if let Some(seed) = cmd.seed {
            cfg.seed = seed;
        }
        let threads = if cmd.threads == 0 {
            std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1)
        } else {
            cmd.threads
        };
        ibfat_driver::ProcSimulator::new(
            cmd.m,
            cmd.n,
            cmd.scheme,
            cfg,
            pattern_of(cmd, fabric),
            cmd.load,
            cmd.time_ns,
            cmd.time_ns / 5,
            threads.max(cmd.processes),
            cmd.processes,
        )
        .run()
        .map_err(|e| e.to_string())?
    } else {
        let mut experiment = fabric
            .experiment()
            .virtual_lanes(cmd.vls)
            .traffic(pattern_of(cmd, fabric))
            .offered_load(cmd.load)
            .duration_ns(cmd.time_ns)
            .threads(cmd.threads)
            .partition(cmd.partition)
            .route_backend(cmd.route_backend)
            .faults(plan.clone());
        if let Some(seed) = cmd.seed {
            experiment = experiment.seed(seed);
        }
        experiment.run()
    };
    let disruption = ib_fabric::disruption_report(net, fabric.routing(), &plan, &report);
    Ok(FaultsReport {
        plan,
        killed_links: killed,
        report,
        disruption,
    })
}

fn fault_action_parts(action: ib_fabric::FaultAction) -> (&'static str, u32) {
    use ib_fabric::FaultAction;
    match action {
        FaultAction::KillLink(id) => ("kill_link", id),
        FaultAction::KillSwitch(id) => ("kill_switch", id),
        FaultAction::ReviveLink(id) => ("revive_link", id),
        FaultAction::ReviveSwitch(id) => ("revive_switch", id),
    }
}

/// Render a [`FaultsReport`] as JSON. Deliberately excludes the
/// wall-clock throughput fields (`events_per_sec`, `packets_per_sec`):
/// everything here is deterministic, so the output is byte-identical
/// at any `--threads`/`--processes` setting.
pub fn faults_to_json(cmd: &Cmd, fabric: &Fabric, out: &FaultsReport) -> String {
    fn survival(j: &mut JsonBuf, key: &str, s: &ib_fabric::PathSurvival) {
        j.key(key);
        j.begin_obj();
        j.field_str("scheme", s.kind.as_str());
        j.field_u64("lids_per_node", u64::from(s.lids_per_node));
        j.field_u64("pairs", s.pairs);
        j.field_u64("surviving_paths", s.surviving_paths);
        j.field_f64("avg_per_pair", s.avg_per_pair(), 3);
        j.field_u64("min_per_pair", u64::from(s.min_per_pair));
        j.field_u64("disconnected_pairs", s.disconnected_pairs);
        j.end_obj();
    }
    let params = fabric.params();
    let r = &out.report;
    let d = &out.disruption;
    let mut j = JsonBuf::new();
    j.begin_obj();
    j.field_u64("m", u64::from(params.m()));
    j.field_u64("n", u64::from(params.n()));
    j.field_str("scheme", cmd.scheme.as_str());
    j.field_str(
        "policy",
        match out.plan.policy {
            FaultPolicy::Drop => "drop",
            FaultPolicy::Stall => "stall",
        },
    );
    j.field_u64("detect_ns", out.plan.detect_ns);
    j.field_u64("per_switch_ns", out.plan.per_switch_ns);
    j.key("events");
    j.begin_arr();
    for e in &out.plan.events {
        let (kind, id) = fault_action_parts(e.action);
        j.begin_obj();
        j.field_u64("at_ns", e.at_ns);
        j.field_str("action", kind);
        j.field_u64("id", u64::from(id));
        j.end_obj();
    }
    j.end_arr();
    j.key("run");
    j.begin_obj();
    j.field_f64("offered_load", r.offered_load, 4);
    j.field_u64("sim_time_ns", r.sim_time_ns);
    j.field_u64("generated", r.generated);
    j.field_u64("delivered", r.delivered);
    j.field_u64("dropped", r.dropped);
    j.field_u64("in_flight_at_end", r.in_flight_at_end);
    j.field_f64(
        "accepted_bytes_per_ns_per_node",
        r.accepted_bytes_per_ns_per_node,
        6,
    );
    j.field_u64("fault_lost", r.fault_lost);
    j.field_u64("fault_stalled", r.fault_stalled);
    j.field_u64("fault_rerouted", r.fault_rerouted);
    j.field_f64("mean_latency_ns", r.avg_latency_ns(), 1);
    j.field_u64("p99_latency_ns", r.latency.quantile(0.99));
    j.field_u64("events_processed", r.events_processed);
    j.end_obj();
    j.key("faults");
    j.begin_arr();
    for f in &d.faults {
        let (kind, id) = fault_action_parts(f.action);
        j.begin_obj();
        j.field_u64("at_ns", f.at_ns);
        j.field_str("action", kind);
        j.field_u64("id", u64::from(id));
        j.field_u64("reprogram_at_ns", f.reprogram_at_ns);
        j.field_u64("reconvergence_ns", f.reconvergence_ns);
        j.field_u64("switches_reprogrammed", f.switches_reprogrammed as u64);
        j.field_u64("entries_patched", f.entries_patched as u64);
        j.field_u64("table_entries", f.table_entries as u64);
        j.end_obj();
    }
    j.end_arr();
    j.field_u64("total_reconvergence_ns", d.total_reconvergence_ns);
    survival(&mut j, "survival", &d.survival);
    survival(&mut j, "slid_survival", &d.slid_survival);
    j.key("level_loads");
    j.begin_arr();
    for l in &d.level_loads {
        j.begin_obj();
        j.field_u64("level", u64::from(l.level));
        j.field_u64("healthy_max", u64::from(l.healthy_max));
        j.field_f64("healthy_mean", l.healthy_mean, 3);
        j.field_u64("degraded_max", u64::from(l.degraded_max));
        j.field_f64("degraded_mean", l.degraded_mean, 3);
        j.end_obj();
    }
    j.end_arr();
    j.end_obj();
    j.into_string()
}

fn faults(cmd: &Cmd, fabric: &Fabric) -> Result<(), String> {
    let out = collect_faults(cmd, fabric)?;
    if cmd.json {
        println!("{}", faults_to_json(cmd, fabric, &out));
        return Ok(());
    }
    let params = fabric.params();
    let r = &out.report;
    let d = &out.disruption;
    println!(
        "faulted run of {} under {} ({} VLs, offered {:.2}, {} µs, {} policy):",
        params,
        cmd.scheme.as_str().to_uppercase(),
        cmd.vls,
        cmd.load,
        cmd.time_ns / 1000,
        match out.plan.policy {
            FaultPolicy::Drop => "drop",
            FaultPolicy::Stall => "stall",
        }
    );
    println!(
        "  plan       : kill {} inter-switch cable(s) {:?} at {} ns (seed {})",
        out.killed_links.len(),
        out.killed_links,
        out.plan.events.first().map(|e| e.at_ns).unwrap_or(0),
        cmd.seed.unwrap_or(1)
    );
    println!(
        "  SM model   : detect {} ns, then {} ns per reprogrammed switch",
        out.plan.detect_ns, out.plan.per_switch_ns
    );
    for f in &d.faults {
        let (kind, id) = fault_action_parts(f.action);
        println!(
            "  {kind} {id} @{} ns: SM patched {} switches / {} LFT entries \
             (full rebuild = {}) by {} ns (+{} ns)",
            f.at_ns,
            f.switches_reprogrammed,
            f.entries_patched,
            f.table_entries,
            f.reprogram_at_ns,
            f.reconvergence_ns
        );
    }
    println!(
        "  disruption : {} lost, {} stalled, {} rescued by reprogramming; \
         reconvergence total {} ns",
        r.fault_lost, r.fault_stalled, r.fault_rerouted, d.total_reconvergence_ns
    );
    println!(
        "  delivered  : {} packets ({} load-dropped), accepted {:.4} bytes/ns/node, \
         p99 latency {} ns",
        r.delivered,
        r.dropped,
        r.accepted_bytes_per_ns_per_node,
        r.latency.quantile(0.99)
    );
    let surv = |s: &ib_fabric::PathSurvival| {
        format!(
            "{:.2} of {} paths/pair (min {}, {} pairs disconnected)",
            s.avg_per_pair(),
            s.lids_per_node,
            s.min_per_pair,
            s.disconnected_pairs
        )
    };
    println!(
        "  survival   : {} keeps {}",
        d.survival.kind.as_str().to_uppercase(),
        surv(&d.survival)
    );
    println!("    vs SLID  : {}", surv(&d.slid_survival));
    println!("  tier loads : all-to-all channel load, healthy -> degraded");
    for l in &d.level_loads {
        println!(
            "    levels {}-{}: max {} -> {}, mean {:.2} -> {:.2}",
            l.level,
            l.level + 1,
            l.healthy_max,
            l.degraded_max,
            l.healthy_mean,
            l.degraded_mean
        );
    }
    Ok(())
}

fn sweep(cmd: &Cmd, fabric: &Fabric) -> Result<(), String> {
    let reports = fabric
        .experiment()
        .virtual_lanes(cmd.vls)
        .traffic(pattern_of(cmd, fabric))
        .duration_ns(cmd.time_ns)
        .threads(cmd.threads)
        .partition(cmd.partition)
        .route_backend(cmd.route_backend)
        .run_sweep(&cmd.loads);
    println!("offered,accepted,avg_latency_ns,p99_latency_ns,delivered,dropped");
    for r in &reports {
        println!(
            "{},{},{},{},{},{}",
            r.offered_load,
            r.accepted_bytes_per_ns_per_node,
            r.avg_latency_ns(),
            r.latency.quantile(0.99),
            r.delivered,
            r.dropped
        );
    }
    Ok(())
}
