/root/repo/target/debug/deps/ib_fabric-ebd6528041f47c25.d: crates/core/src/lib.rs crates/core/src/builder.rs crates/core/src/experiment.rs

/root/repo/target/debug/deps/libib_fabric-ebd6528041f47c25.rlib: crates/core/src/lib.rs crates/core/src/builder.rs crates/core/src/experiment.rs

/root/repo/target/debug/deps/libib_fabric-ebd6528041f47c25.rmeta: crates/core/src/lib.rs crates/core/src/builder.rs crates/core/src/experiment.rs

crates/core/src/lib.rs:
crates/core/src/builder.rs:
crates/core/src/experiment.rs:
