//! Property-based tests for discovery and recognition.

use ibfat_sm::{discover, recognize};
use ibfat_topology::{Network, NodeId, TreeParams};
use proptest::prelude::*;

fn params() -> impl Strategy<Value = TreeParams> {
    prop_oneof![
        Just(TreeParams::new(4, 2).unwrap()),
        Just(TreeParams::new(4, 3).unwrap()),
        Just(TreeParams::new(8, 2).unwrap()),
        Just(TreeParams::new(8, 3).unwrap()),
        Just(TreeParams::new(16, 2).unwrap()),
        Just(TreeParams::new(2, 3).unwrap()),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn recognition_succeeds_from_any_origin(p in params(), origin in 0u32..10_000) {
        let net = Network::mport_ntree(p);
        let origin = NodeId(origin % p.num_nodes());
        let disc = discover(&net, origin);
        prop_assert_eq!(
            disc.devices.len(),
            net.num_nodes() + net.num_switches()
        );
        let rec = recognize(&disc).expect("healthy fabric recognizes");
        prop_assert_eq!(rec.params, p);
        // Every device got exactly one label of the right kind.
        for (i, dev) in disc.devices.iter().enumerate() {
            match dev.kind {
                ibfat_topology::DeviceKind::Switch => {
                    prop_assert!(rec.switch_labels[i].is_some());
                    prop_assert!(rec.node_labels[i].is_none());
                }
                ibfat_topology::DeviceKind::Node => {
                    prop_assert!(rec.node_labels[i].is_some());
                    prop_assert!(rec.switch_labels[i].is_none());
                }
            }
        }
    }

    #[test]
    fn degraded_fabrics_never_panic_recognition(p in params(), cuts in prop::collection::vec(0usize..10_000, 1..4), origin in 0u32..10_000) {
        // Random link failures: recognition must fail with a structured
        // error on an incomplete fat tree — never panic, never mislabel.
        let mut net = Network::mport_ntree(p);
        for c in cuts {
            if net.links().is_empty() {
                break;
            }
            let idx = c % net.links().len();
            net.remove_link(idx);
        }
        let origin = NodeId(origin % p.num_nodes());
        if net.node(origin).peer(ibfat_topology::PortNum(1)).is_none() {
            return Ok(()); // origin isolated; a real SM would move hosts
        }
        let disc = discover(&net, origin);
        // Cutting at least one link always breaks the closed-form counts.
        prop_assert!(recognize(&disc).is_err());
    }
}
