/root/repo/target/debug/deps/arbitration-cc05078bbedfd08c.d: crates/sim/tests/arbitration.rs Cargo.toml

/root/repo/target/debug/deps/libarbitration-cc05078bbedfd08c.rmeta: crates/sim/tests/arbitration.rs Cargo.toml

crates/sim/tests/arbitration.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
