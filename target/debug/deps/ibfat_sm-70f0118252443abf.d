/root/repo/target/debug/deps/ibfat_sm-70f0118252443abf.d: crates/sm/src/lib.rs crates/sm/src/discovery.rs crates/sm/src/mad.rs crates/sm/src/manager.rs crates/sm/src/recognize.rs Cargo.toml

/root/repo/target/debug/deps/libibfat_sm-70f0118252443abf.rmeta: crates/sm/src/lib.rs crates/sm/src/discovery.rs crates/sm/src/mad.rs crates/sm/src/manager.rs crates/sm/src/recognize.rs Cargo.toml

crates/sm/src/lib.rs:
crates/sm/src/discovery.rs:
crates/sm/src/mad.rs:
crates/sm/src/manager.rs:
crates/sm/src/recognize.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
