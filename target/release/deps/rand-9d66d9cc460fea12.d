/root/repo/target/release/deps/rand-9d66d9cc460fea12.d: /root/stubdeps/rand/src/lib.rs

/root/repo/target/release/deps/librand-9d66d9cc460fea12.rlib: /root/stubdeps/rand/src/lib.rs

/root/repo/target/release/deps/librand-9d66d9cc460fea12.rmeta: /root/stubdeps/rand/src/lib.rs

/root/stubdeps/rand/src/lib.rs:
