/root/repo/target/debug/deps/ib_fabric-3ad8728e6757ea1b.d: crates/core/src/lib.rs crates/core/src/builder.rs crates/core/src/experiment.rs

/root/repo/target/debug/deps/ib_fabric-3ad8728e6757ea1b: crates/core/src/lib.rs crates/core/src/builder.rs crates/core/src/experiment.rs

crates/core/src/lib.rs:
crates/core/src/builder.rs:
crates/core/src/experiment.rs:
