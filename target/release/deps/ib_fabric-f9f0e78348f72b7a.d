/root/repo/target/release/deps/ib_fabric-f9f0e78348f72b7a.d: crates/core/src/lib.rs crates/core/src/builder.rs crates/core/src/experiment.rs

/root/repo/target/release/deps/libib_fabric-f9f0e78348f72b7a.rlib: crates/core/src/lib.rs crates/core/src/builder.rs crates/core/src/experiment.rs

/root/repo/target/release/deps/libib_fabric-f9f0e78348f72b7a.rmeta: crates/core/src/lib.rs crates/core/src/builder.rs crates/core/src/experiment.rs

crates/core/src/lib.rs:
crates/core/src/builder.rs:
crates/core/src/experiment.rs:
