//! Multi-process execution driver for the sharded simulator.
//!
//! [`ProcSimulator`] runs the same conservatively-synchronized shard
//! engine as `ibfat_sim::ParSimulator`, but places each contiguous
//! shard range in its own worker *process*. Workers rebuild their
//! subfabric locally (only the forwarding tables of owned switches are
//! materialized — the per-process memory win), run their shards
//! sequentially inside each synchronization window, and talk to the
//! parent over a hand-rolled length-prefixed pipe protocol
//! (stdin/stdout, std only). The parent never simulates: it is a vote
//! reducer and blob router, mirroring the window clock so that it
//! agrees with every child about the final window.
//!
//! The determinism contract is inherited wholesale from
//! `ibfat_sim::dist`: reports are **bit-identical** to the sequential
//! `Simulator` and the threaded `ParSimulator` at any process count.
//! The driver adds only transport — framing, process supervision, and
//! failure mapping (a dead worker surfaces as
//! [`SimError::WorkerPanicked`] with its stderr tail, a protocol
//! violation as [`SimError::Bridge`]).
//!
//! ## Frame format
//!
//! Every frame is `u32` little-endian payload length, then payload;
//! the first payload byte is the tag:
//!
//! | tag | direction      | body                                         |
//! |-----|----------------|----------------------------------------------|
//! | 0   | parent → child | Hello: `DistSpec::encode`                    |
//! | 1   | child → parent | WindowEnd: vote `u64`, blob count `u32`, each blob `src u32, dst u32, len u32, bytes` |
//! | 2   | parent → child | WindowGrant: `g u64`, blobs as above          |
//! | 3   | child → parent | Finished: `VmHWM kB u64`, bridge bytes `u64`, windows `u64`, partial blobs, telemetry blobs (both `u32` count, each `u32` len + bytes) |
//! | 4   | child → parent | Error: `SimError` kind `u8`, message bytes    |
//!
//! One WindowEnd/WindowGrant pair per synchronization window; after
//! the final grant every child sends Finished and exits.

use ibfat_routing::{Routing, RoutingKind};
use ibfat_sim::dist::{
    decode_shard_telemetry, parent_report, run_child, ChannelBlob, ChildBridge, ChildOutcome,
    DistSpec, WindowClock,
};
use ibfat_sim::{
    EngineTelemetry, ParSimulator, RouteBackend, ShardTelemetry, SimConfig, SimError, SimReport,
    TrafficPattern,
};
use ibfat_topology::{Network, TreeParams};
use std::io::{self, Read, Write};
use std::path::PathBuf;
use std::process::{Child, ChildStdin, ChildStdout, Command, Stdio};
use std::time::Instant;

/// Environment variable that flips a binary into worker mode. The
/// supervisor sets it to `1` when spawning; [`maybe_run_worker`]
/// checks it before any argument parsing.
pub const WORKER_ENV: &str = "IBFAT_DRIVER_WORKER";

/// Environment variable overriding which executable to spawn as the
/// worker (highest-priority default is the [`ProcSimulator::worker_exe`]
/// builder knob, then this, then `current_exe()`).
pub const WORKER_EXE_ENV: &str = "IBFAT_WORKER_EXE";

const TAG_HELLO: u8 = 0;
const TAG_WINDOW_END: u8 = 1;
const TAG_WINDOW_GRANT: u8 = 2;
const TAG_FINISHED: u8 = 3;
const TAG_ERROR: u8 = 4;

/// Upper bound on a single frame; a corrupt length prefix must not
/// provoke a multi-gigabyte allocation.
const MAX_FRAME: usize = 1 << 30;

/// Keep only this much of a dead worker's stderr for the diagnostic.
const STDERR_TAIL: usize = 8 * 1024;

fn bridge_err(msg: impl Into<String>) -> SimError {
    SimError::Bridge(msg.into())
}

// ---------------------------------------------------------------------
// Framing
// ---------------------------------------------------------------------

fn write_frame(w: &mut impl Write, payload: &[u8]) -> io::Result<()> {
    w.write_all(&(payload.len() as u32).to_le_bytes())?;
    w.write_all(payload)?;
    w.flush()
}

fn read_frame(r: &mut impl Read) -> io::Result<Vec<u8>> {
    let mut len = [0u8; 4];
    r.read_exact(&mut len)?;
    let len = u32::from_le_bytes(len) as usize;
    if len > MAX_FRAME {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame length {len} exceeds limit"),
        ));
    }
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload)?;
    Ok(payload)
}

fn put_u32(o: &mut Vec<u8>, v: u32) {
    o.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(o: &mut Vec<u8>, v: u64) {
    o.extend_from_slice(&v.to_le_bytes());
}

/// Checked reader over a frame payload.
struct Rd<'a> {
    b: &'a [u8],
    pos: usize,
}

impl<'a> Rd<'a> {
    fn new(b: &'a [u8]) -> Rd<'a> {
        Rd { b, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], SimError> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.b.len())
            .ok_or_else(|| bridge_err("truncated frame"))?;
        let s = &self.b[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, SimError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, SimError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, SimError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn bytes(&mut self) -> Result<Vec<u8>, SimError> {
        let n = self.u32()? as usize;
        Ok(self.take(n)?.to_vec())
    }

    fn rest(self) -> &'a [u8] {
        &self.b[self.pos..]
    }

    fn finish(self) -> Result<(), SimError> {
        if self.pos == self.b.len() {
            Ok(())
        } else {
            Err(bridge_err("trailing bytes after frame payload"))
        }
    }
}

fn encode_blobs(o: &mut Vec<u8>, blobs: &[ChannelBlob]) {
    put_u32(o, blobs.len() as u32);
    for b in blobs {
        put_u32(o, b.src);
        put_u32(o, b.dst);
        put_u32(o, b.bytes.len() as u32);
        o.extend_from_slice(&b.bytes);
    }
}

fn decode_blobs(r: &mut Rd) -> Result<Vec<ChannelBlob>, SimError> {
    let n = r.u32()? as usize;
    let mut blobs = Vec::with_capacity(n.min(1024));
    for _ in 0..n {
        let src = r.u32()?;
        let dst = r.u32()?;
        let bytes = r.bytes()?;
        blobs.push(ChannelBlob { src, dst, bytes });
    }
    Ok(blobs)
}

fn encode_error(e: &SimError) -> Vec<u8> {
    let (kind, msg) = match e {
        SimError::InvalidPattern(m) => (0u8, m),
        SimError::InvalidWorkload(m) => (1, m),
        SimError::WorkerPanicked(m) => (2, m),
        SimError::EngineInvariant(m) => (3, m),
        SimError::Bridge(m) => (4, m),
    };
    let mut o = vec![TAG_ERROR, kind];
    o.extend_from_slice(msg.as_bytes());
    o
}

fn decode_error(r: Rd) -> SimError {
    let mut r = r;
    let kind = r.u8().unwrap_or(4);
    let msg = String::from_utf8_lossy(r.rest()).into_owned();
    match kind {
        0 => SimError::InvalidPattern(msg),
        1 => SimError::InvalidWorkload(msg),
        2 => SimError::WorkerPanicked(msg),
        3 => SimError::EngineInvariant(msg),
        _ => SimError::Bridge(msg),
    }
}

// ---------------------------------------------------------------------
// Worker (child) side
// ---------------------------------------------------------------------

/// Peak resident set of this process (VmHWM, kB). Returns 0 when
/// `/proc` is unavailable.
pub fn vm_hwm_kb() -> u64 {
    std::fs::read_to_string("/proc/self/status")
        .ok()
        .and_then(|s| {
            s.lines()
                .find(|l| l.starts_with("VmHWM:"))
                .and_then(|l| l.split_whitespace().nth(1))
                .and_then(|v| v.parse().ok())
        })
        .unwrap_or(0)
}

struct PipeBridge<'a, R: Read, W: Write> {
    r: &'a mut R,
    w: &'a mut W,
}

impl<R: Read, W: Write> ChildBridge for PipeBridge<'_, R, W> {
    fn exchange(
        &mut self,
        vote: u64,
        out: Vec<ChannelBlob>,
    ) -> Result<(u64, Vec<ChannelBlob>), SimError> {
        let mut payload = vec![TAG_WINDOW_END];
        put_u64(&mut payload, vote);
        encode_blobs(&mut payload, &out);
        write_frame(self.w, &payload).map_err(|e| bridge_err(format!("parent pipe: {e}")))?;
        let frame = read_frame(self.r).map_err(|e| bridge_err(format!("parent pipe: {e}")))?;
        let mut r = Rd::new(&frame);
        match r.u8()? {
            TAG_WINDOW_GRANT => {
                let g = r.u64()?;
                let blobs = decode_blobs(&mut r)?;
                r.finish()?;
                Ok((g, blobs))
            }
            t => Err(bridge_err(format!("expected WindowGrant, got tag {t}"))),
        }
    }
}

fn worker_run(r: &mut impl Read, w: &mut impl Write) -> Result<(), SimError> {
    let hello = read_frame(r).map_err(|e| bridge_err(format!("reading Hello: {e}")))?;
    let mut rd = Rd::new(&hello);
    if rd.u8()? != TAG_HELLO {
        return Err(bridge_err("first frame was not Hello"));
    }
    let spec = DistSpec::decode(rd.rest())?;
    let mut bridge = PipeBridge { r, w };
    let ChildOutcome {
        partials,
        telemetry,
        bridge_bytes_out,
        windows,
    } = run_child(&spec, &mut bridge)?;
    let mut payload = vec![TAG_FINISHED];
    put_u64(&mut payload, vm_hwm_kb());
    put_u64(&mut payload, bridge_bytes_out);
    put_u64(&mut payload, windows);
    put_u32(&mut payload, partials.len() as u32);
    for p in &partials {
        put_u32(&mut payload, p.len() as u32);
        payload.extend_from_slice(p);
    }
    put_u32(&mut payload, telemetry.len() as u32);
    for t in &telemetry {
        put_u32(&mut payload, t.len() as u32);
        payload.extend_from_slice(t);
    }
    write_frame(w, &payload).map_err(|e| bridge_err(format!("writing Finished: {e}")))
}

/// The worker process entry point: speak the bridge protocol on
/// stdin/stdout until the run completes, returning the process exit
/// code. Simulation errors are reported to the parent as an Error
/// frame (best-effort — if the parent is gone, exiting non-zero is all
/// that is left).
pub fn worker_main() -> i32 {
    let stdin = io::stdin();
    let stdout = io::stdout();
    let mut r = io::BufReader::new(stdin.lock());
    let mut w = io::BufWriter::new(stdout.lock());
    match worker_run(&mut r, &mut w) {
        Ok(()) => 0,
        Err(e) => {
            let _ = write_frame(&mut w, &encode_error(&e));
            1
        }
    }
}

/// Call this first thing in `main()` of any binary that may be used as
/// a worker executable (the CLI, the bench harness): if the supervisor
/// spawned this process, it never returns — the process runs the
/// worker protocol and exits.
pub fn maybe_run_worker() {
    if std::env::var_os(WORKER_ENV).is_some_and(|v| v == "1") {
        std::process::exit(worker_main());
    }
}

// ---------------------------------------------------------------------
// Supervisor (parent) side
// ---------------------------------------------------------------------

struct Worker {
    child: Child,
    stdin: ChildStdin,
    stdout: io::BufReader<ChildStdout>,
    stderr: Option<std::thread::JoinHandle<Vec<u8>>>,
    lo: u32,
    hi: u32,
}

impl Worker {
    /// Turn an I/O failure on this worker's pipes into the most
    /// specific error available: if the process died, its exit status
    /// and stderr tail; otherwise a bridge transport error.
    fn diagnose(&mut self, context: &str, err: &dyn std::fmt::Display) -> SimError {
        let _ = self.child.kill();
        let status = self.child.wait().ok();
        let tail = self
            .stderr
            .take()
            .and_then(|h| h.join().ok())
            .map(|b| String::from_utf8_lossy(&b).trim().to_string())
            .unwrap_or_default();
        let died = status.map(|s| !s.success()).unwrap_or(true);
        let mut msg = format!(
            "worker for shards {}..{} ({context}): {err}",
            self.lo, self.hi
        );
        if let Some(s) = status {
            msg.push_str(&format!("; exit: {s}"));
        }
        if !tail.is_empty() {
            msg.push_str(&format!("; stderr: {tail}"));
        }
        if died {
            SimError::WorkerPanicked(msg)
        } else {
            bridge_err(msg)
        }
    }
}

/// What a worker reported back in its Finished frame.
struct Finished {
    rss_kb: u64,
    bridge_bytes: u64,
    windows: u64,
    partials: Vec<Vec<u8>>,
    telemetry: Vec<Vec<u8>>,
}

/// Transport-level statistics of a multi-process run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ProcStats {
    /// Worker processes actually spawned (0 = the run was delegated to
    /// the in-process engine).
    pub processes: usize,
    /// Largest per-worker peak resident set (VmHWM, kB) — for the
    /// delegated path, this process's own VmHWM.
    pub max_worker_rss_kb: u64,
    /// Total message-payload bytes serialized across the bridge.
    pub bridge_bytes: u64,
    /// Synchronization windows driven over the bridge.
    pub windows: u64,
}

/// Multi-process counterpart of `ParSimulator`: same inputs plus a
/// process count, same bit-identical report. `shards` plays the role
/// of `threads` — it fixes the shard decomposition (and therefore the
/// report-irrelevant execution order), while `processes` only chooses
/// how the shards are placed. `--threads 4 --processes 2` thus means
/// "the 4-shard run, split across 2 workers".
///
/// Unlike the in-process engines this type owns its inputs (workers
/// rebuild fabric and routing from parameters), so it is constructed
/// from `(m, n, scheme)` rather than borrowed `Network`/`Routing`.
pub struct ProcSimulator {
    m: u32,
    n: u32,
    kind: RoutingKind,
    cfg: SimConfig,
    pattern: TrafficPattern,
    offered_load: f64,
    sim_time_ns: u64,
    warmup_ns: u64,
    shards: usize,
    processes: usize,
    worker_exe: Option<PathBuf>,
    force_spawn: bool,
}

impl ProcSimulator {
    /// A multi-process pattern-mode run over the pristine m-port
    /// n-tree. Feasibility clamps mirror the threaded engine: shard
    /// count is clamped to the switch count, the process count to the
    /// shard count, and infeasible sharding (one shard, zero
    /// lookahead) falls back to the in-process engine.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        m: u32,
        n: u32,
        kind: RoutingKind,
        cfg: SimConfig,
        pattern: TrafficPattern,
        offered_load: f64,
        sim_time_ns: u64,
        warmup_ns: u64,
        shards: usize,
        processes: usize,
    ) -> ProcSimulator {
        ProcSimulator {
            m,
            n,
            kind,
            cfg,
            pattern,
            offered_load,
            sim_time_ns,
            warmup_ns,
            shards,
            processes,
            worker_exe: None,
            force_spawn: false,
        }
    }

    /// Explicit worker executable (tests point this at the
    /// `ibfat-worker` bin; production binaries re-exec themselves via
    /// [`maybe_run_worker`]). Overrides the `IBFAT_WORKER_EXE`
    /// environment variable.
    pub fn worker_exe(mut self, exe: impl Into<PathBuf>) -> ProcSimulator {
        self.worker_exe = Some(exe.into());
        self
    }

    /// Spawn workers even for a single-process run instead of
    /// delegating to the in-process engine. Used to measure a lone
    /// worker's resident set without the parent's allocations in the
    /// way.
    pub fn force_spawn(mut self, on: bool) -> ProcSimulator {
        self.force_spawn = on;
        self
    }

    /// Run to completion and produce the report.
    pub fn run(self) -> Result<SimReport, SimError> {
        Ok(self.execute(false)?.0)
    }

    /// Run to completion; return the report and the bridge statistics.
    pub fn run_stats(self) -> Result<(SimReport, ProcStats), SimError> {
        let (report, stats, _) = self.execute(false)?;
        Ok((report, stats))
    }

    /// Run with per-shard engine telemetry on; the report stays
    /// bit-identical to an untelemetered run (telemetry only adds
    /// bridge-wait sampling on the child side).
    pub fn run_telemetry(self) -> Result<(SimReport, ProcStats, EngineTelemetry), SimError> {
        self.execute(true)
    }

    fn resolve_exe(&self) -> Result<PathBuf, SimError> {
        if let Some(exe) = &self.worker_exe {
            return Ok(exe.clone());
        }
        if let Some(exe) = std::env::var_os(WORKER_EXE_ENV) {
            return Ok(PathBuf::from(exe));
        }
        std::env::current_exe()
            .map_err(|e| bridge_err(format!("cannot resolve worker executable: {e}")))
    }

    fn execute(self, telemetry: bool) -> Result<(SimReport, ProcStats, EngineTelemetry), SimError> {
        self.cfg
            .validate()
            .map_err(|e| bridge_err(format!("invalid config: {e}")))?;
        let params = TreeParams::new(self.m, self.n)
            .map_err(|e| bridge_err(format!("invalid tree parameters: {e}")))?;
        let net = Network::mport_ntree(params);
        self.pattern.validate(net.num_nodes() as u32)?;
        let shards = self.shards.clamp(1, net.num_switches());
        let processes = self.processes.clamp(1, shards.max(1));
        let infeasible = shards < 2 || self.cfg.lookahead_ns() == 0;
        if infeasible || (processes == 1 && !self.force_spawn) {
            // Delegate to the in-process engine: identical by the
            // threaded engine's own equivalence contract.
            let routing = build_routing(&net, self.kind, self.cfg.route_backend);
            let par = ParSimulator::new(
                &net,
                &routing,
                self.cfg.clone(),
                self.pattern.clone(),
                self.offered_load,
                self.sim_time_ns,
                self.warmup_ns,
                shards,
            );
            let stats = ProcStats {
                processes: 0,
                max_worker_rss_kb: 0,
                bridge_bytes: 0,
                windows: 0,
            };
            let (report, tel) = if telemetry {
                par.run_telemetry()?
            } else {
                let lookahead = self.cfg.lookahead_ns();
                (par.run()?, EngineTelemetry::sequential(lookahead))
            };
            let stats = ProcStats {
                max_worker_rss_kb: vm_hwm_kb(),
                ..stats
            };
            return Ok((report, stats, tel));
        }
        self.supervise(&net, shards, processes, telemetry)
    }

    /// The hub loop: spawn workers, drive the window protocol, merge.
    fn supervise(
        &self,
        net: &Network,
        shards: usize,
        processes: usize,
        telemetry: bool,
    ) -> Result<(SimReport, ProcStats, EngineTelemetry), SimError> {
        let wall_start = Instant::now();
        let exe = self.resolve_exe()?;
        let spec = DistSpec {
            m: self.m,
            n: self.n,
            kind: self.kind,
            cfg: self.cfg.clone(),
            pattern: self.pattern.clone(),
            offered_load: self.offered_load,
            sim_time_ns: self.sim_time_ns,
            warmup_ns: self.warmup_ns,
            shards: shards as u32,
            lo: 0,
            hi: 0,
            telemetry,
        };
        let mut workers = Vec::with_capacity(processes);
        for (lo, hi) in split_ranges(shards, processes) {
            workers.push(spawn_worker(&exe, &spec, lo, hi)?);
        }
        let result = drive_protocol(&mut workers, &self.cfg, self.sim_time_ns);
        let finished = match result {
            Ok(f) => f,
            Err(e) => {
                for w in &mut workers {
                    let _ = w.child.kill();
                    let _ = w.child.wait();
                }
                return Err(e);
            }
        };
        let mut partials = Vec::with_capacity(shards);
        let mut tel_blobs = Vec::new();
        let mut stats = ProcStats {
            processes,
            ..ProcStats::default()
        };
        for f in &finished {
            stats.max_worker_rss_kb = stats.max_worker_rss_kb.max(f.rss_kb);
            stats.bridge_bytes += f.bridge_bytes;
            stats.windows = stats.windows.max(f.windows);
            partials.extend(f.partials.iter().cloned());
            tel_blobs.extend(f.telemetry.iter().cloned());
        }
        if partials.len() != shards {
            return Err(bridge_err(format!(
                "workers returned {} shard partials, expected {shards}",
                partials.len()
            )));
        }
        let routing = build_routing(net, self.kind, self.cfg.route_backend);
        let report = parent_report(
            net,
            &routing,
            &self.cfg,
            &self.pattern,
            self.offered_load,
            self.sim_time_ns,
            self.warmup_ns,
            &partials,
            wall_start.elapsed().as_secs_f64(),
        )?;
        let tel = if telemetry {
            let shard_tels = tel_blobs
                .iter()
                .map(|b| decode_shard_telemetry(b))
                .collect::<Result<Vec<ShardTelemetry>, _>>()?;
            let edge_cut = ParSimulator::new(
                net,
                &routing,
                self.cfg.clone(),
                self.pattern.clone(),
                self.offered_load,
                self.sim_time_ns,
                self.warmup_ns,
                shards,
            )
            .partition_edge_cut();
            EngineTelemetry {
                threads: shards,
                lookahead_ns: self.cfg.lookahead_ns(),
                edge_cut,
                shards: shard_tels,
            }
        } else {
            EngineTelemetry::sequential(self.cfg.lookahead_ns())
        };
        Ok((report, stats, tel))
    }
}

fn build_routing(net: &Network, kind: RoutingKind, backend: RouteBackend) -> Routing {
    match backend {
        RouteBackend::Table => Routing::build(net, kind),
        RouteBackend::Oracle => Routing::build_table_free(net, kind),
    }
}

/// Contiguous shard ranges, one per worker, sized as evenly as
/// possible (the first `shards % processes` workers get one extra).
fn split_ranges(shards: usize, processes: usize) -> Vec<(u32, u32)> {
    let base = shards / processes;
    let rem = shards % processes;
    let mut ranges = Vec::with_capacity(processes);
    let mut lo = 0u32;
    for i in 0..processes {
        let span = (base + usize::from(i < rem)) as u32;
        ranges.push((lo, lo + span));
        lo += span;
    }
    ranges
}

fn spawn_worker(exe: &PathBuf, spec: &DistSpec, lo: u32, hi: u32) -> Result<Worker, SimError> {
    let mut child = Command::new(exe)
        .env(WORKER_ENV, "1")
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .map_err(|e| bridge_err(format!("spawning worker {}: {e}", exe.display())))?;
    let stdin = child.stdin.take().expect("piped stdin");
    let stdout = io::BufReader::new(child.stdout.take().expect("piped stdout"));
    let mut stderr = child.stderr.take().expect("piped stderr");
    // Drain stderr on a dedicated thread: a worker blocked writing a
    // panic backtrace into a full pipe would deadlock the window loop.
    let drainer = std::thread::spawn(move || {
        let mut tail = Vec::new();
        let mut buf = [0u8; 4096];
        while let Ok(n) = stderr.read(&mut buf) {
            if n == 0 {
                break;
            }
            tail.extend_from_slice(&buf[..n]);
            if tail.len() > 2 * STDERR_TAIL {
                let cut = tail.len() - STDERR_TAIL;
                tail.drain(..cut);
            }
        }
        tail
    });
    let mut worker = Worker {
        child,
        stdin,
        stdout,
        stderr: Some(drainer),
        lo,
        hi,
    };
    let child_spec = DistSpec {
        lo,
        hi,
        ..spec.clone()
    };
    let mut hello = vec![TAG_HELLO];
    hello.extend_from_slice(&child_spec.encode());
    if let Err(e) = write_frame(&mut worker.stdin, &hello) {
        return Err(worker.diagnose("sending Hello", &e));
    }
    Ok(worker)
}

/// One frame from a worker, with transport failures and Error frames
/// both mapped to `SimError`.
fn recv(worker: &mut Worker, context: &str) -> Result<Vec<u8>, SimError> {
    match read_frame(&mut worker.stdout) {
        Ok(frame) => {
            if frame.first() == Some(&TAG_ERROR) {
                let mut r = Rd::new(&frame);
                let _ = r.u8();
                Err(decode_error(r))
            } else {
                Ok(frame)
            }
        }
        Err(e) => Err(worker.diagnose(context, &e)),
    }
}

fn drive_protocol(
    workers: &mut [Worker],
    cfg: &SimConfig,
    sim_time_ns: u64,
) -> Result<Vec<Finished>, SimError> {
    let mut clock = WindowClock::new(cfg, sim_time_ns);
    loop {
        let mut g = u64::MAX;
        let mut routed: Vec<Vec<ChannelBlob>> = (0..workers.len()).map(|_| Vec::new()).collect();
        for i in 0..workers.len() {
            let frame = recv(&mut workers[i], "awaiting WindowEnd")?;
            let mut r = Rd::new(&frame);
            match r.u8()? {
                TAG_WINDOW_END => {
                    g = g.min(r.u64()?);
                    for blob in decode_blobs(&mut r)? {
                        let owner = workers
                            .iter()
                            .position(|w| (w.lo..w.hi).contains(&blob.dst))
                            .ok_or_else(|| bridge_err("blob addressed to unowned shard"))?;
                        routed[owner].push(blob);
                    }
                    r.finish()?;
                }
                t => return Err(bridge_err(format!("expected WindowEnd, got tag {t}"))),
            }
        }
        for (w, blobs) in workers.iter_mut().zip(routed) {
            let mut payload = vec![TAG_WINDOW_GRANT];
            put_u64(&mut payload, g);
            encode_blobs(&mut payload, &blobs);
            if let Err(e) = write_frame(&mut w.stdin, &payload) {
                return Err(w.diagnose("sending WindowGrant", &e));
            }
        }
        if clock.advance(g) {
            break;
        }
    }
    let mut finished = Vec::with_capacity(workers.len());
    for w in workers.iter_mut() {
        let frame = recv(w, "awaiting Finished")?;
        let mut r = Rd::new(&frame);
        if r.u8()? != TAG_FINISHED {
            return Err(bridge_err("expected Finished frame"));
        }
        let rss_kb = r.u64()?;
        let bridge_bytes = r.u64()?;
        let windows = r.u64()?;
        let np = r.u32()? as usize;
        let mut partials = Vec::with_capacity(np);
        for _ in 0..np {
            partials.push(r.bytes()?);
        }
        let nt = r.u32()? as usize;
        let mut telemetry = Vec::with_capacity(nt);
        for _ in 0..nt {
            telemetry.push(r.bytes()?);
        }
        r.finish()?;
        let expected = (w.hi - w.lo) as usize;
        if partials.len() != expected {
            return Err(bridge_err(format!(
                "worker for shards {}..{} returned {} partials",
                w.lo,
                w.hi,
                partials.len()
            )));
        }
        finished.push(Finished {
            rss_kb,
            bridge_bytes,
            windows,
            partials,
            telemetry,
        });
        let status = w
            .child
            .wait()
            .map_err(|e| bridge_err(format!("waiting for worker: {e}")))?;
        if !status.success() {
            return Err(SimError::WorkerPanicked(format!(
                "worker for shards {}..{} exited {status} after finishing",
                w.lo, w.hi
            )));
        }
    }
    Ok(finished)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn split_ranges_cover_exactly() {
        assert_eq!(split_ranges(4, 2), vec![(0, 2), (2, 4)]);
        assert_eq!(split_ranges(5, 2), vec![(0, 3), (3, 5)]);
        assert_eq!(split_ranges(4, 4), vec![(0, 1), (1, 2), (2, 3), (3, 4)]);
        assert_eq!(split_ranges(7, 3), vec![(0, 3), (3, 5), (5, 7)]);
        let ranges = split_ranges(20, 6);
        assert_eq!(ranges.first().unwrap().0, 0);
        assert_eq!(ranges.last().unwrap().1, 20);
        for w in ranges.windows(2) {
            assert_eq!(w[0].1, w[1].0);
            assert!(w[0].0 < w[0].1);
        }
    }

    #[test]
    fn error_frames_roundtrip_every_kind() {
        for e in [
            SimError::InvalidPattern("p".into()),
            SimError::InvalidWorkload("w".into()),
            SimError::WorkerPanicked("k".into()),
            SimError::EngineInvariant("i".into()),
            SimError::Bridge("b".into()),
        ] {
            let frame = encode_error(&e);
            let mut r = Rd::new(&frame);
            assert_eq!(r.u8().unwrap(), TAG_ERROR);
            assert_eq!(decode_error(r), e);
        }
    }

    #[test]
    fn frame_roundtrip_and_length_guard() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello").unwrap();
        write_frame(&mut buf, b"").unwrap();
        let mut r = io::Cursor::new(buf);
        assert_eq!(read_frame(&mut r).unwrap(), b"hello");
        assert_eq!(read_frame(&mut r).unwrap(), b"");
        assert!(read_frame(&mut r).is_err()); // EOF

        let mut bad = Vec::new();
        bad.extend_from_slice(&(u32::MAX).to_le_bytes());
        assert!(read_frame(&mut io::Cursor::new(bad)).is_err());
    }
}
