//! Dense `(device, port)` → flat-slot indexing.
//!
//! Whole-fabric per-port analyses (channel loads, counters) want a flat
//! `Vec` instead of a hash map: one slot per transmitting `(device, port)`
//! pair, addressable by O(1) arithmetic. [`PortSlots`] fixes the layout:
//!
//! * switch ports first, switch-major: slot `sw * (m + 1) + port` covers
//!   IB ports `0..=m` of every switch (port 0 — the management port —
//!   never transmits data, so its slot simply stays zero; paying one
//!   unused slot per switch keeps the stride a single multiply);
//! * then one slot per processing node for its injection link (endports
//!   have exactly one data port, IB port 1).
//!
//! The layout is a pure function of [`TreeParams`], so independently
//! computed load vectors (e.g. per-source shards) can be merged by
//! element-wise addition.

use crate::{DeviceRef, NodeId, PortNum, SwitchId, TreeParams};

/// The flat slot layout for the directed links of an `FT(m, n)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PortSlots {
    num_switches: u32,
    ports_per_switch: u32,
    num_nodes: u32,
}

impl PortSlots {
    /// The layout for a parameterized fat tree.
    pub fn of(params: TreeParams) -> Self {
        PortSlots {
            num_switches: params.num_switches(),
            ports_per_switch: params.m() + 1, // IB ports 0..=m
            num_nodes: params.num_nodes(),
        }
    }

    /// Total number of slots (every switch port incl. port 0, plus one
    /// injection slot per node).
    #[inline]
    pub fn len(&self) -> usize {
        (self.num_switches * self.ports_per_switch + self.num_nodes) as usize
    }

    /// Whether the fabric has no ports at all (never true for a valid
    /// `FT(m, n)`; present for container-idiom completeness).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Slot of a switch's transmit port.
    #[inline]
    pub fn switch_slot(&self, sw: SwitchId, port: PortNum) -> usize {
        debug_assert!(sw.0 < self.num_switches, "switch {sw} out of range");
        debug_assert!(
            u32::from(port.0) < self.ports_per_switch,
            "port {port} out of range"
        );
        (sw.0 * self.ports_per_switch + u32::from(port.0)) as usize
    }

    /// Slot of a node's injection link (its single endport, IB port 1).
    #[inline]
    pub fn node_slot(&self, node: NodeId) -> usize {
        debug_assert!(node.0 < self.num_nodes, "node {node} out of range");
        (self.num_switches * self.ports_per_switch + node.0) as usize
    }

    /// Slot of any transmitting `(device, port)`, or `None` for a port
    /// that has no slot (a node port other than 1).
    #[inline]
    pub fn slot(&self, device: DeviceRef, port: PortNum) -> Option<usize> {
        match device {
            DeviceRef::Switch(sw) => Some(self.switch_slot(sw, port)),
            DeviceRef::Node(node) if port == PortNum(1) => Some(self.node_slot(node)),
            DeviceRef::Node(_) => None,
        }
    }

    /// Invert a slot back to its `(device, port)` pair.
    #[inline]
    pub fn decode(&self, slot: usize) -> (DeviceRef, PortNum) {
        let switch_slots = (self.num_switches * self.ports_per_switch) as usize;
        if slot < switch_slots {
            let sw = slot as u32 / self.ports_per_switch;
            let port = slot as u32 % self.ports_per_switch;
            (DeviceRef::Switch(SwitchId(sw)), PortNum(port as u8))
        } else {
            let node = (slot - switch_slots) as u32;
            debug_assert!(node < self.num_nodes, "slot {slot} out of range");
            (DeviceRef::Node(NodeId(node)), PortNum(1))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slots_are_dense_and_invertible() {
        let slots = PortSlots::of(TreeParams::new(4, 3).unwrap());
        // 20 switches x 5 ports + 16 nodes.
        assert_eq!(slots.len(), 20 * 5 + 16);
        assert!(!slots.is_empty());
        let mut seen = vec![false; slots.len()];
        for sw in 0..20u32 {
            for port in 0..=4u8 {
                let s = slots.switch_slot(SwitchId(sw), PortNum(port));
                assert!(!seen[s], "slot {s} reused");
                seen[s] = true;
                assert_eq!(
                    slots.decode(s),
                    (DeviceRef::Switch(SwitchId(sw)), PortNum(port))
                );
            }
        }
        for node in 0..16u32 {
            let s = slots.node_slot(NodeId(node));
            assert!(!seen[s], "slot {s} reused");
            seen[s] = true;
            assert_eq!(slots.decode(s), (DeviceRef::Node(NodeId(node)), PortNum(1)));
        }
        assert!(seen.iter().all(|&s| s), "gap in the slot space");
    }

    #[test]
    fn slot_matches_the_typed_accessors() {
        let slots = PortSlots::of(TreeParams::new(4, 2).unwrap());
        assert_eq!(
            slots.slot(DeviceRef::Switch(SwitchId(3)), PortNum(2)),
            Some(slots.switch_slot(SwitchId(3), PortNum(2)))
        );
        assert_eq!(
            slots.slot(DeviceRef::Node(NodeId(5)), PortNum(1)),
            Some(slots.node_slot(NodeId(5)))
        );
        assert_eq!(slots.slot(DeviceRef::Node(NodeId(5)), PortNum(2)), None);
    }

    #[test]
    fn decode_order_is_switch_major_then_nodes() {
        // The slot order is exactly the deterministic ranking channel-load
        // reports sort ties by: switches (by id, then port), then nodes.
        let slots = PortSlots::of(TreeParams::new(2, 2).unwrap());
        let decoded: Vec<_> = (0..slots.len()).map(|s| slots.decode(s)).collect();
        let mut sorted = decoded.clone();
        sorted.sort_by_key(|&(device, port)| {
            let rank = match device {
                DeviceRef::Switch(s) => (0u8, s.0),
                DeviceRef::Node(n) => (1, n.0),
            };
            (rank, port.0)
        });
        assert_eq!(decoded, sorted);
    }
}
