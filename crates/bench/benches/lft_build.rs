//! Cost of the subnet-manager role: building a full set of linear
//! forwarding tables for each evaluated network size and scheme. This is
//! the work re-done at every subnet (re)initialization, so it matters for
//! fabric bring-up time.

use bench::EVAL_CONFIGS;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ib_fabric::prelude::*;
use std::hint::black_box;

fn bench_lft_build(c: &mut Criterion) {
    let mut group = c.benchmark_group("lft_build");
    for &(m, n) in &EVAL_CONFIGS {
        let params = TreeParams::new(m, n).unwrap();
        let net = Network::mport_ntree(params);
        for kind in [RoutingKind::Slid, RoutingKind::Mlid, RoutingKind::UpDown] {
            group.bench_with_input(
                BenchmarkId::new(kind.as_str(), format!("{m}x{n}")),
                &net,
                |b, net| b.iter(|| black_box(Routing::build(black_box(net), kind))),
            );
        }
    }
    group.finish();
}

fn bench_topology_build(c: &mut Criterion) {
    let mut group = c.benchmark_group("topology_build");
    for &(m, n) in &EVAL_CONFIGS {
        let params = TreeParams::new(m, n).unwrap();
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{m}x{n}")),
            &params,
            |b, &params| b.iter(|| black_box(Network::mport_ntree(params))),
        );
    }
    group.finish();
}

fn bench_verification(c: &mut Criterion) {
    // The full delivery sweep is the expensive half of `Fabric::verify`;
    // it bounds how often an operator can re-validate a live fabric.
    let mut group = c.benchmark_group("verify_all_lids");
    group.sample_size(10);
    for (m, n) in [(4, 3), (8, 2)] {
        let fabric = Fabric::builder(m, n).build().unwrap();
        group.bench_function(BenchmarkId::from_parameter(format!("{m}x{n}")), |b| {
            b.iter(|| {
                ib_fabric::routing::verify_all_lids_deliver(fabric.network(), fabric.routing())
                    .unwrap()
            })
        });
    }
    group.finish();
}

fn bench_lft_repair(c: &mut Criterion) {
    // The SM's reconvergence choice after a mid-run failure: patch-level
    // repair (re-sweep, reprogram only switches whose pass-3 inputs
    // changed) vs the from-scratch rebuild it replaces. The incremental
    // body deliberately includes recapturing the pre-fault sweep state,
    // so it times the SM's whole reaction, not just the delta pass —
    // and it still has to win for the fault subsystem's latency model
    // to make sense.
    let (m, n) = (16, 3);
    let net = Network::mport_ntree(TreeParams::new(m, n).unwrap());
    let kind = RoutingKind::Mlid;
    let prev = Routing::build(&net, kind);
    let mut dead: Vec<usize> = ib_fabric::FaultPlan::pick_links(&net, 2, 1)
        .into_iter()
        .map(|l| l as usize)
        .collect();
    dead.sort_unstable_by(|a, b| b.cmp(a));
    let mut degraded = net.clone();
    for idx in &dead {
        degraded.remove_link(*idx);
    }

    let incremental = || {
        let mut state = ib_fabric::routing::RepairState::new(&net);
        ib_fabric::routing::repair_fault_tolerant(&degraded, kind, &prev, &mut state)
    };
    let full = || ib_fabric::routing::build_fault_tolerant(&degraded, kind);

    let mut group = c.benchmark_group("lft_repair_incremental");
    group.bench_function(BenchmarkId::from_parameter(format!("{m}x{n}")), |b| {
        b.iter(|| black_box(incremental()))
    });
    group.finish();
    let mut group = c.benchmark_group("lft_repair_full");
    group.bench_function(BenchmarkId::from_parameter(format!("{m}x{n}")), |b| {
        b.iter(|| black_box(full()))
    });
    group.finish();

    // Warn-only sanity check (never fails the run): over a few fixed
    // rounds, incremental repair must beat the full rebuild.
    let rounds = 10;
    let time = |f: &dyn Fn()| {
        let t0 = std::time::Instant::now();
        for _ in 0..rounds {
            f();
        }
        t0.elapsed()
    };
    let t_inc = time(&|| {
        black_box(incremental());
    });
    let t_full = time(&|| {
        black_box(full());
    });
    if t_inc >= t_full {
        eprintln!(
            "WARNING: lft_repair_incremental/{m}x{n} ({t_inc:?}/{rounds}) did not beat \
             lft_repair_full/{m}x{n} ({t_full:?}/{rounds}) — the patch-level repair \
             path has lost its edge"
        );
    }
}

fn bench_sm_bring_up(c: &mut Criterion) {
    // Discovery + recognition + table computation (the SM role), per size.
    let mut group = c.benchmark_group("sm_initialize");
    for &(m, n) in &EVAL_CONFIGS {
        let net = Network::mport_ntree(TreeParams::new(m, n).unwrap());
        let sm = ib_fabric::SubnetManager::new(RoutingKind::Mlid, NodeId(0));
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{m}x{n}")),
            &net,
            |b, net| b.iter(|| black_box(sm.initialize(black_box(net)).unwrap())),
        );
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_lft_build,
    bench_topology_build,
    bench_verification,
    bench_lft_repair,
    bench_sm_bring_up
);
criterion_main!(benches);
