/root/repo/target/release/deps/criterion-3a586d316fb3f83b.d: /root/stubdeps/criterion/src/lib.rs

/root/repo/target/release/deps/libcriterion-3a586d316fb3f83b.rlib: /root/stubdeps/criterion/src/lib.rs

/root/repo/target/release/deps/libcriterion-3a586d316fb3f83b.rmeta: /root/stubdeps/criterion/src/lib.rs

/root/stubdeps/criterion/src/lib.rs:
