/root/repo/target/debug/examples/subnet_manager-d5009a062f4d365d.d: examples/subnet_manager.rs

/root/repo/target/debug/examples/libsubnet_manager-d5009a062f4d365d.rmeta: examples/subnet_manager.rs

examples/subnet_manager.rs:
