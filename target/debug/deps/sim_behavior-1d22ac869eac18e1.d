/root/repo/target/debug/deps/sim_behavior-1d22ac869eac18e1.d: crates/sim/tests/sim_behavior.rs

/root/repo/target/debug/deps/sim_behavior-1d22ac869eac18e1: crates/sim/tests/sim_behavior.rs

crates/sim/tests/sim_behavior.rs:
