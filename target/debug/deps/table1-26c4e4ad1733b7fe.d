/root/repo/target/debug/deps/table1-26c4e4ad1733b7fe.d: crates/bench/src/bin/table1.rs

/root/repo/target/debug/deps/libtable1-26c4e4ad1733b7fe.rmeta: crates/bench/src/bin/table1.rs

crates/bench/src/bin/table1.rs:
