/root/repo/target/release/deps/ib_fabric-f463582def2d3ff7.d: crates/core/src/lib.rs crates/core/src/builder.rs crates/core/src/experiment.rs

/root/repo/target/release/deps/ib_fabric-f463582def2d3ff7: crates/core/src/lib.rs crates/core/src/builder.rs crates/core/src/experiment.rs

crates/core/src/lib.rs:
crates/core/src/builder.rs:
crates/core/src/experiment.rs:
