/root/repo/target/debug/deps/proptests-725397969a426d13.d: crates/topology/tests/proptests.rs

/root/repo/target/debug/deps/libproptests-725397969a426d13.rmeta: crates/topology/tests/proptests.rs

crates/topology/tests/proptests.rs:
