//! Quickstart: build a fat-tree InfiniBand fabric, inspect its routing,
//! and simulate it.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use ib_fabric::prelude::*;

fn main() {
    // An 8-port 3-tree: 128 processing nodes, 80 switches.
    let fabric = Fabric::builder(8, 3)
        .routing(RoutingKind::Mlid)
        .build()
        .expect("valid parameters");

    let params = fabric.params();
    println!(
        "built {params}: {} nodes, {} switches",
        fabric.num_nodes(),
        fabric.num_switches()
    );
    println!(
        "MLID addressing: LMC = {}, so every node owns {} LIDs ({} paths between distant nodes)",
        params.lmc(),
        params.lids_per_node(),
        params.num_lcas(0),
    );

    // Where do packets go? Trace a route.
    let (src, dst) = (NodeId(0), NodeId(100));
    let route = fabric.route(src, dst).expect("routable");
    println!(
        "\nroute {src} -> {dst} uses DLID {} over {} links:",
        route.dlid,
        route.num_links()
    );
    for hop in &route.hops {
        let label = SwitchLabel::from_id(params, hop.switch);
        println!(
            "  {label}: in port {} -> out port {}",
            hop.in_port, hop.out_port
        );
    }

    // Simulate uniform traffic at 40% offered load with 2 virtual lanes.
    let report = fabric
        .experiment()
        .virtual_lanes(2)
        .traffic(TrafficPattern::Uniform)
        .offered_load(0.4)
        .duration_ns(200_000)
        .seed(7)
        .run();

    println!(
        "\nsimulated {} µs: accepted {:.3} bytes/ns/node (offered {:.3}), \
         avg latency {:.0} ns over {} delivered packets",
        report.sim_time_ns / 1000,
        report.accepted_bytes_per_ns_per_node,
        report.offered_bytes_per_ns_per_node,
        report.avg_latency_ns(),
        report.delivered,
    );
}
