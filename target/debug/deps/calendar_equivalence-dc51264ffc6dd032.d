/root/repo/target/debug/deps/calendar_equivalence-dc51264ffc6dd032.d: crates/sim/tests/calendar_equivalence.rs Cargo.toml

/root/repo/target/debug/deps/libcalendar_equivalence-dc51264ffc6dd032.rmeta: crates/sim/tests/calendar_equivalence.rs Cargo.toml

crates/sim/tests/calendar_equivalence.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
