/root/repo/target/debug/examples/hotspot_study-d284bdd2836a5189.d: examples/hotspot_study.rs Cargo.toml

/root/repo/target/debug/examples/libhotspot_study-d284bdd2836a5189.rmeta: examples/hotspot_study.rs Cargo.toml

examples/hotspot_study.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
