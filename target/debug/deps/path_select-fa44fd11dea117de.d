/root/repo/target/debug/deps/path_select-fa44fd11dea117de.d: crates/bench/benches/path_select.rs Cargo.toml

/root/repo/target/debug/deps/libpath_select-fa44fd11dea117de.rmeta: crates/bench/benches/path_select.rs Cargo.toml

crates/bench/benches/path_select.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
