/root/repo/target/debug/deps/ablation-f14136153bab9b96.d: crates/bench/benches/ablation.rs

/root/repo/target/debug/deps/libablation-f14136153bab9b96.rmeta: crates/bench/benches/ablation.rs

crates/bench/benches/ablation.rs:
