//! Fabric-counter validation: conservation laws, agreement with the
//! report's own accounting, and non-perturbation (a probed run must be
//! bit-identical to an unprobed one).

use ibfat_routing::{Routing, RoutingKind};
use ibfat_sim::{
    run_observed, run_once, FabricCounters, NoopProbe, PhaseProfile, RunSpec, SimConfig,
    TrafficPattern,
};
use ibfat_topology::{Network, TreeParams};

fn net(m: u32, n: u32) -> Network {
    Network::mport_ntree(TreeParams::new(m, n).unwrap())
}

#[test]
fn counters_obey_conservation_on_a_fault_free_fabric() {
    let net = net(4, 2);
    let routing = Routing::build(&net, RoutingKind::Mlid);
    let cfg = SimConfig::paper(2);
    let bytes = u64::from(cfg.packet_bytes);
    for load in [0.1, 0.6] {
        let (report, c) = run_observed(
            &net,
            &routing,
            cfg.clone(),
            TrafficPattern::Uniform,
            RunSpec::new(load, 300_000),
            FabricCounters::new(&net, cfg.num_vls),
        );
        let nodes = c.node_totals();
        let sw = c.switch_totals();

        // Fault-free fabric: nothing is ever discarded, and the report's
        // own ledger closes.
        assert_eq!(c.total_drops(), 0);
        assert_eq!(report.dropped, 0);
        assert_eq!(
            report.total_generated,
            report.total_delivered + report.in_flight_at_end
        );

        // Every delivery raised node_rcv exactly once.
        assert_eq!(nodes.rcv_pkts, report.total_delivered);
        assert_eq!(nodes.rcv_bytes, report.total_delivered * bytes);
        // Every transmission was of a generated packet; everything
        // delivered was first transmitted.
        assert!(nodes.xmit_pkts <= report.total_generated);
        assert!(nodes.xmit_pkts >= report.total_delivered);

        // Switch flow conservation: packets received but not (yet)
        // transmitted are exactly the ones resident in switch buffers at
        // the end — a subset of the in-flight population.
        assert!(sw.rcv_pkts >= sw.xmit_pkts);
        assert!(sw.rcv_pkts - sw.xmit_pkts <= report.in_flight_at_end);
        // Every path in a fat tree crosses at least one switch.
        assert!(sw.xmit_pkts >= report.total_delivered);
        assert_eq!(sw.rcv_bytes, sw.rcv_pkts * bytes);
        assert_eq!(sw.xmit_bytes, sw.xmit_pkts * bytes);
    }
}

#[test]
fn port_xmit_bytes_agree_with_link_utilization() {
    // `busy_ns` (PR 1's link accounting) and `xmit_bytes` (this PR's
    // counters) measure the same transmissions two ways. They may differ
    // only by the tail clamp: a transmission cut off by the end of the
    // run is clamped in busy_ns but counted whole in xmit_bytes.
    let net = net(4, 2);
    let routing = Routing::build(&net, RoutingKind::Slid);
    let cfg = SimConfig {
        collect_link_stats: true,
        ..SimConfig::paper(1)
    };
    let pkt_ns = cfg.packet_time_ns();
    let sim_time = 200_000u64;
    let (report, c) = run_observed(
        &net,
        &routing,
        cfg.clone(),
        TrafficPattern::Uniform,
        RunSpec::new(0.5, sim_time),
        FabricCounters::new(&net, cfg.num_vls),
    );
    let links = report.link_utilization.as_ref().expect("stats enabled");
    let mut checked = 0;
    for link in links {
        let Some(sw) = link.from.strip_prefix('S') else {
            continue; // node links are covered by node counters
        };
        let sw: u32 = sw.parse().unwrap();
        let busy_ns = (link.utilization * sim_time as f64).round() as u64;
        let sent_ns = c.port(sw, link.port - 1).xmit_bytes * cfg.byte_time_ns;
        assert!(
            sent_ns >= busy_ns && sent_ns - busy_ns < pkt_ns,
            "S{sw} port {}: busy {busy_ns} vs sent {sent_ns}",
            link.port
        );
        checked += 1;
    }
    assert!(checked > 0);
}

#[test]
fn probed_run_is_bit_identical_to_unprobed() {
    let net = net(4, 2);
    let routing = Routing::build(&net, RoutingKind::Mlid);
    let cfg = SimConfig::paper(4);
    let spec = RunSpec::new(0.7, 150_000);
    let plain = run_once(&net, &routing, cfg.clone(), TrafficPattern::Uniform, spec);
    let (counted, _) = run_observed(
        &net,
        &routing,
        cfg.clone(),
        TrafficPattern::Uniform,
        spec,
        FabricCounters::new(&net, cfg.num_vls).with_sampling(5_000, 4),
    );
    let (noop, _) = run_observed(
        &net,
        &routing,
        cfg,
        TrafficPattern::Uniform,
        spec,
        NoopProbe,
    );
    let mut a = plain;
    let mut b = counted;
    let mut c = noop;
    // The only non-deterministic fields are wall-clock throughput.
    a.events_per_sec = 0.0;
    b.events_per_sec = 0.0;
    c.events_per_sec = 0.0;
    a.packets_per_sec = 0.0;
    b.packets_per_sec = 0.0;
    c.packets_per_sec = 0.0;
    assert_eq!(a, b);
    assert_eq!(a, c);
}

#[test]
fn phase_profile_accounts_for_every_event() {
    let net = net(4, 2);
    let routing = Routing::build(&net, RoutingKind::Mlid);
    let cfg = SimConfig::paper(2);
    let (report, prof) = run_observed(
        &net,
        &routing,
        cfg,
        TrafficPattern::Uniform,
        RunSpec::new(0.4, 100_000),
        PhaseProfile::new(),
    );
    assert_eq!(prof.total_events(), report.events_processed);
    // A steady simulation exercises all four phases.
    for (phase, _, events) in prof.rows() {
        assert!(events > 0, "no {} events", phase.name());
    }
}

#[test]
fn hot_spot_congestion_is_visible_in_xmit_wait() {
    // Half of all traffic aims at node 0; the leaf link to node 0 is the
    // bottleneck, so xmit-wait must concentrate on its switch port and
    // time-series samples must show it among the hottest ports.
    let net = net(4, 2);
    let routing = Routing::build(&net, RoutingKind::Mlid);
    let cfg = SimConfig::paper(1);
    let (report, c) = run_observed(
        &net,
        &routing,
        cfg.clone(),
        TrafficPattern::paper_centric(),
        RunSpec::new(0.8, 400_000),
        FabricCounters::new(&net, cfg.num_vls).with_sampling(20_000, 4),
    );
    assert!(report.delivered > 0);
    // Find the leaf port that feeds node 0 from the topology itself.
    use ibfat_topology::{DeviceRef, NodeId, PortNum};
    let peer = net
        .peer_of(DeviceRef::Node(NodeId(0)), PortNum(1))
        .expect("node 0 is cabled");
    let hot = match peer.device {
        DeviceRef::Switch(s) => (s.0, peer.port.0),
        DeviceRef::Node(_) => unreachable!("endports attach to switches"),
    };
    // That port carries half of all traffic: it transmits more than any
    // other port fabric-wide…
    let hottest = c.hottest_ports(1)[0];
    assert_eq!((hottest.sw, hottest.port), hot);
    // …and it ranks among the top xmit-wait ports. (The very top spots
    // may go to ports *upstream* of the bottleneck: backpressure keeps
    // their output buffers occupied while more inputs pile up behind
    // them — congestion-tree spreading, exactly what the counter is for.)
    let congested = c.most_congested_ports(4);
    assert!(!congested.is_empty(), "hot spot produced no xmit wait");
    assert!(
        congested.iter().any(|p| (p.sw, p.port) == hot),
        "hot leaf port {hot:?} not among top waits {congested:?}"
    );
    assert!(!c.samples().is_empty());
    let last = c.samples().back().unwrap();
    assert!(last.t_ns <= report.sim_time_ns);
}
