/root/repo/target/debug/deps/table1-e2d3c21f3135f7ba.d: crates/bench/src/bin/table1.rs Cargo.toml

/root/repo/target/debug/deps/libtable1-e2d3c21f3135f7ba.rmeta: crates/bench/src/bin/table1.rs Cargo.toml

crates/bench/src/bin/table1.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
