/root/repo/target/debug/deps/ibfat-09f9753a6b0b0708.d: crates/cli/src/main.rs

/root/repo/target/debug/deps/libibfat-09f9753a6b0b0708.rmeta: crates/cli/src/main.rs

crates/cli/src/main.rs:
