/root/repo/target/debug/deps/ibfat_cli-dcbc6923462f8dad.d: crates/cli/src/lib.rs crates/cli/src/args.rs crates/cli/src/commands.rs Cargo.toml

/root/repo/target/debug/deps/libibfat_cli-dcbc6923462f8dad.rmeta: crates/cli/src/lib.rs crates/cli/src/args.rs crates/cli/src/commands.rs Cargo.toml

crates/cli/src/lib.rs:
crates/cli/src/args.rs:
crates/cli/src/commands.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
