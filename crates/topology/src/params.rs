use crate::TopologyError;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Validated parameters of an m-port n-tree `FT(m, n)`.
///
/// * `m` — ports per switch; must be a power of two, `m >= 2`.
/// * `n` — number of switch levels; `n >= 1`.
///
/// The MLID scheme consumes `num_nodes * 2^LMC` LIDs with
/// `LMC = (n-1) * log2(m/2)`. Configurations up to `FT(8, 3)` fit inside
/// the 16-bit IBA unicast range (`0x0001..=0xBFFF`); larger fabrics such
/// as `FT(16, 3)` (2^16 LIDs) and `FT(32, 3)` (2^21 LIDs) are admitted
/// under a modeled *extended-LID* regime — the addressing arithmetic is
/// unchanged, only the identifier width grows. Construction rejects
/// combinations beyond the 2^21 extended-LID budget
/// (`num_nodes * (m/2)^(n-1) > 1 << 21`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct TreeParams {
    m: u32,
    n: u32,
}

impl TreeParams {
    /// Create validated parameters for `FT(m, n)`.
    pub fn new(m: u32, n: u32) -> Result<Self, TopologyError> {
        if m < 2 || !m.is_power_of_two() {
            return Err(TopologyError::InvalidPortCount { m });
        }
        if n < 1 {
            return Err(TopologyError::InvalidTreeHeight { n });
        }
        let half = (m / 2) as u64;
        // num_nodes = 2 * half^n; reject anything beyond 2^20 nodes outright.
        let nodes = 2u64
            .checked_mul(half.checked_pow(n).ok_or(TopologyError::TooLarge {
                m,
                n,
                detail: "node count overflows u64",
            })?)
            .ok_or(TopologyError::TooLarge {
                m,
                n,
                detail: "node count overflows u64",
            })?;
        if nodes > 1 << 20 {
            return Err(TopologyError::TooLarge {
                m,
                n,
                detail: "more than 2^20 processing nodes",
            });
        }
        // MLID consumes nodes * half^(n-1) LIDs starting at LID 1. The
        // extended-LID regime admits up to 2^21 of them (FT(32, 3));
        // anything beyond that is out of the modeled design space.
        let lids = nodes * half.pow(n - 1);
        if lids > 1 << 21 {
            return Err(TopologyError::TooLarge {
                m,
                n,
                detail: "MLID LID space exceeds the 2^21 extended-LID budget",
            });
        }
        Ok(TreeParams { m, n })
    }

    /// Ports per switch, `m`.
    #[inline]
    pub fn m(&self) -> u32 {
        self.m
    }

    /// Number of switch levels, `n`.
    #[inline]
    pub fn n(&self) -> u32 {
        self.n
    }

    /// `m/2`: the down-arity of non-root switches (and the digit radix for
    /// all label positions except the first).
    #[inline]
    pub fn half(&self) -> u32 {
        self.m / 2
    }

    /// Number of processing nodes, `2 * (m/2)^n`.
    #[inline]
    pub fn num_nodes(&self) -> u32 {
        2 * self.half().pow(self.n)
    }

    /// Number of switches, `(2n - 1) * (m/2)^(n-1)`.
    #[inline]
    pub fn num_switches(&self) -> u32 {
        (2 * self.n - 1) * self.half().pow(self.n - 1)
    }

    /// Number of switches at `level`: `(m/2)^(n-1)` at level 0 (roots, whose
    /// first label digit ranges over `0..m/2`), and `2 * (m/2)^(n-1)` at
    /// every level `1..n` (first digit ranges over `0..m`).
    #[inline]
    pub fn switches_at_level(&self, level: u32) -> u32 {
        debug_assert!(level < self.n);
        if level == 0 {
            self.half().pow(self.n - 1)
        } else {
            2 * self.half().pow(self.n - 1)
        }
    }

    /// Dense-id offset of the first switch of `level` (ids are level-major).
    #[inline]
    pub fn level_offset(&self, level: u32) -> u32 {
        debug_assert!(level < self.n);
        if level == 0 {
            0
        } else {
            self.half().pow(self.n - 1) * (1 + 2 * (level - 1))
        }
    }

    /// Level of a switch id under the level-major id layout — the inverse
    /// of [`TreeParams::level_offset`], in O(1) arithmetic.
    #[inline]
    pub fn switch_level_of(&self, id: u32) -> u32 {
        debug_assert!(id < self.num_switches());
        let per = self.half().pow(self.n - 1);
        if id < per {
            0
        } else {
            (id - per) / (2 * per) + 1
        }
    }

    /// The height of the fat tree as defined in the paper, `n + 1`
    /// (n switch levels plus the processing-node level).
    #[inline]
    pub fn height(&self) -> u32 {
        self.n + 1
    }

    /// The LID Mask Control value used by the MLID scheme:
    /// `LMC = log2((m/2)^(n-1)) = (n-1) * log2(m/2)`.
    ///
    /// Each node is assigned `2^LMC` consecutive LIDs; IBA caps LMC at 7
    /// bits (128 paths), which [`TreeParams::new`] indirectly enforces via
    /// the LID-space bound for every practical configuration.
    #[inline]
    pub fn lmc(&self) -> u32 {
        (self.n - 1) * self.half().trailing_zeros()
    }

    /// `2^LMC = (m/2)^(n-1)`: LIDs per node under MLID, which is also the
    /// number of distinct least common ancestors (and hence paths) between
    /// two maximally distant processing nodes.
    #[inline]
    pub fn lids_per_node(&self) -> u32 {
        self.half().pow(self.n - 1)
    }

    /// Number of digits in a node label (`n`).
    #[inline]
    pub fn node_digits(&self) -> usize {
        self.n as usize
    }

    /// Number of digits in a switch label (`n - 1`).
    #[inline]
    pub fn switch_digits(&self) -> usize {
        (self.n - 1) as usize
    }

    /// Radix of node-label digit `i`: `m` for digit 0, `m/2` otherwise.
    #[inline]
    pub fn node_digit_radix(&self, i: usize) -> u32 {
        if i == 0 {
            self.m
        } else {
            self.half()
        }
    }

    /// Radix of switch-label digit `i` at `level`: digit 0 has radix `m/2`
    /// for root switches (level 0) and `m` for all lower levels; the
    /// remaining digits always have radix `m/2`.
    #[inline]
    pub fn switch_digit_radix(&self, level: u32, i: usize) -> u32 {
        if i == 0 && level > 0 {
            self.m
        } else {
            self.half()
        }
    }

    /// Number of least common ancestors of two nodes whose greatest common
    /// prefix has length `alpha`: `(m/2)^(n-1-alpha)`.
    #[inline]
    pub fn num_lcas(&self, alpha: u32) -> u32 {
        debug_assert!(alpha < self.n);
        self.half().pow(self.n - 1 - alpha)
    }

    /// Size of a greatest-common-prefix group `gcpg(x, alpha)`:
    /// all `2 (m/2)^n` nodes for `alpha = 0`, otherwise `(m/2)^(n-alpha)`.
    #[inline]
    pub fn gcpg_size(&self, alpha: u32) -> u32 {
        debug_assert!(alpha <= self.n);
        if alpha == 0 {
            self.num_nodes()
        } else {
            self.half().pow(self.n - alpha)
        }
    }
}

impl fmt::Display for TreeParams {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "FT({}, {})", self.m, self.n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_example_4port_3tree() {
        // The paper's running example: a 4-port 3-tree has 16 processing
        // nodes and 20 communication switches, height 4.
        let p = TreeParams::new(4, 3).unwrap();
        assert_eq!(p.num_nodes(), 16);
        assert_eq!(p.num_switches(), 20);
        assert_eq!(p.height(), 4);
        assert_eq!(p.switches_at_level(0), 4);
        assert_eq!(p.switches_at_level(1), 8);
        assert_eq!(p.switches_at_level(2), 8);
        assert_eq!(p.lmc(), 2);
        assert_eq!(p.lids_per_node(), 4);
    }

    #[test]
    fn evaluation_configs() {
        for (m, n, nodes, switches) in [
            (4, 3, 16, 20),
            (8, 3, 128, 80),
            (16, 2, 128, 24),
            (32, 2, 512, 48),
        ] {
            let p = TreeParams::new(m, n).unwrap();
            assert_eq!(p.num_nodes(), nodes, "FT({m},{n}) nodes");
            assert_eq!(p.num_switches(), switches, "FT({m},{n}) switches");
        }
    }

    #[test]
    fn level_offsets_partition_switch_ids() {
        let p = TreeParams::new(8, 3).unwrap();
        let mut total = 0;
        for l in 0..p.n() {
            assert_eq!(p.level_offset(l), total);
            total += p.switches_at_level(l);
        }
        assert_eq!(total, p.num_switches());
    }

    #[test]
    fn switch_level_of_inverts_level_offset() {
        for (m, n) in [(2, 2), (4, 3), (8, 3), (16, 2), (8, 4)] {
            let p = TreeParams::new(m, n).unwrap();
            for l in 0..p.n() {
                for i in 0..p.switches_at_level(l) {
                    assert_eq!(p.switch_level_of(p.level_offset(l) + i), l, "FT({m},{n})");
                }
            }
        }
    }

    #[test]
    fn rejects_bad_parameters() {
        assert!(matches!(
            TreeParams::new(3, 2),
            Err(TopologyError::InvalidPortCount { m: 3 })
        ));
        assert!(matches!(
            TreeParams::new(6, 2),
            Err(TopologyError::InvalidPortCount { m: 6 })
        ));
        assert!(matches!(
            TreeParams::new(0, 2),
            Err(TopologyError::InvalidPortCount { m: 0 })
        ));
        assert!(matches!(
            TreeParams::new(4, 0),
            Err(TopologyError::InvalidTreeHeight { n: 0 })
        ));
        // 64-port 4-tree: 2 * 32^4 = 2M nodes — too large.
        assert!(matches!(
            TreeParams::new(64, 4),
            Err(TopologyError::TooLarge { .. })
        ));
    }

    #[test]
    fn lid_space_bound_enforced() {
        // FT(16, 4): 2*8^4 = 8192 nodes, 8^3 = 512 LIDs each -> 2^22 LIDs,
        // beyond the 2^21 extended-LID budget.
        assert!(matches!(
            TreeParams::new(16, 4),
            Err(TopologyError::TooLarge { .. })
        ));
        // FT(8, 4): 2*4^4 = 512 nodes * 64 LIDs = 32768 LIDs. OK.
        assert!(TreeParams::new(8, 4).is_ok());
    }

    #[test]
    fn extended_lid_regime_admits_the_scale_out_configs() {
        // FT(16, 3): 1024 nodes x 64 LIDs = 2^16 — beyond the 16-bit
        // unicast range, inside the extended regime.
        let p = TreeParams::new(16, 3).unwrap();
        assert_eq!(p.num_nodes(), 1024);
        assert_eq!(
            u64::from(p.num_nodes()) * u64::from(p.lids_per_node()),
            1 << 16
        );
        // FT(32, 3): 8192 nodes x 256 LIDs = 2^21 — the budget boundary.
        let p = TreeParams::new(32, 3).unwrap();
        assert_eq!(p.num_nodes(), 8192);
        assert_eq!(p.num_switches(), 1280);
        assert_eq!(p.lmc(), 8);
        assert_eq!(
            u64::from(p.num_nodes()) * u64::from(p.lids_per_node()),
            1 << 21
        );
    }

    #[test]
    fn m_equals_two_degenerates_to_path() {
        // FT(2, n): half = 1, 2 nodes, (2n-1) switches in a chain.
        let p = TreeParams::new(2, 3).unwrap();
        assert_eq!(p.num_nodes(), 2);
        assert_eq!(p.num_switches(), 5);
        assert_eq!(p.lmc(), 0);
        assert_eq!(p.lids_per_node(), 1);
    }

    #[test]
    fn gcpg_sizes_match_paper() {
        let p = TreeParams::new(4, 3).unwrap();
        assert_eq!(p.gcpg_size(0), 16);
        assert_eq!(p.gcpg_size(1), 4); // the paper's gcpg("1", 1) has 4 nodes
        assert_eq!(p.gcpg_size(2), 2);
        assert_eq!(p.gcpg_size(3), 1);
        assert_eq!(p.num_lcas(1), 2); // lca(P(100), P(111)) = 2 switches
        assert_eq!(p.num_lcas(0), 4); // 4 roots
    }
}
