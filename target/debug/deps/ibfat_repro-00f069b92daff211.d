/root/repo/target/debug/deps/ibfat_repro-00f069b92daff211.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libibfat_repro-00f069b92daff211.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
