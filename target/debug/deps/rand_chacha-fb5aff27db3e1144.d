/root/repo/target/debug/deps/rand_chacha-fb5aff27db3e1144.d: /root/stubdeps/rand_chacha/src/lib.rs

/root/repo/target/debug/deps/librand_chacha-fb5aff27db3e1144.rlib: /root/stubdeps/rand_chacha/src/lib.rs

/root/repo/target/debug/deps/librand_chacha-fb5aff27db3e1144.rmeta: /root/stubdeps/rand_chacha/src/lib.rs

/root/stubdeps/rand_chacha/src/lib.rs:
