//! # ibfat-topology
//!
//! Topology substrate for fat-tree-based InfiniBand subnets, implementing the
//! *m-port n-tree* construction `FT(m, n)` of Lin, Chung and Huang
//! ("A Multiple LID Routing Scheme for Fat-Tree-Based InfiniBand Networks",
//! IPDPS 2004) and its InfiniBand realization `IBFT(m, n)`.
//!
//! An `FT(m, n)` is a fixed-arity fat tree built entirely from `m`-port
//! switches. It has
//!
//! * `2 * (m/2)^n` processing nodes,
//! * `(2n - 1) * (m/2)^(n-1)` switches arranged in `n` levels
//!   (level 0 holds the roots, level `n-1` the leaf switches),
//! * height `n + 1`.
//!
//! This crate provides:
//!
//! * [`TreeParams`] — validated `(m, n)` parameters and all derived counts;
//! * [`NodeLabel`] / [`SwitchLabel`] — the digit-string labels of the paper,
//!   with conversions to and from dense integer ids;
//! * prefix algebra ([`gcp_len`], [`lca_switches`], [`Gcpg`], [`rank_in`],
//!   [`pid`]) used by the MLID routing scheme;
//! * [`Network`] — a port-accurate subnet graph (switch port 0 is the
//!   InfiniBand management port; external ports are 1-based) built by
//!   [`Network::mport_ntree`];
//! * structural analysis and invariant checking ([`analysis`]).
//!
//! ## Example
//!
//! ```
//! use ibfat_topology::{Network, TreeParams};
//!
//! let params = TreeParams::new(4, 3).unwrap();
//! assert_eq!(params.num_nodes(), 16);
//! assert_eq!(params.num_switches(), 20);
//!
//! let net = Network::mport_ntree(params);
//! net.validate().unwrap();
//! ```

mod analysis_impl;
mod build;
mod digits;
mod error;
mod graph;
mod ids;
mod label;
mod par;
mod params;
mod partition;
mod prefix;
mod stride;

pub use digits::Digits;
pub use error::TopologyError;
pub use graph::{Device, DeviceKind, DeviceRef, Link, Network, Peer, Port};
pub use ids::{Level, NodeId, PortNum, SwitchId};
pub use label::{NodeLabel, SwitchLabel};
pub use par::par_map_indexed;
pub use params::TreeParams;
pub use partition::{block_switch_partition, fat_tree_switch_partition, switch_edge_cut};
pub use prefix::{gcp_len, lca_switches, pid, rank_in, Gcpg};
pub use stride::PortSlots;

/// Structural analysis utilities (path counts, hop distances, bisection).
pub mod analysis {
    pub use crate::analysis_impl::*;
}
