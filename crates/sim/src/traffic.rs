//! Traffic patterns: who sends to whom.
//!
//! The paper evaluates two patterns — uniform random and "50% centric"
//! (each packet targets one fixed hot node with probability 1/2, otherwise
//! a uniform random destination). Permutation patterns are provided as
//! extensions for stress studies.

use crate::SimError;
use ibfat_topology::NodeId;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// A destination-selection pattern.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum TrafficPattern {
    /// Every packet picks a destination uniformly at random among the
    /// other nodes.
    Uniform,
    /// With probability `fraction`, the packet targets `hotspot`;
    /// otherwise a uniform random destination (possibly the hot spot
    /// again, matching "p out of 100 packets go to this node" semantics).
    /// The paper uses `fraction = 0.5`.
    Centric {
        /// The hot destination.
        hotspot: NodeId,
        /// Probability of targeting the hot spot.
        fraction: f64,
    },
    /// A fixed permutation: node `i` always sends to `perm[i]`.
    /// Self-mapped nodes stay silent.
    Permutation(Vec<NodeId>),
}

impl TrafficPattern {
    /// The paper's hot-spot pattern: 50% of traffic to node 0.
    pub fn paper_centric() -> Self {
        TrafficPattern::Centric {
            hotspot: NodeId(0),
            fraction: 0.5,
        }
    }

    /// Bit-complement permutation on PIDs (a classic adversarial pattern:
    /// every source's partner lies in the opposite half of the tree, so
    /// all traffic crosses the roots).
    pub fn bit_complement(num_nodes: u32) -> Self {
        assert!(num_nodes.is_power_of_two());
        let mask = num_nodes - 1;
        TrafficPattern::Permutation((0..num_nodes).map(|i| NodeId(i ^ mask)).collect())
    }

    /// Bit-reversal permutation on PIDs.
    pub fn bit_reversal(num_nodes: u32) -> Self {
        assert!(num_nodes.is_power_of_two());
        let bits = num_nodes.trailing_zeros();
        TrafficPattern::Permutation(
            (0..num_nodes)
                .map(|i| NodeId(i.reverse_bits() >> (32 - bits)))
                .collect(),
        )
    }

    /// Check the pattern against the fabric it will drive — the
    /// config-time guard that keeps [`sample`](TrafficPattern::sample)
    /// panic-free. A permutation must name exactly one destination per
    /// node and every destination must exist; a centric hot spot must
    /// exist and its fraction must be a probability.
    pub fn validate(&self, num_nodes: u32) -> Result<(), SimError> {
        match self {
            TrafficPattern::Uniform => Ok(()),
            TrafficPattern::Centric { hotspot, fraction } => {
                if hotspot.0 >= num_nodes {
                    return Err(SimError::InvalidPattern(format!(
                        "centric hotspot {} out of range ({num_nodes} nodes)",
                        hotspot.0
                    )));
                }
                if !(0.0..=1.0).contains(fraction) {
                    return Err(SimError::InvalidPattern(format!(
                        "centric fraction {fraction} is not a probability"
                    )));
                }
                Ok(())
            }
            TrafficPattern::Permutation(perm) => {
                if perm.len() != num_nodes as usize {
                    return Err(SimError::InvalidPattern(format!(
                        "permutation has {} entries for {num_nodes} nodes",
                        perm.len()
                    )));
                }
                for (src, dst) in perm.iter().enumerate() {
                    if dst.0 >= num_nodes {
                        return Err(SimError::InvalidPattern(format!(
                            "permutation maps node {src} to nonexistent node {} \
                             ({num_nodes} nodes)",
                            dst.0
                        )));
                    }
                }
                Ok(())
            }
        }
    }

    /// Draw the destination for a packet from `src`.
    ///
    /// Returns `None` when the source does not send under this pattern
    /// (a self-mapped slot of a permutation).
    pub fn sample<R: Rng + ?Sized>(
        &self,
        src: NodeId,
        num_nodes: u32,
        rng: &mut R,
    ) -> Option<NodeId> {
        debug_assert!(num_nodes >= 2);
        match self {
            TrafficPattern::Uniform => {
                // Uniform over the other nodes.
                let raw = rng.gen_range(0..num_nodes - 1);
                Some(NodeId(if raw >= src.0 { raw + 1 } else { raw }))
            }
            TrafficPattern::Centric { hotspot, fraction } => {
                if rng.gen_bool(*fraction) {
                    if *hotspot == src {
                        // The hot node itself sends uniform traffic.
                        TrafficPattern::Uniform.sample(src, num_nodes, rng)
                    } else {
                        Some(*hotspot)
                    }
                } else {
                    TrafficPattern::Uniform.sample(src, num_nodes, rng)
                }
            }
            TrafficPattern::Permutation(perm) => {
                let dst = perm[src.index()];
                (dst != src).then_some(dst)
            }
        }
    }

    /// Short name for reports.
    pub fn name(&self) -> String {
        match self {
            TrafficPattern::Uniform => "uniform".into(),
            TrafficPattern::Centric { fraction, .. } => {
                format!("centric{}", (fraction * 100.0).round() as u32)
            }
            TrafficPattern::Permutation(_) => "permutation".into(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha12Rng;

    #[test]
    fn uniform_never_targets_self_and_covers_everyone() {
        let mut rng = ChaCha12Rng::seed_from_u64(7);
        let mut seen = [false; 8];
        for _ in 0..2000 {
            let dst = TrafficPattern::Uniform
                .sample(NodeId(3), 8, &mut rng)
                .unwrap();
            assert_ne!(dst, NodeId(3));
            seen[dst.index()] = true;
        }
        assert_eq!(seen.iter().filter(|&&s| s).count(), 7);
    }

    #[test]
    fn centric_hits_hotspot_about_half_the_time() {
        let mut rng = ChaCha12Rng::seed_from_u64(11);
        let pattern = TrafficPattern::paper_centric();
        let trials = 20_000;
        let hits = (0..trials)
            .filter(|_| pattern.sample(NodeId(5), 16, &mut rng) == Some(NodeId(0)))
            .count();
        // 50% direct + 50%/15 uniform spill ≈ 53.3%.
        let p = hits as f64 / trials as f64;
        assert!((0.50..0.57).contains(&p), "hot-spot fraction {p}");
    }

    #[test]
    fn hotspot_node_sends_uniform() {
        let mut rng = ChaCha12Rng::seed_from_u64(3);
        let pattern = TrafficPattern::paper_centric();
        for _ in 0..200 {
            let dst = pattern.sample(NodeId(0), 16, &mut rng).unwrap();
            assert_ne!(dst, NodeId(0));
        }
    }

    #[test]
    fn bit_complement_pairs_opposite_halves() {
        let pattern = TrafficPattern::bit_complement(16);
        let mut rng = ChaCha12Rng::seed_from_u64(1);
        assert_eq!(pattern.sample(NodeId(0), 16, &mut rng), Some(NodeId(15)));
        assert_eq!(pattern.sample(NodeId(5), 16, &mut rng), Some(NodeId(10)));
    }

    #[test]
    fn bit_reversal_is_an_involution() {
        let n = 32;
        if let TrafficPattern::Permutation(perm) = TrafficPattern::bit_reversal(n) {
            for i in 0..n {
                assert_eq!(perm[perm[i as usize].index()], NodeId(i));
            }
        } else {
            panic!("expected permutation");
        }
    }

    #[test]
    fn validate_catches_malformed_patterns_at_config_time() {
        assert!(TrafficPattern::Uniform.validate(8).is_ok());
        assert!(TrafficPattern::paper_centric().validate(8).is_ok());
        assert!(TrafficPattern::bit_complement(8).validate(8).is_ok());

        let short = TrafficPattern::Permutation(vec![NodeId(1), NodeId(0)]);
        let err = short.validate(8).unwrap_err();
        assert!(matches!(err, SimError::InvalidPattern(_)));
        assert!(err.to_string().contains("2 entries for 8 nodes"), "{err}");

        let out_of_range =
            TrafficPattern::Permutation(vec![NodeId(1), NodeId(0), NodeId(9), NodeId(2)]);
        let err = out_of_range.validate(4).unwrap_err();
        assert!(err.to_string().contains("nonexistent node 9"), "{err}");

        let bad_hotspot = TrafficPattern::Centric {
            hotspot: NodeId(40),
            fraction: 0.5,
        };
        assert!(bad_hotspot.validate(8).is_err());
        let bad_fraction = TrafficPattern::Centric {
            hotspot: NodeId(0),
            fraction: 1.5,
        };
        assert!(bad_fraction.validate(8).is_err());
    }

    #[test]
    fn names() {
        assert_eq!(TrafficPattern::Uniform.name(), "uniform");
        assert_eq!(TrafficPattern::paper_centric().name(), "centric50");
    }
}
