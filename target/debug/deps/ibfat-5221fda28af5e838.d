/root/repo/target/debug/deps/ibfat-5221fda28af5e838.d: crates/cli/src/main.rs

/root/repo/target/debug/deps/ibfat-5221fda28af5e838: crates/cli/src/main.rs

crates/cli/src/main.rs:
