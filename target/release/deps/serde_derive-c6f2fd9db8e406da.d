/root/repo/target/release/deps/serde_derive-c6f2fd9db8e406da.d: /root/stubdeps/serde_derive/src/lib.rs

/root/repo/target/release/deps/libserde_derive-c6f2fd9db8e406da.so: /root/stubdeps/serde_derive/src/lib.rs

/root/stubdeps/serde_derive/src/lib.rs:
