//! Cross-crate integration: build → verify → simulate pipelines through
//! the public API, for every scheme and a spread of network sizes.

use ib_fabric::prelude::*;

#[test]
fn full_pipeline_for_every_scheme() {
    for kind in [RoutingKind::Slid, RoutingKind::Mlid, RoutingKind::UpDown] {
        let fabric = Fabric::builder(4, 2).routing(kind).build().unwrap();
        fabric.verify().unwrap_or_else(|e| panic!("{kind}: {e}"));
        let report = fabric
            .experiment()
            .traffic(TrafficPattern::Uniform)
            .offered_load(0.3)
            .duration_ns(120_000)
            .run();
        assert!(report.delivered > 0, "{kind} delivered nothing");
        assert_eq!(
            report.total_generated,
            report.total_delivered + report.in_flight_at_end,
            "{kind} lost packets"
        );
    }
}

#[test]
fn verification_passes_on_all_evaluated_sizes() {
    // The cheap passes on every size; the quadratic all-LID sweep only on
    // the smaller two.
    for (m, n) in [(4, 3), (8, 3), (16, 2), (32, 2)] {
        let fabric = Fabric::builder(m, n).build().unwrap();
        fabric.network().validate().unwrap();
    }
    for (m, n) in [(4, 3), (8, 2)] {
        let fabric = Fabric::builder(m, n).build().unwrap();
        fabric.verify().unwrap_or_else(|e| panic!("{m}x{n}: {e}"));
    }
}

#[test]
fn deterministic_end_to_end() {
    let fabric = Fabric::builder(8, 2).build().unwrap();
    let run = || {
        fabric
            .experiment()
            .virtual_lanes(2)
            .traffic(TrafficPattern::paper_centric())
            .offered_load(0.5)
            .duration_ns(150_000)
            .seed(2024)
            .run()
    };
    let (a, b) = (run(), run());
    assert_eq!(a.events_processed, b.events_processed);
    assert_eq!(a.delivered, b.delivered);
    assert_eq!(a.latency.count(), b.latency.count());
    assert_eq!(a.avg_latency_ns(), b.avg_latency_ns());
}

#[test]
fn simulated_latency_is_never_below_the_analytic_minimum() {
    // The fastest possible delivery crosses 2 links and 1 switch.
    let fabric = Fabric::builder(8, 2).build().unwrap();
    let cfg = SimConfig::paper(1);
    let min = 2 * cfg.fly_time_ns + cfg.routing_time_ns + cfg.packet_time_ns();
    let report = fabric
        .experiment()
        .offered_load(0.6)
        .duration_ns(150_000)
        .run();
    assert!(
        report.latency.min() >= min,
        "{} < {min}",
        report.latency.min()
    );
    assert!(report.network_latency.min() >= min);
}

#[test]
fn headline_result_hotspot_ordering_holds_at_scale() {
    // MLID ≥ SLID accepted traffic under the paper's hot-spot pattern on
    // a mid-sized fabric, at several operating points.
    let slid = Fabric::builder(8, 3)
        .routing(RoutingKind::Slid)
        .build()
        .unwrap();
    let mlid = Fabric::builder(8, 3)
        .routing(RoutingKind::Mlid)
        .build()
        .unwrap();
    for load in [0.3, 0.8] {
        let acc = |fabric: &Fabric| {
            fabric
                .experiment()
                .traffic(TrafficPattern::paper_centric())
                .offered_load(load)
                .duration_ns(200_000)
                .run()
                .accepted_bytes_per_ns_per_node
        };
        let (s, m) = (acc(&slid), acc(&mlid));
        assert!(m >= s, "load {load}: MLID {m} < SLID {s}");
    }
}

#[test]
fn topology_objects_flow_between_crates() {
    // A Network built by the topology crate routes with ibfat-routing and
    // simulates with ibfat-sim without the Fabric wrapper.
    let params = TreeParams::new(4, 2).unwrap();
    let net = Network::mport_ntree(params);
    let routing = ib_fabric::routing::Routing::build(&net, RoutingKind::Mlid);
    let report = ib_fabric::sim::run_once(
        &net,
        &routing,
        SimConfig::default(),
        TrafficPattern::Uniform,
        ib_fabric::sim::RunSpec::new(0.2, 60_000),
    );
    assert!(report.delivered > 0);
}
