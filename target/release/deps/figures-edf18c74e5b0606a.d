/root/repo/target/release/deps/figures-edf18c74e5b0606a.d: crates/bench/src/bin/figures.rs

/root/repo/target/release/deps/figures-edf18c74e5b0606a: crates/bench/src/bin/figures.rs

crates/bench/src/bin/figures.rs:
