/root/repo/target/debug/examples/fault_tolerance-f14f429b8eedb9f4.d: examples/fault_tolerance.rs Cargo.toml

/root/repo/target/debug/examples/libfault_tolerance-f14f429b8eedb9f4.rmeta: examples/fault_tolerance.rs Cargo.toml

examples/fault_tolerance.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
