/root/repo/target/debug/deps/ibfat_cli-9f9ec72f1785e7eb.d: crates/cli/src/lib.rs crates/cli/src/args.rs crates/cli/src/commands.rs

/root/repo/target/debug/deps/libibfat_cli-9f9ec72f1785e7eb.rmeta: crates/cli/src/lib.rs crates/cli/src/args.rs crates/cli/src/commands.rs

crates/cli/src/lib.rs:
crates/cli/src/args.rs:
crates/cli/src/commands.rs:
