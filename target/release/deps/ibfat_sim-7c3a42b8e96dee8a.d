/root/repo/target/release/deps/ibfat_sim-7c3a42b8e96dee8a.d: crates/sim/src/lib.rs crates/sim/src/bounds.rs crates/sim/src/config.rs crates/sim/src/engine.rs crates/sim/src/metrics.rs crates/sim/src/packet.rs crates/sim/src/runner.rs crates/sim/src/sim.rs crates/sim/src/trace.rs crates/sim/src/traffic.rs crates/sim/src/vlarb.rs

/root/repo/target/release/deps/ibfat_sim-7c3a42b8e96dee8a: crates/sim/src/lib.rs crates/sim/src/bounds.rs crates/sim/src/config.rs crates/sim/src/engine.rs crates/sim/src/metrics.rs crates/sim/src/packet.rs crates/sim/src/runner.rs crates/sim/src/sim.rs crates/sim/src/trace.rs crates/sim/src/traffic.rs crates/sim/src/vlarb.rs

crates/sim/src/lib.rs:
crates/sim/src/bounds.rs:
crates/sim/src/config.rs:
crates/sim/src/engine.rs:
crates/sim/src/metrics.rs:
crates/sim/src/packet.rs:
crates/sim/src/runner.rs:
crates/sim/src/sim.rs:
crates/sim/src/trace.rs:
crates/sim/src/traffic.rs:
crates/sim/src/vlarb.rs:
