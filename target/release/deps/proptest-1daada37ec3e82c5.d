/root/repo/target/release/deps/proptest-1daada37ec3e82c5.d: /root/stubdeps/proptest/src/lib.rs

/root/repo/target/release/deps/libproptest-1daada37ec3e82c5.rlib: /root/stubdeps/proptest/src/lib.rs

/root/repo/target/release/deps/libproptest-1daada37ec3e82c5.rmeta: /root/stubdeps/proptest/src/lib.rs

/root/stubdeps/proptest/src/lib.rs:
