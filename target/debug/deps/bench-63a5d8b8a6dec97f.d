/root/repo/target/debug/deps/bench-63a5d8b8a6dec97f.d: crates/bench/src/bin/bench.rs

/root/repo/target/debug/deps/libbench-63a5d8b8a6dec97f.rmeta: crates/bench/src/bin/bench.rs

crates/bench/src/bin/bench.rs:
