//! Integration: the failure/repair/reconfiguration story through the
//! public API.
//!
//! Failed links are chosen with [`FaultPlan::pick_links`] under pinned
//! seeds — a seeded Fisher–Yates over the inter-switch cable list — so
//! the scenarios are reproducible without depending on the enumeration
//! order of `inter_switch_link_indices()` (which reshuffles whenever
//! the cabling pass changes).

use ib_fabric::prelude::*;
use ib_fabric::sm::SubnetManager;
use ib_fabric::{FaultPlan, RoutingError};

fn picked(fabric: &Fabric, k: usize, seed: u64) -> Vec<usize> {
    FaultPlan::pick_links(fabric.network(), k, seed)
        .into_iter()
        .map(|l| l as usize)
        .collect()
}

#[test]
fn degraded_fabric_routes_and_simulates_end_to_end() {
    let fabric = Fabric::builder(8, 2).build().unwrap();
    let degraded = fabric.with_failed_links(&picked(&fabric, 3, 0xFA11));
    assert!(degraded.network().is_connected());

    // Everything still routes (8x2 keeps full reachability with three
    // inter-switch failures under this pinned selection).
    let nodes = degraded.num_nodes();
    for src in 0..nodes {
        for dst in 0..nodes {
            if src != dst {
                degraded
                    .route(NodeId(src), NodeId(dst))
                    .unwrap_or_else(|e| panic!("{src}->{dst}: {e}"));
            }
        }
    }

    // And the simulator runs on it.
    let report = degraded
        .experiment()
        .offered_load(0.3)
        .duration_ns(150_000)
        .run();
    assert!(report.delivered > 0);
    assert_eq!(
        report.total_generated,
        report.total_delivered + report.dropped + report.in_flight_at_end
    );
}

#[test]
fn intact_repair_tables_are_identical_to_direct_build() {
    let fabric = Fabric::builder(4, 3).build().unwrap();
    let same = fabric.with_failed_links(&[]);
    assert_eq!(fabric.routing().lfts(), same.routing().lfts());
}

#[test]
fn sm_initialization_matches_fabric_builder() {
    for kind in [RoutingKind::Mlid, RoutingKind::Slid] {
        let fabric = Fabric::builder(8, 2).routing(kind).build().unwrap();
        let sm = SubnetManager::new(kind, NodeId(0));
        let outcome = sm.initialize(fabric.network()).unwrap();
        assert_eq!(outcome.routing.lfts(), fabric.routing().lfts());
        assert_eq!(outcome.recovered.params, fabric.params());
    }
}

#[test]
fn repeated_failures_degrade_monotonically_not_catastrophically() {
    let fabric = Fabric::builder(8, 2).build().unwrap();
    // One seeded shuffle; prefixes of it give nested failure sets, so
    // "more failures" really means "the same failures plus new ones".
    let shuffled = picked(&fabric, 8, 0xDE6_4ADE);
    let mut last_routable = u32::MAX;
    for k in [0, 2, 4, 8] {
        let degraded = fabric.with_failed_links(&shuffled[..k]);
        let nodes = degraded.num_nodes();
        let mut routable = 0u32;
        for src in 0..nodes {
            for dst in 0..nodes {
                if src == dst {
                    continue;
                }
                match degraded.route(NodeId(src), NodeId(dst)) {
                    Ok(_) => routable += 1,
                    // The only legitimate way to lose a pair: the repair
                    // dropped the destination's LFT entries because no
                    // up*/down* path survives. Anything else (dangling
                    // ports, loops, misdelivery) is a repair bug.
                    Err(FabricError::Routing(RoutingError::NoLftEntry { .. })) => {}
                    Err(e) => panic!("{src}->{dst} failed for the wrong reason: {e}"),
                }
            }
        }
        assert!(routable <= last_routable, "repair must not conjure paths");
        // Even at 8 of 32 inter-switch links failed, the vast majority of
        // pairs survive.
        assert!(
            routable * 10 >= nodes * (nodes - 1) * 9,
            "{routable} routable pairs after {k} failures"
        );
        last_routable = routable;
    }
}

#[test]
fn updown_handles_the_same_degraded_fabric() {
    let fabric = Fabric::builder(8, 2)
        .routing(RoutingKind::UpDown)
        .build()
        .unwrap();
    let degraded = fabric.with_failed_links(&picked(&fabric, 2, 0xFA11));
    let nodes = degraded.num_nodes();
    for src in 0..nodes {
        for dst in 0..nodes {
            if src != dst {
                degraded.route(NodeId(src), NodeId(dst)).unwrap();
            }
        }
    }
}
