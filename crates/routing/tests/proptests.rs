//! Property-based tests for the routing schemes.

use ibfat_routing::{
    build_fault_tolerant, repair_fault_tolerant, Lid, MlidScheme, RepairState, Routing,
    RoutingKind, RoutingScheme, SlidScheme,
};
use ibfat_topology::{analysis, gcp_len, Network, NodeId, NodeLabel, TreeParams};
use proptest::prelude::*;

fn params() -> impl Strategy<Value = TreeParams> {
    prop_oneof![
        Just(TreeParams::new(4, 2).unwrap()),
        Just(TreeParams::new(4, 3).unwrap()),
        Just(TreeParams::new(8, 2).unwrap()),
        Just(TreeParams::new(8, 3).unwrap()),
        Just(TreeParams::new(16, 2).unwrap()),
        Just(TreeParams::new(2, 3).unwrap()),
    ]
}

fn routed(kind: RoutingKind) -> impl Strategy<Value = (Network, Routing, u32, u32)> {
    params().prop_flat_map(move |p| {
        let nodes = p.num_nodes();
        (Just(p), 0..nodes, 0..nodes).prop_map(move |(p, a, b)| {
            let net = Network::mport_ntree(p);
            let routing = Routing::build(&net, kind);
            (net, routing, a, b)
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn mlid_every_lid_delivers_from_any_source((net, routing, src, _b) in routed(RoutingKind::Mlid)) {
        let space = routing.lid_space();
        for lid in 1..=space.max_lid().0 {
            let route = routing.trace(&net, NodeId(src), Lid(lid)).unwrap();
            let (owner, _) = space.resolve(Lid(lid)).unwrap();
            prop_assert_eq!(route.dst, owner);
        }
    }

    #[test]
    fn mlid_selected_routes_are_minimal((net, routing, a, b) in routed(RoutingKind::Mlid)) {
        prop_assume!(a != b);
        let dlid = routing.select_dlid(NodeId(a), NodeId(b));
        let route = routing.trace(&net, NodeId(a), dlid).unwrap();
        prop_assert_eq!(
            route.num_links() as u32,
            analysis::min_hops(net.params(), NodeId(a), NodeId(b))
        );
    }

    #[test]
    fn slid_selected_routes_are_minimal((net, routing, a, b) in routed(RoutingKind::Slid)) {
        prop_assume!(a != b);
        let dlid = routing.select_dlid(NodeId(a), NodeId(b));
        let route = routing.trace(&net, NodeId(a), dlid).unwrap();
        prop_assert_eq!(
            route.num_links() as u32,
            analysis::min_hops(net.params(), NodeId(a), NodeId(b))
        );
    }

    #[test]
    fn mlid_dlid_offset_equals_subgroup_rank((net, routing, a, b) in routed(RoutingKind::Mlid)) {
        prop_assume!(a != b);
        let params = net.params();
        let space = routing.lid_space();
        let dlid = routing.select_dlid(NodeId(a), NodeId(b));
        let (owner, offset) = space.resolve(dlid).unwrap();
        prop_assert_eq!(owner, NodeId(b));
        // Offset must be the source's rank one digit below the gcp.
        let la = NodeLabel::from_id(params, NodeId(a));
        let lb = NodeLabel::from_id(params, NodeId(b));
        let alpha = gcp_len(&la, &lb);
        let group = ibfat_topology::Gcpg::of(params, &la, alpha + 1);
        prop_assert_eq!(offset, ibfat_topology::rank_in(params, &group, &la));
        // And it must fit the LMC window with room for the whole subgroup.
        prop_assert!(offset < space.lids_per_node());
    }

    #[test]
    fn subgroup_senders_get_distinct_lcas((net, routing, _a, b) in routed(RoutingKind::Mlid)) {
        // All sources in one sibling subgroup of the destination reach the
        // destination through pairwise distinct first-descent switches.
        let params = net.params();
        prop_assume!(params.n() >= 2);
        let dst = NodeId(b);
        let ld = NodeLabel::from_id(params, dst);
        // The sibling subgroup: flip the destination's first digit.
        let flip = if ld.digit(0) == 0 { 1 } else { 0 };
        let group = ibfat_topology::Gcpg::new(params, &[flip]);
        let mut lca_entries = std::collections::HashSet::new();
        let mut count = 0usize;
        for member in group.members(params) {
            let src = member.id(params);
            if src == dst { continue; }
            let dlid = routing.select_dlid(src, dst);
            let route = routing.trace(&net, src, dlid).unwrap();
            // The "peak" switch of the route: the one reached at the gcp
            // level — for these pairs, alpha = 0, so it is the root hop,
            // the unique hop whose switch is at level 0.
            let peak: Vec<_> = route
                .hops
                .iter()
                .filter(|h| {
                    ibfat_topology::SwitchLabel::from_id(params, h.switch).level().0 == 0
                })
                .collect();
            prop_assert_eq!(peak.len(), 1);
            lca_entries.insert(peak[0].switch);
            count += 1;
        }
        // Distinct LCAs up to the number of roots.
        let roots = params.num_lcas(0) as usize;
        prop_assert_eq!(lca_entries.len(), count.min(roots));
    }

    #[test]
    fn mlid_and_slid_agree_on_descent((net, _r, a, b) in routed(RoutingKind::Mlid)) {
        // Equation (1) is shared: from any common ancestor the down path is
        // unique, so the last hop of any route to b enters b's leaf switch.
        prop_assume!(a != b);
        for kind in [RoutingKind::Mlid, RoutingKind::Slid] {
            let routing = Routing::build(&net, kind);
            let dlid = routing.select_dlid(NodeId(a), NodeId(b));
            let route = routing.trace(&net, NodeId(a), dlid).unwrap();
            let last = route.hops.last().unwrap();
            let label = ibfat_topology::SwitchLabel::from_id(net.params(), last.switch);
            prop_assert_eq!(u32::from(label.level().0), net.params().n() - 1);
        }
    }
}

/// SplitMix64 — a tiny self-contained generator so the failure pick is
/// reproducible from the proptest-supplied seed without an RNG dep.
fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Pick `k` distinct inter-switch links by partial Fisher–Yates.
fn pick_inter_links(net: &Network, k: usize, seed: u64) -> Vec<usize> {
    let mut pool = net.inter_switch_link_indices();
    let mut s = seed;
    for i in 0..k.min(pool.len()) {
        let j = i + (splitmix(&mut s) as usize) % (pool.len() - i);
        pool.swap(i, j);
    }
    pool.truncate(k.min(pool.len()));
    pool
}

/// `net` minus the given link indices (removed high-to-low so the
/// indices stay valid mid-removal).
fn without_links(net: &Network, dead: &[usize]) -> Network {
    let mut degraded = net.clone();
    let mut order = dead.to_vec();
    order.sort_unstable_by(|a, b| b.cmp(a));
    for idxx in order {
        degraded.remove_link(idxx);
    }
    degraded
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The fault subsystem's control-plane contract: patch-level repair
    /// after `k` random inter-switch failures produces tables
    /// bit-identical to a from-scratch `build_fault_tolerant`, the
    /// reported patches are the *exact* entry-level delta, and repairs
    /// chain across successive failures.
    #[test]
    fn repair_after_random_failures_matches_from_scratch_rebuild(
        p in params(),
        seed in any::<u64>(),
        k in 1usize..=4,
        kind in prop_oneof![Just(RoutingKind::Mlid), Just(RoutingKind::Slid)],
    ) {
        let net = Network::mport_ntree(p);
        let dead = pick_inter_links(&net, k + 1, seed);
        prop_assume!(dead.len() == k + 1);
        let (first, extra) = (&dead[..k], dead[k]);

        let degraded = without_links(&net, first);
        let prev = Routing::build(&net, kind);
        let mut state = RepairState::new(&net);
        let (repaired, patches, stats) =
            repair_fault_tolerant(&degraded, kind, &prev, &mut state);

        // Bit-identical to rebuilding everything from the degraded graph.
        let scratch = build_fault_tolerant(&degraded, kind);
        prop_assert_eq!(repaired.lfts(), scratch.lfts());

        // The patch list is the exact (switch, LID) delta, no more, no less.
        prop_assert_eq!(stats.entries_patched, patches.len());
        let patched: std::collections::HashMap<_, _> = patches
            .iter()
            .map(|pch| ((pch.sw, pch.lid), pch.port))
            .collect();
        prop_assert_eq!(patched.len(), patches.len(), "duplicate patch targets");
        let max_lid = repaired.lid_space().max_lid();
        for s in 0..net.num_switches() as u32 {
            let sw = ibfat_topology::SwitchId(s);
            for raw in 1..=max_lid.0 {
                let lid = Lid(raw);
                let (was, now) = (prev.lft(sw).get(lid), repaired.lft(sw).get(lid));
                match patched.get(&(sw, lid)) {
                    Some(&port) => {
                        prop_assert_eq!(now, port);
                        prop_assert_ne!(was, now, "patch that changes nothing");
                    }
                    None => prop_assert_eq!(was, now, "unpatched entry changed"),
                }
            }
        }

        // A further failure repairs incrementally from the advanced state.
        let worse = without_links(&net, &dead);
        let (repaired2, _, _) = repair_fault_tolerant(&worse, kind, &repaired, &mut state);
        let scratch2 = build_fault_tolerant(&worse, kind);
        prop_assert_eq!(
            repaired2.lfts(),
            scratch2.lfts(),
            "chained repair diverged after also failing link {}",
            extra
        );
    }
}

#[test]
fn mlid_upward_exclusivity_on_all_eval_sizes() {
    for (m, n) in [(4, 2), (4, 3), (8, 2), (8, 3), (16, 2)] {
        let params = TreeParams::new(m, n).unwrap();
        let net = Network::mport_ntree(params);
        let routing = Routing::build(&net, RoutingKind::Mlid);
        let conflicts = ibfat_routing::verify_upward_link_exclusivity(&net, &routing).unwrap();
        assert_eq!(conflicts, 0, "IBFT({m},{n})");
    }
}

#[test]
fn scheme_names_are_stable() {
    assert_eq!(MlidScheme.name(), "MLID");
    assert_eq!(SlidScheme.name(), "SLID");
    assert_eq!(RoutingKind::Mlid.as_str(), "mlid");
    assert_eq!("MLID".parse::<RoutingKind>().unwrap(), RoutingKind::Mlid);
    assert!("bogus".parse::<RoutingKind>().is_err());
}
