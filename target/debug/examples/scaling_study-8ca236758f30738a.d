/root/repo/target/debug/examples/scaling_study-8ca236758f30738a.d: examples/scaling_study.rs

/root/repo/target/debug/examples/libscaling_study-8ca236758f30738a.rmeta: examples/scaling_study.rs

examples/scaling_study.rs:
