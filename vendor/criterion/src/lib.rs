//! Offline stub of `criterion`.
//!
//! Keeps the bench binaries compiling and gives a rough wall-clock
//! number per benchmark (median of a few iterations) instead of
//! criterion's full statistical machinery. The workspace's committed
//! performance trajectory comes from the `bench` binary, not from
//! these harnesses.

use std::fmt;
use std::time::Instant;

pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("group: {name}");
        BenchmarkGroup {
            _parent: self,
            sample_size: 10,
        }
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        run_bench(id, 10, &mut f);
        self
    }
}

pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl fmt::Display,
        mut f: F,
    ) -> &mut Self {
        run_bench(&id.to_string(), self.sample_size, &mut f);
        self
    }

    pub fn bench_with_input<I, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: impl fmt::Display,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let mut wrapped = |b: &mut Bencher| f(b, input);
        run_bench(&id.to_string(), self.sample_size, &mut wrapped);
        self
    }

    pub fn finish(self) {}
}

fn run_bench<F: FnMut(&mut Bencher)>(id: &str, samples: usize, f: &mut F) {
    let mut times = Vec::with_capacity(samples.min(5));
    for _ in 0..samples.min(5) {
        let mut b = Bencher { elapsed_ns: 0 };
        f(&mut b);
        times.push(b.elapsed_ns);
    }
    times.sort_unstable();
    let median = times.get(times.len() / 2).copied().unwrap_or(0);
    println!("  {id}: ~{} ns/iter (stub harness)", median);
}

pub struct Bencher {
    elapsed_ns: u128,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // One warmup, then a single timed run: the stub favours fast
        // builds over statistical confidence.
        black_box(f());
        let start = Instant::now();
        black_box(f());
        self.elapsed_ns = start.elapsed().as_nanos();
    }
}

pub struct BenchmarkId {
    text: String,
}

impl BenchmarkId {
    pub fn new(group: impl fmt::Display, param: impl fmt::Display) -> Self {
        BenchmarkId {
            text: format!("{group}/{param}"),
        }
    }

    pub fn from_parameter(param: impl fmt::Display) -> Self {
        BenchmarkId {
            text: param.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.text)
    }
}

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
    ($group:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        $crate::criterion_group!($group, $($target),+);
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
