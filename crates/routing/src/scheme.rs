use crate::{Lft, Lid, LidSpace, MlidScheme, Route, RoutingError, SlidScheme};
use ibfat_topology::{Network, NodeId, SwitchId};
use serde::{Deserialize, Serialize};

/// A deterministic routing scheme for an InfiniBand subnet: it decides the
/// LID assignment, programs every switch's forwarding table, and (for
/// multipath schemes) picks which of the destination's LIDs a given source
/// should address.
pub trait RoutingScheme {
    /// Human-readable scheme name (used in reports and plots).
    fn name(&self) -> &'static str;

    /// Partition the LID space, as the subnet manager would at subnet
    /// initialization.
    fn lid_space(&self, net: &Network) -> LidSpace;

    /// Program the linear forwarding table of every switch (indexed by
    /// [`ibfat_topology::SwitchId`]).
    fn build_lfts(&self, net: &Network, space: &LidSpace) -> Vec<Lft>;

    /// The DLID a packet from `src` to `dst` should carry. For single-LID
    /// schemes this is just the destination's base LID; the MLID scheme
    /// implements the paper's rank-based path selection.
    fn select_dlid(&self, net: &Network, space: &LidSpace, src: NodeId, dst: NodeId) -> Lid;
}

/// The built-in scheme selector.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RoutingKind {
    /// Single LID per node; forwarding tables spread *destinations* over
    /// the up-ports (the paper's baseline).
    Slid,
    /// The paper's Multiple LID scheme: `2^LMC` LIDs per node, rank-based
    /// path selection, Equations (1) and (2) for the tables.
    Mlid,
    /// Generic up*/down* routing computed from the cabled graph alone,
    /// representative of irregular-topology algorithms.
    UpDown,
}

impl RoutingKind {
    /// All built-in kinds.
    pub const ALL: [RoutingKind; 3] = [RoutingKind::Slid, RoutingKind::Mlid, RoutingKind::UpDown];

    /// Short lowercase name (stable; used in CLI flags and file names).
    pub fn as_str(&self) -> &'static str {
        match self {
            RoutingKind::Slid => "slid",
            RoutingKind::Mlid => "mlid",
            RoutingKind::UpDown => "updown",
        }
    }
}

impl std::str::FromStr for RoutingKind {
    type Err = String;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "slid" => Ok(RoutingKind::Slid),
            "mlid" => Ok(RoutingKind::Mlid),
            "updown" | "up-down" | "up*down*" => Ok(RoutingKind::UpDown),
            other => Err(format!("unknown routing scheme '{other}'")),
        }
    }
}

impl std::fmt::Display for RoutingKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// A fully materialized routing: the LID assignment plus every switch's
/// programmed forwarding table. This is the artifact a subnet manager
/// leaves behind after initialization, and the only thing the simulator
/// needs to forward packets.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Routing {
    kind: RoutingKind,
    params: ibfat_topology::TreeParams,
    space: LidSpace,
    lfts: Vec<Lft>,
}

impl Routing {
    /// Run a scheme end-to-end over a subnet.
    pub fn build(net: &Network, kind: RoutingKind) -> Routing {
        let scheme: Box<dyn RoutingScheme> = match kind {
            RoutingKind::Slid => Box::new(SlidScheme),
            RoutingKind::Mlid => Box::new(MlidScheme),
            RoutingKind::UpDown => Box::new(crate::UpDownScheme),
        };
        let space = scheme.lid_space(net);
        let lfts = scheme.build_lfts(net, &space);
        debug_assert_eq!(lfts.len(), net.num_switches());
        Routing {
            kind,
            params: net.params(),
            space,
            lfts,
        }
    }

    /// Run a scheme's LID assignment *without* materializing forwarding
    /// tables. The result carries an empty `lfts` vector: `select_dlid`
    /// and `lid_space` work as usual (neither consults tables), but
    /// [`lft`](Routing::lft) must not be called — the caller is expected
    /// to forward through a [`crate::RouteOracle`] instead. Use
    /// [`has_tables`](Routing::has_tables) to tell the two apart.
    pub fn build_table_free(net: &Network, kind: RoutingKind) -> Routing {
        let scheme: Box<dyn RoutingScheme> = match kind {
            RoutingKind::Slid => Box::new(SlidScheme),
            RoutingKind::Mlid => Box::new(MlidScheme),
            RoutingKind::UpDown => Box::new(crate::UpDownScheme),
        };
        let space = scheme.lid_space(net);
        Routing {
            kind,
            params: net.params(),
            space,
            lfts: Vec::new(),
        }
    }

    /// Run a scheme end-to-end but materialize forwarding tables only
    /// for the switches marked in `owned` — a *subfabric view* for
    /// sharded worker processes, each resident-setting only its slice of
    /// the O(switches × LIDs) table state (the memory-scaling win of the
    /// multi-process driver). Unowned switches get a zero-slot
    /// placeholder ([`Lft::empty`]): `lfts().len()` still equals
    /// `net.num_switches()`, so switch indexing is unchanged, and
    /// `select_dlid` / `lid_space` are exact (neither consults tables).
    /// Owned rows are bit-identical to the same rows of
    /// [`build`](Routing::build); a worker never forwards through an
    /// unowned switch, so the placeholders are never consulted.
    pub fn build_view(net: &Network, kind: RoutingKind, owned: &[bool]) -> Routing {
        assert_eq!(owned.len(), net.num_switches(), "one owned flag per switch");
        let params = net.params();
        let per_switch: Option<fn(ibfat_topology::TreeParams, &LidSpace, SwitchId) -> Lft> =
            match kind {
                RoutingKind::Slid => Some(SlidScheme::build_switch_lft),
                RoutingKind::Mlid => Some(MlidScheme::build_switch_lft),
                RoutingKind::UpDown => None,
            };
        match per_switch {
            Some(build_one) => {
                let scheme: Box<dyn RoutingScheme> = match kind {
                    RoutingKind::Slid => Box::new(SlidScheme),
                    RoutingKind::Mlid => Box::new(MlidScheme),
                    RoutingKind::UpDown => unreachable!(),
                };
                let space = scheme.lid_space(net);
                let lfts = (0..net.num_switches())
                    .map(|sw| {
                        if owned[sw] {
                            build_one(params, &space, SwitchId(sw as u32))
                        } else {
                            Lft::empty()
                        }
                    })
                    .collect();
                Routing {
                    kind,
                    params,
                    space,
                    lfts,
                }
            }
            None => {
                // Up*/down* is a graph-global algorithm with no per-switch
                // builder: build everything, then drop the unowned rows.
                // The transient peak is acceptable — it runs at LMC = 0,
                // so its tables are two orders of magnitude smaller than
                // the MLID LID space.
                let mut routing = Routing::build(net, kind);
                for (sw, lft) in routing.lfts.iter_mut().enumerate() {
                    if !owned[sw] {
                        *lft = Lft::empty();
                    }
                }
                routing
            }
        }
    }

    /// Whether this routing is a subfabric view
    /// ([`build_view`](Routing::build_view)): at least one switch row is
    /// a zero-slot placeholder.
    pub fn is_view(&self) -> bool {
        self.lfts.iter().any(|l| l.is_empty())
    }

    /// Which scheme produced this routing.
    #[inline]
    pub fn kind(&self) -> RoutingKind {
        self.kind
    }

    /// Whether forwarding tables were materialized ([`build`](Routing::build))
    /// or skipped ([`build_table_free`](Routing::build_table_free)).
    #[inline]
    pub fn has_tables(&self) -> bool {
        !self.lfts.is_empty()
    }

    /// Resident bytes held by the forwarding tables (0 for a table-free
    /// routing) — the memory an oracle-backed data plane avoids.
    pub fn table_bytes(&self) -> usize {
        self.lfts.iter().map(|lft| lft.len()).sum()
    }

    /// The LID assignment.
    #[inline]
    pub fn lid_space(&self) -> &LidSpace {
        &self.space
    }

    /// Per-switch forwarding tables, indexed by switch id.
    #[inline]
    pub fn lfts(&self) -> &[Lft] {
        &self.lfts
    }

    /// The forwarding table of one switch.
    #[inline]
    pub fn lft(&self, switch: ibfat_topology::SwitchId) -> &Lft {
        debug_assert!(
            switch.index() < self.lfts.len(),
            "switch {switch} out of range: this routing programs {} switches",
            self.lfts.len()
        );
        &self.lfts[switch.index()]
    }

    /// Assemble a routing from externally computed parts — the entry
    /// point for subnet-manager-style installers (and the fault-repair
    /// path) that derive the LID space and tables themselves.
    ///
    /// The caller is responsible for the tables' correctness; run
    /// [`crate::verify_all_lids_deliver`] / [`crate::verify_deadlock_free`]
    /// over the result when in doubt.
    pub fn assemble(
        kind: RoutingKind,
        params: ibfat_topology::TreeParams,
        space: LidSpace,
        lfts: Vec<Lft>,
    ) -> Routing {
        Routing {
            kind,
            params,
            space,
            lfts,
        }
    }

    /// The tree parameters of the routed subnet.
    #[inline]
    pub fn params(&self) -> ibfat_topology::TreeParams {
        self.params
    }

    /// The DLID a packet from `src` to `dst` carries under this routing —
    /// the paper's path-selection scheme for MLID, and the destination's
    /// base LID for the single-path schemes.
    pub fn select_dlid(&self, src: NodeId, dst: NodeId) -> Lid {
        match self.kind {
            RoutingKind::Mlid => MlidScheme::select(self.params, &self.space, src, dst),
            _ => self.space.base_lid(dst),
        }
    }

    /// Trace the route a packet from `src` with the given DLID takes
    /// through the programmed tables.
    pub fn trace(&self, net: &Network, src: NodeId, dlid: Lid) -> Result<Route, RoutingError> {
        crate::path::trace(net, &self.space, &self.lfts, src, dlid)
    }
}

#[cfg(test)]
mod view_tests {
    use super::*;
    use ibfat_topology::TreeParams;

    #[test]
    fn view_rows_match_the_full_build() {
        let net = Network::mport_ntree(TreeParams::new(4, 3).unwrap());
        for kind in RoutingKind::ALL {
            let full = Routing::build(&net, kind);
            let owned: Vec<bool> = (0..net.num_switches()).map(|sw| sw % 3 == 1).collect();
            let view = Routing::build_view(&net, kind, &owned);
            assert!(view.is_view(), "{kind}");
            assert!(!full.is_view(), "{kind}");
            assert!(view.has_tables(), "{kind}: a view still carries tables");
            assert_eq!(view.lfts().len(), net.num_switches());
            assert_eq!(view.lid_space(), full.lid_space(), "{kind}");
            for sw in 0..net.num_switches() {
                if owned[sw] {
                    assert_eq!(
                        view.lfts()[sw],
                        full.lfts()[sw],
                        "{kind}: owned row {sw} must be bit-identical"
                    );
                } else {
                    assert!(view.lfts()[sw].is_empty(), "{kind}: unowned row {sw}");
                }
            }
            assert!(
                view.table_bytes() < full.table_bytes(),
                "{kind}: the view must resident-set less table state"
            );
        }
    }
}
