use crate::Lid;
use ibfat_topology::PortNum;
use serde::{Deserialize, Serialize};

/// A Linear Forwarding Table: the per-switch map from DLID to output port
/// that makes InfiniBand routing deterministic.
///
/// Entries are stored packed (`0` = no entry) and indexed directly by LID,
/// mirroring the LFT block a subnet manager would program into a switch.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Lft {
    /// `ports[lid]` is the output port for `lid`, or 0 for "unassigned".
    ports: Vec<u8>,
}

impl Lft {
    /// An empty table covering LIDs `0..=max_lid`.
    pub fn new(max_lid: Lid) -> Self {
        Lft {
            ports: vec![0; max_lid.index() + 1],
        }
    }

    /// A zero-slot placeholder: the table of a switch outside a
    /// subfabric view (see [`crate::Routing::build_view`]). Every lookup
    /// misses; [`is_empty`](Lft::is_empty) distinguishes it from a real
    /// (possibly unpopulated) table, which always has `max_lid + 1 ≥ 1`
    /// slots.
    pub fn empty() -> Self {
        Lft { ports: Vec::new() }
    }

    /// Set the output port for a DLID.
    ///
    /// # Panics
    /// Panics if the LID is out of table range or the port is 0 (the
    /// management port cannot appear in an LFT here).
    #[inline]
    pub fn set(&mut self, lid: Lid, port: PortNum) {
        assert!(port.0 >= 1, "LFT cannot route out of the management port");
        self.ports[lid.index()] = port.0;
    }

    /// Look up the output port for a DLID.
    #[inline]
    pub fn get(&self, lid: Lid) -> Option<PortNum> {
        match self.ports.get(lid.index()).copied().unwrap_or(0) {
            0 => None,
            p => Some(PortNum(p)),
        }
    }

    /// Number of table slots (max LID + 1).
    #[inline]
    pub fn len(&self) -> usize {
        self.ports.len()
    }

    /// Whether the table has no slots.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.ports.is_empty()
    }

    /// Fill the `len` consecutive entries starting at `start` with one port.
    ///
    /// Dense LFT builders use this for Eq. 1 down-port runs, where whole
    /// contiguous LID blocks share an output port.
    ///
    /// # Panics
    /// Panics if the run leaves the table or `port` is 0.
    #[inline]
    pub fn fill(&mut self, start: Lid, len: usize, port: PortNum) {
        assert!(port.0 >= 1, "LFT cannot route out of the management port");
        self.ports[start.index()..start.index() + len].fill(port.0);
    }

    /// Copy a precomputed port pattern into the entries starting at `start`.
    ///
    /// Dense LFT builders use this for Eq. 2 up-port windows: the pattern
    /// is a pure function of the offset within a node's LID window, so one
    /// pattern serves every climbing destination of a switch.
    ///
    /// # Panics
    /// Panics if the block leaves the table or the pattern contains port 0.
    #[inline]
    pub fn copy_block(&mut self, start: Lid, pattern: &[u8]) {
        debug_assert!(
            pattern.iter().all(|&p| p >= 1),
            "LFT cannot route out of the management port"
        );
        self.ports[start.index()..start.index() + pattern.len()].copy_from_slice(pattern);
    }

    /// Count of populated entries.
    pub fn populated(&self) -> usize {
        self.ports.iter().filter(|&&p| p != 0).count()
    }

    /// Iterate `(lid, port)` over populated entries.
    pub fn entries(&self) -> impl Iterator<Item = (Lid, PortNum)> + '_ {
        self.ports
            .iter()
            .enumerate()
            .filter(|&(_, &p)| p != 0)
            .map(|(i, &p)| (Lid(i as u32), PortNum(p)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_get_roundtrip() {
        let mut lft = Lft::new(Lid(16));
        assert_eq!(lft.get(Lid(5)), None);
        lft.set(Lid(5), PortNum(3));
        assert_eq!(lft.get(Lid(5)), Some(PortNum(3)));
        assert_eq!(lft.populated(), 1);
    }

    #[test]
    fn out_of_range_lookup_is_none() {
        let lft = Lft::new(Lid(4));
        assert_eq!(lft.get(Lid(100)), None);
    }

    #[test]
    fn entries_iterates_in_lid_order() {
        let mut lft = Lft::new(Lid(10));
        lft.set(Lid(7), PortNum(1));
        lft.set(Lid(2), PortNum(4));
        let got: Vec<_> = lft.entries().collect();
        assert_eq!(got, vec![(Lid(2), PortNum(4)), (Lid(7), PortNum(1))]);
    }

    #[test]
    #[should_panic(expected = "management port")]
    fn port_zero_rejected() {
        let mut lft = Lft::new(Lid(4));
        lft.set(Lid(1), PortNum(0));
    }

    #[test]
    fn block_fills_match_per_entry_sets() {
        let mut dense = Lft::new(Lid(12));
        let mut slow = Lft::new(Lid(12));
        dense.fill(Lid(1), 4, PortNum(2));
        for lid in 1..=4 {
            slow.set(Lid(lid), PortNum(2));
        }
        dense.copy_block(Lid(5), &[3, 4, 3, 4]);
        for (i, &p) in [3u8, 4, 3, 4].iter().enumerate() {
            slow.set(Lid(5 + i as u32), PortNum(p));
        }
        assert_eq!(dense, slow);
        assert_eq!(dense.populated(), 8);
    }
}
