//! JSONL trace replay: capture a workload as one JSON object per line
//! and rebuild it later.
//!
//! The record format is deliberately tiny — one message per line:
//!
//! ```text
//! {"src": 0, "dst": 5, "bytes": 4096, "depends_on": [0, 3]}
//! ```
//!
//! `depends_on` holds message ids, where a message's id is its
//! zero-based line number; dependencies must point at earlier lines
//! (the same topological-order invariant as [`Workload::validate`]).
//! The parser and writer are hand-rolled: the format is small enough
//! that a JSON dependency would be pure weight, and it keeps the crate
//! usable where `serde_json` is stubbed out.

use crate::{Message, Workload};
use ibfat_topology::NodeId;

/// Serialize a workload to JSONL, one message per line. The group
/// structure is intentionally not captured — a replayed trace is one
/// flat "replay" group, which is what completion-time measurement of a
/// recorded run wants.
pub fn to_jsonl(w: &Workload) -> String {
    let mut out = String::new();
    for m in &w.messages {
        out.push_str(&format!(
            "{{\"src\": {}, \"dst\": {}, \"bytes\": {}, \"depends_on\": [",
            m.src.0, m.dst.0, m.bytes
        ));
        for (k, d) in m.deps.iter().enumerate() {
            if k > 0 {
                out.push_str(", ");
            }
            out.push_str(&d.to_string());
        }
        out.push_str("]}\n");
    }
    out
}

/// Parse a JSONL trace into a workload over `num_nodes` nodes. Blank
/// lines are skipped. Returns the first malformed line as an error;
/// the result still needs [`Workload::validate`] for the semantic
/// checks (endpoint range, dependency ordering).
pub fn parse_jsonl(text: &str, num_nodes: u32) -> Result<Workload, String> {
    let mut w = Workload::new(num_nodes);
    let group = w.add_group("replay");
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let rec = parse_line(line).map_err(|e| format!("line {}: {e}", lineno + 1))?;
        w.push(Message {
            src: NodeId(rec.src),
            dst: NodeId(rec.dst),
            bytes: rec.bytes,
            deps: rec.depends_on,
            group,
        });
    }
    Ok(w)
}

struct Record {
    src: u32,
    dst: u32,
    bytes: u64,
    depends_on: Vec<u32>,
}

/// A minimal single-line JSON object reader for the fixed record shape.
fn parse_line(line: &str) -> Result<Record, String> {
    let mut p = Parser {
        b: line.as_bytes(),
        i: 0,
    };
    p.expect(b'{')?;
    let (mut src, mut dst, mut bytes) = (None, None, None);
    let mut depends_on = Vec::new();
    loop {
        p.skip_ws();
        if p.eat(b'}') {
            break;
        }
        let key = p.string()?;
        p.expect(b':')?;
        match key.as_str() {
            "src" => src = Some(p.number()? as u32),
            "dst" => dst = Some(p.number()? as u32),
            "bytes" => bytes = Some(p.number()?),
            "depends_on" => {
                p.expect(b'[')?;
                loop {
                    p.skip_ws();
                    if p.eat(b']') {
                        break;
                    }
                    depends_on.push(p.number()? as u32);
                    p.skip_ws();
                    if !p.eat(b',') {
                        p.expect(b']')?;
                        break;
                    }
                }
            }
            other => return Err(format!("unknown key {other:?}")),
        }
        p.skip_ws();
        if !p.eat(b',') {
            p.expect(b'}')?;
            break;
        }
    }
    Ok(Record {
        src: src.ok_or("missing \"src\"")?,
        dst: dst.ok_or("missing \"dst\"")?,
        bytes: bytes.ok_or("missing \"bytes\"")?,
        depends_on,
    })
}

struct Parser<'a> {
    b: &'a [u8],
    i: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while self.i < self.b.len() && self.b[self.i].is_ascii_whitespace() {
            self.i += 1;
        }
    }

    fn eat(&mut self, c: u8) -> bool {
        self.skip_ws();
        if self.i < self.b.len() && self.b[self.i] == c {
            self.i += 1;
            true
        } else {
            false
        }
    }

    fn expect(&mut self, c: u8) -> Result<(), String> {
        if self.eat(c) {
            Ok(())
        } else {
            Err(format!("expected {:?} at byte {}", c as char, self.i))
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let start = self.i;
        while self.i < self.b.len() && self.b[self.i] != b'"' {
            self.i += 1;
        }
        if self.i == self.b.len() {
            return Err("unterminated string".into());
        }
        let s = std::str::from_utf8(&self.b[start..self.i])
            .map_err(|_| "non-utf8 string")?
            .to_string();
        self.i += 1;
        Ok(s)
    }

    fn number(&mut self) -> Result<u64, String> {
        self.skip_ws();
        let start = self.i;
        while self.i < self.b.len() && self.b[self.i].is_ascii_digit() {
            self.i += 1;
        }
        if self.i == start {
            return Err(format!("expected a number at byte {start}"));
        }
        std::str::from_utf8(&self.b[start..self.i])
            .unwrap()
            .parse()
            .map_err(|e| format!("bad number: {e}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn round_trips_a_generated_workload() {
        let w = generators::all_to_all(5, 777);
        let text = to_jsonl(&w);
        let back = parse_jsonl(&text, 5).expect("parses");
        back.validate().expect("valid");
        // Group naming differs (replay flattens); the DAG must not.
        assert_eq!(back.messages.len(), w.messages.len());
        for (a, b) in w.messages.iter().zip(&back.messages) {
            assert_eq!(
                (a.src, a.dst, a.bytes, &a.deps),
                (b.src, b.dst, b.bytes, &b.deps)
            );
        }
    }

    #[test]
    fn parses_sparse_whitespace_and_blank_lines() {
        let text = "\n  {\"src\":1,\"dst\":0,\"bytes\":64,\"depends_on\":[]}\n\n\
                    { \"src\" : 0 , \"dst\" : 1 , \"bytes\" : 128 , \"depends_on\" : [ 0 ] }\n";
        let w = parse_jsonl(text, 2).expect("parses");
        w.validate().expect("valid");
        assert_eq!(w.messages.len(), 2);
        assert_eq!(w.messages[1].deps, vec![0]);
    }

    #[test]
    fn rejects_malformed_lines_with_position() {
        let err = parse_jsonl("{\"src\":1,\"dst\":}", 2).unwrap_err();
        assert!(err.contains("line 1"), "{err}");
        let err = parse_jsonl("{\"sorc\":1}", 2).unwrap_err();
        assert!(err.contains("unknown key"), "{err}");
        let err = parse_jsonl("{\"src\":1,\"dst\":0,\"depends_on\":[]}", 2).unwrap_err();
        assert!(err.contains("missing \"bytes\""), "{err}");
    }
}
