/root/repo/target/debug/deps/calendar_equivalence-cce7b47329bae218.d: crates/sim/tests/calendar_equivalence.rs

/root/repo/target/debug/deps/calendar_equivalence-cce7b47329bae218: crates/sim/tests/calendar_equivalence.rs

crates/sim/tests/calendar_equivalence.rs:
