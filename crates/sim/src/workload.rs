//! The workload seam: driving a message DAG to completion.
//!
//! A [`Workload`] (from `ibfat-workload`) is a DAG of multi-packet
//! messages. This module owns its runtime state and the three hook
//! points the packet engine calls:
//!
//! * **Arm** — [`Ev::WlArm`](crate::sim::Ev) fires at a message's source
//!   node once per satisfied dependency (roots get one priming arm at
//!   t=0). When the last dependency lands, the message is *segmented*:
//!   `ceil(bytes / packet_bytes)` packets are materialized into the
//!   node's per-VL source queues and the normal injection machinery
//!   takes over.
//! * **Inject** — the first packet of a message leaving the endport
//!   stamps `injected_ns`.
//! * **Complete** — the delivery of a message's last packet stamps
//!   `completed_ns` and schedules a `WlArm` for every dependent, one
//!   wire flight later. The flight models the completion notification
//!   crossing the wire, and — deliberately — makes the arm a legal
//!   cross-shard event under the parallel engine's lookahead, so both
//!   engines agree on every timestamp bit for bit.
//!
//! Workload mode consumes **no runtime randomness**: closed-loop
//! destination draws happen at workload build time, and the per-packet
//! `Random` path/VL choices map to a deterministic hash of
//! `(seed, message, packet)`. That is what lets the parallel engine
//! skip the injection pre-pass entirely — a shard can arm a message
//! the moment the notification arrives, with no shared RNG stream to
//! preserve.

use crate::engine::{ChainClass, Time};
use crate::packet::{Packet, PacketId};
use crate::probe::Probe;
use crate::sim::{Ev, Sched, Simulator};
use crate::{PathSelection, SimError, TrafficPattern, VlAssignment};
use ibfat_routing::Routing;
use ibfat_topology::Network;
pub use ibfat_workload::{MessageTiming, Workload, WorkloadReport};

/// The no-horizon sentinel for workload runs: the engine runs until the
/// calendar drains, so the horizon only needs to be unreachable (while
/// leaving headroom for `now + fly`-style arithmetic).
pub(crate) const WL_HORIZON: Time = u64::MAX / 4;

/// Runtime state of a workload being driven to completion. One instance
/// per engine; the parallel engine gives every shard a full copy (the
/// counters a shard touches are exactly those of the messages whose
/// endpoints it owns, so shard copies never disagree — they partition).
#[derive(Debug)]
pub(crate) struct WlState {
    /// The message DAG being driven.
    pub(crate) wl: Workload,
    /// Unsatisfied arm count per message: dependency count, or 1 for
    /// roots (satisfied by the priming arm).
    pending: Vec<u32>,
    /// Undelivered packets per message.
    remaining: Vec<u32>,
    /// Packets each message segments into.
    pub(crate) pkts: Vec<u32>,
    /// `msg -> messages waiting on it`, ascending id order (the release
    /// order on completion, identical in both engines).
    dependents: Vec<Vec<u32>>,
    /// Root messages per source node, ascending id order — the priming
    /// order (node-major) both engines share.
    pub(crate) roots_by_node: Vec<Vec<u32>>,
    /// Lifecycle timestamps per message (`u64::MAX` = not yet).
    pub(crate) timings: Vec<MessageTiming>,
    /// Messages whose last packet this engine (or shard) delivered.
    pub(crate) completed: u64,
    /// Message id per live packet id — the same side-table idiom as
    /// `trace_slots`, keeping the hot [`Packet`] at 32 bytes.
    pub(crate) wl_msg: Vec<u32>,
}

/// A deterministic per-(message, packet) hash stream — SplitMix64 over
/// the mixed key. Replaces the RNG for `Random` path/VL choices in
/// workload mode.
fn wl_hash(seed: u64, msg: u32, k: u32) -> u64 {
    let mut z = seed
        .wrapping_add((u64::from(msg) << 32) | u64::from(k))
        .wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Distinct hash streams for the two independent per-packet choices.
const PATH_STREAM: u64 = 0x7061_7468; // "path"
const VL_STREAM: u64 = 0x766C_616E; // "vlan"

impl<'a, P: Probe, Q: Sched> Simulator<'a, P, Q> {
    /// Install a workload, checking it against the fabric and the
    /// configuration. Panics with the underlying [`SimError`] on
    /// mismatch (validate up front with [`Workload::validate`] plus
    /// [`wl_check`] for a non-panicking answer).
    pub(crate) fn wl_install(&mut self, wl: &Workload) {
        if let Err(e) = wl_check(wl, self.nodes.len() as u32, self.cfg.trace_first_packets) {
            panic!("{e}");
        }
        let n_msgs = wl.messages.len();
        let pkt_bytes = u64::from(self.cfg.packet_bytes).max(1);
        let mut pending = vec![0u32; n_msgs];
        let mut dependents: Vec<Vec<u32>> = vec![Vec::new(); n_msgs];
        let mut roots_by_node: Vec<Vec<u32>> = vec![Vec::new(); self.nodes.len()];
        let mut pkts = Vec::with_capacity(n_msgs);
        for (id, m) in wl.messages.iter().enumerate() {
            assert!(
                self.nodes[m.src.index()].active && self.nodes[m.dst.index()].active,
                "workload message {id} uses a disconnected node"
            );
            pkts.push(m.bytes.div_ceil(pkt_bytes) as u32);
            if m.deps.is_empty() {
                pending[id] = 1;
                roots_by_node[m.src.index()].push(id as u32);
            } else {
                pending[id] = m.deps.len() as u32;
                for &d in &m.deps {
                    dependents[d as usize].push(id as u32);
                }
            }
        }
        let remaining = pkts.clone();
        self.wl = Some(Box::new(WlState {
            wl: wl.clone(),
            pending,
            remaining,
            pkts,
            dependents,
            roots_by_node,
            timings: vec![
                MessageTiming {
                    armed_ns: u64::MAX,
                    injected_ns: u64::MAX,
                    completed_ns: u64::MAX,
                };
                n_msgs
            ],
            completed: 0,
            wl_msg: Vec::new(),
        }));
    }

    /// One dependency of `msg` satisfied; on the last one, segment the
    /// message into the source queue and start the injection link.
    pub(crate) fn wl_arm(&mut self, node: u32, msg: u32) {
        let wl = self.wl.as_deref_mut().expect("WlArm without a workload");
        let i = msg as usize;
        debug_assert!(
            wl.pending[i] > 0,
            "message armed more often than it has deps"
        );
        wl.pending[i] -= 1;
        if wl.pending[i] > 0 {
            return;
        }
        wl.timings[i].armed_ns = self.now;
        let m = &wl.wl.messages[i];
        debug_assert_eq!(m.src.0, node, "arm fired at the wrong node");
        let (src, dst, npkts) = (m.src, m.dst, wl.pkts[i]);
        let num_nodes = self.nodes.len();
        for k in 0..npkts {
            let dlid = match self.cfg.path_selection {
                PathSelection::Paper => self.routing.select_dlid(src, dst),
                PathSelection::RandomPerPacket => {
                    // Deterministic stand-in for the per-packet draw:
                    // workload mode keeps the engines RNG-free.
                    let space = self.routing.lid_space();
                    let offset = (wl_hash(self.cfg.seed ^ PATH_STREAM, msg, k)
                        % u64::from(space.lids_per_node())) as u32;
                    space.lid_with_offset(dst, offset)
                }
                PathSelection::RoundRobinPerSource => {
                    let space = self.routing.lid_space();
                    let st = &mut self.nodes[node as usize];
                    let offset = st.rr_offset % space.lids_per_node();
                    st.rr_offset = st.rr_offset.wrapping_add(1);
                    space.lid_with_offset(dst, offset)
                }
            };
            let vl = match self.cfg.vl_assignment {
                VlAssignment::Random => {
                    (wl_hash(self.cfg.seed ^ VL_STREAM, msg, k) % self.num_vls as u64) as u8
                }
                VlAssignment::DestinationHash => (dst.index() % self.num_vls) as u8,
                VlAssignment::SourceHash => (node as usize % self.num_vls) as u8,
            };
            let flow = (node as usize * num_nodes + dst.index()) * self.num_vls + vl as usize;
            let flow_seq = self.flow_next_seq[flow];
            self.flow_next_seq[flow] += 1;
            let pkt = self.slab.insert(Packet {
                src: node,
                dlid,
                vl,
                t_gen: self.now,
                t_inject: 0,
                flow_seq,
            });
            let slot = pkt as usize;
            if slot >= wl.wl_msg.len() {
                wl.wl_msg.resize(slot + 1, u32::MAX);
            }
            wl.wl_msg[slot] = msg;
            self.total_generated += 1;
            self.nodes[node as usize].inj_q[vl as usize].push_back(pkt);
        }
        self.try_node_send(node);
    }

    /// Bind a packet id to its message (parallel engine, after a
    /// cross-shard slab transfer). Mirrors `set_trace_slot`.
    pub(crate) fn wl_set_msg(&mut self, pkt: PacketId, msg: u32) {
        let wl = self.wl.as_deref_mut().expect("workload mode");
        let slot = pkt as usize;
        if slot >= wl.wl_msg.len() {
            wl.wl_msg.resize(slot + 1, u32::MAX);
        }
        wl.wl_msg[slot] = msg;
    }

    /// A packet of a workload message started transmitting; the first
    /// one stamps the message's injection time.
    pub(crate) fn wl_note_injected(&mut self, pkt: PacketId) {
        let wl = self.wl.as_deref_mut().expect("workload mode");
        let msg = wl.wl_msg[pkt as usize] as usize;
        let t = &mut wl.timings[msg];
        if t.injected_ns == u64::MAX {
            t.injected_ns = self.now;
        }
    }

    /// A packet of a workload message was delivered; the last one
    /// completes the message and releases its dependents, one wire
    /// flight later.
    pub(crate) fn wl_note_delivered(&mut self, pkt: PacketId) {
        let wl = self.wl.as_deref_mut().expect("workload mode");
        let i = wl.wl_msg[pkt as usize] as usize;
        debug_assert!(wl.remaining[i] > 0, "over-delivered message");
        wl.remaining[i] -= 1;
        if wl.remaining[i] > 0 {
            return;
        }
        wl.timings[i].completed_ns = self.now;
        wl.completed += 1;
        let at = self.now + self.fly;
        for idx in 0..wl.dependents[i].len() {
            let d = wl.dependents[i][idx];
            let node = wl.wl.messages[d as usize].src.0;
            self.queue
                .schedule_chain(ChainClass::Fly, at, Ev::WlArm { node, msg: d });
        }
    }
}

/// Validate a workload against a fabric of `num_nodes` nodes and the
/// configuration knobs workload mode constrains.
pub(crate) fn wl_check(
    wl: &Workload,
    num_nodes: u32,
    trace_first_packets: u32,
) -> Result<(), SimError> {
    wl.validate().map_err(SimError::InvalidWorkload)?;
    if wl.num_nodes != num_nodes {
        return Err(SimError::InvalidWorkload(format!(
            "workload addresses {} nodes but the fabric has {num_nodes}",
            wl.num_nodes
        )));
    }
    if trace_first_packets != 0 {
        return Err(SimError::InvalidWorkload(
            "flight recording (trace_first_packets) is not supported in workload mode: \
             trace slots are assigned in injection order, which workload completion \
             events make engine-dependent"
                .into(),
        ));
    }
    Ok(())
}

impl<'a> Simulator<'a> {
    /// Build an unprobed simulator that drives `wl` to completion
    /// (see [`run_workload`](Simulator::run_workload)). Workload runs
    /// have no horizon or warm-up: every message's full lifecycle is
    /// measured.
    pub fn for_workload(
        net: &Network,
        routing: &'a Routing,
        cfg: crate::SimConfig,
        wl: &Workload,
    ) -> Simulator<'a> {
        Simulator::for_workload_observed(net, routing, cfg, wl, crate::NoopProbe)
    }
}

/// A workload must complete every message, so faults may only stall
/// traffic, never lose it: the drop policy and switch kills (which drop
/// on arrival and silence attached nodes) would leave the DAG
/// permanently incomplete. Shared by the sequential and parallel
/// workload constructors.
pub(crate) fn check_workload_faults(cfg: &crate::SimConfig) {
    if cfg.faults.is_empty() {
        return;
    }
    assert!(
        matches!(cfg.faults.policy, crate::FaultPolicy::Stall),
        "workload runs require FaultPolicy::Stall (drops would stall the DAG)"
    );
    assert!(
        !cfg.faults.events.iter().any(|e| matches!(
            e.action,
            crate::FaultAction::KillSwitch(_) | crate::FaultAction::ReviveSwitch(_)
        )),
        "workload runs support link faults only (switch kills lose packets)"
    );
}

impl<'a, P: Probe> Simulator<'a, P> {
    /// Build a probed workload simulator; retrieve the probe with
    /// [`run_workload_observed`](Simulator::run_workload_observed).
    pub fn for_workload_observed(
        net: &Network,
        routing: &'a Routing,
        cfg: crate::SimConfig,
        wl: &Workload,
        probe: P,
    ) -> Simulator<'a, P> {
        check_workload_faults(&cfg);
        let mut sim = Simulator::with_probe(
            net,
            routing,
            cfg,
            TrafficPattern::Uniform, // unused: workload mode never samples
            1.0,
            WL_HORIZON,
            0,
            probe,
        );
        sim.wl_install(wl);
        sim
    }

    /// Drive the workload to completion and report.
    ///
    /// # Panics
    /// Panics if an engine invariant is violated mid-run; use
    /// [`try_run_workload`](Simulator::try_run_workload) for a
    /// [`SimError`] instead.
    pub fn run_workload(self) -> WorkloadReport {
        self.run_workload_observed().0
    }

    /// Drive the workload to completion; return the report and the
    /// probe. Panics like [`run_workload`](Simulator::run_workload).
    pub fn run_workload_observed(self) -> (WorkloadReport, P) {
        self.try_run_workload_observed()
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible twin of [`run_workload`](Simulator::run_workload).
    pub fn try_run_workload(self) -> Result<WorkloadReport, SimError> {
        Ok(self.try_run_workload_observed()?.0)
    }

    /// Fallible twin of
    /// [`run_workload_observed`](Simulator::run_workload_observed).
    /// Unlike [`run_observed`](Simulator::run_observed), the loop has no
    /// horizon: it ends when the calendar drains, which (absent drops)
    /// is exactly when the last message completes.
    pub fn try_run_workload_observed(mut self) -> Result<(WorkloadReport, P), SimError> {
        // Prime the DAG roots node-major (per node, ascending id): the
        // parallel engine reproduces this exact order with its initial
        // lineage keys.
        let wl = self.wl.as_ref().expect("no workload installed");
        let mut prime: Vec<(u32, u32)> = Vec::new();
        for (node, roots) in wl.roots_by_node.iter().enumerate() {
            for &msg in roots {
                prime.push((node as u32, msg));
            }
        }
        for (node, msg) in prime {
            self.queue.schedule(0, Ev::WlArm { node, msg });
        }
        self.schedule_fault_events();

        while let Some((t, ev)) = self.queue.pop() {
            debug_assert!(t >= self.now, "time went backwards");
            self.now = t;
            self.events_processed += 1;
            if P::COUNTERS {
                self.probe.tick(t, self.slab.live());
            }
            if P::TIMING {
                let phase = crate::sim::phase_of(&ev);
                let t0 = std::time::Instant::now();
                self.dispatch(ev);
                self.probe.phase_time(phase, t0.elapsed().as_nanos() as u64);
            } else {
                self.dispatch(ev);
            }
            if let Some(err) = self.invariant_err.take() {
                return Err(err);
            }
        }
        if P::COUNTERS || P::TIMING {
            self.probe.finish(self.now);
        }
        Ok(self.wl_finish())
    }

    /// Close out a drained workload run: every message must have
    /// completed (a drained calendar with missing completions means the
    /// fabric dropped packets — unroutable under a degraded LFT).
    pub(crate) fn wl_finish(mut self) -> (WorkloadReport, P) {
        let wl = self.wl.take().expect("no workload installed");
        assert_eq!(
            wl.completed,
            wl.wl.messages.len() as u64,
            "workload stalled: {} of {} messages completed ({} packets dropped in the fabric)",
            wl.completed,
            wl.wl.messages.len(),
            self.dropped
        );
        let report = WorkloadReport::build(
            &wl.wl,
            wl.timings,
            u64::from(self.cfg.packet_bytes),
            self.events_processed,
        );
        crate::sim::recycle_queues(self.switches, self.nodes);
        (report, self.probe)
    }
}
