/root/repo/target/debug/deps/figures-eb6ddb328fbae168.d: crates/bench/src/bin/figures.rs

/root/repo/target/debug/deps/libfigures-eb6ddb328fbae168.rmeta: crates/bench/src/bin/figures.rs

crates/bench/src/bin/figures.rs:
