/root/repo/target/debug/deps/serde-34bcb957feaf1cf3.d: /root/stubdeps/serde/src/lib.rs

/root/repo/target/debug/deps/libserde-34bcb957feaf1cf3.rlib: /root/stubdeps/serde/src/lib.rs

/root/repo/target/debug/deps/libserde-34bcb957feaf1cf3.rmeta: /root/stubdeps/serde/src/lib.rs

/root/stubdeps/serde/src/lib.rs:
