/root/repo/target/debug/deps/api_surface-21cc5f6718d7bdde.d: crates/core/tests/api_surface.rs

/root/repo/target/debug/deps/libapi_surface-21cc5f6718d7bdde.rmeta: crates/core/tests/api_surface.rs

crates/core/tests/api_surface.rs:
