//! The discrete-event core: a monotonically ordered event calendar.
//!
//! Events at equal timestamps are processed in insertion order, so a
//! simulation is a pure function of its inputs and seed. Two calendar
//! implementations share that contract:
//!
//! * [`TimingWheel`] — the default. Event deltas in this simulator are
//!   tiny discrete nanosecond quanta (20 ns fly, 100 ns route, 1 ns/byte
//!   serialization), so almost every event lands within a few microseconds
//!   of the cursor. A wheel of 1-ns FIFO buckets over a 4096-ns horizon
//!   turns the O(log n) heap push/pop into O(1) bucket appends/pops, with
//!   a sorted overflow level (far-future events, e.g. low-load injections)
//!   that migrates into the wheel as the cursor advances.
//! * [`HeapCalendar`] — the classic `BinaryHeap` ordered by `(time, seq)`.
//!   Kept as a differential oracle: the `heap-calendar` feature makes it
//!   the default, and the equivalence tests drive both side by side.
//!
//! Tie-break order is part of the determinism contract (see
//! `docs/MODEL.md` § Performance & determinism): both calendars pop equal
//! timestamps strictly in scheduling order.

use serde::{Deserialize, Serialize};
use std::cmp::{Ordering, Reverse};
use std::collections::{BTreeMap, BinaryHeap, VecDeque};

/// Simulation time in nanoseconds.
pub type Time = u64;

/// Which calendar implementation backs an [`EventQueue`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CalendarKind {
    /// Hierarchical timing wheel: O(1) schedule/pop for near-future
    /// events, sorted overflow for far-future ones.
    TimingWheel,
    /// Binary heap ordered by `(time, seq)`: O(log n), the original
    /// implementation, kept as a differential oracle.
    BinaryHeap,
}

impl Default for CalendarKind {
    /// The wheel, unless the `heap-calendar` feature flips the fallback
    /// back on (used by CI equivalence runs).
    fn default() -> Self {
        if cfg!(feature = "heap-calendar") {
            CalendarKind::BinaryHeap
        } else {
            CalendarKind::TimingWheel
        }
    }
}

/// Default wheel horizon in slots (= ns, one bucket per ns). Must be a
/// power of two. 4096 ns comfortably covers every in-flight delta of the
/// model (max ≈ fly + packet serialization) at the paper's constants;
/// only injection events at very low offered load overflow.
const WHEEL_SLOTS: usize = 1 << 12;

/// Smallest wheel worth building: below this the slot array no longer
/// dominates peek cost and shrinking further only grows overflow churn.
const MIN_WHEEL_SLOTS: usize = 1 << 6;

/// A calendar queue with 1-ns FIFO buckets over a sliding 4096-ns
/// (`WHEEL_SLOTS`) horizon plus a sorted overflow level beyond it.
///
/// Invariants:
/// * `cursor` never exceeds the earliest pending event's time.
/// * every buffered event with `time < cursor + WHEEL_SLOTS` lives in
///   `slots[time % WHEEL_SLOTS]` (so a bucket holds exactly one
///   timestamp), later events live in `overflow`,
/// * each bucket and each overflow entry is FIFO in scheduling order.
#[derive(Debug)]
pub struct TimingWheel<E> {
    slots: Vec<VecDeque<E>>,
    /// `slots.len() - 1`; slot count is a power of two so bucket index
    /// is `time & mask`.
    mask: u64,
    /// Next candidate timestamp; everything earlier has been popped.
    cursor: Time,
    /// Events currently inside the wheel horizon.
    near: usize,
    /// Far-future events, FIFO per timestamp.
    overflow: BTreeMap<Time, VecDeque<E>>,
    /// Events currently in `overflow`.
    far: usize,
    /// Recycled overflow buckets: deques drained by `advance`/`refill`
    /// keep their heap buffer here instead of dropping it, so steady-state
    /// overflow churn (low-load injection events) allocates nothing.
    spare: Vec<VecDeque<E>>,
    /// Overflow buckets created without a recycled deque (diagnostics for
    /// the alloc-count test).
    #[cfg(test)]
    fresh_buckets: u64,
}

/// Recycled-bucket pool cap: beyond this many spare deques the buffers are
/// genuinely surplus (more than the peak number of simultaneous overflow
/// timestamps) and get dropped instead of hoarded.
const SPARE_BUCKETS: usize = 32;

impl<E> TimingWheel<E> {
    /// An empty wheel with the cursor at t = 0 and the default
    /// ([`WHEEL_SLOTS`]) horizon.
    pub fn new() -> Self {
        TimingWheel::with_slots(WHEEL_SLOTS)
    }

    /// An empty wheel with an explicit slot count (must be a power of
    /// two). A wheel sized to the fabric's actual delay horizon keeps the
    /// slot array cache-resident and makes the O(slots) `peek_head` scan
    /// proportionally cheaper; events past the horizon still land in the
    /// sorted overflow level, so correctness never depends on the size.
    pub fn with_slots(slots: usize) -> Self {
        assert!(slots.is_power_of_two(), "wheel slot count must be 2^k");
        TimingWheel {
            slots: (0..slots).map(|_| VecDeque::new()).collect(),
            mask: slots as u64 - 1,
            cursor: 0,
            near: 0,
            overflow: BTreeMap::new(),
            far: 0,
            spare: Vec::new(),
            #[cfg(test)]
            fresh_buckets: 0,
        }
    }

    /// An empty wheel sized for a fabric whose largest common event delta
    /// is `horizon_ns`: the next power of two covering it, clamped to
    /// [[`MIN_WHEEL_SLOTS`], [`WHEEL_SLOTS`]]. `horizon_ns == 0` (no
    /// hint) yields the default size.
    pub fn with_horizon(horizon_ns: u64) -> Self {
        if horizon_ns == 0 {
            return TimingWheel::new();
        }
        let slots = horizon_ns
            .next_power_of_two()
            .clamp(MIN_WHEEL_SLOTS as u64, WHEEL_SLOTS as u64) as usize;
        TimingWheel::with_slots(slots)
    }

    /// The wheel's horizon in slots (diagnostics / tests).
    pub fn num_slots(&self) -> usize {
        self.slots.len()
    }

    /// Schedule `event` at absolute time `at`. Scheduling in the past
    /// (before the last popped timestamp) is a logic error; debug builds
    /// assert, release builds clamp to the cursor to keep monotonicity.
    #[inline]
    pub fn schedule(&mut self, at: Time, event: E) {
        debug_assert!(
            at >= self.cursor,
            "scheduled {at} before cursor {}",
            self.cursor
        );
        let at = at.max(self.cursor);
        if at - self.cursor < self.slots.len() as u64 {
            self.slots[(at & self.mask) as usize].push_back(event);
            self.near += 1;
        } else {
            match self.overflow.entry(at) {
                std::collections::btree_map::Entry::Occupied(mut e) => e.get_mut().push_back(event),
                std::collections::btree_map::Entry::Vacant(v) => {
                    #[cfg(test)]
                    if self.spare.is_empty() {
                        self.fresh_buckets += 1;
                    }
                    let mut q = self.spare.pop().unwrap_or_default();
                    q.push_back(event);
                    v.insert(q);
                }
            }
            self.far += 1;
        }
    }

    /// Retire a drained overflow bucket into the recycling pool.
    #[inline]
    fn recycle(&mut self, q: VecDeque<E>) {
        debug_assert!(q.is_empty(), "recycling a non-empty bucket");
        if self.spare.len() < SPARE_BUCKETS {
            self.spare.push(q);
        }
    }

    /// Pop the earliest event, if any.
    #[inline]
    pub fn pop(&mut self) -> Option<(Time, E)> {
        loop {
            if self.near == 0 {
                if self.far == 0 {
                    return None;
                }
                // The wheel is empty: jump straight to the earliest
                // overflow timestamp and pull the new window in.
                let (&t, _) = self.overflow.first_key_value().expect("far > 0");
                self.cursor = t;
                self.refill();
                continue;
            }
            if let Some(ev) = self.slots[(self.cursor & self.mask) as usize].pop_front() {
                self.near -= 1;
                return Some((self.cursor, ev));
            }
            self.advance();
        }
    }

    /// Timestamp of the earliest pending event. O(horizon) worst case —
    /// for tests and diagnostics, not the hot path (the simulator only
    /// pops).
    pub fn peek_time(&self) -> Option<Time> {
        self.peek_head().map(|(t, _)| t)
    }

    /// The earliest pending event without removing it. Non-mutating on
    /// purpose: the cursor stays put, so events may still be scheduled at
    /// any time ≥ the last *popped* timestamp afterwards. (A mutating peek
    /// that advanced the cursor would make later schedules below the new
    /// cursor clamp — see [`schedule`](TimingWheel::schedule) — which is
    /// exactly what the fused-chain queue must avoid: chains deliver
    /// events earlier than the wheel head, and dispatching them can
    /// legally schedule residual events below it.) O(horizon) worst case,
    /// like [`peek_time`](TimingWheel::peek_time).
    pub fn peek_head(&self) -> Option<(Time, &E)> {
        if self.near > 0 {
            for i in 0..self.slots.len() as u64 {
                let t = self.cursor + i;
                if let Some(e) = self.slots[(t & self.mask) as usize].front() {
                    return Some((t, e));
                }
            }
            unreachable!("near > 0 but no occupied bucket in the horizon");
        }
        self.overflow
            .first_key_value()
            .map(|(&t, q)| (t, q.front().expect("empty overflow bucket")))
    }

    /// Number of pending events.
    #[inline]
    pub fn len(&self) -> usize {
        self.near + self.far
    }

    /// Whether the calendar is drained.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Advance the cursor past an empty bucket. The window slides by one
    /// ns, so exactly one new timestamp (`old cursor + slots`) becomes
    /// coverable; its bucket is the one just vacated.
    #[inline]
    fn advance(&mut self) {
        let new_edge = self.cursor + self.slots.len() as u64;
        self.cursor += 1;
        if self.far > 0 {
            if let Some(entry) = self.overflow.first_entry() {
                if *entry.key() == new_edge {
                    let mut q = entry.remove();
                    self.far -= q.len();
                    self.near += q.len();
                    let slot = &mut self.slots[(new_edge & self.mask) as usize];
                    debug_assert!(slot.is_empty(), "migrating into an occupied bucket");
                    slot.append(&mut q);
                    self.recycle(q);
                }
            }
        }
    }

    /// After a cursor jump, migrate every overflow entry that now falls
    /// inside the horizon (FIFO order per timestamp is preserved).
    fn refill(&mut self) {
        let horizon = self.cursor + self.slots.len() as u64;
        while let Some(entry) = self.overflow.first_entry() {
            let t = *entry.key();
            if t >= horizon {
                break;
            }
            let mut q = entry.remove();
            self.far -= q.len();
            self.near += q.len();
            self.slots[(t & self.mask) as usize].append(&mut q);
            self.recycle(q);
        }
    }

    /// Overflow buckets created from scratch (not served by the recycling
    /// pool). Pinned by the alloc-count test: after warm-up, steady-state
    /// overflow churn must be allocation-free.
    #[cfg(test)]
    pub(crate) fn fresh_overflow_buckets(&self) -> u64 {
        self.fresh_buckets
    }
}

impl<E> Default for TimingWheel<E> {
    fn default() -> Self {
        TimingWheel::new()
    }
}

/// Binary-heap calendar ordered by the unique `(time, seq)` key.
#[derive(Debug)]
pub struct HeapCalendar<E> {
    heap: BinaryHeap<Reverse<HeapEntry<E>>>,
    seq: u64,
}

/// One scheduled event. Ordering is decided entirely by the `(at, seq)`
/// key, which is unique per entry (`seq` strictly increases), so the
/// payload never participates in comparisons.
#[derive(Debug)]
struct HeapEntry<E> {
    at: Time,
    seq: u64,
    event: E,
}

impl<E> PartialEq for HeapEntry<E> {
    fn eq(&self, other: &Self) -> bool {
        (self.at, self.seq) == (other.at, other.seq)
    }
}
impl<E> Eq for HeapEntry<E> {}
impl<E> PartialOrd for HeapEntry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for HeapEntry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

impl<E> HeapCalendar<E> {
    /// An empty calendar.
    pub fn new() -> Self {
        HeapCalendar {
            heap: BinaryHeap::new(),
            seq: 0,
        }
    }

    /// Schedule `event` at absolute time `at`.
    #[inline]
    pub fn schedule(&mut self, at: Time, event: E) {
        self.seq += 1;
        self.heap.push(Reverse(HeapEntry {
            at,
            seq: self.seq,
            event,
        }));
    }

    /// Pop the earliest event, if any.
    #[inline]
    pub fn pop(&mut self) -> Option<(Time, E)> {
        self.heap.pop().map(|Reverse(e)| (e.at, e.event))
    }

    /// Timestamp of the earliest pending event.
    #[inline]
    pub fn peek_time(&self) -> Option<Time> {
        self.heap.peek().map(|Reverse(e)| e.at)
    }

    /// The earliest pending event without removing it.
    #[inline]
    pub fn peek_head(&self) -> Option<(Time, &E)> {
        self.heap.peek().map(|Reverse(e)| (e.at, &e.event))
    }

    /// Number of pending events.
    #[inline]
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether the calendar is drained.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

impl<E> Default for HeapCalendar<E> {
    fn default() -> Self {
        HeapCalendar::new()
    }
}

/// The event calendar. `E` is the simulator's event payload.
///
/// An enum (not a trait object) so the hot path stays monomorphized and
/// branch-predictable; both variants obey the same `(time, insertion
/// order)` pop contract.
#[derive(Debug)]
pub enum EventQueue<E> {
    /// Timing-wheel calendar (default).
    Wheel(TimingWheel<E>),
    /// Binary-heap calendar (differential oracle / `heap-calendar`
    /// feature fallback).
    Heap(HeapCalendar<E>),
}

impl<E> EventQueue<E> {
    /// An empty calendar of the default kind (see [`CalendarKind`]).
    pub fn new() -> Self {
        EventQueue::with_kind(CalendarKind::default())
    }

    /// An empty calendar of an explicit kind.
    pub fn with_kind(kind: CalendarKind) -> Self {
        EventQueue::with_kind_and_horizon(kind, 0)
    }

    /// An empty calendar of an explicit kind, with the wheel sized to
    /// `horizon_ns` (see [`TimingWheel::with_horizon`]; `0` = default
    /// size). The heap ignores the hint.
    pub fn with_kind_and_horizon(kind: CalendarKind, horizon_ns: u64) -> Self {
        match kind {
            CalendarKind::TimingWheel => EventQueue::Wheel(TimingWheel::with_horizon(horizon_ns)),
            CalendarKind::BinaryHeap => EventQueue::Heap(HeapCalendar::new()),
        }
    }

    /// Which implementation this queue runs on.
    pub fn kind(&self) -> CalendarKind {
        match self {
            EventQueue::Wheel(_) => CalendarKind::TimingWheel,
            EventQueue::Heap(_) => CalendarKind::BinaryHeap,
        }
    }

    /// Schedule `event` at absolute time `at`.
    #[inline]
    pub fn schedule(&mut self, at: Time, event: E) {
        match self {
            EventQueue::Wheel(w) => w.schedule(at, event),
            EventQueue::Heap(h) => h.schedule(at, event),
        }
    }

    /// Pop the earliest event, if any.
    #[inline]
    pub fn pop(&mut self) -> Option<(Time, E)> {
        match self {
            EventQueue::Wheel(w) => w.pop(),
            EventQueue::Heap(h) => h.pop(),
        }
    }

    /// Timestamp of the earliest pending event.
    #[inline]
    pub fn peek_time(&self) -> Option<Time> {
        match self {
            EventQueue::Wheel(w) => w.peek_time(),
            EventQueue::Heap(h) => h.peek_time(),
        }
    }

    /// The earliest pending event without removing it.
    #[inline]
    pub fn peek_head(&self) -> Option<(Time, &E)> {
        match self {
            EventQueue::Wheel(w) => w.peek_head(),
            EventQueue::Heap(h) => h.peek_head(),
        }
    }

    /// Number of pending events.
    #[inline]
    pub fn len(&self) -> usize {
        match self {
            EventQueue::Wheel(w) => w.len(),
            EventQueue::Heap(h) => h.len(),
        }
    }

    /// Whether the calendar is drained.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        EventQueue::new()
    }
}

/// The fixed-latency event classes of the simulator's hot path. Every
/// event a handler schedules at one of these four constant delays goes
/// into a dedicated FIFO delay line instead of the general calendar —
/// see [`ChainQueue`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChainClass {
    /// One wire flight (`fly_time_ns`): header arrivals, credit returns,
    /// workload arm notifications.
    Fly,
    /// One routing stage (`routing_time_ns`): route-done completions.
    Route,
    /// One packet serialization (`packet_time_ns`): transmit completions
    /// and input-buffer departures.
    Pkt,
    /// Wire flight plus serialization: tail delivery at an endport.
    FlyPkt,
}

/// Cached location of the residual calendar's head inside a
/// [`ChainQueue`], so the wheel's O(horizon) peek is paid once per
/// residual pop instead of once per event.
#[derive(Debug, Clone, Copy)]
enum RestHead {
    /// The residual calendar is empty.
    Empty,
    /// Head key `(time, global seq)` is known.
    Known(Time, u64),
    /// Must be recomputed with `peek_head` before the next comparison.
    Unknown,
}

/// A calendar specialized for the simulator's event mix: four constant-
/// delay FIFO delay lines (one per [`ChainClass`]) in front of a residual
/// [`EventQueue`] for everything else (injections, busy-link retries,
/// discard drains).
///
/// Because dispatch time is monotone and each chain's delay is a run
/// constant, every chain is `(time, seq)`-sorted by construction — a
/// `schedule` is a plain `push_back` and the earliest event is one of at
/// most five FIFO heads. A single global sequence number, stamped at
/// schedule time across chains *and* the residual calendar, reproduces
/// the exact `(time, insertion order)` pop contract of a single
/// [`EventQueue`] — same events, same order, same `events_processed`;
/// only the per-event calendar cost changes. The calendar-equivalence
/// and parallel-equivalence suites pin exactly that.
#[derive(Debug)]
pub struct ChainQueue<E> {
    chains: [VecDeque<(Time, u64, E)>; 4],
    rest: EventQueue<(u64, E)>,
    rest_head: RestHead,
    seq: u64,
}

impl<E> ChainQueue<E> {
    /// An empty queue whose residual calendar uses the given kind.
    pub fn with_kind(kind: CalendarKind) -> Self {
        ChainQueue::with_kind_and_horizon(kind, 0)
    }

    /// An empty queue whose residual wheel (if a wheel) is sized to the
    /// fabric's delay horizon (`0` = default size). Wheel size never
    /// changes pop order — each bucket is FIFO per timestamp and the
    /// overflow level is sorted — so this is purely a cache/scan-cost
    /// knob.
    pub fn with_kind_and_horizon(kind: CalendarKind, horizon_ns: u64) -> Self {
        ChainQueue {
            chains: std::array::from_fn(|_| VecDeque::with_capacity(64)),
            rest: EventQueue::with_kind_and_horizon(kind, horizon_ns),
            rest_head: RestHead::Empty,
            seq: 0,
        }
    }

    /// Which implementation backs the residual calendar.
    pub fn kind(&self) -> CalendarKind {
        self.rest.kind()
    }

    /// Schedule into the residual calendar (non-constant delays).
    #[inline]
    pub fn schedule(&mut self, at: Time, event: E) {
        let seq = self.seq;
        self.seq += 1;
        self.rest.schedule(at, (seq, event));
        match self.rest_head {
            RestHead::Empty => self.rest_head = RestHead::Known(at, seq),
            // `seq` strictly increases, so the new entry only wins on a
            // strictly earlier timestamp.
            RestHead::Known(t, _) if at < t => self.rest_head = RestHead::Known(at, seq),
            _ => {}
        }
    }

    /// Schedule onto a constant-delay chain. The caller must pass the
    /// chain matching the event's delay class: within a chain,
    /// timestamps must be non-decreasing (dispatch time is monotone and
    /// the delay constant, so this holds by construction; debug builds
    /// assert it).
    #[inline]
    pub fn schedule_chain(&mut self, class: ChainClass, at: Time, event: E) {
        let chain = &mut self.chains[class as usize];
        debug_assert!(
            chain.back().is_none_or(|&(t, _, _)| t <= at),
            "chain {class:?} scheduled out of order"
        );
        let seq = self.seq;
        self.seq += 1;
        chain.push_back((at, seq, event));
    }

    /// Pop the earliest event: the minimum `(time, seq)` over the four
    /// chain heads and the residual head.
    pub fn pop(&mut self) -> Option<(Time, E)> {
        // Best chain candidate.
        let mut best: Option<(Time, u64, usize)> = None;
        for (i, chain) in self.chains.iter().enumerate() {
            if let Some(&(t, s, _)) = chain.front() {
                if best.is_none_or(|(bt, bs, _)| (t, s) < (bt, bs)) {
                    best = Some((t, s, i));
                }
            }
        }
        // Residual candidate, through the head cache.
        if let RestHead::Unknown = self.rest_head {
            self.rest_head = match self.rest.peek_head() {
                Some((t, &(s, _))) => RestHead::Known(t, s),
                None => RestHead::Empty,
            };
        }
        if let RestHead::Known(t, s) = self.rest_head {
            if best.is_none_or(|(bt, bs, _)| (t, s) < (bt, bs)) {
                let (at, (_, event)) = self.rest.pop().expect("cached head of empty calendar");
                debug_assert_eq!(at, t);
                self.rest_head = if self.rest.is_empty() {
                    RestHead::Empty
                } else {
                    RestHead::Unknown
                };
                return Some((t, event));
            }
        }
        best.map(|(_, _, i)| {
            let (t, _, event) = self.chains[i].pop_front().expect("checked nonempty");
            (t, event)
        })
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.chains.iter().map(|c| c.len()).sum::<usize>() + self.rest.len()
    }

    /// Whether every chain and the residual calendar are drained.
    pub fn is_empty(&self) -> bool {
        self.chains.iter().all(|c| c.is_empty()) && self.rest.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn both() -> [EventQueue<&'static str>; 2] {
        [
            EventQueue::with_kind(CalendarKind::TimingWheel),
            EventQueue::with_kind(CalendarKind::BinaryHeap),
        ]
    }

    #[test]
    fn events_pop_in_time_order() {
        for mut q in both() {
            q.schedule(30, "c");
            q.schedule(10, "a");
            q.schedule(20, "b");
            assert_eq!(q.pop(), Some((10, "a")), "{:?}", q.kind());
            assert_eq!(q.pop(), Some((20, "b")));
            assert_eq!(q.pop(), Some((30, "c")));
            assert_eq!(q.pop(), None);
        }
    }

    #[test]
    fn ties_break_by_insertion_order() {
        for kind in [CalendarKind::TimingWheel, CalendarKind::BinaryHeap] {
            let mut q = EventQueue::with_kind(kind);
            q.schedule(5, 1);
            q.schedule(5, 2);
            q.schedule(5, 3);
            assert_eq!(q.pop(), Some((5, 1)), "{kind:?}");
            assert_eq!(q.pop(), Some((5, 2)));
            assert_eq!(q.pop(), Some((5, 3)));
        }
    }

    #[test]
    fn peek_and_len() {
        for mut q in both() {
            assert!(q.is_empty());
            assert_eq!(q.peek_time(), None);
            q.schedule(42, "x");
            assert_eq!(q.peek_time(), Some(42));
            assert_eq!(q.len(), 1);
        }
    }

    #[test]
    fn far_future_events_cross_the_horizon() {
        let far = 10 * WHEEL_SLOTS as u64 + 17;
        for kind in [CalendarKind::TimingWheel, CalendarKind::BinaryHeap] {
            let mut q = EventQueue::with_kind(kind);
            q.schedule(far, 1u32);
            q.schedule(3, 2);
            q.schedule(far, 3);
            q.schedule(far + 1, 4);
            assert_eq!(q.peek_time(), Some(3), "{kind:?}");
            assert_eq!(q.pop(), Some((3, 2)));
            assert_eq!(q.peek_time(), Some(far));
            assert_eq!(q.pop(), Some((far, 1)), "FIFO across the overflow");
            assert_eq!(q.pop(), Some((far, 3)));
            assert_eq!(q.pop(), Some((far + 1, 4)));
            assert!(q.is_empty());
        }
    }

    #[test]
    fn overflow_merges_with_direct_inserts_at_the_same_time() {
        let mut q = EventQueue::with_kind(CalendarKind::TimingWheel);
        let t = WHEEL_SLOTS as u64 + 100;
        q.schedule(t, 1u32); // beyond horizon: overflow
        q.schedule(0, 0);
        assert_eq!(q.pop(), Some((0, 0)));
        // Walk the cursor close enough that t is inside the horizon, then
        // insert directly into the (already migrated) bucket.
        q.schedule(200, 2);
        assert_eq!(q.pop(), Some((200, 2)));
        q.schedule(t, 3); // same timestamp, later insertion
        assert_eq!(q.pop(), Some((t, 1)), "migrated event pops first");
        assert_eq!(q.pop(), Some((t, 3)));
    }

    #[test]
    fn interleaved_schedule_pop_keeps_order() {
        // Schedule-while-popping at the current timestamp: the new event
        // must pop after everything already queued at that time.
        for kind in [CalendarKind::TimingWheel, CalendarKind::BinaryHeap] {
            let mut q = EventQueue::with_kind(kind);
            q.schedule(7, 1u32);
            q.schedule(7, 2);
            assert_eq!(q.pop(), Some((7, 1)));
            q.schedule(7, 3); // "now" insert during dispatch
            assert_eq!(q.pop(), Some((7, 2)), "{kind:?}");
            assert_eq!(q.pop(), Some((7, 3)));
        }
    }

    #[test]
    fn overflow_buckets_are_recycled_not_reallocated() {
        // Steady-state far-future churn: each cycle schedules an event
        // beyond the horizon, then pops it (walking the cursor forward).
        // After the first cycle the drained bucket's deque sits in the
        // recycling pool, so no further fresh buckets are ever created.
        let mut w = TimingWheel::new();
        let mut t = 0u64;
        let mut fresh_after_warmup = 0;
        for cycle in 0..200 {
            w.schedule(t + 2 * WHEEL_SLOTS as u64, cycle);
            let (popped_t, popped) = w.pop().expect("event pending");
            assert_eq!(popped, cycle);
            assert_eq!(popped_t, t + 2 * WHEEL_SLOTS as u64);
            t = popped_t;
            if cycle == 0 {
                fresh_after_warmup = w.fresh_overflow_buckets();
            }
        }
        assert!(fresh_after_warmup >= 1, "first cycle allocates the bucket");
        assert_eq!(
            w.fresh_overflow_buckets(),
            fresh_after_warmup,
            "steady-state overflow churn must reuse recycled buckets"
        );
    }

    #[test]
    fn recycled_pool_is_bounded() {
        // Burst of distinct overflow timestamps, then a full drain: the
        // pool keeps at most SPARE_BUCKETS deques.
        let mut w = TimingWheel::new();
        for i in 0..(SPARE_BUCKETS as u64 + 50) {
            w.schedule(2 * WHEEL_SLOTS as u64 + i * WHEEL_SLOTS as u64, i);
        }
        while w.pop().is_some() {}
        assert!(w.spare.len() <= SPARE_BUCKETS);
        assert!(w.is_empty());
    }

    #[test]
    fn chain_queue_matches_single_calendar_pop_order() {
        // Differential: an interleaved mix of chain and residual
        // schedules (with a monotone dispatch clock, as the simulator
        // guarantees) must pop in exactly the order one shared calendar
        // would produce — same times, same tie-breaks.
        let classes = [
            ChainClass::Fly,
            ChainClass::Route,
            ChainClass::Pkt,
            ChainClass::FlyPkt,
        ];
        let delays = [20u64, 100, 256, 276];
        for kind in [CalendarKind::TimingWheel, CalendarKind::BinaryHeap] {
            let mut cq = ChainQueue::with_kind(kind);
            let mut eq = EventQueue::with_kind(kind);
            let mut state = 0x9E37_79B9_7F4A_7C15u64;
            let mut next = move || {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                state
            };
            let mut now = 0u64;
            let mut id = 0u32;
            for _ in 0..500 {
                for _ in 0..next() % 4 {
                    id += 1;
                    if next() % 3 == 0 {
                        // Residual: arbitrary future delay (injections,
                        // retries), occasionally far past the horizon.
                        let at = now + next() % (2 * WHEEL_SLOTS as u64);
                        cq.schedule(at, id);
                        eq.schedule(at, id);
                    } else {
                        let c = (next() % 4) as usize;
                        cq.schedule_chain(classes[c], now + delays[c], id);
                        eq.schedule(now + delays[c], id);
                    }
                }
                for _ in 0..next() % 4 {
                    let a = cq.pop();
                    assert_eq!(a, eq.pop(), "{kind:?}");
                    if let Some((t, _)) = a {
                        now = t;
                    }
                }
            }
            loop {
                let a = cq.pop();
                assert_eq!(a, eq.pop(), "{kind:?} drain");
                if a.is_none() {
                    break;
                }
            }
            assert!(cq.is_empty());
            assert_eq!(cq.len(), 0);
        }
    }

    #[test]
    fn peek_head_does_not_disturb_the_cursor() {
        // peek_head must be non-mutating: scheduling an event earlier
        // than the peeked head, after the peek, must still work (the
        // chain queue relies on this exact sequence).
        let mut w = TimingWheel::new();
        w.schedule(3000, "far");
        assert_eq!(w.peek_head(), Some((3000, &"far")));
        w.schedule(5, "near");
        assert_eq!(w.pop(), Some((5, "near")));
        assert_eq!(w.pop(), Some((3000, "far")));
        assert_eq!(w.peek_head(), None);
    }

    #[test]
    fn horizon_hint_sizes_the_wheel() {
        assert_eq!(TimingWheel::<u32>::with_horizon(0).num_slots(), WHEEL_SLOTS);
        assert_eq!(
            TimingWheel::<u32>::with_horizon(1).num_slots(),
            MIN_WHEEL_SLOTS
        );
        assert_eq!(TimingWheel::<u32>::with_horizon(377).num_slots(), 512);
        assert_eq!(TimingWheel::<u32>::with_horizon(512).num_slots(), 512);
        assert_eq!(
            TimingWheel::<u32>::with_horizon(1 << 20).num_slots(),
            WHEEL_SLOTS,
            "hint is clamped to the default maximum"
        );
    }

    #[test]
    fn small_wheel_keeps_order_across_overflow() {
        // A 64-slot wheel with deltas straddling the horizon must pop in
        // the same order as the heap oracle: size is a cost knob only.
        let mut w = EventQueue::with_kind_and_horizon(CalendarKind::TimingWheel, 1);
        let mut h = EventQueue::with_kind(CalendarKind::BinaryHeap);
        let mut state = 0xDEAD_BEEFu64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let mut now = 0u64;
        for id in 0..2000u32 {
            let at = now + next() % 200; // often past the 64-slot horizon
            w.schedule(at, id);
            h.schedule(at, id);
            if next() % 3 == 0 {
                let a = w.pop();
                assert_eq!(a, h.pop());
                if let Some((t, _)) = a {
                    now = t;
                }
            }
        }
        loop {
            let a = w.pop();
            assert_eq!(a, h.pop());
            if a.is_none() {
                break;
            }
        }
    }

    #[test]
    fn default_kind_follows_the_feature_flag() {
        let expected = if cfg!(feature = "heap-calendar") {
            CalendarKind::BinaryHeap
        } else {
            CalendarKind::TimingWheel
        };
        assert_eq!(EventQueue::<u32>::new().kind(), expected);
        assert_eq!(CalendarKind::default(), expected);
    }
}
