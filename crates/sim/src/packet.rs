//! Packets and the packet slab.
//!
//! The simulator keeps live packets in a slab with a free list: packet ids
//! are reused after delivery, so memory stays proportional to the number of
//! packets in flight (plus source queues), not to everything ever sent.

use ibfat_routing::Lid;

/// Index of a live packet in the slab.
pub type PacketId = u32;

/// The state of one packet carried through the subnet. Every packet has the
/// configured fixed size; its Local Route Header is represented by the
/// `(slid-implied src, dlid)` pair, exactly the fields forwarding uses.
///
/// Kept lean on purpose: the flight-recorder slot of a traced packet lives
/// in a side table on the simulator, not here, so the struct every hop
/// copies through buffers stays at 32 bytes (see the size test below).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Packet {
    /// Source node (the SLID side).
    pub src: u32,
    /// The destination LID written by path selection. The destination
    /// *node* is implied — it is the DLID's window owner under the LID
    /// space (`(dlid - 1) >> lmc`), exactly as on a real wire, so it is
    /// not stored.
    pub dlid: Lid,
    /// Virtual lane carried end to end (SL-to-VL identity mapping).
    pub vl: u8,
    /// Generation timestamp (entered the source queue).
    pub t_gen: u64,
    /// First-byte-on-wire timestamp (left the source endport).
    pub t_inject: u64,
    /// Sequence number within the (src, dst) flow, assigned at generation.
    pub flow_seq: u32,
}

// A `static_assert` on the hot-struct size: two timestamps (16) + src (4)
// + extended-width dlid (4) + flow_seq (4) + vl (1) pack into 32 bytes
// under align 8. Growing the struct is a deliberate decision, not an
// accident.
const _: () = assert!(std::mem::size_of::<Packet>() == 32);

/// Slab of live packets.
#[derive(Debug, Default)]
pub struct PacketSlab {
    slots: Vec<Packet>,
    free: Vec<PacketId>,
    live: usize,
    /// Peak simultaneous live packets over the slab's lifetime.
    high_water: usize,
}

impl PacketSlab {
    /// An empty slab.
    pub fn new() -> Self {
        PacketSlab::default()
    }

    /// Insert a packet, returning its id.
    pub fn insert(&mut self, p: Packet) -> PacketId {
        self.live += 1;
        self.high_water = self.high_water.max(self.live);
        if let Some(id) = self.free.pop() {
            debug_assert!(
                (id as usize) < self.slots.len(),
                "free list held an id beyond the slab"
            );
            self.slots[id as usize] = p;
            id
        } else {
            self.slots.push(p);
            (self.slots.len() - 1) as PacketId
        }
    }

    /// Access a live packet.
    #[inline]
    pub fn get(&self, id: PacketId) -> &Packet {
        &self.slots[id as usize]
    }

    /// Mutate a live packet.
    #[inline]
    pub fn get_mut(&mut self, id: PacketId) -> &mut Packet {
        &mut self.slots[id as usize]
    }

    /// Release a delivered packet's slot for reuse.
    pub fn remove(&mut self, id: PacketId) -> Packet {
        debug_assert!(self.live > 0, "remove from an empty slab");
        debug_assert!(!self.free.contains(&id), "double free of packet id {id}");
        self.live -= 1;
        self.free.push(id);
        self.slots[id as usize]
    }

    /// Number of live packets (in queues, buffers, or on wires).
    #[inline]
    pub fn live(&self) -> usize {
        self.live
    }

    /// Alias for [`live`](PacketSlab::live), matching container idiom.
    #[inline]
    pub fn len(&self) -> usize {
        self.live
    }

    /// Whether no packets are live.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Peak simultaneous live packets over the slab's lifetime — the
    /// working-set the free list kept memory bounded to.
    #[inline]
    pub fn high_water(&self) -> usize {
        self.high_water
    }

    /// High-water mark of slab capacity (slots ever allocated; equals
    /// [`high_water`](PacketSlab::high_water) when every freed slot is
    /// reused before the slab grows).
    #[inline]
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pkt(src: u32) -> Packet {
        Packet {
            src,
            dlid: Lid(2),
            vl: 0,
            t_gen: 0,
            t_inject: 0,
            flow_seq: 0,
        }
    }

    #[test]
    fn insert_get_remove() {
        let mut slab = PacketSlab::new();
        let a = slab.insert(pkt(10));
        let b = slab.insert(pkt(20));
        assert_eq!(slab.live(), 2);
        assert_eq!(slab.len(), 2);
        assert!(!slab.is_empty());
        assert_eq!(slab.get(a).src, 10);
        assert_eq!(slab.get(b).src, 20);
        let removed = slab.remove(a);
        assert_eq!(removed.src, 10);
        assert_eq!(slab.live(), 1);
    }

    #[test]
    fn slots_are_reused() {
        let mut slab = PacketSlab::new();
        let a = slab.insert(pkt(1));
        slab.remove(a);
        let b = slab.insert(pkt(2));
        assert_eq!(a, b, "freed slot must be reused");
        assert_eq!(slab.capacity(), 1);
    }

    #[test]
    fn high_water_tracks_peak_not_current() {
        let mut slab = PacketSlab::new();
        let ids: Vec<_> = (0..5).map(|i| slab.insert(pkt(i))).collect();
        assert_eq!(slab.high_water(), 5);
        for id in &ids {
            slab.remove(*id);
        }
        assert!(slab.is_empty());
        assert_eq!(slab.high_water(), 5, "peak survives drain");
        slab.insert(pkt(9));
        assert_eq!(slab.high_water(), 5);
        // Capacity never exceeded the peak: reuse bounded the allocation.
        assert_eq!(slab.capacity(), 5);
    }

    #[test]
    fn mutation_in_place() {
        let mut slab = PacketSlab::new();
        let a = slab.insert(pkt(1));
        slab.get_mut(a).t_inject = 99;
        assert_eq!(slab.get(a).t_inject, 99);
    }

    #[test]
    fn packet_stays_hot_struct_sized() {
        // Mirrors the compile-time assert; fails loudly in reports too.
        assert_eq!(std::mem::size_of::<Packet>(), 32);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "double free")]
    fn double_free_is_caught_in_debug() {
        let mut slab = PacketSlab::new();
        let a = slab.insert(pkt(1));
        let _b = slab.insert(pkt(2));
        slab.remove(a);
        slab.remove(a);
    }
}
