use ibfat_topology::NodeId;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A Local Identifier — the InfiniBand subnet-local address of an endport.
/// Unicast LIDs are `0x0001..=0xBFFF`; LID 0 is reserved (and used here as
/// "none" in packed tables).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Lid(pub u16);

impl Lid {
    /// First valid unicast LID.
    pub const MIN_UNICAST: Lid = Lid(1);
    /// Last valid unicast LID per the IBA spec.
    pub const MAX_UNICAST: Lid = Lid(0xBFFF);

    /// The LID as a usize index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Whether this is a valid unicast LID.
    #[inline]
    pub fn is_unicast(self) -> bool {
        self >= Self::MIN_UNICAST && self <= Self::MAX_UNICAST
    }
}

impl fmt::Display for Lid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "LID{}", self.0)
    }
}

/// The subnet's LID assignment: every node owns a window of `2^lmc`
/// consecutive LIDs starting at its base LID, exactly as an InfiniBand
/// subnet manager partitions the LID space under the LMC mechanism.
///
/// Base LIDs are laid out densely in node-id (PID) order starting at LID 1:
/// `base(P) = PID(P) * 2^lmc + 1`. This is the paper's `BaseLID` formula
/// (for `lmc = 0` it degenerates to the SLID scheme's `PID + 1`).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct LidSpace {
    lmc: u32,
    num_nodes: u32,
}

impl LidSpace {
    /// Assign `2^lmc` LIDs to each of `num_nodes` nodes.
    ///
    /// # Panics
    /// Panics if the assignment would exceed the unicast LID range or the
    /// IBA maximum of `lmc <= 7`.
    pub fn new(num_nodes: u32, lmc: u32) -> Self {
        assert!(lmc <= 7, "IBA limits LMC to 3 bits (lmc <= 7), got {lmc}");
        let total = u64::from(num_nodes) << lmc;
        assert!(
            total <= u64::from(Lid::MAX_UNICAST.0),
            "{num_nodes} nodes x 2^{lmc} LIDs exceeds the unicast LID space"
        );
        LidSpace { lmc, num_nodes }
    }

    /// The LID Mask Control value.
    #[inline]
    pub fn lmc(&self) -> u32 {
        self.lmc
    }

    /// LIDs owned by each node, `2^lmc`.
    #[inline]
    pub fn lids_per_node(&self) -> u32 {
        1 << self.lmc
    }

    /// Number of addressed nodes.
    #[inline]
    pub fn num_nodes(&self) -> u32 {
        self.num_nodes
    }

    /// The base LID of a node.
    #[inline]
    pub fn base_lid(&self, node: NodeId) -> Lid {
        debug_assert!(node.0 < self.num_nodes);
        Lid(((node.0 << self.lmc) + 1) as u16)
    }

    /// All LIDs owned by a node, ascending.
    pub fn lids(&self, node: NodeId) -> impl Iterator<Item = Lid> {
        let base = self.base_lid(node).0;
        (base..base + self.lids_per_node() as u16).map(Lid)
    }

    /// A specific LID of a node: `base + offset`.
    ///
    /// # Panics
    /// Panics (debug) if `offset >= 2^lmc`.
    #[inline]
    pub fn lid_with_offset(&self, node: NodeId, offset: u32) -> Lid {
        debug_assert!(
            offset < self.lids_per_node(),
            "offset {offset} out of range"
        );
        Lid(self.base_lid(node).0 + offset as u16)
    }

    /// The highest assigned LID (tables are sized `max_lid + 1`).
    #[inline]
    pub fn max_lid(&self) -> Lid {
        Lid((self.num_nodes << self.lmc) as u16)
    }

    /// Resolve a LID to its owning node and the offset within the node's
    /// window, or `None` for unassigned LIDs.
    #[inline]
    pub fn resolve(&self, lid: Lid) -> Option<(NodeId, u32)> {
        if lid.0 == 0 || lid > self.max_lid() {
            return None;
        }
        let linear = u32::from(lid.0) - 1;
        Some((
            NodeId(linear >> self.lmc),
            linear & (self.lids_per_node() - 1),
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_base_lid_example() {
        // FT(4, 3): LMC = 2, BaseLID(P(010)) = 9 with LIDset {9, 10, 11, 12}
        // (PID(P(010)) = 2).
        let space = LidSpace::new(16, 2);
        assert_eq!(space.base_lid(NodeId(2)), Lid(9));
        let lids: Vec<u16> = space.lids(NodeId(2)).map(|l| l.0).collect();
        assert_eq!(lids, vec![9, 10, 11, 12]);
    }

    #[test]
    fn resolve_inverts_assignment() {
        let space = LidSpace::new(37, 3);
        for node in 0..37 {
            for (off, lid) in space.lids(NodeId(node)).enumerate() {
                assert_eq!(space.resolve(lid), Some((NodeId(node), off as u32)));
            }
        }
        assert_eq!(space.resolve(Lid(0)), None);
        assert_eq!(space.resolve(Lid(space.max_lid().0 + 1)), None);
    }

    #[test]
    fn slid_degenerate_case() {
        let space = LidSpace::new(16, 0);
        assert_eq!(space.base_lid(NodeId(0)), Lid(1));
        assert_eq!(space.base_lid(NodeId(15)), Lid(16));
        assert_eq!(space.lids_per_node(), 1);
        assert_eq!(space.max_lid(), Lid(16));
    }

    #[test]
    fn windows_are_disjoint_and_dense() {
        let space = LidSpace::new(8, 2);
        let mut seen = vec![false; space.max_lid().index() + 1];
        for node in 0..8 {
            for lid in space.lids(NodeId(node)) {
                assert!(!seen[lid.index()], "LID {lid} assigned twice");
                seen[lid.index()] = true;
            }
        }
        assert!(seen[1..].iter().all(|&s| s), "gap in the LID space");
    }

    #[test]
    #[should_panic(expected = "unicast LID space")]
    fn overflow_panics() {
        LidSpace::new(50_000, 7);
    }

    #[test]
    #[should_panic(expected = "LMC to 3 bits")]
    fn lmc_cap_panics() {
        LidSpace::new(4, 8);
    }
}
