//! The table-free data plane's contract.
//!
//! The oracle route backend answers every per-hop forwarding question
//! from the closed-form MLID/SLID route formula instead of a
//! materialized LFT. These tests pin the two halves of that bargain:
//!
//! 1. **Bit identity** — for every fabric × scheme × calendar × engine ×
//!    thread count, an oracle-backed run reports exactly what the
//!    table-backed run reports (only the wall-clock throughput fields
//!    are host noise). The existing routing-crate proptest pins
//!    `RouteOracle::route_hop` against a table walk per (switch, LID);
//!    this one pins the *simulator seam*: the backend match in
//!    `sw_route_done`, including the `None` ↔ missing-entry drop path.
//! 2. **Memory** — an oracle simulator over a table-free `Routing`
//!    constructs and runs without ever allocating a forwarding table,
//!    on a fabric whose flat LFT would be ~21 MB (FT(16,3): 320
//!    switches × 1024 nodes × 64 LIDs).

use ibfat_routing::{Routing, RoutingKind};
use ibfat_sim::{
    run_once, run_once_par, CalendarKind, RouteBackend, RunSpec, SimConfig, SimReport, Simulator,
    TrafficPattern,
};
use ibfat_topology::{Network, TreeParams};
use proptest::prelude::*;

fn normalized(mut r: SimReport) -> SimReport {
    r.events_per_sec = 0.0;
    r.packets_per_sec = 0.0;
    r
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Table and oracle backends report bit-identically, on both engines
    /// at every thread count.
    #[test]
    fn oracle_backend_reports_equal_table_backend(
        (m, n) in prop_oneof![Just((4u32, 2u32)), Just((4, 3)), Just((8, 2))],
        scheme in prop_oneof![Just(RoutingKind::Mlid), Just(RoutingKind::Slid)],
        vls in prop_oneof![Just(1u8), Just(4)],
        seed in any::<u64>(),
        load in prop_oneof![Just(0.2f64), Just(0.6)],
        calendar in prop_oneof![
            Just(CalendarKind::TimingWheel),
            Just(CalendarKind::BinaryHeap),
        ],
    ) {
        let params = TreeParams::new(m, n).expect("valid params");
        let net = Network::mport_ntree(params);
        let routing = Routing::build(&net, scheme);
        let cfg = |route_backend| SimConfig {
            num_vls: vls,
            seed,
            calendar,
            route_backend,
            ..SimConfig::default()
        };
        let pattern = TrafficPattern::Uniform;
        let spec = RunSpec::new(load, 25_000);
        let table = normalized(run_once(
            &net, &routing, cfg(RouteBackend::Table), pattern.clone(), spec,
        ));
        let oracle = normalized(run_once(
            &net, &routing, cfg(RouteBackend::Oracle), pattern.clone(), spec,
        ));
        prop_assert_eq!(&oracle, &table, "sequential backend divergence");
        for threads in [2usize, 4] {
            let par = normalized(run_once_par(
                &net, &routing, cfg(RouteBackend::Oracle), pattern.clone(), spec, threads,
            ));
            prop_assert_eq!(&par, &table, "oracle divergence at {} threads", threads);
        }
    }
}

/// The memory guard: a table-free MLID routing on FT(16,3) carries zero
/// table bytes, and the oracle backend runs the simulator over it — the
/// flat LFT such a fabric would otherwise flatten (320 switches × 65536
/// LID slots ≈ 21 MB resident) is never allocated anywhere.
#[test]
fn oracle_backend_runs_ft16_3_without_forwarding_tables() {
    let params = TreeParams::new(16, 3).expect("valid params");
    let net = Network::mport_ntree(params);
    let routing = Routing::build_table_free(&net, RoutingKind::Mlid);
    assert!(!routing.has_tables());
    assert_eq!(routing.table_bytes(), 0);
    let cfg = SimConfig {
        route_backend: RouteBackend::Oracle,
        seed: 11,
        ..SimConfig::default()
    };
    let report = Simulator::new(&net, &routing, cfg, TrafficPattern::Uniform, 0.2, 3_000, 0).run();
    assert!(report.delivered > 0, "no traffic delivered: {report:?}");
    assert_eq!(report.dropped, 0, "intact fabric must not drop");
}

/// The same fabric's materialized tables, for contrast: the table
/// backend genuinely needs megabytes the oracle run never touches.
#[test]
fn ft16_3_materialized_tables_cost_megabytes() {
    let params = TreeParams::new(16, 3).expect("valid params");
    let net = Network::mport_ntree(params);
    let routing = Routing::build(&net, RoutingKind::Mlid);
    assert!(routing.has_tables());
    assert!(
        routing.table_bytes() > 10 << 20,
        "expected a multi-MB flat LFT, got {} bytes",
        routing.table_bytes()
    );
}

/// A table-backed simulator over a table-free routing is a programmer
/// error and must be rejected loudly at construction, not fail as an
/// out-of-bounds index deep in a handler.
#[test]
#[should_panic(expected = "table-free")]
fn table_backend_rejects_table_free_routing() {
    let params = TreeParams::new(4, 2).expect("valid params");
    let net = Network::mport_ntree(params);
    let routing = Routing::build_table_free(&net, RoutingKind::Mlid);
    let _ = Simulator::new(
        &net,
        &routing,
        SimConfig::default(),
        TrafficPattern::Uniform,
        0.2,
        1_000,
        0,
    );
}

/// The oracle has no closed form for up*/down* routing; asking for it
/// must fail at construction with a message naming the constraint.
#[test]
#[should_panic(expected = "SLID/MLID")]
fn oracle_backend_rejects_updown_routing() {
    let params = TreeParams::new(4, 2).expect("valid params");
    let net = Network::mport_ntree(params);
    let routing = Routing::build(&net, RoutingKind::UpDown);
    let cfg = SimConfig {
        route_backend: RouteBackend::Oracle,
        ..SimConfig::default()
    };
    let _ = Simulator::new(&net, &routing, cfg, TrafficPattern::Uniform, 0.2, 1_000, 0);
}
