/root/repo/target/debug/deps/rand_chacha-62ec980cb1b306cd.d: /root/stubdeps/rand_chacha/src/lib.rs

/root/repo/target/debug/deps/librand_chacha-62ec980cb1b306cd.rmeta: /root/stubdeps/rand_chacha/src/lib.rs

/root/stubdeps/rand_chacha/src/lib.rs:
