//! The determinism contract across calendar implementations.
//!
//! The timing wheel and the binary heap must be observably identical:
//! same pop order for any legal schedule/pop interleaving (including
//! equal-time FIFO ties), and therefore bit-identical simulation reports
//! for equal seeds. These tests are the license to swap the calendar
//! out from under the simulator.

use ibfat_routing::{Routing, RoutingKind};
use ibfat_sim::{
    run_once, CalendarKind, EventQueue, RunSpec, SimConfig, SimReport, TrafficPattern,
};
use ibfat_topology::{Network, TreeParams};
use proptest::prelude::*;

/// A popped `(time, payload)` sequence.
type Popped = Vec<(u64, u32)>;

/// Drive both calendars through the same operation stream and collect
/// each one's pop sequence.
///
/// `ops` encodes, per step, how many events to schedule (with time
/// deltas relative to the virtual "now") and how many to pop. Times
/// never go backwards, mirroring how the simulator uses the queue.
fn pop_sequences(ops: &[(Vec<u64>, usize)]) -> (Popped, Popped) {
    let mut out = Vec::new();
    for kind in [CalendarKind::TimingWheel, CalendarKind::BinaryHeap] {
        let mut q: EventQueue<u32> = EventQueue::with_kind(kind);
        let mut now = 0u64;
        let mut tag = 0u32;
        let mut popped = Vec::new();
        for (deltas, pops) in ops {
            for &d in deltas {
                q.schedule(now + d, tag);
                tag += 1;
            }
            for _ in 0..*pops {
                let Some((t, ev)) = q.pop() else { break };
                assert!(t >= now, "{kind:?} popped into the past");
                now = t;
                popped.push((t, ev));
            }
        }
        while let Some((t, ev)) = q.pop() {
            assert!(t >= now);
            now = t;
            popped.push((t, ev));
        }
        out.push(popped);
    }
    let heap = out.pop().expect("two sequences");
    let wheel = out.pop().expect("two sequences");
    (wheel, heap)
}

#[test]
fn identical_pop_order_on_a_tie_heavy_stream() {
    // Many duplicate timestamps, deltas straddling the wheel horizon.
    let ops = vec![
        (vec![5, 5, 5, 0, 7000, 7000, 1, 5], 3),
        (vec![0, 0, 2, 4096, 4096, 100_000], 4),
        (vec![], 2),
        (vec![3, 3, 3, 3, 9000, 0], 0),
    ];
    let (wheel, heap) = pop_sequences(&ops);
    assert_eq!(wheel, heap);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn identical_pop_order_for_random_streams(
        steps in prop::collection::vec(
            (
                // Deltas biased toward ties (0) and the sim's tiny quanta,
                // with occasional far-future jumps past the wheel horizon.
                prop::collection::vec(
                    prop_oneof![
                        Just(0u64),
                        Just(20u64),
                        Just(100u64),
                        Just(256u64),
                        1u64..5000,
                        4000u64..200_000,
                    ],
                    0..12,
                ),
                0usize..8,
            ),
            1..20,
        ),
    ) {
        let (wheel, heap) = pop_sequences(&steps);
        prop_assert_eq!(wheel, heap);
    }
}

/// Run one operating point on an explicit calendar.
fn report_with(kind: CalendarKind) -> SimReport {
    let net = Network::mport_ntree(TreeParams::new(4, 3).expect("valid params"));
    let routing = Routing::build(&net, RoutingKind::Mlid);
    let cfg = SimConfig {
        num_vls: 2,
        seed: 0xDEC0DE,
        trace_first_packets: 32,
        calendar: kind,
        ..SimConfig::default()
    };
    let mut report = run_once(
        &net,
        &routing,
        cfg,
        TrafficPattern::Uniform,
        RunSpec::new(0.4, 60_000),
    );
    // The only host-dependent field; everything else must match exactly.
    report.events_per_sec = 0.0;
    report.packets_per_sec = 0.0;
    report
}

#[test]
fn ft43_uniform_reports_are_bit_identical_across_calendars() {
    let wheel = report_with(CalendarKind::TimingWheel);
    let heap = report_with(CalendarKind::BinaryHeap);
    assert!(wheel.delivered > 0, "the run must carry traffic");
    assert_eq!(wheel, heap);
}
