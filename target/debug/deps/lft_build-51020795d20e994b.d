/root/repo/target/debug/deps/lft_build-51020795d20e994b.d: crates/bench/benches/lft_build.rs Cargo.toml

/root/repo/target/debug/deps/liblft_build-51020795d20e994b.rmeta: crates/bench/benches/lft_build.rs Cargo.toml

crates/bench/benches/lft_build.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
