/root/repo/target/debug/deps/figures-aac0a185325fc549.d: crates/bench/src/bin/figures.rs

/root/repo/target/debug/deps/libfigures-aac0a185325fc549.rmeta: crates/bench/src/bin/figures.rs

crates/bench/src/bin/figures.rs:
