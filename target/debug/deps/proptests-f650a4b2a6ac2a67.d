/root/repo/target/debug/deps/proptests-f650a4b2a6ac2a67.d: crates/sm/tests/proptests.rs

/root/repo/target/debug/deps/libproptests-f650a4b2a6ac2a67.rmeta: crates/sm/tests/proptests.rs

crates/sm/tests/proptests.rs:
