use crate::engine::CalendarKind;
use crate::VlArbitration;
use serde::{Deserialize, Serialize};

/// Injection process shaping the per-node packet generation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum InjectionProcess {
    /// Constant inter-arrival time (the paper: "the packet generation rate
    /// is constant and the same for all processing nodes"). Each node gets
    /// a random initial phase so the fleet does not inject in lockstep.
    Deterministic,
    /// Poisson arrivals with the same mean rate (exponential
    /// inter-arrivals) — an extension for sensitivity studies.
    Poisson,
}

/// How a source picks which of the destination's LIDs to address —
/// the knob the paper's path-selection scheme occupies. Single-LID
/// schemes have a one-LID window, so every policy degenerates to the
/// base LID there.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PathSelection {
    /// The paper's scheme: `BaseLID(dst) + rank(src)` — deterministic per
    /// pair, upward links private per source.
    Paper,
    /// Uniform random offset per packet. Spreads load statistically but
    /// forfeits the exclusivity property and reorders packets of a flow
    /// (a real cost in InfiniBand, where transport expects in-order
    /// delivery within a path).
    RandomPerPacket,
    /// Per-source round-robin over the destination's window — also
    /// reordering, but with deterministic balance.
    RoundRobinPerSource,
}

/// How packets are assigned to virtual lanes at generation (the SL→VL
/// choice, with an identity SL2VL map along the path).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum VlAssignment {
    /// Uniform random per packet (the default; matches an unmanaged
    /// multi-VL configuration).
    Random,
    /// By destination (`dst mod num_vls`): traffic to a hot destination
    /// is confined to one lane, isolating its head-of-line blocking from
    /// the other lanes — the classic VL-based congestion containment.
    DestinationHash,
    /// By source (`src mod num_vls`).
    SourceHash,
}

/// How the parallel engine assigns switches (and, transitively, the
/// nodes behind each leaf switch) to worker shards. Purely a
/// performance knob: the report is bit-identical across partitioners
/// for a given seed (the parallel equivalence tests assert exactly
/// that); only the volume of cross-shard synchronization traffic
/// changes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum PartitionKind {
    /// Fat-tree-aware: each leaf switch stays with its nodes and its
    /// dominant up-tree ancestors, so only genuinely shared
    /// top-of-tree cables are cut
    /// (see `ibfat_topology::fat_tree_switch_partition`).
    #[default]
    FatTree,
    /// Id-order block split — the original partitioner, kept as the
    /// fallback and as the baseline the edge-cut metric is judged
    /// against.
    Block,
}

/// How the parallel engine sizes its synchronization windows. Also a
/// pure performance knob: window boundaries never affect cohort
/// composition or dispatch order, so reports are bit-identical across
/// policies for a given seed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum WindowPolicy {
    /// One lookahead per window, one barrier per lookahead — the
    /// original fixed cadence.
    Fixed,
    /// Jump each window's end to the global next-event time (rounded up
    /// to a whole multiple of the lookahead), so quiet stretches cost
    /// one barrier instead of one per lookahead.
    #[default]
    Adaptive,
}

/// How the data plane answers "which output port does this DLID leave
/// on" at each switch hop. Purely a representation choice: both
/// backends return the same port for every `(switch, dlid)` (the
/// backend equivalence tests assert bit-identical reports), so this is
/// a memory/speed knob, not a semantic one.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum RouteBackend {
    /// Materialized flat forwarding tables (`num_switches × lid_space`
    /// bytes), exactly as a subnet manager programs real switches. The
    /// default; works for every scheme, including fault-repaired tables.
    #[default]
    Table,
    /// Closed-form per-hop lookup through `ibfat_routing::RouteOracle`
    /// (the paper's Eq. 1/Eq. 2) — no forwarding tables in memory at
    /// all. Only valid for pristine SLID/MLID routings on intact
    /// fabrics; construction rejects anything the oracle cannot model.
    Oracle,
}

impl RouteBackend {
    /// Short lowercase name (stable; used in CLI flags).
    pub fn as_str(&self) -> &'static str {
        match self {
            RouteBackend::Table => "table",
            RouteBackend::Oracle => "oracle",
        }
    }
}

impl std::str::FromStr for RouteBackend {
    type Err = String;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "table" => Ok(RouteBackend::Table),
            "oracle" => Ok(RouteBackend::Oracle),
            other => Err(format!("unknown route backend '{other}'")),
        }
    }
}

impl std::fmt::Display for RouteBackend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Which generated flows the flight recorder samples (the recorder
/// itself is armed by `SimConfig::trace_first_packets > 0`, which also
/// bounds the trace buffer). Sampling is decided per packet from the
/// `(src, dst)` pair alone — deterministically, with no shared counter —
/// so the sampled set is identical at any thread count by construction.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum TraceSampling {
    /// Record the first N generated packets, whatever their flow — the
    /// original recorder behavior.
    #[default]
    FirstN,
    /// Record packets of roughly one in N flows: a packet is sampled
    /// when `hash(src, dst, seed) % n == 0`. All packets of a sampled
    /// flow are eligible (until the buffer fills), so whole flow
    /// lifecycles stay observable at scale.
    OneInN(u32),
    /// Record only packets of the listed `(src, dst)` flows.
    Pairs(Vec<(u32, u32)>),
}

impl TraceSampling {
    /// Whether a packet of flow `(src, dst)` is eligible for a trace
    /// slot under this policy. Pure function of the flow and the seed:
    /// the parallel engine's injection pre-pass replays the same calls
    /// in the same order, so slot assignment is thread-invariant.
    #[inline]
    pub fn samples(&self, src: u32, dst: u32, seed: u64) -> bool {
        match self {
            TraceSampling::FirstN => true,
            TraceSampling::OneInN(n) => {
                let n = (*n).max(1);
                flow_hash(src, dst, seed).is_multiple_of(u64::from(n))
            }
            TraceSampling::Pairs(pairs) => pairs.iter().any(|&(s, d)| s == src && d == dst),
        }
    }
}

/// SplitMix64 finalizer over the flow pair, mixed with the run seed so
/// different seeds sample different 1-in-N flow subsets.
#[inline]
fn flow_hash(src: u32, dst: u32, seed: u64) -> u64 {
    let mut z = (u64::from(src) << 32 | u64::from(dst)) ^ seed.rotate_left(17);
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Simulator configuration: the IBA subnet model constants of Section 5.
///
/// Defaults reproduce the paper's setup: 256-byte packets on a 4X link
/// (8 Gbit/s data rate ⇒ 1 ns per byte), 20 ns wire flying time, 100 ns
/// switch routing time (forwarding-table lookup + arbitration + startup),
/// one-packet input and output buffers per virtual lane, credit-based
/// link-level flow control, virtual cut-through switching.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimConfig {
    /// Packet size in bytes (everything is data; headers are not modeled
    /// separately, matching the paper's accounting).
    pub packet_bytes: u32,
    /// Serialization time of one byte on a link, in ns (1 ns = 4X link).
    pub byte_time_ns: u64,
    /// Wire propagation ("flying") time between any two devices, in ns.
    pub fly_time_ns: u64,
    /// Time to route a packet from an input port to an output port of the
    /// crossbar (table lookup, arbitration, message startup), in ns.
    pub routing_time_ns: u64,
    /// Number of data virtual lanes in use (the paper sweeps 1, 2, 4; IBA
    /// allows up to 15 data VLs).
    pub num_vls: u8,
    /// Input/output buffer capacity per (port, VL), in packets. The paper
    /// fixes this to 1 ("the buffer can only store a packet at a time");
    /// other values support the ablation benches.
    pub buffer_packets: u8,
    /// Injection process.
    pub injection: InjectionProcess,
    /// Path-selection policy over the destination's LID window.
    pub path_selection: PathSelection,
    /// VL assignment policy at the source.
    pub vl_assignment: VlAssignment,
    /// Egress VL arbitration (switch output ports and HCA injection).
    pub vl_arbitration: VlArbitration,
    /// RNG seed — simulations are bit-for-bit reproducible per seed.
    pub seed: u64,
    /// Collect per-link utilization into the report (off by default to
    /// keep sweep outputs lean).
    pub collect_link_stats: bool,
    /// Record full event timelines for up to N generated packets
    /// (the flight recorder; 0 disables). `trace_sampling` chooses
    /// *which* packets compete for the N slots.
    pub trace_first_packets: u32,
    /// Flow-sampling policy for the flight recorder (ignored while
    /// `trace_first_packets` is 0). Recording never perturbs the
    /// simulation: the report of a recorded run is bit-identical to an
    /// unrecorded one.
    #[serde(default)]
    pub trace_sampling: TraceSampling,
    /// Adaptive upward routing: when a packet must climb, pick the least
    /// occupied up-port instead of the forwarding table's designated one.
    /// This models what IBA's deterministic tables *give up*: it is not
    /// achievable with LFT lookup (the paper's setting) and it reorders
    /// flows. Valid on intact fat trees only.
    pub adaptive_up: bool,
    /// Which event-calendar implementation backs the run. Purely a
    /// performance knob: both calendars obey the same `(time, insertion
    /// order)` contract, so reports are bit-identical across them for a
    /// given seed (the equivalence tests assert exactly that).
    #[serde(default)]
    pub calendar: CalendarKind,
    /// Shard partitioner for the parallel engine (ignored by the
    /// sequential one). Bit-identical reports across choices.
    #[serde(default)]
    pub partition: PartitionKind,
    /// Window-sizing policy for the parallel engine (ignored by the
    /// sequential one). Bit-identical reports across choices.
    #[serde(default)]
    pub window_policy: WindowPolicy,
    /// Data-plane route lookup backend. Bit-identical reports across
    /// backends wherever the oracle applies.
    #[serde(default)]
    pub route_backend: RouteBackend,
    /// Scheduled mid-run fabric failures (empty = subsystem disabled).
    /// Requires the table backend and a non-adaptive MLID/SLID routing;
    /// reports stay bit-identical at any thread or process count.
    #[serde(default)]
    pub faults: crate::FaultPlan,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            packet_bytes: 256,
            byte_time_ns: 1,
            fly_time_ns: 20,
            routing_time_ns: 100,
            num_vls: 1,
            buffer_packets: 1,
            injection: InjectionProcess::Deterministic,
            path_selection: PathSelection::Paper,
            vl_assignment: VlAssignment::Random,
            vl_arbitration: VlArbitration::RoundRobin,
            seed: 0xF47_7EE,
            collect_link_stats: false,
            trace_first_packets: 0,
            trace_sampling: TraceSampling::default(),
            adaptive_up: false,
            calendar: CalendarKind::default(),
            partition: PartitionKind::default(),
            window_policy: WindowPolicy::default(),
            route_backend: RouteBackend::default(),
            faults: crate::FaultPlan::default(),
        }
    }
}

impl SimConfig {
    /// The paper's configuration with a given number of virtual lanes.
    pub fn paper(num_vls: u8) -> Self {
        SimConfig {
            num_vls,
            ..SimConfig::default()
        }
    }

    /// Serialization time of a whole packet on a link, in ns.
    #[inline]
    pub fn packet_time_ns(&self) -> u64 {
        u64::from(self.packet_bytes) * self.byte_time_ns
    }

    /// Peak per-node bandwidth in bytes per ns (the link rate).
    #[inline]
    pub fn link_bytes_per_ns(&self) -> f64 {
        1.0 / self.byte_time_ns as f64
    }

    /// Static lookahead for conservatively synchronized parallel
    /// execution, in ns: the minimum latency of any cross-device
    /// interaction. Every event one device schedules on another is at
    /// least one wire flight in the future (header arrivals and credit
    /// returns both cross exactly one link), so a parallel partition may
    /// safely advance `lookahead_ns()` past its slowest neighbor. Zero
    /// (a zero-fly configuration) disables parallel execution.
    #[inline]
    pub fn lookahead_ns(&self) -> u64 {
        self.fly_time_ns
    }

    /// Timing-wheel sizing hint, in ns: the largest constant event delta
    /// the model produces (wire flight + routing stage + one packet
    /// serialization, plus one so the bound is inclusive). The calendar
    /// rounds this up to a power of two; at the paper's constants
    /// (20 + 100 + 256 + 1 = 377) that is a 512-slot wheel instead of
    /// the 4096-slot default — small enough to stay cache-resident on
    /// small fabrics, where the fixed-size wheel measurably lost to the
    /// heap oracle. Wheel size never affects pop order.
    #[inline]
    pub fn wheel_horizon_hint(&self) -> u64 {
        self.fly_time_ns + self.routing_time_ns + self.packet_time_ns() + 1
    }

    /// Mean packet inter-arrival time (ns) for a normalized offered load
    /// in `(0, 1]`, where 1.0 saturates the injection link.
    ///
    /// # Panics
    /// Panics if `load` is not positive and finite.
    pub fn interarrival_ns(&self, load: f64) -> f64 {
        assert!(
            load > 0.0 && load.is_finite(),
            "offered load must be positive"
        );
        self.packet_time_ns() as f64 / load
    }

    /// Validate the configuration.
    pub fn validate(&self) -> Result<(), String> {
        if self.packet_bytes == 0 {
            return Err("packet_bytes must be positive".into());
        }
        if self.byte_time_ns == 0 {
            return Err("byte_time_ns must be positive".into());
        }
        if self.num_vls == 0 || self.num_vls > 15 {
            return Err(format!(
                "num_vls must be in 1..=15 (IBA data VLs), got {}",
                self.num_vls
            ));
        }
        if self.buffer_packets == 0 {
            return Err("buffer_packets must be positive".into());
        }
        self.vl_arbitration.validate(self.num_vls)?;
        if !self.faults.is_empty() {
            if self.route_backend != RouteBackend::Table {
                return Err("fault plans require the table route backend".into());
            }
            if self.adaptive_up {
                return Err("fault plans cannot be combined with adaptive_up".into());
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_constants() {
        let c = SimConfig::paper(2);
        assert_eq!(c.packet_time_ns(), 256);
        assert_eq!(c.fly_time_ns, 20);
        assert_eq!(c.routing_time_ns, 100);
        assert_eq!(c.num_vls, 2);
        assert_eq!(c.buffer_packets, 1);
        c.validate().unwrap();
    }

    #[test]
    fn interarrival_scales_inversely_with_load() {
        let c = SimConfig::default();
        assert_eq!(c.interarrival_ns(1.0), 256.0);
        assert_eq!(c.interarrival_ns(0.5), 512.0);
        assert_eq!(c.interarrival_ns(0.25), 1024.0);
    }

    #[test]
    fn validation_catches_bad_configs() {
        let mut c = SimConfig {
            num_vls: 0,
            ..SimConfig::default()
        };
        assert!(c.validate().is_err());
        c.num_vls = 16;
        assert!(c.validate().is_err());
        c = SimConfig {
            buffer_packets: 0,
            ..SimConfig::default()
        };
        assert!(c.validate().is_err());
        c = SimConfig {
            packet_bytes: 0,
            ..SimConfig::default()
        };
        assert!(c.validate().is_err());
    }

    #[test]
    #[should_panic(expected = "offered load")]
    fn zero_load_panics() {
        SimConfig::default().interarrival_ns(0.0);
    }

    #[test]
    fn trace_sampling_is_a_pure_flow_function() {
        // Deterministic per (flow, seed), seed-sensitive overall.
        let one_in_4 = TraceSampling::OneInN(4);
        for src in 0..8 {
            for dst in 0..8 {
                assert_eq!(one_in_4.samples(src, dst, 7), one_in_4.samples(src, dst, 7));
            }
        }
        // Roughly one in four flows sampled over a 64x64 flow matrix.
        let hits = (0..64u32)
            .flat_map(|s| (0..64u32).map(move |d| (s, d)))
            .filter(|&(s, d)| one_in_4.samples(s, d, 1))
            .count();
        assert!((64 * 64 / 8..64 * 64 / 2).contains(&hits), "hits = {hits}");
        let pairs = TraceSampling::Pairs(vec![(1, 2)]);
        assert!(pairs.samples(1, 2, 0));
        assert!(!pairs.samples(2, 1, 0));
        assert!(TraceSampling::FirstN.samples(9, 9, 0));
        // OneInN(0) clamps to 1 (sample everything), not a div-by-zero.
        assert!(TraceSampling::OneInN(0).samples(3, 4, 5));
    }
}
