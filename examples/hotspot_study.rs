//! The paper's motivating scenario: many nodes hammering one destination.
//!
//! With a single LID per node (SLID), every switch forwards all packets
//! bound for the hot node through the same ports, so the traffic collides
//! long before the destination (the paper's Figure 9a). MLID gives the hot
//! node one LID per path; sources pick different LIDs and the traffic fans
//! out over every least common ancestor (Figure 9b).
//!
//! ```text
//! cargo run --release --example hotspot_study
//! ```

use ib_fabric::prelude::*;

fn main() {
    let (m, n) = (8, 2);
    println!("50%-centric traffic on an {m}-port {n}-tree (paper's hot-spot pattern)\n");
    println!(
        "{:<6} {:>4} {:>10} {:>20} {:>14}",
        "scheme", "VLs", "offered", "accepted(B/ns/node)", "avg-lat(ns)"
    );

    for kind in [RoutingKind::Slid, RoutingKind::Mlid] {
        let fabric = Fabric::builder(m, n).routing(kind).build().expect("valid");
        for vls in [1u8, 2, 4] {
            for load in [0.2, 0.6, 1.0] {
                let report = fabric
                    .experiment()
                    .virtual_lanes(vls)
                    .traffic(TrafficPattern::paper_centric())
                    .offered_load(load)
                    .duration_ns(300_000)
                    .run();
                println!(
                    "{:<6} {:>4} {:>10.2} {:>20.4} {:>14.0}",
                    kind.as_str().to_uppercase(),
                    vls,
                    load,
                    report.accepted_bytes_per_ns_per_node,
                    report.avg_latency_ns(),
                );
            }
        }
        println!();
    }

    // Show *why*: the upward links used by the hot flows.
    let slid = Fabric::builder(m, n)
        .routing(RoutingKind::Slid)
        .build()
        .expect("valid");
    let mlid = Fabric::builder(m, n)
        .routing(RoutingKind::Mlid)
        .build()
        .expect("valid");
    let hot = NodeId(0);
    for (name, fabric) in [("SLID", &slid), ("MLID", &mlid)] {
        let mut up_links = std::collections::HashSet::new();
        for src in 1..fabric.num_nodes() {
            let route = fabric.route(NodeId(src), hot).expect("routable");
            for link in route.upward_links(fabric.params()) {
                up_links.insert(link);
            }
        }
        println!(
            "{name}: all-to-one traffic toward {hot} crosses {} distinct upward links",
            up_links.len()
        );
    }

    // And quantify the Figure 9 contrast with measured link utilization:
    // the spread of traffic over the switch-to-switch links.
    println!("\nmeasured inter-switch link utilization at offered load 0.3 (1 VL):");
    for (name, fabric) in [("SLID", &slid), ("MLID", &mlid)] {
        let report = fabric
            .experiment()
            .traffic(TrafficPattern::paper_centric())
            .offered_load(0.3)
            .duration_ns(300_000)
            .collect_link_stats(true)
            .run();
        let links = report.link_utilization.expect("collected");
        let mut switch_links: Vec<f64> = links
            .iter()
            .filter(|l| l.from.starts_with('S'))
            .map(|l| l.utilization)
            .collect();
        switch_links.sort_by(|a, b| b.partial_cmp(a).expect("finite"));
        let busy = switch_links.iter().filter(|&&u| u > 0.05).count();
        let gini_top =
            switch_links.iter().take(5).sum::<f64>() / switch_links.iter().sum::<f64>().max(1e-12);
        println!(
            "  {name}: {busy}/{} links above 5% utilization; top-5 links carry {:.0}% of switch traffic",
            switch_links.len(),
            100.0 * gini_top
        );
    }
}
