/root/repo/target/debug/deps/faults_and_sm-5c5fb934e0f4f226.d: tests/faults_and_sm.rs Cargo.toml

/root/repo/target/debug/deps/libfaults_and_sm-5c5fb934e0f4f226.rmeta: tests/faults_and_sm.rs Cargo.toml

tests/faults_and_sm.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
