/root/repo/target/debug/examples/scaling_study-dfd064c26fc5b759.d: examples/scaling_study.rs

/root/repo/target/debug/examples/scaling_study-dfd064c26fc5b759: examples/scaling_study.rs

examples/scaling_study.rs:
