/root/repo/target/debug/deps/lft_build-c5466de52ee1b9ed.d: crates/bench/benches/lft_build.rs

/root/repo/target/debug/deps/liblft_build-c5466de52ee1b9ed.rmeta: crates/bench/benches/lft_build.rs

crates/bench/benches/lft_build.rs:
