/root/repo/target/debug/deps/bench-af5149a3c4fe0f48.d: crates/bench/src/lib.rs crates/bench/src/trajectory.rs

/root/repo/target/debug/deps/bench-af5149a3c4fe0f48: crates/bench/src/lib.rs crates/bench/src/trajectory.rs

crates/bench/src/lib.rs:
crates/bench/src/trajectory.rs:
