/root/repo/target/release/deps/bench-7a0b2fad158c1b19.d: crates/bench/src/bin/bench.rs

/root/repo/target/release/deps/bench-7a0b2fad158c1b19: crates/bench/src/bin/bench.rs

crates/bench/src/bin/bench.rs:
