//! Property-based tests for the routing schemes.

use ibfat_routing::{Lid, MlidScheme, Routing, RoutingKind, RoutingScheme, SlidScheme};
use ibfat_topology::{analysis, gcp_len, Network, NodeId, NodeLabel, TreeParams};
use proptest::prelude::*;

fn params() -> impl Strategy<Value = TreeParams> {
    prop_oneof![
        Just(TreeParams::new(4, 2).unwrap()),
        Just(TreeParams::new(4, 3).unwrap()),
        Just(TreeParams::new(8, 2).unwrap()),
        Just(TreeParams::new(8, 3).unwrap()),
        Just(TreeParams::new(16, 2).unwrap()),
        Just(TreeParams::new(2, 3).unwrap()),
    ]
}

fn routed(kind: RoutingKind) -> impl Strategy<Value = (Network, Routing, u32, u32)> {
    params().prop_flat_map(move |p| {
        let nodes = p.num_nodes();
        (Just(p), 0..nodes, 0..nodes).prop_map(move |(p, a, b)| {
            let net = Network::mport_ntree(p);
            let routing = Routing::build(&net, kind);
            (net, routing, a, b)
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn mlid_every_lid_delivers_from_any_source((net, routing, src, _b) in routed(RoutingKind::Mlid)) {
        let space = routing.lid_space();
        for lid in 1..=space.max_lid().0 {
            let route = routing.trace(&net, NodeId(src), Lid(lid)).unwrap();
            let (owner, _) = space.resolve(Lid(lid)).unwrap();
            prop_assert_eq!(route.dst, owner);
        }
    }

    #[test]
    fn mlid_selected_routes_are_minimal((net, routing, a, b) in routed(RoutingKind::Mlid)) {
        prop_assume!(a != b);
        let dlid = routing.select_dlid(NodeId(a), NodeId(b));
        let route = routing.trace(&net, NodeId(a), dlid).unwrap();
        prop_assert_eq!(
            route.num_links() as u32,
            analysis::min_hops(net.params(), NodeId(a), NodeId(b))
        );
    }

    #[test]
    fn slid_selected_routes_are_minimal((net, routing, a, b) in routed(RoutingKind::Slid)) {
        prop_assume!(a != b);
        let dlid = routing.select_dlid(NodeId(a), NodeId(b));
        let route = routing.trace(&net, NodeId(a), dlid).unwrap();
        prop_assert_eq!(
            route.num_links() as u32,
            analysis::min_hops(net.params(), NodeId(a), NodeId(b))
        );
    }

    #[test]
    fn mlid_dlid_offset_equals_subgroup_rank((net, routing, a, b) in routed(RoutingKind::Mlid)) {
        prop_assume!(a != b);
        let params = net.params();
        let space = routing.lid_space();
        let dlid = routing.select_dlid(NodeId(a), NodeId(b));
        let (owner, offset) = space.resolve(dlid).unwrap();
        prop_assert_eq!(owner, NodeId(b));
        // Offset must be the source's rank one digit below the gcp.
        let la = NodeLabel::from_id(params, NodeId(a));
        let lb = NodeLabel::from_id(params, NodeId(b));
        let alpha = gcp_len(&la, &lb);
        let group = ibfat_topology::Gcpg::of(params, &la, alpha + 1);
        prop_assert_eq!(offset, ibfat_topology::rank_in(params, &group, &la));
        // And it must fit the LMC window with room for the whole subgroup.
        prop_assert!(offset < space.lids_per_node());
    }

    #[test]
    fn subgroup_senders_get_distinct_lcas((net, routing, _a, b) in routed(RoutingKind::Mlid)) {
        // All sources in one sibling subgroup of the destination reach the
        // destination through pairwise distinct first-descent switches.
        let params = net.params();
        prop_assume!(params.n() >= 2);
        let dst = NodeId(b);
        let ld = NodeLabel::from_id(params, dst);
        // The sibling subgroup: flip the destination's first digit.
        let flip = if ld.digit(0) == 0 { 1 } else { 0 };
        let group = ibfat_topology::Gcpg::new(params, &[flip]);
        let mut lca_entries = std::collections::HashSet::new();
        let mut count = 0usize;
        for member in group.members(params) {
            let src = member.id(params);
            if src == dst { continue; }
            let dlid = routing.select_dlid(src, dst);
            let route = routing.trace(&net, src, dlid).unwrap();
            // The "peak" switch of the route: the one reached at the gcp
            // level — for these pairs, alpha = 0, so it is the root hop,
            // the unique hop whose switch is at level 0.
            let peak: Vec<_> = route
                .hops
                .iter()
                .filter(|h| {
                    ibfat_topology::SwitchLabel::from_id(params, h.switch).level().0 == 0
                })
                .collect();
            prop_assert_eq!(peak.len(), 1);
            lca_entries.insert(peak[0].switch);
            count += 1;
        }
        // Distinct LCAs up to the number of roots.
        let roots = params.num_lcas(0) as usize;
        prop_assert_eq!(lca_entries.len(), count.min(roots));
    }

    #[test]
    fn mlid_and_slid_agree_on_descent((net, _r, a, b) in routed(RoutingKind::Mlid)) {
        // Equation (1) is shared: from any common ancestor the down path is
        // unique, so the last hop of any route to b enters b's leaf switch.
        prop_assume!(a != b);
        for kind in [RoutingKind::Mlid, RoutingKind::Slid] {
            let routing = Routing::build(&net, kind);
            let dlid = routing.select_dlid(NodeId(a), NodeId(b));
            let route = routing.trace(&net, NodeId(a), dlid).unwrap();
            let last = route.hops.last().unwrap();
            let label = ibfat_topology::SwitchLabel::from_id(net.params(), last.switch);
            prop_assert_eq!(u32::from(label.level().0), net.params().n() - 1);
        }
    }
}

#[test]
fn mlid_upward_exclusivity_on_all_eval_sizes() {
    for (m, n) in [(4, 2), (4, 3), (8, 2), (8, 3), (16, 2)] {
        let params = TreeParams::new(m, n).unwrap();
        let net = Network::mport_ntree(params);
        let routing = Routing::build(&net, RoutingKind::Mlid);
        let conflicts = ibfat_routing::verify_upward_link_exclusivity(&net, &routing).unwrap();
        assert_eq!(conflicts, 0, "IBFT({m},{n})");
    }
}

#[test]
fn scheme_names_are_stable() {
    assert_eq!(MlidScheme.name(), "MLID");
    assert_eq!(SlidScheme.name(), "SLID");
    assert_eq!(RoutingKind::Mlid.as_str(), "mlid");
    assert_eq!("MLID".parse::<RoutingKind>().unwrap(), RoutingKind::Mlid);
    assert!("bogus".parse::<RoutingKind>().is_err());
}
