/root/repo/target/debug/deps/proptest-3f93b9ae79633161.d: /root/stubdeps/proptest/src/lib.rs

/root/repo/target/debug/deps/libproptest-3f93b9ae79633161.rlib: /root/stubdeps/proptest/src/lib.rs

/root/repo/target/debug/deps/libproptest-3f93b9ae79633161.rmeta: /root/stubdeps/proptest/src/lib.rs

/root/stubdeps/proptest/src/lib.rs:
