//! Offline stub of `proptest`.
//!
//! Implements the subset of the proptest API this workspace uses:
//! `proptest!` with `#![proptest_config(..)]`, strategies (`Just`,
//! integer ranges, tuples, `prop_oneof!`, `prop_map`, `prop_flat_map`,
//! `any`, `collection::vec`), and the `prop_assert*` / `prop_assume!`
//! macros. Cases are sampled from a SplitMix64 stream seeded by the test
//! name, so failures reproduce across runs. There is **no shrinking**:
//! a failing case panics with the case index so it can be replayed.

pub mod test_runner {
    /// Deterministic per-test RNG (SplitMix64).
    #[derive(Clone, Debug)]
    pub struct TestRng(u64);

    impl TestRng {
        pub fn for_case(test_name: &str, case: u32) -> Self {
            // FNV-1a over the test path, mixed with the case index.
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in test_name.bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x1000_0000_01b3);
            }
            TestRng(h ^ (u64::from(case).wrapping_mul(0x9e37_79b9_7f4a_7c15)))
        }

        pub fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        /// Uniform draw in `[0, bound)` via widening multiply.
        pub fn below(&mut self, bound: u64) -> u64 {
            debug_assert!(bound > 0);
            ((u128::from(self.next_u64()) * u128::from(bound)) >> 64) as u64
        }
    }

    /// Subset of proptest's run configuration.
    #[derive(Clone, Debug)]
    pub struct Config {
        pub cases: u32,
        pub max_shrink_iters: u32,
    }

    impl Config {
        pub fn with_cases(cases: u32) -> Self {
            Config {
                cases,
                ..Config::default()
            }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Config {
                cases: 256,
                max_shrink_iters: 0,
            }
        }
    }

    /// Body outcome: `Reject` skips the case (from `prop_assume!`).
    #[derive(Debug)]
    pub enum TestCaseError {
        Reject,
    }
}

pub mod strategy {
    use super::test_runner::TestRng;

    /// A source of random values. Object-safe: combinators carry
    /// `Self: Sized`, so `Box<dyn Strategy<Value = T>>` works.
    pub trait Strategy {
        type Value;

        fn sample(&self, rng: &mut TestRng) -> Self::Value;

        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            S: Strategy,
            F: Fn(Self::Value) -> S,
        {
            FlatMap { inner: self, f }
        }

        fn prop_filter<F>(self, whence: &'static str, f: F) -> Filter<Self, F>
        where
            Self: Sized,
            F: Fn(&Self::Value) -> bool,
        {
            Filter {
                inner: self,
                f,
                whence,
            }
        }

        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            Box::new(self)
        }
    }

    pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

    impl<S: Strategy + ?Sized> Strategy for Box<S> {
        type Value = S::Value;
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            (**self).sample(rng)
        }
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            (**self).sample(rng)
        }
    }

    /// Always yields a clone of the given value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn sample(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.sample(rng))
        }
    }

    pub struct FlatMap<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
        type Value = S2::Value;
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            (self.f)(self.inner.sample(rng)).sample(rng)
        }
    }

    pub struct Filter<S, F> {
        inner: S,
        f: F,
        whence: &'static str,
    }

    impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
        type Value = S::Value;
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            for _ in 0..1000 {
                let v = self.inner.sample(rng);
                if (self.f)(&v) {
                    return v;
                }
            }
            panic!("prop_filter {:?} rejected 1000 samples in a row", self.whence)
        }
    }

    /// Choice between two strategies of the same value type; `prop_oneof!`
    /// nests these right-associated, weighting so every arm is equally
    /// likely. A concrete type (not `Box<dyn>`) so that integer-literal
    /// inference unifies across arms, as with proptest's `TupleUnion`.
    pub struct Union<S1, S2> {
        first: S1,
        rest: S2,
        /// How many original arms `rest` represents.
        rest_arms: u64,
    }

    impl<S1, S2> Union<S1, S2> {
        pub fn new(first: S1, rest: S2, rest_arms: u64) -> Self {
            Union {
                first,
                rest,
                rest_arms,
            }
        }
    }

    impl<S1: Strategy, S2: Strategy<Value = S1::Value>> Strategy for Union<S1, S2> {
        type Value = S1::Value;
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            if rng.below(1 + self.rest_arms) == 0 {
                self.first.sample(rng)
            } else {
                self.rest.sample(rng)
            }
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as u64).wrapping_sub(self.start as u64);
                    self.start.wrapping_add(rng.below(span) as $t)
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                    if span == 0 {
                        // Full u64 domain.
                        return rng.next_u64() as $t;
                    }
                    lo.wrapping_add(rng.below(span) as $t)
                }
            }
        )*};
    }
    int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! float_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let unit = (rng.next_u64() >> 11) as $t / (1u64 << 53) as $t;
                    let v = self.start + unit * (self.end - self.start);
                    if v < self.end { v } else { self.start }
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let unit = (rng.next_u64() >> 11) as $t / (1u64 << 53) as $t;
                    lo + unit * (hi - lo)
                }
            }
        )*};
    }
    float_range_strategy!(f32, f64);

    macro_rules! tuple_strategy {
        ($(($($s:ident / $idx:tt),+)),+ $(,)?) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.sample(rng),)+)
                }
            }
        )+};
    }
    tuple_strategy!(
        (A / 0),
        (A / 0, B / 1),
        (A / 0, B / 1, C / 2),
        (A / 0, B / 1, C / 2, D / 3),
        (A / 0, B / 1, C / 2, D / 3, E / 4),
        (A / 0, B / 1, C / 2, D / 3, E / 4, F / 5),
        (A / 0, B / 1, C / 2, D / 3, E / 4, F / 5, G / 6),
        (A / 0, B / 1, C / 2, D / 3, E / 4, F / 5, G / 6, H / 7),
        (A / 0, B / 1, C / 2, D / 3, E / 4, F / 5, G / 6, H / 7, I / 8),
        (A / 0, B / 1, C / 2, D / 3, E / 4, F / 5, G / 6, H / 7, I / 8, J / 9),
        (
            A / 0, B / 1, C / 2, D / 3, E / 4, F / 5, G / 6, H / 7, I / 8,
            J / 9, K / 10, L / 11
        ),
    );
}

pub mod arbitrary {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;
    use std::marker::PhantomData;

    pub trait Arbitrary: Sized {
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! arb_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    arb_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    pub struct Any<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

pub mod collection {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// Accepted size specifications for [`vec`].
    #[derive(Clone, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi_inclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                lo: n,
                hi_inclusive: n,
            }
        }
    }
    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi_inclusive: r.end - 1,
            }
        }
    }
    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi_inclusive: *r.end(),
            }
        }
    }

    pub struct VecStrategy<S> {
        elem: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi_inclusive - self.size.lo + 1) as u64;
            let len = self.size.lo + rng.below(span) as usize;
            (0..len).map(|_| self.elem.sample(rng)).collect()
        }
    }

    pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            elem,
            size: size.into(),
        }
    }
}

pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest};

    /// Mirror of proptest's `prelude::prop` module alias.
    pub mod prop {
        pub use crate::collection;
    }
}

// ---------------------------------------------------------------------------
// Macros
// ---------------------------------------------------------------------------

#[macro_export]
macro_rules! prop_oneof {
    ($only:expr $(,)?) => { $only };
    ($first:expr, $($rest:expr),+ $(,)?) => {
        $crate::strategy::Union::new(
            $first,
            $crate::prop_oneof!($($rest),+),
            $crate::__prop_count!($($rest),+),
        )
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __prop_count {
    ($($arm:expr),+) => {
        0u64 $(+ { let _ = stringify!($arm); 1u64 })+
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            panic!("prop_assert!({}) failed", stringify!($cond));
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            panic!(
                "prop_assert!({}) failed: {}",
                stringify!($cond),
                format_args!($($fmt)*)
            );
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        if !(*a == *b) {
            panic!(
                "prop_assert_eq! failed\n  left: {:?}\n right: {:?}",
                a, b
            );
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (a, b) = (&$a, &$b);
        if !(*a == *b) {
            panic!(
                "prop_assert_eq! failed: {}\n  left: {:?}\n right: {:?}",
                format_args!($($fmt)*),
                a,
                b
            );
        }
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        if *a == *b {
            panic!(
                "prop_assert_ne! failed: both sides equal\n value: {:?}",
                a
            );
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (a, b) = (&$a, &$b);
        if *a == *b {
            panic!(
                "prop_assert_ne! failed: {}\n value: {:?}",
                format_args!($($fmt)*),
                a
            );
        }
    }};
}

#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::test_runner::TestCaseError::Reject);
        }
    };
}

/// The test harness macro. Each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` that samples `cases` inputs deterministically and
/// runs the body on each.
#[macro_export]
macro_rules! proptest {
    // Leading config attribute.
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns!($cfg; $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns!(
            $crate::test_runner::Config::default(); $($rest)*
        );
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    ($cfg:expr;) => {};
    (
        $cfg:expr;
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let cfg: $crate::test_runner::Config = $cfg;
            let full_name = concat!(module_path!(), "::", stringify!($name));
            for case in 0..cfg.cases {
                let mut __rng =
                    $crate::test_runner::TestRng::for_case(full_name, case);
                $(
                    let $pat = $crate::strategy::Strategy::sample(
                        &($strat),
                        &mut __rng,
                    );
                )+
                let outcome: ::std::result::Result<
                    (),
                    $crate::test_runner::TestCaseError,
                > = (|| {
                    $body
                    Ok(())
                })();
                match outcome {
                    Ok(()) => {}
                    Err($crate::test_runner::TestCaseError::Reject) => continue,
                }
            }
        }
        $crate::__proptest_fns!($cfg; $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_stay_in_bounds(x in 3u32..17, y in 0u8..=4) {
            prop_assert!((3..17).contains(&x));
            prop_assert!(y <= 4);
        }

        #[test]
        fn oneof_map_and_tuples((a, b) in prop_oneof![
            Just((1u32, 2u32)),
            (0u32..5).prop_map(|v| (v, v + 1)),
        ]) {
            prop_assert_eq!(a + 1, b, "pairs are consecutive (a={})", a);
        }

        #[test]
        fn assume_skips(v in 0u32..10) {
            prop_assume!(v % 2 == 0);
            prop_assert!(v % 2 == 0);
        }
    }

    proptest! {
        #[test]
        fn vec_sizes(xs in prop::collection::vec(0u8..200, 0..15)) {
            prop_assert!(xs.len() < 15);
            prop_assert!(xs.iter().all(|&x| x < 200));
        }
    }

    #[test]
    fn sampling_is_deterministic() {
        use crate::strategy::Strategy;
        use crate::test_runner::TestRng;
        let s = (0u64..1000, 0u32..7);
        let mut r1 = TestRng::for_case("x", 3);
        let mut r2 = TestRng::for_case("x", 3);
        assert_eq!(s.sample(&mut r1), s.sample(&mut r2));
    }
}
