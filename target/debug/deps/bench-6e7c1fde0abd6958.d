/root/repo/target/debug/deps/bench-6e7c1fde0abd6958.d: crates/bench/src/bin/bench.rs Cargo.toml

/root/repo/target/debug/deps/libbench-6e7c1fde0abd6958.rmeta: crates/bench/src/bin/bench.rs Cargo.toml

crates/bench/src/bin/bench.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
