//! Message-level workloads for the fat-tree simulator.
//!
//! The packet engine in `ibfat-sim` moves fixed-size packets; real
//! applications move *messages* — multi-packet transfers whose start is
//! gated on earlier transfers completing. This crate defines that layer
//! as plain data: a [`Workload`] is a DAG of [`Message`]s (one dependency
//! edge per "send after recv-complete" constraint), and the simulator
//! drives it to completion instead of to a wall-clock horizon.
//!
//! Three workload families ship here:
//!
//! * **Collectives** ([`generators`]) — ring and recursive-doubling
//!   allreduce, pairwise all-to-all exchange, and binomial-tree
//!   broadcast, each expressed as the dependency DAG the algorithm
//!   induces.
//! * **Closed-loop traffic** ([`generators::closed_loop`]) — the
//!   message-level analogue of the paper's uniform / centric open-loop
//!   patterns: every node keeps `k` messages in flight and re-arms on
//!   completion. All randomness is pre-drawn at build time so runs are
//!   reproducible and engine-independent.
//! * **Trace replay** ([`trace`]) — a JSONL record format
//!   (`{"src":…,"dst":…,"bytes":…,"depends_on":[…]}`) with a writer, so
//!   any workload can be captured and replayed.
//!
//! The crate is deliberately simulator-agnostic: it depends only on the
//! topology id types. `ibfat-sim` consumes a validated [`Workload`] and
//! produces the [`MessageTiming`]s that a [`WorkloadReport`] summarizes.

pub mod generators;
pub mod report;
pub mod trace;

pub use generators::ClosedLoopKind;
pub use report::{GroupReport, MessageTiming, MsgLatency, WorkloadReport};

use ibfat_topology::NodeId;
use serde::{Deserialize, Serialize};

/// Index of a message within its [`Workload`].
pub type MsgId = u32;

/// One message: a multi-packet transfer from `src` to `dst`, eligible
/// for injection only once every message in `deps` has completed
/// (last packet delivered at its destination).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Message {
    /// Sending node.
    pub src: NodeId,
    /// Receiving node.
    pub dst: NodeId,
    /// Payload size; segmented into `ceil(bytes / packet_bytes)` packets.
    pub bytes: u64,
    /// Messages that must complete before this one may be injected.
    /// Validation requires every dependency id to be smaller than the
    /// message's own id, so workload DAGs are acyclic by construction.
    pub deps: Vec<MsgId>,
    /// Group this message belongs to (a collective instance or a phase);
    /// indexes [`Workload::group_names`]. Reports aggregate completion
    /// time per group.
    pub group: u32,
}

/// A complete workload: the message DAG plus the node universe it is
/// meant for. Build one with the [`generators`], parse one from JSONL
/// with [`trace::parse_jsonl`], or assemble messages by hand.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Workload {
    /// Number of processing nodes the workload addresses; every `src`
    /// and `dst` must be below this.
    pub num_nodes: u32,
    /// The message DAG, in id order (`messages[i]` has id `i`).
    pub messages: Vec<Message>,
    /// Human-readable names for the groups referenced by
    /// [`Message::group`].
    pub group_names: Vec<String>,
}

impl Workload {
    /// An empty workload over `num_nodes` nodes.
    pub fn new(num_nodes: u32) -> Self {
        Workload {
            num_nodes,
            messages: Vec::new(),
            group_names: Vec::new(),
        }
    }

    /// Append a group, returning its id for use in [`Message::group`].
    pub fn add_group(&mut self, name: impl Into<String>) -> u32 {
        self.group_names.push(name.into());
        (self.group_names.len() - 1) as u32
    }

    /// Append a message, returning its id. Dependencies must refer to
    /// already-appended messages (checked by [`validate`](Self::validate),
    /// not here).
    pub fn push(&mut self, msg: Message) -> MsgId {
        self.messages.push(msg);
        (self.messages.len() - 1) as MsgId
    }

    /// Total payload bytes across all messages.
    pub fn total_bytes(&self) -> u64 {
        self.messages.iter().map(|m| m.bytes).sum()
    }

    /// The root messages: those with no dependencies, eligible at t=0.
    pub fn roots(&self) -> impl Iterator<Item = MsgId> + '_ {
        self.messages
            .iter()
            .enumerate()
            .filter(|(_, m)| m.deps.is_empty())
            .map(|(i, _)| i as MsgId)
    }

    /// Check the workload is well-formed: at least one message, every
    /// endpoint in `0..num_nodes`, no self-sends, non-zero sizes, every
    /// dependency id strictly smaller than the depending message's id
    /// (which makes the DAG acyclic by construction), and every group
    /// index named.
    pub fn validate(&self) -> Result<(), String> {
        if self.num_nodes < 2 {
            return Err("workload needs at least 2 nodes".into());
        }
        if self.messages.is_empty() {
            return Err("workload has no messages".into());
        }
        for (id, m) in self.messages.iter().enumerate() {
            if m.src.0 >= self.num_nodes || m.dst.0 >= self.num_nodes {
                return Err(format!(
                    "message {id}: endpoint out of range ({} -> {}, {} nodes)",
                    m.src.0, m.dst.0, self.num_nodes
                ));
            }
            if m.src == m.dst {
                return Err(format!(
                    "message {id}: self-send ({} -> {})",
                    m.src.0, m.dst.0
                ));
            }
            if m.bytes == 0 {
                return Err(format!("message {id}: zero bytes"));
            }
            for &d in &m.deps {
                if (d as usize) >= id {
                    return Err(format!(
                        "message {id}: dependency {d} is not an earlier message \
                         (ids must be topologically ordered)"
                    ));
                }
            }
            if (m.group as usize) >= self.group_names.len() {
                return Err(format!(
                    "message {id}: group {} has no name ({} groups)",
                    m.group,
                    self.group_names.len()
                ));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn msg(src: u32, dst: u32, deps: Vec<MsgId>) -> Message {
        Message {
            src: NodeId(src),
            dst: NodeId(dst),
            bytes: 1024,
            deps,
            group: 0,
        }
    }

    #[test]
    fn validate_accepts_a_well_formed_dag() {
        let mut w = Workload::new(4);
        w.add_group("g");
        w.push(msg(0, 1, vec![]));
        w.push(msg(1, 2, vec![0]));
        w.push(msg(2, 3, vec![0, 1]));
        assert!(w.validate().is_ok());
        assert_eq!(w.roots().collect::<Vec<_>>(), vec![0]);
        assert_eq!(w.total_bytes(), 3 * 1024);
    }

    #[test]
    fn validate_rejects_malformed_workloads() {
        let mut w = Workload::new(4);
        w.add_group("g");
        assert!(w.validate().is_err(), "empty");

        w.push(msg(0, 9, vec![]));
        assert!(w.validate().unwrap_err().contains("out of range"));

        w.messages[0] = msg(2, 2, vec![]);
        assert!(w.validate().unwrap_err().contains("self-send"));

        w.messages[0] = msg(0, 1, vec![0]);
        assert!(w.validate().unwrap_err().contains("earlier message"));

        w.messages[0] = msg(0, 1, vec![]);
        w.messages[0].bytes = 0;
        assert!(w.validate().unwrap_err().contains("zero bytes"));

        w.messages[0].bytes = 1;
        w.messages[0].group = 7;
        assert!(w.validate().unwrap_err().contains("no name"));
    }
}
