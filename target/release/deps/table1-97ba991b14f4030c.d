/root/repo/target/release/deps/table1-97ba991b14f4030c.d: crates/bench/src/bin/table1.rs

/root/repo/target/release/deps/table1-97ba991b14f4030c: crates/bench/src/bin/table1.rs

crates/bench/src/bin/table1.rs:
