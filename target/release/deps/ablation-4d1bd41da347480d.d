/root/repo/target/release/deps/ablation-4d1bd41da347480d.d: crates/bench/benches/ablation.rs

/root/repo/target/release/deps/ablation-4d1bd41da347480d: crates/bench/benches/ablation.rs

crates/bench/benches/ablation.rs:
