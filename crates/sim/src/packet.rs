//! Packets and the packet slab.
//!
//! The simulator keeps live packets in a slab with a free list: packet ids
//! are reused after delivery, so memory stays proportional to the number of
//! packets in flight (plus source queues), not to everything ever sent.

use ibfat_routing::Lid;

/// Index of a live packet in the slab.
pub type PacketId = u32;

/// The state of one packet carried through the subnet. Every packet has the
/// configured fixed size; its Local Route Header is represented by the
/// `(slid-implied src, dlid)` pair, exactly the fields forwarding uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Packet {
    /// Source node (the SLID side).
    pub src: u32,
    /// Destination node (owner of the DLID).
    pub dst: u32,
    /// The destination LID written by path selection.
    pub dlid: Lid,
    /// Virtual lane carried end to end (SL-to-VL identity mapping).
    pub vl: u8,
    /// Generation timestamp (entered the source queue).
    pub t_gen: u64,
    /// First-byte-on-wire timestamp (left the source endport).
    pub t_inject: u64,
    /// Flight-recorder slot, or `u32::MAX` when untraced.
    pub trace: u32,
    /// Sequence number within the (src, dst) flow, assigned at generation.
    pub flow_seq: u32,
}

/// Slab of live packets.
#[derive(Debug, Default)]
pub struct PacketSlab {
    slots: Vec<Packet>,
    free: Vec<PacketId>,
    live: usize,
}

impl PacketSlab {
    /// An empty slab.
    pub fn new() -> Self {
        PacketSlab::default()
    }

    /// Insert a packet, returning its id.
    pub fn insert(&mut self, p: Packet) -> PacketId {
        self.live += 1;
        if let Some(id) = self.free.pop() {
            self.slots[id as usize] = p;
            id
        } else {
            self.slots.push(p);
            (self.slots.len() - 1) as PacketId
        }
    }

    /// Access a live packet.
    #[inline]
    pub fn get(&self, id: PacketId) -> &Packet {
        &self.slots[id as usize]
    }

    /// Mutate a live packet.
    #[inline]
    pub fn get_mut(&mut self, id: PacketId) -> &mut Packet {
        &mut self.slots[id as usize]
    }

    /// Release a delivered packet's slot for reuse.
    pub fn remove(&mut self, id: PacketId) -> Packet {
        debug_assert!(self.live > 0);
        self.live -= 1;
        self.free.push(id);
        self.slots[id as usize]
    }

    /// Number of live packets (in queues, buffers, or on wires).
    #[inline]
    pub fn live(&self) -> usize {
        self.live
    }

    /// High-water mark of slab capacity.
    #[inline]
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pkt(src: u32) -> Packet {
        Packet {
            src,
            dst: 1,
            dlid: Lid(2),
            vl: 0,
            t_gen: 0,
            t_inject: 0,
            trace: u32::MAX,
            flow_seq: 0,
        }
    }

    #[test]
    fn insert_get_remove() {
        let mut slab = PacketSlab::new();
        let a = slab.insert(pkt(10));
        let b = slab.insert(pkt(20));
        assert_eq!(slab.live(), 2);
        assert_eq!(slab.get(a).src, 10);
        assert_eq!(slab.get(b).src, 20);
        let removed = slab.remove(a);
        assert_eq!(removed.src, 10);
        assert_eq!(slab.live(), 1);
    }

    #[test]
    fn slots_are_reused() {
        let mut slab = PacketSlab::new();
        let a = slab.insert(pkt(1));
        slab.remove(a);
        let b = slab.insert(pkt(2));
        assert_eq!(a, b, "freed slot must be reused");
        assert_eq!(slab.capacity(), 1);
    }

    #[test]
    fn mutation_in_place() {
        let mut slab = PacketSlab::new();
        let a = slab.insert(pkt(1));
        slab.get_mut(a).t_inject = 99;
        assert_eq!(slab.get(a).t_inject, 99);
    }
}
