use crate::{NodeId, PortNum, SwitchId, TopologyError, TreeParams};
use serde::{Deserialize, Serialize};
use std::fmt;

/// A reference to either kind of device in the subnet.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DeviceRef {
    /// A processing node (end node with one endport).
    Node(NodeId),
    /// A communication switch.
    Switch(SwitchId),
}

impl fmt::Display for DeviceRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DeviceRef::Node(n) => write!(f, "{n}"),
            DeviceRef::Switch(s) => write!(f, "{s}"),
        }
    }
}

/// The kind of a device.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DeviceKind {
    /// Processing node / HCA endport.
    Node,
    /// m-port crossbar switch.
    Switch,
}

/// The far side of a link as seen from one port.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Peer {
    /// The device on the other end of the link.
    pub device: DeviceRef,
    /// The port on that device.
    pub port: PortNum,
}

/// One port of a device. Switch ports are numbered `1..=m` (port 0 is the
/// management port, represented implicitly and never wired); node endports
/// are port 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Port {
    /// What this port is cabled to, if anything.
    pub peer: Option<Peer>,
}

/// A device: a switch with `m` external ports or a node with one endport.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Device {
    kind: DeviceKind,
    /// `ports[k]` is external port `k+1` (IB numbering).
    ports: Vec<Port>,
}

impl Device {
    /// The device kind.
    #[inline]
    pub fn kind(&self) -> DeviceKind {
        self.kind
    }

    /// Number of external ports.
    #[inline]
    pub fn num_ports(&self) -> usize {
        self.ports.len()
    }

    /// The peer cabled to external port `port` (1-based), if any.
    ///
    /// # Panics
    /// Panics if `port` is 0 (management port) or beyond the port count.
    #[inline]
    pub fn peer(&self, port: PortNum) -> Option<Peer> {
        assert!(port.0 >= 1, "port 0 is the management port");
        self.ports[port.index() - 1].peer
    }

    /// Iterate `(port, peer)` over the cabled external ports.
    pub fn peers(&self) -> impl Iterator<Item = (PortNum, Peer)> + '_ {
        self.ports
            .iter()
            .enumerate()
            .filter_map(|(i, p)| p.peer.map(|peer| (PortNum(i as u8 + 1), peer)))
    }
}

/// An undirected cable between two device ports. Links are full duplex;
/// the simulator models each direction independently.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Link {
    /// One end of the cable.
    pub a: Peer,
    /// The other end.
    pub b: Peer,
}

/// A port-accurate model of an InfiniBand subnet: switches, processing
/// nodes, and the cables between their ports.
///
/// Built via [`Network::mport_ntree`] for the paper's fat trees; the type
/// itself is topology-agnostic (the up*/down* routing engine in
/// `ibfat-routing` works on any `Network`).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Network {
    params: TreeParams,
    switches: Vec<Device>,
    nodes: Vec<Device>,
    links: Vec<Link>,
}

impl Network {
    pub(crate) fn new_empty(params: TreeParams) -> Self {
        let switches = (0..params.num_switches())
            .map(|_| Device {
                kind: DeviceKind::Switch,
                ports: vec![Port { peer: None }; params.m() as usize],
            })
            .collect();
        let nodes = (0..params.num_nodes())
            .map(|_| Device {
                kind: DeviceKind::Node,
                ports: vec![Port { peer: None }; 1],
            })
            .collect();
        Network {
            params,
            switches,
            nodes,
            links: Vec::new(),
        }
    }

    /// The tree parameters this subnet was built from.
    #[inline]
    pub fn params(&self) -> TreeParams {
        self.params
    }

    /// Number of switches.
    #[inline]
    pub fn num_switches(&self) -> usize {
        self.switches.len()
    }

    /// Number of processing nodes.
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// All cables.
    #[inline]
    pub fn links(&self) -> &[Link] {
        &self.links
    }

    /// The switch with the given id.
    #[inline]
    pub fn switch(&self, id: SwitchId) -> &Device {
        &self.switches[id.index()]
    }

    /// The node with the given id.
    #[inline]
    pub fn node(&self, id: NodeId) -> &Device {
        &self.nodes[id.index()]
    }

    /// The device behind a [`DeviceRef`].
    #[inline]
    pub fn device(&self, r: DeviceRef) -> &Device {
        match r {
            DeviceRef::Node(id) => self.node(id),
            DeviceRef::Switch(id) => self.switch(id),
        }
    }

    /// Cable two ports together (both directions).
    ///
    /// # Panics
    /// Panics if either port is already cabled or out of range.
    pub(crate) fn connect(&mut self, a: Peer, b: Peer) {
        {
            let pa = self.port_mut(a);
            assert!(
                pa.peer.is_none(),
                "port {}:{} already cabled",
                a.device,
                a.port
            );
            pa.peer = Some(b);
        }
        {
            let pb = self.port_mut(b);
            assert!(
                pb.peer.is_none(),
                "port {}:{} already cabled",
                b.device,
                b.port
            );
            pb.peer = Some(a);
        }
        self.links.push(Link { a, b });
    }

    fn port_mut(&mut self, p: Peer) -> &mut Port {
        assert!(p.port.0 >= 1, "port 0 is the management port");
        let dev = match p.device {
            DeviceRef::Node(id) => &mut self.nodes[id.index()],
            DeviceRef::Switch(id) => &mut self.switches[id.index()],
        };
        &mut dev.ports[p.port.index() - 1]
    }

    /// Follow a cable: the peer of `(device, port)`, if cabled.
    #[inline]
    pub fn peer_of(&self, device: DeviceRef, port: PortNum) -> Option<Peer> {
        self.device(device).peer(port)
    }

    /// Remove a cable (simulating a link failure): both endpoints become
    /// uncabled and the link disappears from [`Network::links`].
    ///
    /// Removing a node's only cable isolates it; callers that need the
    /// subnet to stay routable should restrict failures to inter-switch
    /// links (see [`Network::inter_switch_link_indices`]).
    ///
    /// # Panics
    /// Panics if `index` is out of range.
    pub fn remove_link(&mut self, index: usize) -> Link {
        let link = self.links.remove(index);
        self.port_mut(link.a).peer = None;
        self.port_mut(link.b).peer = None;
        link
    }

    /// Indices into [`Network::links`] of the switch-to-switch cables —
    /// the failures a fat tree can tolerate without isolating a node.
    pub fn inter_switch_link_indices(&self) -> Vec<usize> {
        self.links
            .iter()
            .enumerate()
            .filter(|(_, l)| {
                matches!(l.a.device, DeviceRef::Switch(_))
                    && matches!(l.b.device, DeviceRef::Switch(_))
            })
            .map(|(i, _)| i)
            .collect()
    }

    /// Whether every device can still reach every other over live cables.
    pub fn is_connected(&self) -> bool {
        let total = self.num_nodes() + self.num_switches();
        if total == 0 {
            return true;
        }
        let idx = |d: DeviceRef| -> usize {
            match d {
                DeviceRef::Node(n) => n.index(),
                DeviceRef::Switch(s) => self.num_nodes() + s.index(),
            }
        };
        let mut seen = vec![false; total];
        let start = DeviceRef::Node(NodeId(0));
        let mut stack = vec![start];
        seen[idx(start)] = true;
        let mut count = 0usize;
        while let Some(d) = stack.pop() {
            count += 1;
            for (_, peer) in self.device(d).peers() {
                let i = idx(peer.device);
                if !seen[i] {
                    seen[i] = true;
                    stack.push(peer.device);
                }
            }
        }
        count == total
    }

    /// Validate the structural invariants of the built subnet:
    ///
    /// * link count is `num_nodes + (n-1) * m/2 * switches_below_roots`
    ///   (every non-root switch has exactly `m/2` up-cables; every node one);
    /// * every cable is symmetric;
    /// * every switch port is cabled exactly once or not at all, and every
    ///   expected port *is* cabled;
    /// * every node's endport is cabled to a leaf switch.
    pub fn validate(&self) -> Result<(), TopologyError> {
        // Symmetry of every recorded link.
        for link in &self.links {
            let back = self.peer_of(link.a.device, link.a.port).ok_or_else(|| {
                TopologyError::Invariant(format!("dangling link at {}", link.a.device))
            })?;
            if back != link.b {
                return Err(TopologyError::Invariant(format!(
                    "asymmetric cable at {}:{}",
                    link.a.device, link.a.port
                )));
            }
            let fwd = self.peer_of(link.b.device, link.b.port).ok_or_else(|| {
                TopologyError::Invariant(format!("dangling link at {}", link.b.device))
            })?;
            if fwd != link.a {
                return Err(TopologyError::Invariant(format!(
                    "asymmetric cable at {}:{}",
                    link.b.device, link.b.port
                )));
            }
        }
        // Every switch must have all m ports cabled (the m-port n-tree uses
        // every port: down-ports to children, up-ports to parents), except
        // that root switches have no up-cables only when n = 1 is *not*
        // special-cased — roots use all m ports as down-ports.
        for (i, sw) in self.switches.iter().enumerate() {
            let cabled = sw.peers().count();
            if cabled != sw.num_ports() {
                return Err(TopologyError::Invariant(format!(
                    "switch S{i} has {cabled}/{} ports cabled",
                    sw.num_ports()
                )));
            }
        }
        for (i, node) in self.nodes.iter().enumerate() {
            match node.peer(PortNum(1)) {
                Some(Peer {
                    device: DeviceRef::Switch(_),
                    ..
                }) => {}
                _ => {
                    return Err(TopologyError::Invariant(format!(
                        "node N{i} endport not cabled to a switch"
                    )))
                }
            }
        }
        let expected_links = self.params.num_nodes() as usize + self.inter_switch_link_count();
        if self.links.len() != expected_links {
            return Err(TopologyError::Invariant(format!(
                "expected {expected_links} links, found {}",
                self.links.len()
            )));
        }
        Ok(())
    }

    fn inter_switch_link_count(&self) -> usize {
        // Every switch at levels 1..n has exactly m/2 up-cables.
        let p = self.params;
        let mut total = 0u64;
        for l in 1..p.n() {
            total += u64::from(p.switches_at_level(l)) * u64::from(p.half());
        }
        total as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::NodeId;

    fn net() -> Network {
        Network::mport_ntree(TreeParams::new(4, 2).unwrap())
    }

    #[test]
    fn remove_link_uncables_both_ends() {
        let mut net = net();
        let idx = net.inter_switch_link_indices()[0];
        let link = net.remove_link(idx);
        assert_eq!(net.peer_of(link.a.device, link.a.port), None);
        assert_eq!(net.peer_of(link.b.device, link.b.port), None);
        assert!(
            net.validate().is_err(),
            "degraded net fails strict validation"
        );
    }

    #[test]
    fn inter_switch_links_exclude_node_cables() {
        let net = net();
        let params = net.params();
        let inter = net.inter_switch_link_indices();
        assert_eq!(inter.len(), net.links().len() - params.num_nodes() as usize);
        for i in inter {
            let l = net.links()[i];
            assert!(matches!(l.a.device, DeviceRef::Switch(_)));
            assert!(matches!(l.b.device, DeviceRef::Switch(_)));
        }
    }

    #[test]
    fn connectivity_survives_one_failure_in_ft42() {
        // FT(4, 2) has two parents per leaf switch; one inter-switch
        // failure cannot disconnect it.
        for idx in net().inter_switch_link_indices() {
            let mut degraded = net();
            degraded.remove_link(idx);
            assert!(degraded.is_connected(), "failure of link {idx}");
        }
    }

    #[test]
    fn removing_a_node_cable_disconnects() {
        let mut net = net();
        // Node links come first in construction order? Find one.
        let node_link = net
            .links()
            .iter()
            .position(|l| {
                matches!(l.a.device, DeviceRef::Node(_)) || matches!(l.b.device, DeviceRef::Node(_))
            })
            .unwrap();
        net.remove_link(node_link);
        assert!(!net.is_connected());
    }

    #[test]
    fn peers_iterator_reports_cabled_ports_only() {
        let mut net = net();
        let before = net.switch(SwitchId(0)).peers().count();
        // Remove a link touching switch 0.
        let idx = net
            .links()
            .iter()
            .position(|l| {
                l.a.device == DeviceRef::Switch(SwitchId(0))
                    || l.b.device == DeviceRef::Switch(SwitchId(0))
            })
            .unwrap();
        net.remove_link(idx);
        assert_eq!(net.switch(SwitchId(0)).peers().count(), before - 1);
        let _ = NodeId(0); // keep import used under cfg(test)
    }
}
