//! A dependency-free scoped thread pool for embarrassingly parallel maps.
//!
//! Lives in the topology crate — the bottom of the workspace — so both the
//! routing control plane (parallel LFT builds, sharded channel-load
//! analysis) and the simulator (sweeps, replication) share one pool
//! implementation without a dependency cycle.

/// Apply `f` to every item of `items` across a scoped OS-thread pool,
/// returning the outputs in input order.
///
/// Threads self-schedule off a shared atomic cursor (work stealing by
/// index), so uneven per-item cost — a saturated simulation next to an
/// idle one — still balances. `f` may borrow shared state (network,
/// routing); nothing is cloned per item by the pool itself.
pub fn par_map_indexed<T, U, F>(items: &[T], f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(usize, &T) -> U + Sync,
{
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
        .min(items.len().max(1));
    // One worker means no parallelism to buy: run inline and skip the
    // spawn + mutex machinery (a scoped spawn costs tens of µs, which
    // dwarfs small workloads like an FT(4,3) table build on 1-core hosts).
    if threads <= 1 {
        return items.iter().enumerate().map(|(i, x)| f(i, x)).collect();
    }
    let slots: Vec<Option<U>> = (0..items.len()).map(|_| None).collect();
    let results = std::sync::Mutex::new(slots);
    let next = std::sync::atomic::AtomicUsize::new(0);
    std::thread::scope(|scope| {
        let (results, next, f) = (&results, &next, &f);
        for _ in 0..threads {
            scope.spawn(move || loop {
                let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                if i >= items.len() {
                    break;
                }
                let out = f(i, &items[i]);
                results.lock().expect("no panics hold the lock")[i] = Some(out);
            });
        }
    });
    results
        .into_inner()
        .expect("no panics hold the lock")
        .into_iter()
        .map(|r| r.expect("every index was processed"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn par_map_preserves_input_order() {
        let items: Vec<u64> = (0..100).collect();
        let out = par_map_indexed(&items, |i, &x| {
            assert_eq!(i as u64, x);
            x * x
        });
        assert_eq!(out, (0..100).map(|x| x * x).collect::<Vec<u64>>());
        assert!(par_map_indexed(&[] as &[u64], |_, &x| x).is_empty());
    }

    #[test]
    fn par_map_balances_uneven_items() {
        // Items of wildly different cost still come back in order.
        let items: Vec<u64> = (0..32).collect();
        let out = par_map_indexed(&items, |_, &x| {
            let spins = if x % 7 == 0 { 10_000 } else { 10 };
            (0..spins).fold(x, |acc, _| std::hint::black_box(acc))
        });
        assert_eq!(out, items);
    }
}
