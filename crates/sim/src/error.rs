//! Simulator error type for config-time validation.
//!
//! The engines themselves panic on programmer error (mis-wired events,
//! credit protocol violations), but everything a *user* can get wrong —
//! a malformed traffic pattern, an inconsistent workload — is validated
//! up front and reported as a [`SimError`], so callers like the CLI and
//! the experiment builder can print a real diagnostic instead of
//! surfacing an index panic from deep inside a handler.

use std::fmt;

/// A configuration-time validation failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// The traffic pattern is inconsistent with the fabric (permutation
    /// length, out-of-range destination, …).
    InvalidPattern(String),
    /// The workload DAG is inconsistent with the fabric or the
    /// simulator configuration.
    InvalidWorkload(String),
    /// A parallel worker thread panicked. The run was aborted (every
    /// other worker released from the window barrier and unwound
    /// cleanly) and the panic payload captured here.
    WorkerPanicked(String),
    /// An engine invariant was violated mid-run (e.g. a route-done event
    /// fired against an empty input buffer). Debug builds assert instead;
    /// release builds abort the run and surface this through the
    /// `try_run_*` entry points rather than panicking deep in a handler.
    EngineInvariant(String),
    /// The multi-process bridge failed: a malformed or truncated frame,
    /// a blob routed to the wrong worker, or a broken transport under a
    /// live worker. A worker *process* dying is reported as
    /// [`SimError::WorkerPanicked`] instead, mirroring the threaded
    /// engine.
    Bridge(String),
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::InvalidPattern(msg) => write!(f, "invalid traffic pattern: {msg}"),
            SimError::InvalidWorkload(msg) => write!(f, "invalid workload: {msg}"),
            SimError::WorkerPanicked(msg) => write!(f, "parallel worker panicked: {msg}"),
            SimError::EngineInvariant(msg) => write!(f, "engine invariant violated: {msg}"),
            SimError::Bridge(msg) => write!(f, "worker bridge failure: {msg}"),
        }
    }
}

impl std::error::Error for SimError {}
