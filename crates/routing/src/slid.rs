//! The Single LID (SLID) baseline scheme the paper evaluates against.
//!
//! Each node owns exactly one LID (`PID + 1`, i.e. LMC = 0). Forwarding
//! tables are built "based on the consideration of evenly distributing
//! possible traffic over available paths": descending entries are forced
//! (Equation 1 — the down path is unique), and climbing entries spread the
//! *destinations* across the up-ports by reading a digit of the
//! destination's PID — the classical d-mod-k placement. All packets to a
//! given destination from a given switch share one fixed path, which is
//! precisely the hot-spot weakness (the paper's Figure 9(a)) that MLID
//! removes.

use crate::mlid::{fill_down_runs, level_and_index};
use crate::{Lft, Lid, LidSpace, MlidScheme, RoutingScheme};
use ibfat_topology::{
    par_map_indexed, Network, NodeId, NodeLabel, PortNum, SwitchId, SwitchLabel, TreeParams,
};

/// The SLID scheme (stateless).
#[derive(Debug, Clone, Copy, Default)]
pub struct SlidScheme;

impl SlidScheme {
    /// Build one switch's full LFT by dense block operations.
    ///
    /// With LMC = 0, `lid - 1` is the destination PID, so the climbing
    /// rule (Equation (2)'s d-mod-k placement on the destination) assigns
    /// whole contiguous blocks of `(m/2)^(n-1-level)` consecutive LIDs to
    /// the same up-port, cycling through the up-ports. The table is filled
    /// with those runs, then the (contiguous) subtree range is overwritten
    /// by Equation (1) descending runs.
    pub fn build_switch_lft(params: TreeParams, space: &LidSpace, sw: SwitchId) -> Lft {
        debug_assert_eq!(space.lmc(), 0, "SLID builder needs the LMC = 0 LID space");
        let half = params.half();
        let (level, _) = level_and_index(params, sw);
        let mut lft = Lft::new(space.max_lid());
        if level >= 1 {
            let stride = half.pow(params.n() - 1 - level);
            for b in 0..params.num_nodes() / stride {
                let port = PortNum(((b % half) + half + 1) as u8);
                lft.fill(Lid(b * stride + 1), stride as usize, port);
            }
        }
        fill_down_runs(&mut lft, params, space, sw);
        lft
    }

    /// The original per-entry builder, kept as the independently-derived
    /// reference the dense parallel [`RoutingScheme::build_lfts`] is tested
    /// (and benchmarked) against.
    pub fn build_lfts_reference(net: &Network, space: &LidSpace) -> Vec<Lft> {
        let params = net.params();
        let max_lid = space.max_lid();
        let mut lfts = Vec::with_capacity(net.num_switches());
        for sw in SwitchLabel::all(params) {
            let level = sw.level().index();
            let mut lft = Lft::new(max_lid);
            for node in NodeLabel::all(params) {
                let lid = space.base_lid(node.id(params));
                let below = (0..level).all(|i| sw.digit(i) == node.digit(i));
                let port = if below {
                    MlidScheme::eq1_down_port(&node, level)
                } else {
                    // Spread destinations over the up-ports: with LMC = 0,
                    // `lid - 1` is the destination PID, so Equation (2)'s
                    // digit extraction becomes d-mod-k on the destination.
                    MlidScheme::eq2_up_port(params, lid, level as u32)
                };
                lft.set(lid, port);
            }
            lfts.push(lft);
        }
        lfts
    }
}

impl RoutingScheme for SlidScheme {
    fn name(&self) -> &'static str {
        "SLID"
    }

    fn lid_space(&self, net: &Network) -> LidSpace {
        LidSpace::new(net.params().num_nodes(), 0)
    }

    fn build_lfts(&self, net: &Network, space: &LidSpace) -> Vec<Lft> {
        let params = net.params();
        let switches: Vec<u32> = (0..params.num_switches()).collect();
        par_map_indexed(&switches, |_, &sw| {
            Self::build_switch_lft(params, space, SwitchId(sw))
        })
    }

    fn select_dlid(&self, _net: &Network, space: &LidSpace, _src: NodeId, dst: NodeId) -> Lid {
        space.base_lid(dst)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ibfat_topology::{Level, PortNum, TreeParams};

    fn setup() -> (TreeParams, Network, LidSpace, Vec<Lft>) {
        let params = TreeParams::new(4, 3).unwrap();
        let net = Network::mport_ntree(params);
        let space = SlidScheme.lid_space(&net);
        let lfts = SlidScheme.build_lfts(&net, &space);
        (params, net, space, lfts)
    }

    #[test]
    fn one_lid_per_node() {
        let (_, _, space, _) = setup();
        assert_eq!(space.lmc(), 0);
        assert_eq!(space.lids_per_node(), 1);
        assert_eq!(space.max_lid(), Lid(16));
        assert_eq!(space.base_lid(NodeId(7)), Lid(8)); // PID + 1
    }

    #[test]
    fn destinations_spread_over_up_ports() {
        // At a leaf switch, the up-entries for the node LIDs must use every
        // up-port equally often (8 climbing destinations over 2 up-ports
        // for SW<00,2> in FT(4,3): destinations below it are P(000),P(001);
        // the other 14 climb).
        let (params, _, space, lfts) = setup();
        let sw = SwitchLabel::new(params, &[0, 0], Level(2)).unwrap();
        let lft = &lfts[sw.id(params).index()];
        let mut counts = [0u32; 2];
        for node in 0..space.num_nodes() {
            let lid = space.base_lid(NodeId(node));
            let port = lft.get(lid).unwrap();
            if u32::from(port.0) > params.half() {
                counts[(u32::from(port.0) - params.half() - 1) as usize] += 1;
            }
        }
        assert_eq!(counts.iter().sum::<u32>(), 14);
        assert_eq!(counts[0], 7);
        assert_eq!(counts[1], 7);
    }

    #[test]
    fn same_destination_same_path_from_any_source() {
        // SLID's defining limitation: the DLID is the same for every
        // source, so the up-port chosen at a shared switch is identical.
        let (params, _, space, lfts) = setup();
        let dst = NodeId(15);
        let lid = space.base_lid(dst);
        let leaf = SwitchLabel::new(params, &[0, 0], Level(2)).unwrap();
        let port_for_everyone = lfts[leaf.id(params).index()].get(lid).unwrap();
        assert!(u32::from(port_for_everyone.0) > params.half());
        // There is exactly one entry for dst at this switch — no way to
        // differentiate sources.
        assert_eq!(port_for_everyone, PortNum(port_for_everyone.0));
    }

    #[test]
    fn dense_parallel_build_matches_the_reference() {
        for (m, n) in [(2, 2), (2, 3), (4, 2), (4, 3), (8, 2), (8, 3)] {
            let params = TreeParams::new(m, n).unwrap();
            let net = Network::mport_ntree(params);
            let space = SlidScheme.lid_space(&net);
            let dense = SlidScheme.build_lfts(&net, &space);
            let reference = SlidScheme::build_lfts_reference(&net, &space);
            assert_eq!(dense, reference, "FT({m},{n})");
        }
    }

    #[test]
    fn down_entries_follow_equation_1() {
        let (params, _, space, lfts) = setup();
        let root = SwitchLabel::new(params, &[1, 1], Level(0)).unwrap();
        let lft = &lfts[root.id(params).index()];
        for node in NodeLabel::all(params) {
            let lid = space.base_lid(node.id(params));
            assert_eq!(lft.get(lid).unwrap(), PortNum(node.digit(0) + 1));
        }
    }
}
