/root/repo/target/release/deps/rand_chacha-4afdfd2d9c1434f4.d: /root/stubdeps/rand_chacha/src/lib.rs

/root/repo/target/release/deps/librand_chacha-4afdfd2d9c1434f4.rlib: /root/stubdeps/rand_chacha/src/lib.rs

/root/repo/target/release/deps/librand_chacha-4afdfd2d9c1434f4.rmeta: /root/stubdeps/rand_chacha/src/lib.rs

/root/stubdeps/rand_chacha/src/lib.rs:
