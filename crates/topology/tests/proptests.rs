//! Property-based tests for the m-port n-tree substrate.

use ibfat_topology::{
    analysis, gcp_len, lca_switches, rank_in, Gcpg, Level, Network, NodeId, NodeLabel, SwitchLabel,
    TreeParams,
};
use proptest::prelude::*;

/// Strategy over laptop-sized valid (m, n) parameter pairs.
fn params() -> impl Strategy<Value = TreeParams> {
    prop_oneof![
        (1u32..=4).prop_map(|e| (2u32 << e, 2u32)), // m in {4..32}, n = 2
        (1u32..=2).prop_map(|e| (2u32 << e, 3u32)), // m in {4, 8}, n = 3
        Just((4u32, 4u32)),
        Just((2u32, 3u32)),
    ]
    .prop_map(|(m, n)| TreeParams::new(m, n).expect("valid params"))
}

fn node_pair() -> impl Strategy<Value = (TreeParams, NodeId, NodeId)> {
    params().prop_flat_map(|p| {
        let n = p.num_nodes();
        (Just(p), 0..n, 0..n).prop_map(|(p, a, b)| (p, NodeId(a), NodeId(b)))
    })
}

proptest! {
    #[test]
    fn label_id_roundtrip((p, a, _b) in node_pair()) {
        let label = NodeLabel::from_id(p, a);
        prop_assert_eq!(label.id(p), a);
    }

    #[test]
    fn switch_label_id_roundtrip(p in params(), seed in 0u32..10_000) {
        let id = ibfat_topology::SwitchId(seed % p.num_switches());
        let label = SwitchLabel::from_id(p, id);
        prop_assert_eq!(label.id(p), id);
    }

    #[test]
    fn gcp_is_symmetric_and_bounded((p, a, b) in node_pair()) {
        let la = NodeLabel::from_id(p, a);
        let lb = NodeLabel::from_id(p, b);
        let alpha = gcp_len(&la, &lb);
        prop_assert_eq!(alpha, gcp_len(&lb, &la));
        prop_assert!(alpha <= p.n());
        if a == b {
            prop_assert_eq!(alpha, p.n());
        } else {
            prop_assert!(alpha < p.n());
        }
    }

    #[test]
    fn lca_count_matches_closed_form((p, a, b) in node_pair()) {
        prop_assume!(a != b);
        let la = NodeLabel::from_id(p, a);
        let lb = NodeLabel::from_id(p, b);
        let alpha = gcp_len(&la, &lb);
        let lcas = lca_switches(p, &la, &lb);
        prop_assert_eq!(lcas.len() as u32, p.num_lcas(alpha));
        // LCAs are distinct and all at level alpha with the right prefix.
        let mut seen = std::collections::HashSet::new();
        for id in &lcas {
            prop_assert!(seen.insert(*id));
            let sl = SwitchLabel::from_id(p, *id);
            prop_assert_eq!(sl.level(), Level(alpha as u8));
            for i in 0..alpha as usize {
                prop_assert_eq!(sl.digit(i), la.digit(i));
            }
        }
    }

    #[test]
    fn rank_is_a_bijection_within_groups(p in params(), alpha in 0u32..4, probe in 0u32..10_000) {
        let alpha = alpha.min(p.n());
        let label = NodeLabel::from_id(p, NodeId(probe % p.num_nodes()));
        let g = Gcpg::of(p, &label, alpha);
        let mut seen = vec![false; g.len(p) as usize];
        for member in g.members(p) {
            let r = rank_in(p, &g, &member) as usize;
            prop_assert!(!seen[r], "duplicate rank {r}");
            seen[r] = true;
        }
        prop_assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn bfs_distance_equals_analytic(p in params(), src in 0u32..10_000) {
        // One BFS per case keeps this cheap; the pairwise check lives in
        // the unit tests for small fixed sizes.
        let net = Network::mport_ntree(p);
        let src = NodeId(src % p.num_nodes());
        let dist = analysis::bfs_hops(&net, src);
        for b in 0..p.num_nodes() {
            prop_assert_eq!(dist[b as usize], analysis::min_hops(p, src, NodeId(b)));
        }
    }

    #[test]
    fn construction_validates(p in params()) {
        Network::mport_ntree(p).validate().unwrap();
    }

    #[test]
    fn counts_match_closed_forms(p in params()) {
        let net = Network::mport_ntree(p);
        prop_assert_eq!(net.num_nodes() as u32, 2 * p.half().pow(p.n()));
        prop_assert_eq!(net.num_switches() as u32, (2 * p.n() - 1) * p.half().pow(p.n() - 1));
    }
}

mod digit_props {
    use ibfat_topology::Digits;
    use proptest::prelude::*;

    proptest! {
        #[test]
        fn from_slice_roundtrips(v in prop::collection::vec(0u8..200, 0..16)) {
            let d = Digits::from_slice(&v);
            prop_assert_eq!(d.as_slice(), v.as_slice());
            prop_assert_eq!(d.len(), v.len());
            prop_assert_eq!(d.is_empty(), v.is_empty());
        }

        #[test]
        fn push_appends(v in prop::collection::vec(0u8..200, 0..15), extra in 0u8..200) {
            let mut d = Digits::from_slice(&v);
            d.push(extra);
            prop_assert_eq!(d.len(), v.len() + 1);
            prop_assert_eq!(d[v.len()], extra);
        }

        #[test]
        fn common_prefix_is_symmetric_and_bounded(
            a in prop::collection::vec(0u8..4, 0..10),
            b in prop::collection::vec(0u8..4, 0..10),
        ) {
            let da = Digits::from_slice(&a);
            let db = Digits::from_slice(&b);
            let p = da.common_prefix_len(&db);
            prop_assert_eq!(p, db.common_prefix_len(&da));
            prop_assert!(p <= a.len().min(b.len()));
            prop_assert!(a[..p] == b[..p]);
            if p < a.len() && p < b.len() {
                prop_assert_ne!(a[p], b[p]);
            }
        }
    }
}
