//! Property-based tests: the simulator's invariants must hold for random
//! configurations, loads, seeds and policies.

use ibfat_routing::{Routing, RoutingKind};
use ibfat_sim::{
    bounds, run_once, InjectionProcess, PathSelection, RunSpec, SimConfig, TrafficPattern,
    VlAssignment,
};
use ibfat_topology::{Network, TreeParams};
use proptest::prelude::*;

#[derive(Debug, Clone)]
struct Case {
    m: u32,
    n: u32,
    kind: RoutingKind,
    vls: u8,
    buffers: u8,
    load: f64,
    seed: u64,
    injection: InjectionProcess,
    selection: PathSelection,
    assignment: VlAssignment,
    pattern_kind: u8,
}

fn case() -> impl Strategy<Value = Case> {
    (
        prop_oneof![Just((4u32, 2u32)), Just((4, 3)), Just((8, 2)), Just((2, 3))],
        prop_oneof![
            Just(RoutingKind::Mlid),
            Just(RoutingKind::Slid),
            Just(RoutingKind::UpDown)
        ],
        prop_oneof![Just(1u8), Just(2), Just(4)],
        prop_oneof![Just(1u8), Just(2)],
        0.05f64..1.0,
        any::<u64>(),
        prop_oneof![
            Just(InjectionProcess::Deterministic),
            Just(InjectionProcess::Poisson)
        ],
        prop_oneof![
            Just(PathSelection::Paper),
            Just(PathSelection::RandomPerPacket),
            Just(PathSelection::RoundRobinPerSource)
        ],
        prop_oneof![
            Just(VlAssignment::Random),
            Just(VlAssignment::DestinationHash),
            Just(VlAssignment::SourceHash)
        ],
        0u8..3,
    )
        .prop_map(
            |((m, n), kind, vls, buffers, load, seed, injection, selection, assignment, pk)| Case {
                m,
                n,
                kind,
                vls,
                buffers,
                load,
                seed,
                injection,
                selection,
                assignment,
                pattern_kind: pk,
            },
        )
}

fn pattern_for(case: &Case, nodes: u32) -> TrafficPattern {
    match case.pattern_kind {
        0 => TrafficPattern::Uniform,
        1 => TrafficPattern::paper_centric(),
        _ => TrafficPattern::bit_complement(nodes),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn conservation_and_bounds_hold_for_any_configuration(c in case()) {
        let params = TreeParams::new(c.m, c.n).expect("valid strategy params");
        let net = Network::mport_ntree(params);
        let routing = Routing::build(&net, c.kind);
        let mut cfg = SimConfig::paper(c.vls);
        cfg.buffer_packets = c.buffers;
        cfg.seed = c.seed;
        cfg.injection = c.injection;
        cfg.path_selection = c.selection;
        cfg.vl_assignment = c.assignment;
        let pattern = pattern_for(&c, params.num_nodes());
        let report = run_once(
            &net,
            &routing,
            cfg.clone(),
            pattern,
            RunSpec::new(c.load, 60_000),
        );

        // Conservation: nothing vanishes, nothing is double-counted.
        prop_assert_eq!(
            report.total_generated,
            report.total_delivered + report.dropped + report.in_flight_at_end
        );
        prop_assert_eq!(report.dropped, 0, "intact fabric never drops");

        // Physical ceilings.
        prop_assert!(report.accepted_bytes_per_ns_per_node <= 1.0 + 1e-9);
        prop_assert!(report.mean_link_utilization <= 1.0 + 1e-9);
        prop_assert!(report.max_link_utilization <= 1.0 + 1e-9);

        // Latency floor: nothing beats the 2-link minimum route.
        if report.latency.count() > 0 {
            let floor = bounds::zero_load_latency_ns(params, &cfg, params.n() - 1);
            prop_assert!(
                report.latency.min() >= floor,
                "min latency {} below floor {floor}",
                report.latency.min()
            );
        }
    }

    #[test]
    fn determinism_for_any_configuration(c in case()) {
        let params = TreeParams::new(c.m, c.n).expect("valid strategy params");
        let net = Network::mport_ntree(params);
        let routing = Routing::build(&net, c.kind);
        let mut cfg = SimConfig::paper(c.vls);
        cfg.seed = c.seed;
        cfg.path_selection = c.selection;
        cfg.vl_assignment = c.assignment;
        let pattern = pattern_for(&c, params.num_nodes());
        let spec = RunSpec::new(c.load, 30_000);
        let a = run_once(&net, &routing, cfg.clone(), pattern.clone(), spec);
        let b = run_once(&net, &routing, cfg, pattern, spec);
        prop_assert_eq!(a.events_processed, b.events_processed);
        prop_assert_eq!(a.total_generated, b.total_generated);
        prop_assert_eq!(a.total_delivered, b.total_delivered);
        prop_assert_eq!(a.avg_latency_ns(), b.avg_latency_ns());
    }
}

mod engine_props {
    use ibfat_sim::EventQueue;
    use proptest::prelude::*;

    proptest! {
        #[test]
        fn pops_sorted_and_fifo_within_timestamp(
            events in prop::collection::vec((0u64..50, 0u32..1000), 0..200)
        ) {
            let mut q = EventQueue::new();
            for (i, &(t, payload)) in events.iter().enumerate() {
                q.schedule(t, (payload, i));
            }
            prop_assert_eq!(q.len(), events.len());
            let mut last: Option<(u64, usize)> = None;
            while let Some((t, (_, idx))) = q.pop() {
                if let Some((lt, lidx)) = last {
                    prop_assert!(t >= lt, "time regressed");
                    if t == lt {
                        prop_assert!(idx > lidx, "FIFO broken within a timestamp");
                    }
                }
                last = Some((t, idx));
            }
            prop_assert!(q.is_empty());
        }
    }
}
