/root/repo/target/debug/examples/path_diversity-2dfa64e643a05580.d: examples/path_diversity.rs Cargo.toml

/root/repo/target/debug/examples/libpath_diversity-2dfa64e643a05580.rmeta: examples/path_diversity.rs Cargo.toml

examples/path_diversity.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
