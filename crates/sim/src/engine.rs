//! The discrete-event core: a monotonically ordered event calendar.
//!
//! Events at equal timestamps are processed in insertion order (a strictly
//! increasing sequence number breaks ties), so a simulation is a pure
//! function of its inputs and seed.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Simulation time in nanoseconds.
pub type Time = u64;

/// The event calendar. `E` is the simulator's event payload.
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Reverse<(Time, u64, EventBox<E>)>>,
    seq: u64,
}

/// Payload wrapper that never participates in heap ordering (ordering is
/// fully decided by `(time, seq)`, which is unique).
#[derive(Debug)]
struct EventBox<E>(E);

impl<E> PartialEq for EventBox<E> {
    fn eq(&self, _: &Self) -> bool {
        true
    }
}
impl<E> Eq for EventBox<E> {}
impl<E> PartialOrd for EventBox<E> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for EventBox<E> {
    fn cmp(&self, _: &Self) -> std::cmp::Ordering {
        std::cmp::Ordering::Equal
    }
}

impl<E> EventQueue<E> {
    /// An empty calendar.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            seq: 0,
        }
    }

    /// Schedule `event` at absolute time `at`.
    #[inline]
    pub fn schedule(&mut self, at: Time, event: E) {
        self.seq += 1;
        self.heap.push(Reverse((at, self.seq, EventBox(event))));
    }

    /// Pop the earliest event, if any.
    #[inline]
    pub fn pop(&mut self) -> Option<(Time, E)> {
        self.heap.pop().map(|Reverse((t, _, e))| (t, e.0))
    }

    /// Timestamp of the earliest pending event.
    #[inline]
    pub fn peek_time(&self) -> Option<Time> {
        self.heap.peek().map(|Reverse((t, _, _))| *t)
    }

    /// Number of pending events.
    #[inline]
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether the calendar is drained.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        EventQueue::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_pop_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(30, "c");
        q.schedule(10, "a");
        q.schedule(20, "b");
        assert_eq!(q.pop(), Some((10, "a")));
        assert_eq!(q.pop(), Some((20, "b")));
        assert_eq!(q.pop(), Some((30, "c")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut q = EventQueue::new();
        q.schedule(5, 1);
        q.schedule(5, 2);
        q.schedule(5, 3);
        assert_eq!(q.pop(), Some((5, 1)));
        assert_eq!(q.pop(), Some((5, 2)));
        assert_eq!(q.pop(), Some((5, 3)));
    }

    #[test]
    fn peek_and_len() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
        q.schedule(42, ());
        assert_eq!(q.peek_time(), Some(42));
        assert_eq!(q.len(), 1);
    }
}
