/root/repo/target/release/deps/ibfat_cli-30f4842e6da92995.d: crates/cli/src/lib.rs crates/cli/src/args.rs crates/cli/src/commands.rs

/root/repo/target/release/deps/ibfat_cli-30f4842e6da92995: crates/cli/src/lib.rs crates/cli/src/args.rs crates/cli/src/commands.rs

crates/cli/src/lib.rs:
crates/cli/src/args.rs:
crates/cli/src/commands.rs:
