//! Dedicated worker executable for the multi-process driver. The
//! production binaries (`ibfat`, the bench harness) re-exec themselves
//! via `maybe_run_worker`, but tests and external supervisors can
//! point `IBFAT_WORKER_EXE` (or the `worker_exe` builder knob) at this
//! bin to get a worker with nothing else linked in.

fn main() {
    std::process::exit(ibfat_driver::worker_main());
}
