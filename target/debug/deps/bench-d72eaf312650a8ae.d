/root/repo/target/debug/deps/bench-d72eaf312650a8ae.d: crates/bench/src/bin/bench.rs Cargo.toml

/root/repo/target/debug/deps/libbench-d72eaf312650a8ae.rmeta: crates/bench/src/bin/bench.rs Cargo.toml

crates/bench/src/bin/bench.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
