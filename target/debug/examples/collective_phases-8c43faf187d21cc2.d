/root/repo/target/debug/examples/collective_phases-8c43faf187d21cc2.d: examples/collective_phases.rs Cargo.toml

/root/repo/target/debug/examples/libcollective_phases-8c43faf187d21cc2.rmeta: examples/collective_phases.rs Cargo.toml

examples/collective_phases.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
