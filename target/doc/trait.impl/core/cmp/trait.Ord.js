(function() {
    const implementors = Object.fromEntries([["ibfat_routing",[["impl <a class=\"trait\" href=\"https://doc.rust-lang.org/1.95.0/core/cmp/trait.Ord.html\" title=\"trait core::cmp::Ord\">Ord</a> for <a class=\"struct\" href=\"ibfat_routing/struct.Lid.html\" title=\"struct ibfat_routing::Lid\">Lid</a>",0]]],["ibfat_topology",[["impl <a class=\"trait\" href=\"https://doc.rust-lang.org/1.95.0/core/cmp/trait.Ord.html\" title=\"trait core::cmp::Ord\">Ord</a> for <a class=\"struct\" href=\"ibfat_topology/struct.Level.html\" title=\"struct ibfat_topology::Level\">Level</a>",0],["impl <a class=\"trait\" href=\"https://doc.rust-lang.org/1.95.0/core/cmp/trait.Ord.html\" title=\"trait core::cmp::Ord\">Ord</a> for <a class=\"struct\" href=\"ibfat_topology/struct.NodeId.html\" title=\"struct ibfat_topology::NodeId\">NodeId</a>",0],["impl <a class=\"trait\" href=\"https://doc.rust-lang.org/1.95.0/core/cmp/trait.Ord.html\" title=\"trait core::cmp::Ord\">Ord</a> for <a class=\"struct\" href=\"ibfat_topology/struct.PortNum.html\" title=\"struct ibfat_topology::PortNum\">PortNum</a>",0],["impl <a class=\"trait\" href=\"https://doc.rust-lang.org/1.95.0/core/cmp/trait.Ord.html\" title=\"trait core::cmp::Ord\">Ord</a> for <a class=\"struct\" href=\"ibfat_topology/struct.SwitchId.html\" title=\"struct ibfat_topology::SwitchId\">SwitchId</a>",0]]]]);
    if (window.register_implementors) {
        window.register_implementors(implementors);
    } else {
        window.pending_implementors = implementors;
    }
})()
//{"start":59,"fragment_lengths":[261,1039]}