//! Every worked example in the paper's text, verified end to end through
//! the public API. These pin the reproduction to the paper: if any of
//! these fail, we are no longer implementing the published scheme.

use ib_fabric::prelude::*;
use ib_fabric::routing::Lid;
use ib_fabric::topology::{gcp_len, lca_switches, rank_in, Gcpg, Level, NodeLabel, SwitchLabel};

fn ft43() -> TreeParams {
    TreeParams::new(4, 3).unwrap()
}

#[test]
fn section3_counts() {
    // "the height of the 4-port 3-tree is 4. There are 16 processing nodes
    // and 20 communication switches."
    let p = ft43();
    assert_eq!(p.height(), 4);
    assert_eq!(p.num_nodes(), 16);
    assert_eq!(p.num_switches(), 20);
}

#[test]
fn section3_switch_sets() {
    // "The sets of switches in level 0, 1, and 2 are {SW<00,0>, SW<01,0>,
    // SW<10,0>, SW<11,0>}, {SW<00,1>, ..., SW<31,1>}, and {...}."
    let p = ft43();
    let level0: Vec<String> = SwitchLabel::all_at_level(p, Level(0))
        .map(|s| s.to_string())
        .collect();
    assert_eq!(
        level0,
        vec!["SW<00, 0>", "SW<01, 0>", "SW<10, 0>", "SW<11, 0>"]
    );
    assert_eq!(SwitchLabel::all_at_level(p, Level(1)).count(), 8);
    assert_eq!(SwitchLabel::all_at_level(p, Level(2)).count(), 8);
}

#[test]
fn definitions_1_to_4() {
    // gcp(P(100), P(111)) = "1"; lca = {SW<10,1>, SW<11,1>}; both in
    // gcpg("1", 1) of 4 nodes; ranks 0 and 3; PIDs 4 and 7.
    let p = ft43();
    let a = NodeLabel::new(p, &[1, 0, 0]).unwrap();
    let b = NodeLabel::new(p, &[1, 1, 1]).unwrap();
    assert_eq!(gcp_len(&a, &b), 1);
    let lcas: Vec<String> = lca_switches(p, &a, &b)
        .into_iter()
        .map(|id| SwitchLabel::from_id(p, id).to_string())
        .collect();
    assert_eq!(lcas, vec!["SW<10, 1>", "SW<11, 1>"]);
    let g = Gcpg::new(p, &[1]);
    assert_eq!(g.len(p), 4);
    assert_eq!(rank_in(p, &g, &a), 0);
    assert_eq!(rank_in(p, &g, &b), 3);
    assert_eq!(a.id(p), NodeId(4));
    assert_eq!(b.id(p), NodeId(7));
}

#[test]
fn section4_addressing() {
    // LMC = log2((m/2)^(n-1)) = 2; BaseLID(P(010)) = 9;
    // LIDset(P(010)) = {9, 10, 11, 12}.
    let fabric = Fabric::builder(4, 3).build().unwrap();
    let space = fabric.routing().lid_space();
    assert_eq!(space.lmc(), 2);
    let p010 = NodeLabel::new(ft43(), &[0, 1, 0]).unwrap();
    let id = p010.id(ft43());
    assert_eq!(space.base_lid(id), Lid(9));
    let lids: Vec<u32> = space.lids(id).map(|l| l.0).collect();
    assert_eq!(lids, vec![9, 10, 11, 12]);
}

#[test]
fn section4_path_selection() {
    // "If each processing node in gcpg(0, 1) wants to send message to
    // P(100) in gcpg(1, 1), P(000), P(001), P(010), and P(011) will select
    // 17, 18, 19, and 20 as the LID of P(100)" (base LID 17 = PID 4 * 4 + 1).
    let fabric = Fabric::builder(4, 3).build().unwrap();
    let dst = NodeId(4);
    for (i, src) in (0..4).enumerate() {
        let dlid = fabric.routing().select_dlid(NodeId(src), dst);
        assert_eq!(dlid, Lid(17 + i as u32));
    }
}

#[test]
fn section4_forwarding_walkthrough_path_q() {
    // "ports SW<00,2>, SW<00,1>, SW<00,0>, SW<10,1>, and SW<10,2> will be
    // traversed in sequence" for the packet P(000) -> P(100) with DLID 17.
    let fabric = Fabric::builder(4, 3).build().unwrap();
    let route = fabric.route_to_lid(NodeId(0), Lid(17)).unwrap();
    assert_eq!(route.dst, NodeId(4));
    let switches: Vec<String> = route
        .hops
        .iter()
        .map(|h| SwitchLabel::from_id(ft43(), h.switch).to_string())
        .collect();
    assert_eq!(
        switches,
        vec![
            "SW<00, 2>",
            "SW<00, 1>",
            "SW<00, 0>",
            "SW<10, 1>",
            "SW<10, 2>"
        ]
    );
}

#[test]
fn section4_routes_q_r_s_t_use_distinct_roots_and_disjoint_ascents() {
    // Figure 11: the four packets reach P(100) through the four roots.
    let fabric = Fabric::builder(4, 3).build().unwrap();
    let params = fabric.params();
    let mut roots = std::collections::HashSet::new();
    let mut up_links = std::collections::HashSet::new();
    for src in 0..4 {
        let route = fabric.route(NodeId(src), NodeId(4)).unwrap();
        for hop in &route.hops {
            if SwitchLabel::from_id(params, hop.switch).level().0 == 0 {
                roots.insert(hop.switch);
            }
        }
        for link in route.upward_links(params) {
            assert!(up_links.insert(link), "upward links must be disjoint");
        }
    }
    assert_eq!(roots.len(), 4);
}

#[test]
fn figure_8_forwarding_table_shape() {
    // Section 4's motivating example (an 8-port 2-tree): packets from one
    // leaf switch to the four nodes E, F, G, H of another leaf spread
    // over four distinct least-common-ancestor roots.
    let fabric = Fabric::builder(8, 2).build().unwrap();
    let params = fabric.params();
    // Source x = leaf of nodes 0..4; destinations E..H = nodes 4..8
    // (the adjacent leaf; gcp = 0 would need digit-0 difference, so pick
    // nodes 16..20 whose first digit differs).
    let mut roots = std::collections::HashSet::new();
    for dst in 16..20 {
        let route = fabric.route(NodeId(0), NodeId(dst)).unwrap();
        // The route from node 0 to each of the 4 nodes of that leaf peaks
        // at SOME root; with a single source they need not differ, but the
        // descent must enter through the destination leaf.
        let last = route.hops.last().unwrap();
        let leaf = SwitchLabel::from_id(params, last.switch);
        assert_eq!(u32::from(leaf.level().0), params.n() - 1);
        for hop in &route.hops {
            if SwitchLabel::from_id(params, hop.switch).level().0 == 0 {
                roots.insert(hop.switch);
            }
        }
    }
    // All four destinations share the same source subgroup rank, so the
    // source uses the same offset — but destination leaf-level spreading
    // still exercises all roots via different sources:
    let mut roots_all_sources = std::collections::HashSet::new();
    for src in [0u32, 1, 2, 3] {
        let route = fabric.route(NodeId(src), NodeId(16)).unwrap();
        for hop in &route.hops {
            if SwitchLabel::from_id(params, hop.switch).level().0 == 0 {
                roots_all_sources.insert(hop.switch);
            }
        }
    }
    assert_eq!(roots_all_sources.len(), 4, "four sources, four roots");
}
