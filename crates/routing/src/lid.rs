use ibfat_topology::NodeId;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A Local Identifier — the InfiniBand subnet-local address of an endport.
/// IBA unicast LIDs are `0x0001..=0xBFFF`; LID 0 is reserved (and used here
/// as "none" in packed tables). Scale-out configurations (FT(16, 3) and up)
/// exceed the 16-bit range, so LIDs carry a 32-bit payload and the modeled
/// *extended* unicast space tops out at `2^21` — see [`Lid::MAX_EXTENDED`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Lid(pub u32);

impl Lid {
    /// First valid unicast LID.
    pub const MIN_UNICAST: Lid = Lid(1);
    /// Last valid unicast LID per the IBA spec.
    pub const MAX_UNICAST: Lid = Lid(0xBFFF);
    /// Last LID admitted under the modeled extended-LID regime, sized for
    /// FT(32, 3)'s `2^21`-LID MLID assignment.
    pub const MAX_EXTENDED: Lid = Lid(1 << 21);

    /// The LID as a usize index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Whether this is a valid IBA 16-bit unicast LID.
    #[inline]
    pub fn is_unicast(self) -> bool {
        self >= Self::MIN_UNICAST && self <= Self::MAX_UNICAST
    }
}

impl fmt::Display for Lid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "LID{}", self.0)
    }
}

/// The subnet's LID assignment: every node owns a window of `2^lmc`
/// consecutive LIDs starting at its base LID, exactly as an InfiniBand
/// subnet manager partitions the LID space under the LMC mechanism.
///
/// Base LIDs are laid out densely in node-id (PID) order starting at LID 1:
/// `base(P) = PID(P) * 2^lmc + 1`. This is the paper's `BaseLID` formula
/// (for `lmc = 0` it degenerates to the SLID scheme's `PID + 1`).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct LidSpace {
    lmc: u32,
    num_nodes: u32,
}

impl LidSpace {
    /// Assign `2^lmc` LIDs to each of `num_nodes` nodes.
    ///
    /// # Panics
    /// Panics if the assignment would exceed the extended LID space
    /// (`2^21` LIDs) or an `lmc` above 16 bits. The IBA cap of `lmc <= 7`
    /// is deliberately not enforced: the extended-LID regime models
    /// fabrics (e.g. FT(32, 3), `lmc = 8`) past that limit.
    pub fn new(num_nodes: u32, lmc: u32) -> Self {
        assert!(lmc <= 16, "LMC beyond 16 bits is unsupported, got {lmc}");
        let total = u64::from(num_nodes) << lmc;
        assert!(
            total <= u64::from(Lid::MAX_EXTENDED.0),
            "{num_nodes} nodes x 2^{lmc} LIDs exceeds the extended LID space"
        );
        LidSpace { lmc, num_nodes }
    }

    /// The LID Mask Control value.
    #[inline]
    pub fn lmc(&self) -> u32 {
        self.lmc
    }

    /// LIDs owned by each node, `2^lmc`.
    #[inline]
    pub fn lids_per_node(&self) -> u32 {
        1 << self.lmc
    }

    /// Number of addressed nodes.
    #[inline]
    pub fn num_nodes(&self) -> u32 {
        self.num_nodes
    }

    /// The base LID of a node.
    #[inline]
    pub fn base_lid(&self, node: NodeId) -> Lid {
        debug_assert!(node.0 < self.num_nodes);
        Lid((node.0 << self.lmc) + 1)
    }

    /// All LIDs owned by a node, ascending.
    pub fn lids(&self, node: NodeId) -> impl Iterator<Item = Lid> {
        let base = self.base_lid(node).0;
        (base..base + self.lids_per_node()).map(Lid)
    }

    /// A specific LID of a node: `base + offset`.
    ///
    /// # Panics
    /// Panics (debug) if `offset >= 2^lmc`.
    #[inline]
    pub fn lid_with_offset(&self, node: NodeId, offset: u32) -> Lid {
        debug_assert!(
            offset < self.lids_per_node(),
            "offset {offset} out of range"
        );
        Lid(self.base_lid(node).0 + offset)
    }

    /// The highest assigned LID (tables are sized `max_lid + 1`).
    #[inline]
    pub fn max_lid(&self) -> Lid {
        Lid(self.num_nodes << self.lmc)
    }

    /// Resolve a LID to its owning node and the offset within the node's
    /// window, or `None` for unassigned LIDs.
    #[inline]
    pub fn resolve(&self, lid: Lid) -> Option<(NodeId, u32)> {
        if lid.0 == 0 || lid > self.max_lid() {
            return None;
        }
        let linear = lid.0 - 1;
        Some((
            NodeId(linear >> self.lmc),
            linear & (self.lids_per_node() - 1),
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_base_lid_example() {
        // FT(4, 3): LMC = 2, BaseLID(P(010)) = 9 with LIDset {9, 10, 11, 12}
        // (PID(P(010)) = 2).
        let space = LidSpace::new(16, 2);
        assert_eq!(space.base_lid(NodeId(2)), Lid(9));
        let lids: Vec<u32> = space.lids(NodeId(2)).map(|l| l.0).collect();
        assert_eq!(lids, vec![9, 10, 11, 12]);
    }

    #[test]
    fn resolve_inverts_assignment() {
        let space = LidSpace::new(37, 3);
        for node in 0..37 {
            for (off, lid) in space.lids(NodeId(node)).enumerate() {
                assert_eq!(space.resolve(lid), Some((NodeId(node), off as u32)));
            }
        }
        assert_eq!(space.resolve(Lid(0)), None);
        assert_eq!(space.resolve(Lid(space.max_lid().0 + 1)), None);
    }

    #[test]
    fn slid_degenerate_case() {
        let space = LidSpace::new(16, 0);
        assert_eq!(space.base_lid(NodeId(0)), Lid(1));
        assert_eq!(space.base_lid(NodeId(15)), Lid(16));
        assert_eq!(space.lids_per_node(), 1);
        assert_eq!(space.max_lid(), Lid(16));
    }

    #[test]
    fn windows_are_disjoint_and_dense() {
        let space = LidSpace::new(8, 2);
        let mut seen = vec![false; space.max_lid().index() + 1];
        for node in 0..8 {
            for lid in space.lids(NodeId(node)) {
                assert!(!seen[lid.index()], "LID {lid} assigned twice");
                seen[lid.index()] = true;
            }
        }
        assert!(seen[1..].iter().all(|&s| s), "gap in the LID space");
    }

    #[test]
    fn extended_regime_admits_large_fabrics() {
        // FT(32, 3): 8192 nodes, lmc 8 — past the IBA 16-bit range but
        // exactly the extended budget.
        let space = LidSpace::new(8192, 8);
        assert_eq!(space.max_lid(), Lid::MAX_EXTENDED);
        assert_eq!(space.base_lid(NodeId(8191)), Lid(8191 * 256 + 1));
        assert_eq!(space.resolve(Lid::MAX_EXTENDED), Some((NodeId(8191), 255)));
    }

    #[test]
    #[should_panic(expected = "extended LID space")]
    fn overflow_panics() {
        // 50_000 x 2^7 = 6.4M LIDs: beyond even the extended budget.
        LidSpace::new(50_000, 7);
    }

    #[test]
    #[should_panic(expected = "LMC beyond 16 bits")]
    fn lmc_cap_panics() {
        LidSpace::new(4, 17);
    }
}
