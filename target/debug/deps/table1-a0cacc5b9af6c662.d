/root/repo/target/debug/deps/table1-a0cacc5b9af6c662.d: crates/bench/src/bin/table1.rs

/root/repo/target/debug/deps/libtable1-a0cacc5b9af6c662.rmeta: crates/bench/src/bin/table1.rs

crates/bench/src/bin/table1.rs:
