//! Topology discovery: the SM's directed-route sweep.
//!
//! Starting from one endport, the sweep walks every cable exactly once,
//! reading each device's kind and port count and recording which port of
//! which device each cable joins — the information real SMP
//! (`NodeInfo` / `PortInfo`) sweeps return. Devices are numbered in
//! discovery order; nothing of the construction-time identity leaks into
//! the result except the opaque `handle` the manager later uses to
//! address the physical device (the SM's directed route in real
//! hardware).

use ibfat_topology::{DeviceKind, DeviceRef, Network, NodeId, PortNum};
use std::collections::{HashMap, VecDeque};

/// One discovered device.
#[derive(Debug, Clone)]
pub struct DiscoveredDevice {
    /// Opaque handle for addressing the physical device (the directed
    /// route, in real hardware).
    pub handle: DeviceRef,
    /// Switch or end node.
    pub kind: DeviceKind,
    /// Number of external ports.
    pub num_ports: u8,
}

/// One discovered cable: `(device a, port a) <-> (device b, port b)`,
/// with devices given as discovery-order indices.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Edge {
    /// Discovery index of one endpoint.
    pub a: usize,
    /// Port on `a` (IB numbering).
    pub a_port: PortNum,
    /// Discovery index of the other endpoint.
    pub b: usize,
    /// Port on `b` (IB numbering).
    pub b_port: PortNum,
}

/// The sweep result.
#[derive(Debug, Clone)]
pub struct DiscoveredTopology {
    /// Devices in discovery order. Index 0 is the sweep's starting node.
    pub devices: Vec<DiscoveredDevice>,
    /// Every cable, discovered exactly once.
    pub edges: Vec<Edge>,
}

impl DiscoveredTopology {
    /// Indices of the discovered switches.
    pub fn switches(&self) -> impl Iterator<Item = usize> + '_ {
        self.devices
            .iter()
            .enumerate()
            .filter(|(_, d)| d.kind == DeviceKind::Switch)
            .map(|(i, _)| i)
    }

    /// Indices of the discovered end nodes.
    pub fn nodes(&self) -> impl Iterator<Item = usize> + '_ {
        self.devices
            .iter()
            .enumerate()
            .filter(|(_, d)| d.kind == DeviceKind::Node)
            .map(|(i, _)| i)
    }

    /// Per-device adjacency: `adj[i]` lists `(my port, peer index, peer port)`.
    pub fn adjacency(&self) -> Vec<Vec<(PortNum, usize, PortNum)>> {
        let mut adj = vec![Vec::new(); self.devices.len()];
        for e in &self.edges {
            adj[e.a].push((e.a_port, e.b, e.b_port));
            adj[e.b].push((e.b_port, e.a, e.a_port));
        }
        for list in &mut adj {
            list.sort_by_key(|(p, _, _)| p.0);
        }
        adj
    }
}

/// Sweep the subnet starting from `start`'s endport.
///
/// Only devices reachable over live cables appear; on a degraded subnet
/// the result may cover a fragment of the physical fabric, exactly as a
/// real sweep would.
pub fn discover(net: &Network, start: NodeId) -> DiscoveredTopology {
    fn intern(
        net: &Network,
        r: DeviceRef,
        index: &mut HashMap<DeviceRef, usize>,
        devices: &mut Vec<DiscoveredDevice>,
        queue: &mut VecDeque<DeviceRef>,
    ) -> usize {
        if let Some(&i) = index.get(&r) {
            return i;
        }
        let i = devices.len();
        index.insert(r, i);
        let dev = net.device(r);
        devices.push(DiscoveredDevice {
            handle: r,
            kind: dev.kind(),
            num_ports: dev.num_ports() as u8,
        });
        queue.push_back(r);
        i
    }

    let mut index: HashMap<DeviceRef, usize> = HashMap::new();
    let mut devices = Vec::new();
    let mut edges = Vec::new();
    let mut queue = VecDeque::new();

    intern(
        net,
        DeviceRef::Node(start),
        &mut index,
        &mut devices,
        &mut queue,
    );
    while let Some(here) = queue.pop_front() {
        let here_idx = index[&here];
        for (port, peer) in net.device(here).peers() {
            let peer_idx = intern(net, peer.device, &mut index, &mut devices, &mut queue);
            // Record each cable once: when first seen from either side.
            let duplicate = edges.iter().any(|e: &Edge| {
                (e.a == here_idx && e.a_port == port) || (e.b == here_idx && e.b_port == port)
            });
            if !duplicate {
                edges.push(Edge {
                    a: here_idx,
                    a_port: port,
                    b: peer_idx,
                    b_port: peer.port,
                });
            }
        }
    }

    DiscoveredTopology { devices, edges }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ibfat_topology::TreeParams;

    fn sweep(m: u32, n: u32) -> (Network, DiscoveredTopology) {
        let net = Network::mport_ntree(TreeParams::new(m, n).unwrap());
        let disc = discover(&net, NodeId(0));
        (net, disc)
    }

    #[test]
    fn discovers_every_device_and_cable() {
        for (m, n) in [(4, 2), (4, 3), (8, 2)] {
            let (net, disc) = sweep(m, n);
            assert_eq!(
                disc.devices.len(),
                net.num_nodes() + net.num_switches(),
                "IBFT({m},{n}) devices"
            );
            assert_eq!(disc.edges.len(), net.links().len(), "IBFT({m},{n}) cables");
            assert_eq!(disc.switches().count(), net.num_switches());
            assert_eq!(disc.nodes().count(), net.num_nodes());
        }
    }

    #[test]
    fn start_node_is_device_zero() {
        let (_, disc) = sweep(4, 2);
        assert_eq!(disc.devices[0].handle, DeviceRef::Node(NodeId(0)));
        assert_eq!(disc.devices[0].kind, DeviceKind::Node);
        assert_eq!(disc.devices[0].num_ports, 1);
    }

    #[test]
    fn edges_reference_valid_ports() {
        let (_, disc) = sweep(8, 2);
        for e in &disc.edges {
            assert!(e.a_port.0 >= 1 && e.a_port.0 <= disc.devices[e.a].num_ports);
            assert!(e.b_port.0 >= 1 && e.b_port.0 <= disc.devices[e.b].num_ports);
        }
    }

    #[test]
    fn degraded_fabric_discovers_the_reachable_fragment() {
        let params = TreeParams::new(4, 2).unwrap();
        let full = Network::mport_ntree(params);
        let mut net = full.clone();
        // Cut node 7 off.
        let idx = net
            .links()
            .iter()
            .position(|l| {
                l.a.device == DeviceRef::Node(NodeId(7)) || l.b.device == DeviceRef::Node(NodeId(7))
            })
            .unwrap();
        net.remove_link(idx);
        let disc = discover(&net, NodeId(0));
        assert_eq!(
            disc.devices.len(),
            full.num_nodes() + full.num_switches() - 1
        );
        assert!(disc
            .devices
            .iter()
            .all(|d| d.handle != DeviceRef::Node(NodeId(7))));
    }

    #[test]
    fn adjacency_is_port_sorted_and_symmetric() {
        let (_, disc) = sweep(4, 2);
        let adj = disc.adjacency();
        for (i, list) in adj.iter().enumerate() {
            for window in list.windows(2) {
                assert!(window[0].0 < window[1].0, "device {i} ports out of order");
            }
            for &(my_port, peer, peer_port) in list {
                assert!(adj[peer]
                    .iter()
                    .any(|&(p, q, qp)| p == peer_port && q == i && qp == my_port));
            }
        }
    }
}
