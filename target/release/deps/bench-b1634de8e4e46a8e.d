/root/repo/target/release/deps/bench-b1634de8e4e46a8e.d: crates/bench/src/bin/bench.rs

/root/repo/target/release/deps/bench-b1634de8e4e46a8e: crates/bench/src/bin/bench.rs

crates/bench/src/bin/bench.rs:
