//! The flight recorder: per-packet event timelines.
//!
//! When `SimConfig::trace_first_packets > 0`, the simulator records every
//! lifecycle event of the first N generated packets. Traces explain *why*
//! a packet saw the latency it did — which buffer it waited in, which
//! grant it lost — and anchor the timing model in tests.

use serde::{Deserialize, Serialize};

/// One recorded packet lifecycle event.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TraceEvent {
    /// Entered the source queue.
    Generated,
    /// First byte left the source endport.
    InjectionStart,
    /// Header reached a switch input buffer.
    HeaderArrive {
        /// Switch id.
        sw: u32,
        /// 0-based input port.
        port: u8,
    },
    /// Forwarding decision made.
    Routed {
        /// Switch id.
        sw: u32,
        /// 0-based output port.
        out_port: u8,
    },
    /// Granted into the output buffer.
    Granted {
        /// Switch id.
        sw: u32,
        /// 0-based output port.
        out_port: u8,
    },
    /// Started onto the next link.
    TransmitStart {
        /// Switch id.
        sw: u32,
        /// 0-based output port.
        out_port: u8,
    },
    /// Tail arrived at the destination endport.
    Delivered,
    /// Discarded for lack of an LFT entry.
    Dropped {
        /// Switch id.
        sw: u32,
    },
}

/// The timeline of one packet.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PacketTrace {
    /// Source node id.
    pub src: u32,
    /// Destination node id.
    pub dst: u32,
    /// DLID carried.
    pub dlid: u32,
    /// Virtual lane.
    pub vl: u8,
    /// `(time_ns, event)` pairs in order.
    pub events: Vec<(u64, TraceEvent)>,
}

impl PacketTrace {
    /// Timestamp of the first event (generation).
    pub fn t_start(&self) -> u64 {
        self.events.first().map(|&(t, _)| t).unwrap_or(0)
    }

    /// Whether the packet completed (delivered or dropped).
    pub fn completed(&self) -> bool {
        matches!(
            self.events.last(),
            Some((_, TraceEvent::Delivered | TraceEvent::Dropped { .. }))
        )
    }

    /// End-to-end latency if delivered.
    pub fn latency_ns(&self) -> Option<u64> {
        match self.events.last() {
            Some(&(t, TraceEvent::Delivered)) => Some(t - self.t_start()),
            _ => None,
        }
    }

    /// Render a human-readable timeline.
    pub fn render(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "packet N{} -> N{} (DLID {}, VL {}):",
            self.src, self.dst, self.dlid, self.vl
        );
        let t0 = self.t_start();
        for &(t, ev) in &self.events {
            let what = match ev {
                TraceEvent::Generated => "generated".to_string(),
                TraceEvent::InjectionStart => "first byte on wire".to_string(),
                TraceEvent::HeaderArrive { sw, port } => {
                    format!("header at S{sw} in-port {}", port + 1)
                }
                TraceEvent::Routed { sw, out_port } => {
                    format!("routed at S{sw} -> out-port {}", out_port + 1)
                }
                TraceEvent::Granted { sw, out_port } => {
                    format!("granted into S{sw} out-buffer {}", out_port + 1)
                }
                TraceEvent::TransmitStart { sw, out_port } => {
                    format!("leaving S{sw} via port {}", out_port + 1)
                }
                TraceEvent::Delivered => "delivered".to_string(),
                TraceEvent::Dropped { sw } => format!("DROPPED at S{sw} (no LFT entry)"),
            };
            let _ = writeln!(out, "  t+{:>6} ns  {what}", t - t0);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> PacketTrace {
        PacketTrace {
            src: 0,
            dst: 4,
            dlid: 17,
            vl: 0,
            events: vec![
                (100, TraceEvent::Generated),
                (100, TraceEvent::InjectionStart),
                (120, TraceEvent::HeaderArrive { sw: 12, port: 0 }),
                (
                    220,
                    TraceEvent::Routed {
                        sw: 12,
                        out_port: 2,
                    },
                ),
                (
                    220,
                    TraceEvent::Granted {
                        sw: 12,
                        out_port: 2,
                    },
                ),
                (
                    220,
                    TraceEvent::TransmitStart {
                        sw: 12,
                        out_port: 2,
                    },
                ),
                (496, TraceEvent::Delivered),
            ],
        }
    }

    #[test]
    fn latency_and_completion() {
        let t = sample();
        assert!(t.completed());
        assert_eq!(t.latency_ns(), Some(396));
        assert_eq!(t.t_start(), 100);
    }

    #[test]
    fn incomplete_trace_has_no_latency() {
        let mut t = sample();
        t.events.pop();
        assert!(!t.completed());
        assert_eq!(t.latency_ns(), None);
    }

    #[test]
    fn render_contains_the_route() {
        let text = sample().render();
        assert!(text.contains("N0 -> N4"));
        assert!(text.contains("header at S12"));
        assert!(text.contains("delivered"));
    }
}
