/root/repo/target/debug/deps/ibfat_repro-514a2181027b1b2a.d: src/lib.rs

/root/repo/target/debug/deps/libibfat_repro-514a2181027b1b2a.rmeta: src/lib.rs

src/lib.rs:
