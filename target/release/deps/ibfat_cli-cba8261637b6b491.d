/root/repo/target/release/deps/ibfat_cli-cba8261637b6b491.d: crates/cli/src/lib.rs crates/cli/src/args.rs crates/cli/src/commands.rs

/root/repo/target/release/deps/libibfat_cli-cba8261637b6b491.rlib: crates/cli/src/lib.rs crates/cli/src/args.rs crates/cli/src/commands.rs

/root/repo/target/release/deps/libibfat_cli-cba8261637b6b491.rmeta: crates/cli/src/lib.rs crates/cli/src/args.rs crates/cli/src/commands.rs

crates/cli/src/lib.rs:
crates/cli/src/args.rs:
crates/cli/src/commands.rs:
