//! Generic up*/down* routing, the classical deadlock-free scheme for
//! *irregular* topologies that the paper contrasts with (Section 1: such
//! algorithms "may not take all the properties of a regular topology into
//! account").
//!
//! The implementation is topology-agnostic: it only reads the cabled graph.
//!
//! 1. Orient every inter-switch link by breadth-first depth from a root
//!    switch (ties broken by switch id): the end with the smaller
//!    `(depth, id)` is *up*. The up-link relation is then acyclic.
//! 2. A legal path climbs zero or more up-links, then descends zero or
//!    more down-links — never down-then-up, which makes the channel
//!    dependency graph acyclic.
//! 3. For each destination, every switch picks the first hop of a shortest
//!    legal path; ties are rotated by DLID so different destinations
//!    spread over equivalent ports.

use crate::{Lft, Lid, LidSpace, RoutingScheme};
use ibfat_topology::{DeviceRef, Network, NodeId, PortNum, SwitchId};
use std::collections::VecDeque;

/// Up*/down* routing over the cabled graph (stateless).
#[derive(Debug, Clone, Copy, Default)]
pub struct UpDownScheme;

/// Precomputed orientation of the switch graph.
struct Orientation {
    /// BFS depth of each switch from the root.
    depth: Vec<u32>,
    /// For each switch: (peer switch, out port) of every inter-switch link.
    adj: Vec<Vec<(SwitchId, PortNum)>>,
}

impl Orientation {
    fn build(net: &Network) -> Orientation {
        let num = net.num_switches();
        let mut adj: Vec<Vec<(SwitchId, PortNum)>> = vec![Vec::new(); num];
        for (sw, list) in adj.iter_mut().enumerate() {
            for (port, peer) in net.switch(SwitchId(sw as u32)).peers() {
                if let DeviceRef::Switch(other) = peer.device {
                    list.push((other, port));
                }
            }
        }
        // BFS from switch 0 (for IBFT this is a root switch, but any
        // connected graph works).
        let mut depth = vec![u32::MAX; num];
        let mut queue = VecDeque::new();
        depth[0] = 0;
        queue.push_back(0usize);
        while let Some(s) = queue.pop_front() {
            for &(t, _) in &adj[s] {
                if depth[t.index()] == u32::MAX {
                    depth[t.index()] = depth[s] + 1;
                    queue.push_back(t.index());
                }
            }
        }
        assert!(
            depth.iter().all(|&d| d != u32::MAX),
            "switch graph is disconnected"
        );
        Orientation { depth, adj }
    }

    /// True if the link `from -> to` is an *up* step (toward the root).
    #[inline]
    fn is_up(&self, from: SwitchId, to: SwitchId) -> bool {
        let kf = (self.depth[from.index()], from.0);
        let kt = (self.depth[to.index()], to.0);
        kt < kf
    }
}

impl RoutingScheme for UpDownScheme {
    fn name(&self) -> &'static str {
        "UpDown"
    }

    fn lid_space(&self, net: &Network) -> LidSpace {
        LidSpace::new(net.params().num_nodes(), 0)
    }

    fn build_lfts(&self, net: &Network, space: &LidSpace) -> Vec<Lft> {
        let orient = Orientation::build(net);
        let num = net.num_switches();
        let mut lfts: Vec<Lft> = (0..num).map(|_| Lft::new(space.max_lid())).collect();

        // Process switches in ascending (depth, id) order when propagating
        // the up-then-down distance, so parents are final before children.
        let mut order: Vec<usize> = (0..num).collect();
        order.sort_by_key(|&s| (orient.depth[s], s));

        for node in 0..net.num_nodes() as u32 {
            let dst = NodeId(node);
            let lid = space.base_lid(dst);
            let attach = match net.peer_of(DeviceRef::Node(dst), PortNum(1)) {
                Some(p) => p,
                None => continue,
            };
            let (s_d, node_port) = match attach.device {
                DeviceRef::Switch(s) => (s, attach.port),
                _ => continue,
            };

            // d_down[s]: shortest all-down path s -> s_d; BFS from s_d
            // along *up* steps (the reverse of a down step).
            let mut d_down = vec![u32::MAX; num];
            let mut queue = VecDeque::new();
            d_down[s_d.index()] = 0;
            queue.push_back(s_d.index());
            while let Some(s) = queue.pop_front() {
                for &(t, _) in &orient.adj[s] {
                    // Reverse edge t -> s must be a down step, i.e. s -> t
                    // (the direction we walk) is an up step.
                    if orient.is_up(SwitchId(s as u32), t) && d_down[t.index()] == u32::MAX {
                        d_down[t.index()] = d_down[s] + 1;
                        queue.push_back(t.index());
                    }
                }
            }

            // d[s] = min(d_down[s], 1 + min over up-neighbors d[parent]).
            // Up-neighbors have strictly smaller (depth, id), so a single
            // pass in that order is exact.
            let mut d = d_down.clone();
            for &s in &order {
                let mut best = d[s];
                for &(t, _) in &orient.adj[s] {
                    if orient.is_up(SwitchId(s as u32), t) && d[t.index()] != u32::MAX {
                        best = best.min(d[t.index()] + 1);
                    }
                }
                d[s] = best;
            }

            // Program one out-port per switch.
            for s in 0..num {
                if s == s_d.index() {
                    lfts[s].set(lid, node_port);
                    continue;
                }
                debug_assert_ne!(d[s], u32::MAX, "unroutable destination");
                // Prefer descending when a pure down path is as short as
                // the best up-then-down alternative.
                let descending = d_down[s] == d[s];
                let mut candidates: Vec<PortNum> = Vec::new();
                for &(t, port) in &orient.adj[s] {
                    let up = orient.is_up(SwitchId(s as u32), t);
                    let ok = if descending {
                        !up && d_down[t.index()] != u32::MAX && d_down[t.index()] + 1 == d_down[s]
                    } else {
                        up && d[t.index()] + 1 == d[s]
                    };
                    if ok {
                        candidates.push(port);
                    }
                }
                debug_assert!(!candidates.is_empty(), "no legal next hop");
                candidates.sort_unstable_by_key(|p| p.0);
                // Rotate ties by destination so different LIDs spread.
                let pick = candidates[((lid.0 - 1) as usize) % candidates.len()];
                lfts[s].set(lid, pick);
            }
        }
        lfts
    }

    fn select_dlid(&self, _net: &Network, space: &LidSpace, _src: NodeId, dst: NodeId) -> Lid {
        space.base_lid(dst)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{verify_all_lids_deliver, verify_deadlock_free, Routing, RoutingKind};
    use ibfat_topology::TreeParams;

    #[test]
    fn updown_delivers_and_is_deadlock_free() {
        for (m, n) in [(4, 2), (4, 3), (8, 2)] {
            let params = TreeParams::new(m, n).unwrap();
            let net = Network::mport_ntree(params);
            let routing = Routing::build(&net, RoutingKind::UpDown);
            verify_all_lids_deliver(&net, &routing)
                .unwrap_or_else(|e| panic!("IBFT({m},{n}): {e}"));
            verify_deadlock_free(&net, &routing).unwrap_or_else(|e| panic!("IBFT({m},{n}): {e}"));
        }
    }

    #[test]
    fn updown_routes_are_not_always_minimal_but_bounded() {
        // Up*/down* from a single BFS root cannot always use every LCA, so
        // some routes exceed the fat-tree minimum; they must still respect
        // the up*-then-down* bound of 2n links.
        let params = TreeParams::new(4, 3).unwrap();
        let net = Network::mport_ntree(params);
        let routing = Routing::build(&net, RoutingKind::UpDown);
        let mut max_links = 0;
        for src in 0..net.num_nodes() as u32 {
            for dst in 0..net.num_nodes() as u32 {
                if src == dst {
                    continue;
                }
                let dlid = routing.select_dlid(NodeId(src), NodeId(dst));
                let route = routing.trace(&net, NodeId(src), dlid).unwrap();
                max_links = max_links.max(route.num_links());
            }
        }
        assert!(max_links <= 2 * params.n() as usize);
    }
}
