/root/repo/target/release/deps/path_select-3b9f5fe4415d0035.d: crates/bench/benches/path_select.rs

/root/repo/target/release/deps/path_select-3b9f5fe4415d0035: crates/bench/benches/path_select.rs

crates/bench/benches/path_select.rs:
