//! Measurement: accepted traffic, latency distributions, link utilization.

use serde::{Deserialize, Serialize};

/// Streaming latency statistics with a logarithmic histogram for
/// percentile estimates (buckets: `[2^k, 2^(k+1))` ns).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LatencyStats {
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
    /// Log2 buckets over 1 ns .. ~1 s.
    buckets: Vec<u64>,
}

impl LatencyStats {
    /// Empty statistics.
    pub fn new() -> Self {
        LatencyStats {
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
            buckets: vec![0; 40],
        }
    }

    /// Record one latency sample (ns). The running sum saturates instead
    /// of overflowing, so a pathological run degrades `mean()` gracefully
    /// rather than panicking (or wrapping in release builds).
    #[inline]
    pub fn record(&mut self, ns: u64) {
        self.count += 1;
        self.sum = self.sum.saturating_add(ns);
        self.min = self.min.min(ns);
        self.max = self.max.max(ns);
        let b = (64 - ns.max(1).leading_zeros() as usize - 1).min(self.buckets.len() - 1);
        self.buckets[b] += 1;
    }

    /// Number of samples.
    #[inline]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean latency (ns); 0 for no samples.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Minimum sample, or 0 if empty.
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Maximum sample.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Approximate quantile from the log histogram (upper bucket bound).
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = (q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64;
        let mut seen = 0;
        for (b, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= target.max(1) {
                return 1u64 << (b + 1);
            }
        }
        self.max
    }

    /// The standard reporting percentiles in one call (log-histogram
    /// approximations, like [`quantile`](LatencyStats::quantile)). Used by
    /// the observability time-series snapshots.
    pub fn percentiles(&self) -> Percentiles {
        Percentiles {
            p50: self.quantile(0.50),
            p95: self.quantile(0.95),
            p99: self.quantile(0.99),
        }
    }

    /// The raw fields `(count, sum, min, max, buckets)` for the
    /// multi-process bridge codec. `min` is the *internal* sentinel-bearing
    /// value (`u64::MAX` when empty), not the reader-facing
    /// [`min`](LatencyStats::min).
    pub(crate) fn raw_parts(&self) -> (u64, u64, u64, u64, &[u64]) {
        (self.count, self.sum, self.min, self.max, &self.buckets)
    }

    /// Rebuild from [`raw_parts`](LatencyStats::raw_parts) output.
    pub(crate) fn from_raw(count: u64, sum: u64, min: u64, max: u64, buckets: Vec<u64>) -> Self {
        LatencyStats {
            count,
            sum,
            min,
            max,
            buckets,
        }
    }

    /// Merge another set of samples into this one.
    pub fn merge(&mut self, other: &LatencyStats) {
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
    }
}

impl Default for LatencyStats {
    fn default() -> Self {
        LatencyStats::new()
    }
}

/// The p50/p95/p99 trio from one latency distribution (ns). Zeroes when
/// the distribution is empty.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Percentiles {
    pub p50: u64,
    pub p95: u64,
    pub p99: u64,
}

/// Utilization of one directed link (the sending side identifies it).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LinkUse {
    /// The transmitting device ("S3" for switches, "N7" for nodes).
    pub from: String,
    /// The transmitting port (IB numbering; 1 for nodes).
    pub port: u8,
    /// Busy fraction over the whole run.
    pub utilization: f64,
}

/// Everything measured during one simulation run.
///
/// `PartialEq` compares every field, including the wall-clock-derived
/// [`events_per_sec`](SimReport::events_per_sec) and
/// [`packets_per_sec`](SimReport::packets_per_sec); comparisons that only
/// care about simulated behaviour (e.g. the calendar equivalence tests)
/// should zero those fields first.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimReport {
    /// Offered load as configured (fraction of link bandwidth per node).
    pub offered_load: f64,
    /// Simulated time (ns) including warm-up.
    pub sim_time_ns: u64,
    /// Warm-up time (ns) excluded from measurement.
    pub warmup_ns: u64,
    /// Packets generated inside the measurement window.
    pub generated: u64,
    /// Packets discarded by switches for lack of an LFT entry (only
    /// possible on degraded fabrics), over the whole run.
    pub dropped: u64,
    /// Packets generated over the whole run (including warm-up).
    pub total_generated: u64,
    /// Packets delivered over the whole run (including warm-up).
    pub total_delivered: u64,
    /// Packets delivered inside the measurement window.
    pub delivered: u64,
    /// Bytes delivered inside the measurement window.
    pub delivered_bytes: u64,
    /// Packets still in flight or queued at the end.
    pub in_flight_at_end: u64,
    /// Accepted traffic in bytes/ns per node over the window — the paper's
    /// x-axis.
    pub accepted_bytes_per_ns_per_node: f64,
    /// Offered traffic in bytes/ns per node (for reference).
    pub offered_bytes_per_ns_per_node: f64,
    /// Latency from generation to delivery (the paper's y-axis: "time
    /// elapsed since the packet transmission is initiated until the packet
    /// is received", including source queueing).
    pub latency: LatencyStats,
    /// Latency from first byte on the wire to delivery (network-only).
    pub network_latency: LatencyStats,
    /// Events processed (engine throughput diagnostics).
    pub events_processed: u64,
    /// Events processed per wall-clock second, measured inside `run()`.
    /// A host-dependent diagnostic: with
    /// [`packets_per_sec`](SimReport::packets_per_sec), one of the two
    /// report fields that are not a deterministic function of the inputs
    /// and seed.
    #[serde(default)]
    pub events_per_sec: f64,
    /// Packets delivered per wall-clock second, measured inside `run()`.
    /// The engine-throughput currency that stays comparable when the
    /// calendar changes how much bookkeeping one packet costs (fused
    /// event chains do fewer calendar operations per packet, not fewer
    /// packets). Host-dependent, like
    /// [`events_per_sec`](SimReport::events_per_sec); equality
    /// comparisons should zero both.
    #[serde(default)]
    pub packets_per_sec: f64,
    /// Mean utilization (busy fraction) over all directed links.
    pub mean_link_utilization: f64,
    /// Peak utilization over all directed links.
    pub max_link_utilization: f64,
    /// Per-link utilization (only when `collect_link_stats` is set).
    pub link_utilization: Option<Vec<LinkUse>>,
    /// Flight-recorder timelines (only when `trace_first_packets > 0`).
    pub traces: Option<Vec<crate::trace::PacketTrace>>,
    /// Packets delivered out of order within their (src, dst) flow, over
    /// the whole run. InfiniBand transport expects in-order delivery on a
    /// path, so multipath policies that reorder (random/round-robin
    /// per-packet selection) would pay for this in real hardware; the
    /// paper's rank-based selection keeps every flow on one path and this
    /// count at zero.
    pub out_of_order: u64,
    /// Packets discarded because of a live fault (dead-port arrivals and
    /// dead-port routing under [`crate::FaultPolicy::Drop`]). Zero when
    /// the run has no [`crate::FaultPlan`].
    #[serde(default)]
    pub fault_lost: u64,
    /// Heads parked on a dead output port under
    /// [`crate::FaultPolicy::Stall`] while tables were stale.
    #[serde(default)]
    pub fault_stalled: u64,
    /// Parked heads re-routed when the SM reprogrammed their switch.
    #[serde(default)]
    pub fault_rerouted: u64,
}

impl Default for SimReport {
    /// An all-zero report (no traffic, no measurements) — a convenient
    /// base for analysis helpers that only read a few counters.
    fn default() -> Self {
        SimReport {
            offered_load: 0.0,
            sim_time_ns: 0,
            warmup_ns: 0,
            generated: 0,
            dropped: 0,
            total_generated: 0,
            total_delivered: 0,
            delivered: 0,
            delivered_bytes: 0,
            in_flight_at_end: 0,
            accepted_bytes_per_ns_per_node: 0.0,
            offered_bytes_per_ns_per_node: 0.0,
            latency: LatencyStats::new(),
            network_latency: LatencyStats::new(),
            events_processed: 0,
            events_per_sec: 0.0,
            packets_per_sec: 0.0,
            mean_link_utilization: 0.0,
            max_link_utilization: 0.0,
            link_utilization: None,
            traces: None,
            out_of_order: 0,
            fault_lost: 0,
            fault_stalled: 0,
            fault_rerouted: 0,
        }
    }
}

impl SimReport {
    /// Average end-to-end latency in ns — the headline metric.
    pub fn avg_latency_ns(&self) -> f64 {
        self.latency.mean()
    }

    /// Throughput as a fraction of the per-node link bandwidth.
    pub fn normalized_accepted(&self, link_bytes_per_ns: f64) -> f64 {
        self.accepted_bytes_per_ns_per_node / link_bytes_per_ns
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_min_max() {
        let mut s = LatencyStats::new();
        for v in [100, 200, 300] {
            s.record(v);
        }
        assert_eq!(s.count(), 3);
        assert!((s.mean() - 200.0).abs() < 1e-9);
        assert_eq!(s.min(), 100);
        assert_eq!(s.max(), 300);
    }

    #[test]
    fn empty_stats_are_zero() {
        let s = LatencyStats::new();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.min(), 0);
        assert_eq!(s.max(), 0);
        assert_eq!(s.quantile(0.99), 0);
    }

    #[test]
    fn quantile_is_monotone_and_bounding() {
        let mut s = LatencyStats::new();
        for v in 1..=1000u64 {
            s.record(v);
        }
        let q50 = s.quantile(0.5);
        let q99 = s.quantile(0.99);
        assert!(q50 <= q99);
        assert!((500 / 2..=1024).contains(&q50), "q50 = {q50}");
    }

    #[test]
    fn empty_percentiles_are_zero() {
        let s = LatencyStats::new();
        let p = s.percentiles();
        assert_eq!((p.p50, p.p95, p.p99), (0, 0, 0));
    }

    #[test]
    fn single_sample_lands_in_its_bucket() {
        let mut s = LatencyStats::new();
        s.record(300); // bucket [256, 512)
        assert_eq!(s.count(), 1);
        assert_eq!(s.min(), 300);
        assert_eq!(s.max(), 300);
        // Every quantile of a one-sample distribution reports the same
        // bucket's upper bound.
        for q in [0.0, 0.5, 0.95, 0.99, 1.0] {
            assert_eq!(s.quantile(q), 512, "q = {q}");
        }
        let p = s.percentiles();
        assert_eq!((p.p50, p.p95, p.p99), (512, 512, 512));
    }

    #[test]
    fn power_of_two_boundaries_split_buckets() {
        // 2^k is the *first* value of bucket k: [2^k, 2^(k+1)). A sample
        // at 2^k-1 must land one bucket below a sample at 2^k.
        let mut below = LatencyStats::new();
        below.record(255);
        assert_eq!(below.quantile(1.0), 256);
        let mut at = LatencyStats::new();
        at.record(256);
        assert_eq!(at.quantile(1.0), 512);
        // Zero is clamped into the first bucket rather than shifting out.
        let mut zero = LatencyStats::new();
        zero.record(0);
        assert_eq!(zero.quantile(1.0), 2);
        assert_eq!(zero.min(), 0);
    }

    #[test]
    fn quantiles_are_monotone_in_q() {
        let mut s = LatencyStats::new();
        // A spread crossing many buckets, deterministically generated.
        let mut v: u64 = 3;
        for _ in 0..500 {
            s.record(v % 100_000);
            v = v.wrapping_mul(2862933555777941757).wrapping_add(3037000493);
        }
        let qs: Vec<u64> = (0..=20).map(|i| s.quantile(i as f64 / 20.0)).collect();
        for w in qs.windows(2) {
            assert!(w[0] <= w[1], "quantile not monotone: {qs:?}");
        }
        let p = s.percentiles();
        assert!(p.p50 <= p.p95 && p.p95 <= p.p99);
    }

    #[test]
    fn sum_saturates_instead_of_overflowing() {
        let mut s = LatencyStats::new();
        s.record(u64::MAX);
        s.record(u64::MAX);
        assert_eq!(s.count(), 2);
        assert!((s.mean() - u64::MAX as f64 / 2.0).abs() / s.mean() < 1e-9);
        let mut other = LatencyStats::new();
        other.record(u64::MAX);
        s.merge(&other); // must not panic in debug builds
        assert_eq!(s.count(), 3);
    }

    #[test]
    fn merge_combines_counts() {
        let mut a = LatencyStats::new();
        a.record(10);
        let mut b = LatencyStats::new();
        b.record(30);
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert!((a.mean() - 20.0).abs() < 1e-9);
        assert_eq!(a.min(), 10);
        assert_eq!(a.max(), 30);
    }
}
