//! The subnet manager proper: orchestrates discovery, recognition, LID
//! assignment and table installation — the role the paper delegates to
//! "the SM" at subnet initialization.

use crate::{discover, recognize, DiscoveredTopology, RecognitionError, RecoveredFatTree};
use ibfat_routing::{build_fault_tolerant, Lft, LidSpace, MlidScheme, Routing, RoutingKind};
use ibfat_topology::{DeviceRef, Network, NodeId, SwitchId};
use std::fmt;

/// Subnet-manager failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SmError {
    /// The swept fabric is not a recognizable m-port n-tree.
    Recognition(RecognitionError),
    /// The sweep did not reach every device of the physical fabric (the
    /// fabric is partitioned from the SM's point of view).
    Partitioned { discovered: usize, physical: usize },
    /// The requested scheme cannot be installed by this SM.
    UnsupportedScheme(RoutingKind),
}

impl fmt::Display for SmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SmError::Recognition(e) => write!(f, "recognition failed: {e}"),
            SmError::Partitioned {
                discovered,
                physical,
            } => write!(
                f,
                "sweep reached {discovered} of {physical} devices — fabric partitioned"
            ),
            SmError::UnsupportedScheme(k) => write!(f, "scheme {k} not installable by this SM"),
        }
    }
}

impl std::error::Error for SmError {}

impl From<RecognitionError> for SmError {
    fn from(e: RecognitionError) -> Self {
        SmError::Recognition(e)
    }
}

/// What an initialization run produced.
#[derive(Debug, Clone)]
pub struct SmOutcome {
    /// The programmed routing (LID space + every switch's LFT).
    pub routing: Routing,
    /// The sweep, for diagnostics.
    pub discovery: DiscoveredTopology,
    /// The recovered labeling.
    pub recovered: RecoveredFatTree,
}

/// A software subnet manager configured for one routing scheme.
#[derive(Debug, Clone, Copy)]
pub struct SubnetManager {
    kind: RoutingKind,
    /// The node whose endport hosts the SM (the sweep's origin).
    host: NodeId,
}

impl SubnetManager {
    /// An SM running on `host`, installing `kind` tables.
    pub fn new(kind: RoutingKind, host: NodeId) -> Self {
        SubnetManager { kind, host }
    }

    /// Full subnet initialization: sweep, recognize, assign LIDs from the
    /// recovered PIDs, compute each switch's LFT **from its recovered
    /// label** (not from construction-time knowledge), and install.
    ///
    /// This is an independent path to the forwarding state: the tests
    /// check it reproduces `Routing::build` bit for bit.
    pub fn initialize(&self, net: &Network) -> Result<SmOutcome, SmError> {
        if self.kind == RoutingKind::UpDown {
            // Installable in principle, but this SM is the fat-tree one;
            // keep the scope honest.
            return Err(SmError::UnsupportedScheme(self.kind));
        }
        let discovery = discover(net, self.host);
        let physical = net.num_nodes() + net.num_switches();
        if discovery.devices.len() != physical {
            return Err(SmError::Partitioned {
                discovered: discovery.devices.len(),
                physical,
            });
        }
        let recovered = recognize(&discovery)?;
        let params = recovered.params;

        // LID assignment from recovered PIDs.
        let lmc = match self.kind {
            RoutingKind::Mlid => params.lmc(),
            _ => 0,
        };
        let space = LidSpace::new(params.num_nodes(), lmc);

        // Per-switch tables from recovered labels, installed through the
        // device handles.
        let mut lfts: Vec<Option<Lft>> = vec![None; net.num_switches()];
        for (i, dev) in discovery.devices.iter().enumerate() {
            let DeviceRef::Switch(install_at) = dev.handle else {
                continue;
            };
            let label = recovered.switch_labels[i].expect("switches are labeled");
            let level = label.level().index();
            let mut lft = Lft::new(space.max_lid());
            for node in ibfat_topology::NodeLabel::all(params) {
                let below = (0..level).all(|j| label.digit(j) == node.digit(j));
                for lid in space.lids(node.id(params)) {
                    let port = if below {
                        MlidScheme::eq1_down_port(&node, level)
                    } else {
                        MlidScheme::eq2_up_port(params, lid, level as u32)
                    };
                    lft.set(lid, port);
                }
            }
            lfts[install_at.index()] = Some(lft);
        }
        let lfts: Vec<Lft> = lfts
            .into_iter()
            .enumerate()
            .map(|(i, l)| l.unwrap_or_else(|| panic!("switch S{i} never visited")))
            .collect();

        Ok(SmOutcome {
            routing: Routing::assemble(self.kind, params, space, lfts),
            discovery,
            recovered,
        })
    }

    /// Reconfiguration after failures: when the degraded fabric no longer
    /// recognizes cleanly (missing cables break the counts), fall back to
    /// fault-repaired tables computed on the degraded graph with the
    /// cached parameters.
    pub fn reconfigure(&self, degraded: &Network) -> Result<Routing, SmError> {
        match self.initialize(degraded) {
            Ok(outcome) => Ok(outcome.routing),
            Err(SmError::Recognition(_)) => Ok(build_fault_tolerant(degraded, self.kind)),
            Err(e) => Err(e),
        }
    }

    /// The routing scheme this SM installs.
    pub fn kind(&self) -> RoutingKind {
        self.kind
    }
}

/// Expose `SwitchId` for doc links without an unused import warning.
#[allow(dead_code)]
fn _doc(_: SwitchId) {}

#[cfg(test)]
mod tests {
    use super::*;
    use ibfat_topology::TreeParams;

    #[test]
    fn sm_tables_match_direct_construction_exactly() {
        for kind in [RoutingKind::Mlid, RoutingKind::Slid] {
            for (m, n) in [(4, 2), (4, 3), (8, 2), (16, 2)] {
                let net = Network::mport_ntree(TreeParams::new(m, n).unwrap());
                let direct = Routing::build(&net, kind);
                let sm = SubnetManager::new(kind, NodeId(0));
                let outcome = sm.initialize(&net).unwrap();
                assert_eq!(
                    outcome.routing.lfts(),
                    direct.lfts(),
                    "{kind} IBFT({m},{n}): SM tables differ from direct build"
                );
                assert_eq!(outcome.routing.lid_space(), direct.lid_space());
            }
        }
    }

    #[test]
    fn sm_from_any_host_installs_identical_tables() {
        let net = Network::mport_ntree(TreeParams::new(4, 3).unwrap());
        let reference = SubnetManager::new(RoutingKind::Mlid, NodeId(0))
            .initialize(&net)
            .unwrap();
        for host in [3u32, 9, 15] {
            let outcome = SubnetManager::new(RoutingKind::Mlid, NodeId(host))
                .initialize(&net)
                .unwrap();
            assert_eq!(outcome.routing.lfts(), reference.routing.lfts());
        }
    }

    #[test]
    fn partitioned_fabric_is_reported() {
        let mut net = Network::mport_ntree(TreeParams::new(4, 2).unwrap());
        // Cut off node 7 and sweep from node 0.
        let idx = net
            .links()
            .iter()
            .position(|l| {
                l.a.device == DeviceRef::Node(NodeId(7)) || l.b.device == DeviceRef::Node(NodeId(7))
            })
            .unwrap();
        net.remove_link(idx);
        let err = SubnetManager::new(RoutingKind::Mlid, NodeId(0))
            .initialize(&net)
            .unwrap_err();
        assert!(matches!(err, SmError::Partitioned { .. }));
    }

    #[test]
    fn reconfigure_falls_back_to_fault_repair() {
        let mut net = Network::mport_ntree(TreeParams::new(4, 2).unwrap());
        let idx = net.inter_switch_link_indices()[0];
        net.remove_link(idx);
        let sm = SubnetManager::new(RoutingKind::Mlid, NodeId(0));
        let routing = sm.reconfigure(&net).unwrap();
        ibfat_routing::verify_all_lids_deliver(&net, &routing).unwrap();
        ibfat_routing::verify_deadlock_free(&net, &routing).unwrap();
    }

    #[test]
    fn updown_is_unsupported() {
        let net = Network::mport_ntree(TreeParams::new(4, 2).unwrap());
        let err = SubnetManager::new(RoutingKind::UpDown, NodeId(0))
            .initialize(&net)
            .unwrap_err();
        assert_eq!(err, SmError::UnsupportedScheme(RoutingKind::UpDown));
    }
}
