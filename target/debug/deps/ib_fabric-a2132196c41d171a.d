/root/repo/target/debug/deps/ib_fabric-a2132196c41d171a.d: crates/core/src/lib.rs crates/core/src/builder.rs crates/core/src/experiment.rs Cargo.toml

/root/repo/target/debug/deps/libib_fabric-a2132196c41d171a.rmeta: crates/core/src/lib.rs crates/core/src/builder.rs crates/core/src/experiment.rs Cargo.toml

crates/core/src/lib.rs:
crates/core/src/builder.rs:
crates/core/src/experiment.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
