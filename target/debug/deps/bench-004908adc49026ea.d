/root/repo/target/debug/deps/bench-004908adc49026ea.d: crates/bench/src/bin/bench.rs

/root/repo/target/debug/deps/bench-004908adc49026ea: crates/bench/src/bin/bench.rs

crates/bench/src/bin/bench.rs:
