/root/repo/target/debug/deps/table1-d1da0065c48678c5.d: crates/bench/src/bin/table1.rs

/root/repo/target/debug/deps/table1-d1da0065c48678c5: crates/bench/src/bin/table1.rs

crates/bench/src/bin/table1.rs:
