/root/repo/target/debug/examples/subnet_manager-6c5af8efcb3811bb.d: examples/subnet_manager.rs Cargo.toml

/root/repo/target/debug/examples/libsubnet_manager-6c5af8efcb3811bb.rmeta: examples/subnet_manager.rs Cargo.toml

examples/subnet_manager.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
