//! End-to-end CLI command tests (through the library layer; output goes
//! to stdout, so these assert on success/failure and side effects).

use ibfat_cli::{args, commands};

fn run(line: &str) -> Result<(), String> {
    let argv: Vec<String> = line.split_whitespace().map(String::from).collect();
    let cmd = args::parse(&argv).map_err(|e| format!("parse: {e}"))?;
    commands::run(cmd)
}

#[test]
fn info_runs_for_all_schemes() {
    for scheme in ["mlid", "slid", "updown"] {
        run(&format!("info 4x2 --scheme {scheme}")).unwrap();
    }
}

#[test]
fn info_json_runs() {
    run("info 8x2 --json").unwrap();
}

#[test]
fn route_by_id_and_label() {
    run("route 4x3 0 4").unwrap();
    run("route 4x3 P(000) P(100)").unwrap();
    run("route 4x3 0 4 --json").unwrap();
}

#[test]
fn route_rejects_bad_nodes() {
    assert!(run("route 4x2 0 99").is_err());
    assert!(run("route 4x3 P(999) 0").is_err());
}

#[test]
fn verify_small_fabric() {
    run("verify 4x2").unwrap();
    run("verify 4x2 --scheme slid").unwrap();
}

#[test]
fn discover_reports() {
    run("discover 4x3").unwrap();
    // up*/down* is not installable by the fat-tree SM.
    assert!(run("discover 4x2 --scheme updown").is_err());
}

#[test]
fn simulate_and_sweep_run() {
    run("simulate 4x2 --load 0.2 --time-us 30 --seed 1").unwrap();
    run("simulate 4x2 --pattern centric --vls 2 --time-us 30").unwrap();
    run("simulate 4x2 --pattern bitcomp --time-us 30").unwrap();
    run("sweep 4x2 --loads 0.2,0.5 --time-us 30").unwrap();
}

#[test]
fn failed_links_flow_through() {
    run("simulate 4x2 --fail-links 8 --time-us 30").unwrap();
    assert!(run("simulate 4x2 --fail-links 9999 --time-us 30").is_err());
}

#[test]
fn invalid_fabric_is_an_error_not_a_panic() {
    assert!(run("info 6x2").is_err());
}
