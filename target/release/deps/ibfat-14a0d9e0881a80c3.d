/root/repo/target/release/deps/ibfat-14a0d9e0881a80c3.d: crates/cli/src/main.rs

/root/repo/target/release/deps/ibfat-14a0d9e0881a80c3: crates/cli/src/main.rs

crates/cli/src/main.rs:
