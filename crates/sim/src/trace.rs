//! The flight recorder: per-packet event timelines.
//!
//! When `SimConfig::trace_first_packets > 0`, the simulator records every
//! lifecycle event of the first N generated packets. Traces explain *why*
//! a packet saw the latency it did — which buffer it waited in, which
//! grant it lost — and anchor the timing model in tests.

use serde::{Deserialize, Serialize};

/// One recorded packet lifecycle event.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TraceEvent {
    /// Entered the source queue.
    Generated,
    /// First byte left the source endport.
    InjectionStart,
    /// Header reached a switch input buffer.
    HeaderArrive {
        /// Switch id.
        sw: u32,
        /// 0-based input port.
        port: u8,
    },
    /// Forwarding decision made.
    Routed {
        /// Switch id.
        sw: u32,
        /// 0-based output port.
        out_port: u8,
    },
    /// Granted into the output buffer.
    Granted {
        /// Switch id.
        sw: u32,
        /// 0-based output port.
        out_port: u8,
    },
    /// Started onto the next link.
    TransmitStart {
        /// Switch id.
        sw: u32,
        /// 0-based output port.
        out_port: u8,
    },
    /// At an arbitration instant the packet sat at the head of an output
    /// buffer with zero credits for its VL: stalled on link-level flow
    /// control. Re-recorded at each arbitration instant the stall
    /// persists through, so a long stall shows up as a run of these.
    CreditStalled {
        /// Switch id.
        sw: u32,
        /// 0-based output port.
        out_port: u8,
    },
    /// Tail arrived at the destination endport.
    Delivered,
    /// Discarded for lack of an LFT entry.
    Dropped {
        /// Switch id.
        sw: u32,
    },
}

/// The timeline of one packet.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PacketTrace {
    /// Source node id.
    pub src: u32,
    /// Destination node id.
    pub dst: u32,
    /// DLID carried.
    pub dlid: u32,
    /// Virtual lane.
    pub vl: u8,
    /// `(time_ns, event)` pairs in order.
    pub events: Vec<(u64, TraceEvent)>,
}

impl PacketTrace {
    /// Timestamp of the first event (generation).
    pub fn t_start(&self) -> u64 {
        self.events.first().map(|&(t, _)| t).unwrap_or(0)
    }

    /// Whether the packet completed (delivered or dropped).
    pub fn completed(&self) -> bool {
        matches!(
            self.events.last(),
            Some((_, TraceEvent::Delivered | TraceEvent::Dropped { .. }))
        )
    }

    /// End-to-end latency if delivered.
    pub fn latency_ns(&self) -> Option<u64> {
        match self.events.last() {
            Some(&(t, TraceEvent::Delivered)) => Some(t - self.t_start()),
            _ => None,
        }
    }

    /// Render a human-readable timeline.
    pub fn render(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "packet N{} -> N{} (DLID {}, VL {}):",
            self.src, self.dst, self.dlid, self.vl
        );
        let t0 = self.t_start();
        for &(t, ev) in &self.events {
            let what = match ev {
                TraceEvent::Generated => "generated".to_string(),
                TraceEvent::InjectionStart => "first byte on wire".to_string(),
                TraceEvent::HeaderArrive { sw, port } => {
                    format!("header at S{sw} in-port {}", port + 1)
                }
                TraceEvent::Routed { sw, out_port } => {
                    format!("routed at S{sw} -> out-port {}", out_port + 1)
                }
                TraceEvent::Granted { sw, out_port } => {
                    format!("granted into S{sw} out-buffer {}", out_port + 1)
                }
                TraceEvent::TransmitStart { sw, out_port } => {
                    format!("leaving S{sw} via port {}", out_port + 1)
                }
                TraceEvent::CreditStalled { sw, out_port } => {
                    format!("credit-stalled at S{sw} out-port {}", out_port + 1)
                }
                TraceEvent::Delivered => "delivered".to_string(),
                TraceEvent::Dropped { sw } => format!("DROPPED at S{sw} (no LFT entry)"),
            };
            let _ = writeln!(out, "  t+{:>6} ns  {what}", t - t0);
        }
        out
    }

    /// Render this trace as one compact JSON object (one JSONL line,
    /// without the trailing newline). Ports are 1-based, matching
    /// [`render`](PacketTrace::render) and InfiniBand convention.
    /// `slot` is the flight-recorder slot, stable across thread counts.
    pub fn to_json_line(&self, slot: usize) -> String {
        let mut j = crate::json::JsonBuf::with_capacity(128 + 48 * self.events.len());
        j.begin_obj();
        j.field_u64("slot", slot as u64);
        j.field_u64("src", u64::from(self.src));
        j.field_u64("dst", u64::from(self.dst));
        j.field_u64("dlid", u64::from(self.dlid));
        j.field_u64("vl", u64::from(self.vl));
        match self.latency_ns() {
            Some(ns) => j.field_u64("latency_ns", ns),
            None => {
                j.key("latency_ns");
                j.raw_value("null");
            }
        }
        j.field_bool("completed", self.completed());
        j.key("events");
        j.begin_arr();
        for &(t, ev) in &self.events {
            j.begin_obj();
            j.field_u64("t_ns", t);
            let (kind, sw_port) = match ev {
                TraceEvent::Generated => ("generated", None),
                TraceEvent::InjectionStart => ("injection_start", None),
                TraceEvent::HeaderArrive { sw, port } => ("header_arrive", Some((sw, port))),
                TraceEvent::Routed { sw, out_port } => ("routed", Some((sw, out_port))),
                TraceEvent::Granted { sw, out_port } => ("granted", Some((sw, out_port))),
                TraceEvent::TransmitStart { sw, out_port } => {
                    ("transmit_start", Some((sw, out_port)))
                }
                TraceEvent::CreditStalled { sw, out_port } => {
                    ("credit_stalled", Some((sw, out_port)))
                }
                TraceEvent::Delivered => ("delivered", None),
                TraceEvent::Dropped { sw } => ("dropped", Some((sw, u8::MAX))),
            };
            j.field_str("ev", kind);
            if let Some((sw, port)) = sw_port {
                j.field_u64("sw", u64::from(sw));
                if port != u8::MAX {
                    j.field_u64("port", u64::from(port) + 1);
                }
            }
            j.end_obj();
        }
        j.end_arr();
        j.end_obj();
        j.into_string()
    }
}

/// Render a whole flight-recorder buffer as a JSONL document: one line
/// per traced packet, in slot order. Byte-identical at any thread count
/// (the parallel engine merges shard-local events deterministically).
pub fn traces_to_jsonl(traces: &[PacketTrace]) -> String {
    let mut out = String::new();
    for (slot, t) in traces.iter().enumerate() {
        out.push_str(&t.to_json_line(slot));
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> PacketTrace {
        PacketTrace {
            src: 0,
            dst: 4,
            dlid: 17,
            vl: 0,
            events: vec![
                (100, TraceEvent::Generated),
                (100, TraceEvent::InjectionStart),
                (120, TraceEvent::HeaderArrive { sw: 12, port: 0 }),
                (
                    220,
                    TraceEvent::Routed {
                        sw: 12,
                        out_port: 2,
                    },
                ),
                (
                    220,
                    TraceEvent::Granted {
                        sw: 12,
                        out_port: 2,
                    },
                ),
                (
                    220,
                    TraceEvent::TransmitStart {
                        sw: 12,
                        out_port: 2,
                    },
                ),
                (496, TraceEvent::Delivered),
            ],
        }
    }

    #[test]
    fn latency_and_completion() {
        let t = sample();
        assert!(t.completed());
        assert_eq!(t.latency_ns(), Some(396));
        assert_eq!(t.t_start(), 100);
    }

    #[test]
    fn incomplete_trace_has_no_latency() {
        let mut t = sample();
        t.events.pop();
        assert!(!t.completed());
        assert_eq!(t.latency_ns(), None);
    }

    #[test]
    fn render_contains_the_route() {
        let text = sample().render();
        assert!(text.contains("N0 -> N4"));
        assert!(text.contains("header at S12"));
        assert!(text.contains("delivered"));
    }

    #[test]
    fn render_shows_credit_stalls() {
        let mut t = sample();
        t.events.insert(
            3,
            (
                180,
                TraceEvent::CreditStalled {
                    sw: 12,
                    out_port: 2,
                },
            ),
        );
        assert!(t.render().contains("credit-stalled at S12 out-port 3"));
    }

    #[test]
    fn jsonl_line_is_valid_and_one_based() {
        let mut t = sample();
        t.events.insert(
            3,
            (
                180,
                TraceEvent::CreditStalled {
                    sw: 12,
                    out_port: 2,
                },
            ),
        );
        let line = t.to_json_line(7);
        let doc = crate::json::parse(&line).expect("valid JSON");
        let obj = doc.as_object("line").unwrap();
        assert_eq!(obj.field("slot").unwrap().as_u64("slot").unwrap(), 7);
        assert_eq!(obj.field("src").unwrap().as_u64("src").unwrap(), 0);
        assert_eq!(obj.field("latency_ns").unwrap().as_u64("lat").unwrap(), 396);
        let events = obj.field("events").unwrap().as_array("events").unwrap();
        assert_eq!(events.len(), t.events.len());
        let stall = events[3].as_object("ev").unwrap();
        assert_eq!(
            stall.field("ev").unwrap().as_string("ev").unwrap(),
            "credit_stalled"
        );
        // 0-based out-port 2 is exported as wire port 3.
        assert_eq!(stall.field("port").unwrap().as_u64("port").unwrap(), 3);
    }

    #[test]
    fn incomplete_trace_exports_null_latency() {
        let mut t = sample();
        t.events.pop();
        let line = t.to_json_line(0);
        assert!(line.contains("\"latency_ns\":null"));
        assert!(line.contains("\"completed\":false"));
        crate::json::parse(&line).expect("valid JSON");
    }

    #[test]
    fn jsonl_document_has_one_line_per_trace() {
        let doc = traces_to_jsonl(&[sample(), sample()]);
        assert_eq!(doc.lines().count(), 2);
        for line in doc.lines() {
            crate::json::parse(line).expect("valid JSON");
        }
    }
}
