/root/repo/target/debug/deps/sim_behavior-f1dd0000ca393650.d: crates/sim/tests/sim_behavior.rs Cargo.toml

/root/repo/target/debug/deps/libsim_behavior-f1dd0000ca393650.rmeta: crates/sim/tests/sim_behavior.rs Cargo.toml

crates/sim/tests/sim_behavior.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
