//! End-to-end CLI command tests (through the library layer; output goes
//! to stdout, so these assert on success/failure and side effects).

use ibfat_cli::{args, commands};

fn run(line: &str) -> Result<(), String> {
    let argv: Vec<String> = line.split_whitespace().map(String::from).collect();
    let cmd = args::parse(&argv).map_err(|e| format!("parse: {e}"))?;
    commands::run(cmd)
}

#[test]
fn info_runs_for_all_schemes() {
    for scheme in ["mlid", "slid", "updown"] {
        run(&format!("info 4x2 --scheme {scheme}")).unwrap();
    }
}

#[test]
fn info_json_runs() {
    run("info 8x2 --json").unwrap();
}

#[test]
fn route_by_id_and_label() {
    run("route 4x3 0 4").unwrap();
    run("route 4x3 P(000) P(100)").unwrap();
    run("route 4x3 0 4 --json").unwrap();
}

#[test]
fn route_rejects_bad_nodes() {
    assert!(run("route 4x2 0 99").is_err());
    assert!(run("route 4x3 P(999) 0").is_err());
}

#[test]
fn verify_small_fabric() {
    run("verify 4x2").unwrap();
    run("verify 4x2 --scheme slid").unwrap();
}

#[test]
fn discover_reports() {
    run("discover 4x3").unwrap();
    // up*/down* is not installable by the fat-tree SM.
    assert!(run("discover 4x2 --scheme updown").is_err());
}

#[test]
fn simulate_and_sweep_run() {
    run("simulate 4x2 --load 0.2 --time-us 30 --seed 1").unwrap();
    run("simulate 4x2 --pattern centric --vls 2 --time-us 30").unwrap();
    run("simulate 4x2 --pattern bitcomp --time-us 30").unwrap();
    run("sweep 4x2 --loads 0.2,0.5 --time-us 30").unwrap();
}

#[test]
fn run_alias_and_threads_flag_work_end_to_end() {
    run("run 4x2 --load 0.2 --time-us 30 --seed 1 --threads 4").unwrap();
    run("sweep 4x2 --loads 0.2,0.5 --time-us 30 --threads 2").unwrap();
}

/// `--threads N` must not change a single reported number: the exact
/// experiment the CLI wires up, run through both engines.
#[test]
fn threads_flag_leaves_reports_bit_identical() {
    let fabric = ib_fabric::Fabric::builder(4, 2).build().unwrap();
    let report_at = |threads: usize| {
        let mut r = fabric
            .experiment()
            .offered_load(0.3)
            .duration_ns(40_000)
            .seed(7)
            .threads(threads)
            .run();
        r.events_per_sec = 0.0; // wall-clock throughput is host noise
        r.packets_per_sec = 0.0;
        r
    };
    let seq = report_at(1);
    assert!(seq.delivered > 0);
    assert_eq!(report_at(4), seq);
}

#[test]
fn failed_links_flow_through() {
    run("simulate 4x2 --fail-links 8 --time-us 30").unwrap();
    assert!(run("simulate 4x2 --fail-links 9999 --time-us 30").is_err());
}

#[test]
fn invalid_fabric_is_an_error_not_a_panic() {
    assert!(run("info 6x2").is_err());
}

#[test]
fn disconnected_source_is_a_clean_error_not_a_panic() {
    // Link 8 is node 0's injection cable on FT(4,2). A workload message
    // from an uncabled node can never complete; this used to blow up as
    // a "workload stalled" engine panic — it must be a clean error now.
    let err = run("workload 4x2 --kind alltoall --fail-links 8").unwrap_err();
    assert!(err.contains("endport is uncabled"), "{err}");
    // Pattern mode tolerates the same damage: the island neither sends
    // nor receives, everything else keeps flowing.
    run("simulate 4x2 --fail-links 8 --time-us 30").unwrap();
}

#[test]
fn faults_runs_in_text_and_json() {
    run("faults 4x2 --kill 1 --time-us 40 --seed 3").unwrap();
    run(
        "faults 4x2 --kill 2 --policy stall --at 10000 --detect-ns 2000 \
         --per-switch-ns 50 --time-us 40 --json",
    )
    .unwrap();
    // Guard rails: schemes without patch repair, oracle backend, static
    // damage mixed with scheduled damage, impossible kill counts, and a
    // fault past the end of the run are all clean errors.
    assert!(run("faults 4x2 --scheme updown --time-us 40").is_err());
    assert!(run("faults 4x2 --route-backend oracle --time-us 40").is_err());
    assert!(run("faults 4x2 --fail-links 3 --time-us 40").is_err());
    assert!(run("faults 4x2 --kill 500 --time-us 40").is_err());
    assert!(run("faults 4x2 --at 99999999 --time-us 40").is_err());
}

/// Collect the faulted-run analysis for one `faults` command line.
fn disrupt(line: &str) -> commands::FaultsReport {
    let argv: Vec<String> = line.split_whitespace().map(String::from).collect();
    let cmd = args::parse(&argv).unwrap();
    let fabric = ib_fabric::Fabric::builder(cmd.m, cmd.n)
        .routing(cmd.scheme)
        .build()
        .unwrap();
    commands::collect_faults(&cmd, &fabric).unwrap()
}

#[test]
fn faults_disruption_pins_the_mlid_survival_story() {
    let out = disrupt("faults 4x3 --kill 2 --seed 5 --time-us 60");
    assert_eq!(out.killed_links.len(), 2);
    assert_eq!(out.disruption.faults.len(), 2);
    // Drop policy: the stale-table window really lost packets, and the
    // disruption view mirrors the engine's counters exactly.
    assert!(out.report.fault_lost > 0);
    assert_eq!(out.disruption.packets_lost, out.report.fault_lost);
    // Patch-level repair: each fault touched some entries but nowhere
    // near the full table a from-scratch rebuild would push.
    for f in &out.disruption.faults {
        assert!(f.entries_patched > 0);
        assert!(f.entries_patched < f.table_entries);
    }
    // The paper's claim, live: MLID's 2^LMC LIDs keep more surviving
    // paths per pair than the single-path SLID baseline.
    assert!(
        out.disruption.survival.surviving_paths > out.disruption.slid_survival.surviving_paths,
        "mlid {} vs slid {}",
        out.disruption.survival.surviving_paths,
        out.disruption.slid_survival.surviving_paths
    );
}

#[test]
fn faults_json_is_byte_identical_across_engines() {
    // End-to-end through the real binary: the faults JSON deliberately
    // excludes wall-clock fields, so sequential, threaded and
    // multi-process runs must print the exact same bytes.
    let exe = env!("CARGO_BIN_EXE_ibfat");
    let out = |extra: &[&str]| {
        let mut args = vec![
            "faults",
            "4x3",
            "--kill",
            "2",
            "--time-us",
            "60",
            "--seed",
            "5",
            "--json",
        ];
        args.extend_from_slice(extra);
        let o = std::process::Command::new(exe)
            .args(&args)
            .output()
            .unwrap();
        assert!(
            o.status.success(),
            "ibfat {args:?} failed: {}",
            String::from_utf8_lossy(&o.stderr)
        );
        o.stdout
    };
    let seq = out(&[]);
    assert!(!seq.is_empty());
    assert_eq!(out(&["--threads", "2"]), seq, "threads changed the bytes");
    assert_eq!(
        out(&["--processes", "2"]),
        seq,
        "processes changed the bytes"
    );
}

#[test]
fn counters_runs_in_text_and_json() {
    run("counters 4x2 --time-us 30").unwrap();
    run("counters 4x2 --pattern centric --scheme slid --load 0.6 --time-us 30 --top 3").unwrap();
    run("counters 4x2 --time-us 30 --sample-interval-ns 2000 --vls 2 --json").unwrap();
}

#[test]
fn loads_runs_in_text_and_json() {
    run("loads 4x2").unwrap();
    run("loads 4x3 --scheme slid --top 3").unwrap();
    run("loads 4x2 --oracle --json").unwrap();
    run("loads 4x3 --hotspot P(000)").unwrap();
    // A tolerable inter-switch failure still analyzes; severing node 0's
    // edge cable (link 8) makes the all-to-all matrix unroutable, which is
    // a clean error, not a panic.
    run("loads 4x2 --fail-links 3").unwrap();
    assert!(run("loads 4x2 --fail-links 8").is_err());
    assert!(run("loads 4x2 --oracle --hotspot 0").is_err());
    assert!(run("loads 4x2 --oracle --fail-links 8").is_err());
    assert!(run("loads 4x2 --oracle --scheme updown").is_err());
    assert!(run("loads 4x2 --hotspot 99").is_err());
}

/// Collect the dense load analysis for one `loads` command line.
fn analyze(line: &str) -> commands::LoadsReport {
    let argv: Vec<String> = line.split_whitespace().map(String::from).collect();
    let cmd = args::parse(&argv).unwrap();
    let fabric = ib_fabric::Fabric::builder(cmd.m, cmd.n)
        .routing(cmd.scheme)
        .build()
        .unwrap();
    commands::collect_loads(&cmd, &fabric).unwrap()
}

#[test]
fn loads_pin_the_papers_table_story_on_ft_4_3() {
    // The paper's Table comparison: MLID's source-partitioned up-links keep
    // the hot-spot column at one flow per upward channel, while SLID
    // funnels the whole column through the destination's single DLID path.
    let mlid = analyze("loads 4x3 --hotspot 0 --scheme mlid");
    let slid = analyze("loads 4x3 --hotspot 0 --scheme slid");
    assert_eq!(mlid.loads.max_up, 1);
    assert!(
        mlid.loads.max_up < slid.loads.max_up,
        "MLID max-up {} must beat SLID's {}",
        mlid.loads.max_up,
        slid.loads.max_up
    );
    assert_eq!(mlid.flows, 15);

    // All-to-all is the symmetric matrix both schemes balance perfectly
    // (every leaf up-link carries N-2 = 14 flows), so MLID is never worse.
    let mlid = analyze("loads 4x3");
    let slid = analyze("loads 4x3 --scheme slid");
    assert_eq!(mlid.flows, 16 * 15);
    assert_eq!(mlid.max_injection, 15);
    assert!(mlid.loads.max_up <= slid.loads.max_up);
    assert_eq!(mlid.loads.max_up, 14);

    // Roll-up structure: roots have no up-ports; FT(4,3) has 3 levels.
    assert_eq!(mlid.levels.len(), 3);
    assert_eq!(mlid.levels[0].level, 0);
    assert_eq!(mlid.levels[0].up_links, 0);
    assert_eq!(mlid.levels[0].max_up, 0);
    assert!(mlid.levels[1].up_links > 0 && mlid.levels[2].up_links > 0);

    // The closed-form oracle streams to the identical analysis.
    let oracle = analyze("loads 4x3 --oracle");
    assert_eq!(oracle.loads, mlid.loads);
}

#[test]
fn workload_runs_in_text_and_json() {
    run("workload 4x2 --kind allreduce-ring --bytes 1024").unwrap();
    run("workload 4x2 --kind alltoall --bytes 512 --scheme slid --json").unwrap();
    run("workload 4x2 --kind bcast --vls 2").unwrap();
    run("workload 4x2 --kind closed-loop --in-flight 2 --messages 4 --seed 5").unwrap();
    // FT(4,2) has 8 nodes, a power of two, so recursive doubling runs…
    run("workload 4x2 --kind allreduce-rd --bytes 256").unwrap();
    // …and a missing trace file is a clean error, not a panic.
    assert!(run("workload 4x2 --kind replay --trace /nonexistent.jsonl").is_err());
}

/// Drive one `workload` command line and return its report.
fn drive(line: &str) -> ib_fabric::WorkloadReport {
    let argv: Vec<String> = line.split_whitespace().map(String::from).collect();
    let cmd = args::parse(&argv).unwrap();
    let fabric = ib_fabric::Fabric::builder(cmd.m, cmd.n)
        .routing(cmd.scheme)
        .build()
        .unwrap();
    commands::collect_workload(&cmd, &fabric).unwrap()
}

#[test]
fn workload_trace_round_trips_through_record_and_replay() {
    // Record a generated collective to JSONL, replay it through the CLI
    // path, and require the exact same simulation outcome.
    let fabric = ib_fabric::Fabric::builder(4, 2).build().unwrap();
    let wl = ib_fabric::generators::all_to_all(fabric.num_nodes(), 512);
    let jsonl = ib_fabric::workload_trace::to_jsonl(&wl);
    let path = std::env::temp_dir().join("ibfat_cli_roundtrip.jsonl");
    std::fs::write(&path, &jsonl).unwrap();

    let direct = drive("workload 4x2 --kind alltoall --bytes 512");
    let replayed = drive(&format!(
        "workload 4x2 --kind replay --trace {}",
        path.display()
    ));
    std::fs::remove_file(&path).ok();
    // Groups carry the generator's name vs "replay"; everything measured
    // must agree.
    assert_eq!(replayed.makespan_ns, direct.makespan_ns);
    assert_eq!(replayed.latency, direct.latency);
    assert_eq!(replayed.timings, direct.timings);
}

#[test]
fn workload_threads_flag_leaves_reports_bit_identical() {
    let seq = drive("workload 4x2 --kind alltoall --bytes 1024 --vls 2");
    assert!(seq.makespan_ns > 0 && seq.messages > 0);
    let par = drive("workload 4x2 --kind alltoall --bytes 1024 --vls 2 --threads 4");
    assert_eq!(par, seq);
}

#[test]
fn trace_telemetry_and_profile_run_end_to_end() {
    run("trace 4x2 --packets 4 --time-us 30 --seed 1").unwrap();
    run("trace 4x2 --one-in 2 --time-us 30 --threads 2").unwrap();
    run("trace 4x2 --pairs 0:1,2:3 --time-us 30").unwrap();
    run("run 4x2 --time-us 30 --threads 2 --telemetry").unwrap();
    run("run 4x2 --time-us 30 --threads 2 --telemetry --json").unwrap();
    run("workload 4x2 --kind bcast --profile").unwrap();
    run("workload 4x2 --kind bcast --profile --json").unwrap();
}

/// Render the flight-recorder JSONL for one `trace` command line.
fn record(line: &str) -> String {
    let argv: Vec<String> = line.split_whitespace().map(String::from).collect();
    let cmd = args::parse(&argv).unwrap();
    let fabric = ib_fabric::Fabric::builder(cmd.m, cmd.n)
        .routing(cmd.scheme)
        .build()
        .unwrap();
    commands::collect_trace(&cmd, &fabric).unwrap()
}

#[test]
fn trace_jsonl_shows_the_slid_hot_spot_credit_stalls_mlid_avoids() {
    // The paper's motivating scenario at packet granularity: under
    // hot-spot traffic, SLID funnels every flow through ONE root, so the
    // recorded packets sit credit-stalled at that single root switch;
    // MLID spreads the same flows and its (fewer per-root) stall spans
    // split evenly across the roots. Total stalls don't discriminate —
    // the endpoint link saturates under either scheme — the *location*
    // does, exactly like the counters-level hot-spot test above.
    let params = ib_fabric::TreeParams::new(4, 2).unwrap();
    let root_stalls = |doc: &str| {
        let mut per_root = std::collections::BTreeMap::new();
        for l in doc.lines() {
            let v = ib_fabric::json::parse(l).expect("valid JSONL line");
            let span = v.as_object("span").unwrap();
            span.field("slot").unwrap();
            span.field("dlid").unwrap();
            for ev in span.field("events").unwrap().as_array("events").unwrap() {
                let ev = ev.as_object("event").unwrap();
                if ev.field("ev").unwrap().as_string("ev").unwrap() != "credit_stalled" {
                    continue;
                }
                let sw = ev.field("sw").unwrap().as_u64("sw").unwrap() as u32;
                let label = ib_fabric::SwitchLabel::from_id(params, ib_fabric::SwitchId(sw));
                if label.level().index() == 0 {
                    *per_root.entry(sw).or_insert(0u64) += 1;
                }
            }
        }
        per_root
    };
    let line = |scheme: &str| {
        format!(
            "trace 4x2 --pattern centric --load 0.8 --time-us 150 --seed 11 \
             --packets 64 --scheme {scheme}"
        )
    };
    let slid = root_stalls(&record(&line("slid")));
    let mlid = root_stalls(&record(&line("mlid")));
    assert!(
        !slid.is_empty() && !mlid.is_empty(),
        "roots must stall under centric load"
    );

    // SLID: nearly every root-level stall happens at the one root its
    // single path per destination selects. MLID: both roots carry flows,
    // so neither dominates.
    let share = |m: &std::collections::BTreeMap<u32, u64>| {
        let total: u64 = m.values().sum();
        let max = m.values().copied().max().unwrap_or(0);
        max as f64 / total as f64
    };
    let (s, m) = (share(&slid), share(&mlid));
    assert!(
        s > 0.75,
        "slid must concentrate root stalls on one root (share {s:.2})"
    );
    assert!(
        m < 0.65,
        "mlid must spread root stalls across roots (share {m:.2})"
    );
}

#[test]
fn trace_jsonl_is_byte_identical_across_thread_counts() {
    let line = |threads: usize| {
        format!(
            "trace 4x2 --pattern centric --load 0.6 --time-us 60 --seed 3 \
             --packets 32 --one-in 2 --threads {threads}"
        )
    };
    let seq = record(&line(1));
    assert!(!seq.is_empty());
    assert_eq!(record(&line(2)), seq);
    assert_eq!(record(&line(4)), seq);
}

#[test]
fn telemetry_is_a_separate_channel_from_the_report() {
    let argv: Vec<String> = "run 4x2 --load 0.3 --time-us 40 --seed 7 --threads 2"
        .split_whitespace()
        .map(String::from)
        .collect();
    let cmd = args::parse(&argv).unwrap();
    let fabric = ib_fabric::Fabric::builder(cmd.m, cmd.n)
        .routing(cmd.scheme)
        .build()
        .unwrap();
    let (mut with_tel, tel) = commands::collect_telemetry(&cmd, &fabric).unwrap();
    let mut plain = fabric
        .experiment()
        .offered_load(0.3)
        .duration_ns(40_000)
        .seed(7)
        .threads(2)
        .run();
    with_tel.events_per_sec = 0.0;
    plain.events_per_sec = 0.0;
    with_tel.packets_per_sec = 0.0;
    plain.packets_per_sec = 0.0;
    assert_eq!(with_tel, plain, "telemetry must not perturb the report");

    assert_eq!(tel.threads, 2);
    assert_eq!(tel.shards.len(), 2);
    assert!(tel.windows() > 0);
    assert_eq!(tel.total_events(), plain.events_processed);
    assert!(tel.event_imbalance() >= 1.0);
    // The JSONL export parses line by line.
    for l in tel.to_jsonl(true).lines() {
        ib_fabric::json::parse(l).expect("valid telemetry JSONL line");
    }
}

#[test]
fn workload_profile_rides_along_without_changing_the_report() {
    let argv: Vec<String> = "workload 4x2 --kind alltoall --bytes 512"
        .split_whitespace()
        .map(String::from)
        .collect();
    let cmd = args::parse(&argv).unwrap();
    let fabric = ib_fabric::Fabric::builder(cmd.m, cmd.n)
        .routing(cmd.scheme)
        .build()
        .unwrap();
    let (report, profile) = commands::collect_workload_profiled(&cmd, &fabric).unwrap();
    assert_eq!(report, commands::collect_workload(&cmd, &fabric).unwrap());
    assert_eq!(profile.total_events(), report.events);
    assert!(profile.total_wall_ns() > 0);
}

/// Collect counters for one `counters` command line.
fn collect(line: &str) -> commands::CountersReport {
    let argv: Vec<String> = line.split_whitespace().map(String::from).collect();
    let cmd = args::parse(&argv).unwrap();
    let fabric = ib_fabric::Fabric::builder(cmd.m, cmd.n)
        .routing(cmd.scheme)
        .build()
        .unwrap();
    commands::collect_counters(&cmd, &fabric).unwrap()
}

#[test]
fn counters_expose_the_slid_root_hot_spot_that_mlid_avoids() {
    // The paper's motivating scenario: under hot-spot traffic, SLID funnels
    // every flow towards a destination through the single root its one DLID
    // selects, while MLID spreads the same flows over all roots. The root
    // level's peak port utilization must show exactly that.
    let line = |scheme: &str| {
        format!(
            "counters 4x2 --pattern centric --load 0.8 --time-us 150 --seed 11 --scheme {scheme}"
        )
    };
    let slid = collect(&line("slid"));
    let mlid = collect(&line("mlid"));

    let slid_roots = &slid.levels[0];
    let mlid_roots = &mlid.levels[0];
    assert_eq!(slid_roots.level, 0);

    // Both runs push real traffic through the roots.
    assert!(slid_roots.active_ports > 0 && mlid_roots.active_ports > 0);
    assert!(slid.report.delivered > 0 && mlid.report.delivered > 0);

    // SLID concentrates: its busiest root port is markedly hotter than
    // MLID's (FT(4,2) has two roots, so spreading roughly halves the peak).
    assert!(
        slid_roots.max_utilization > 1.3 * mlid_roots.max_utilization,
        "slid root peak {:.3} not clearly above mlid's {:.3}",
        slid_roots.max_utilization,
        mlid_roots.max_utilization
    );

    // The saturated port is a real, identifiable switch port that the MLID
    // run leaves cooler: the same port under MLID carries fewer bytes.
    let (sw, port) = slid_roots.max_port.expect("slid roots carried traffic");
    let slid_bytes = slid.counters.port(sw, port - 1).xmit_bytes;
    let mlid_bytes = mlid.counters.port(sw, port - 1).xmit_bytes;
    assert!(
        slid_bytes > mlid_bytes,
        "port S{sw} p{port}: slid {slid_bytes} B <= mlid {mlid_bytes} B"
    );

    // MLID balances: its root level is closer to uniform, so its
    // peak-to-mean ratio sits well below SLID's. (Total root xmit-wait is
    // NOT a concentration signal — MLID keeps more root ports busy toward
    // the saturated subtree, so its aggregate wait can be higher.)
    let imbalance = |l: &commands::LevelSummary| l.max_utilization / l.mean_utilization;
    assert!(
        imbalance(slid_roots) > 1.5 * imbalance(mlid_roots),
        "slid root imbalance {:.2} not clearly above mlid's {:.2}",
        imbalance(slid_roots),
        imbalance(mlid_roots)
    );
}
