//! Live fault injection: failures as *events* inside the packet engine.
//!
//! The static path (`ib-fabric`'s `with_failed`) rebuilds tables before
//! a run; nothing breaks mid-simulation. This module makes failures part
//! of the event stream instead:
//!
//! * a [`FaultPlan`] — an ordered schedule of link/switch kill and
//!   revive events, with seeded selection helpers — travels inside
//!   [`crate::SimConfig`] and is compiled once per run;
//! * compilation replays the subnet manager's reaction
//!   ([`ibfat_sm::SubnetManager::reconverge`]) fault by fault, producing
//!   for each event the dead-port masks, the per-switch LFT patch lists,
//!   and the modeled reconvergence latency (detection + per-switch
//!   reprogramming);
//! * the engine schedules one `FaultApply` event at each fault instant
//!   and one `SwReprogram` event per patched switch at the fault's
//!   reprogram time. Between the two, the fabric forwards with *stale*
//!   tables: packets routed onto a dead port are dropped
//!   ([`FaultPolicy::Drop`]) or parked ([`FaultPolicy::Stall`]) until
//!   the reprogram rescues them.
//!
//! Everything here is a pure function of `(network, routing kind,
//! plan)` — no clocks, no RNG at runtime — which is what lets the
//! sequential, threaded, and multi-process engines agree bit for bit:
//! each shard compiles the same plan and applies the same masks and
//! patches at the same instants.
//!
//! The post-run [`DisruptionReport`] quantifies the damage: packets
//! lost/stalled/rerouted, per-fault reconvergence cost, MLID-vs-SLID
//! surviving `2^LMC` LID paths per pair on the degraded fabric, and the
//! per-level load imbalance against the healthy baseline.

use crate::engine::Time;
use crate::metrics::SimReport;
use ibfat_routing::{build_fault_tolerant, RepairState, Routing, RoutingKind};
use ibfat_sm::{ReconvergenceModel, SubnetManager};
use ibfat_topology::{DeviceRef, Network, NodeId, PortNum};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha12Rng;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

/// One scheduled change to the fabric's cabling. Link ids are indices
/// into the *healthy* base network's [`Network::links`] array (they
/// never shift, no matter how many links are currently dead).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FaultAction {
    /// Cut one inter-switch cable.
    KillLink(u32),
    /// Power off a whole switch: every cable incident to it dies, and
    /// events targeting it are squelched.
    KillSwitch(u32),
    /// Re-cable a previously killed link.
    ReviveLink(u32),
    /// Power a killed switch back on (its incident links revive unless
    /// the far endpoint is itself a killed switch). Nodes attached to a
    /// killed leaf switch stop generating permanently — a revive
    /// restores forwarding through the switch, not the lost injection.
    ReviveSwitch(u32),
}

/// A fault action pinned to a simulation instant.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultEvent {
    /// When the fault fires (ns).
    pub at_ns: Time,
    /// What breaks (or heals).
    pub action: FaultAction,
}

/// What happens to a packet that meets a dead port before the SM has
/// reprogrammed the switch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum FaultPolicy {
    /// Lossy fabric: arrivals over a dead cable and heads routed onto a
    /// dead port are discarded (counted in `fault_lost`).
    #[default]
    Drop,
    /// Lossless fabric: heads routed onto a dead port park in the input
    /// buffer until reprogramming re-routes them; in-flight wire
    /// traffic still lands. Backpressure does the rest.
    Stall,
}

/// A deterministic schedule of mid-run fabric failures.
///
/// The empty plan (the [`Default`]) disables the subsystem entirely —
/// the engine takes the exact pre-fault code paths.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultPlan {
    /// Fault events, nondecreasing in `at_ns`.
    pub events: Vec<FaultEvent>,
    /// Dead-port packet treatment during the stale-table window.
    #[serde(default)]
    pub policy: FaultPolicy,
    /// SM detection latency (trap/sweep), paid once per fault.
    pub detect_ns: Time,
    /// SM per-switch LFT reprogramming latency.
    pub per_switch_ns: Time,
}

impl Default for FaultPlan {
    fn default() -> Self {
        let model = ReconvergenceModel::default();
        FaultPlan {
            events: Vec::new(),
            policy: FaultPolicy::Drop,
            detect_ns: model.detect_ns,
            per_switch_ns: model.per_switch_ns,
        }
    }
}

impl FaultPlan {
    /// No events — the engine runs exactly as without the subsystem.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// A plan that kills the given base-net link indices at one instant.
    pub fn kill_links_at(links: &[u32], at_ns: Time) -> FaultPlan {
        FaultPlan {
            events: links
                .iter()
                .map(|&l| FaultEvent {
                    at_ns,
                    action: FaultAction::KillLink(l),
                })
                .collect(),
            ..FaultPlan::default()
        }
    }

    /// Pick `k` distinct inter-switch links of `net` by seeded RNG
    /// (partial Fisher–Yates over the inter-switch index list), for
    /// reproducible fault-scenario construction.
    pub fn pick_links(net: &Network, k: usize, seed: u64) -> Vec<u32> {
        let mut pool = net.inter_switch_link_indices();
        let k = k.min(pool.len());
        let mut rng = ChaCha12Rng::seed_from_u64(seed);
        let mut out = Vec::with_capacity(k);
        for i in 0..k {
            let j = rng.gen_range(i..pool.len());
            pool.swap(i, j);
            out.push(pool[i] as u32);
        }
        out
    }

    /// Check the plan against the base network: events must be sorted
    /// by time, ids in range, kills must hit live components and
    /// revives dead ones, and only inter-switch cables may be killed
    /// (a node's single cable dying is modeled by killing its leaf
    /// switch instead).
    pub fn validate(&self, net: &Network) -> Result<(), String> {
        if u64::from(net.params().m()) > 64 {
            return Err("fault plans support at most 64 ports per switch".into());
        }
        let inter: BTreeSet<u32> = net
            .inter_switch_link_indices()
            .into_iter()
            .map(|i| i as u32)
            .collect();
        let num_sw = net.num_switches() as u32;
        let mut killed_links: BTreeSet<u32> = BTreeSet::new();
        let mut killed_sws: BTreeSet<u32> = BTreeSet::new();
        let mut prev_at = 0;
        for (i, ev) in self.events.iter().enumerate() {
            if ev.at_ns < prev_at {
                return Err(format!("event {i} at {} ns is out of order", ev.at_ns));
            }
            prev_at = ev.at_ns;
            match ev.action {
                FaultAction::KillLink(l) => {
                    if !inter.contains(&l) {
                        return Err(format!("event {i}: link {l} is not an inter-switch link"));
                    }
                    if !killed_links.insert(l) {
                        return Err(format!("event {i}: link {l} is already dead"));
                    }
                }
                FaultAction::ReviveLink(l) => {
                    if !killed_links.remove(&l) {
                        return Err(format!("event {i}: link {l} is not dead"));
                    }
                }
                FaultAction::KillSwitch(s) => {
                    if s >= num_sw {
                        return Err(format!("event {i}: no switch {s}"));
                    }
                    if !killed_sws.insert(s) {
                        return Err(format!("event {i}: switch {s} is already dead"));
                    }
                }
                FaultAction::ReviveSwitch(s) => {
                    if !killed_sws.remove(&s) {
                        return Err(format!("event {i}: switch {s} is not dead"));
                    }
                }
            }
        }
        Ok(())
    }

    /// Per-node injection cut-off times implied by the plan: a node
    /// stops generating the moment its leaf switch is killed
    /// (`u64::MAX` = never). A pure function of plan + topology — every
    /// shard and process computes it identically, and the injection
    /// pre-pass replays it without consulting any routing tables.
    pub(crate) fn node_kill_times(&self, net: &Network) -> Vec<Time> {
        let mut kill = vec![Time::MAX; net.num_nodes()];
        for ev in &self.events {
            if let FaultAction::KillSwitch(s) = ev.action {
                for n in 0..net.num_nodes() as u32 {
                    if let Some(peer) = net.peer_of(DeviceRef::Node(NodeId(n)), PortNum(1)) {
                        if peer.device == DeviceRef::Switch(ibfat_topology::SwitchId(s)) {
                            let slot = &mut kill[n as usize];
                            *slot = (*slot).min(ev.at_ns);
                        }
                    }
                }
            }
        }
        kill
    }
}

/// One compiled fault: the engine state to install at `at`, and the
/// reprogramming to perform at `reprogram_at`.
#[derive(Debug, Clone)]
pub(crate) struct CompiledFault {
    /// The fault instant.
    pub(crate) at: Time,
    /// When the SM finishes reprogramming (`at + latency`, clamped
    /// nondecreasing across faults so overlapping reconvergences keep a
    /// deterministic apply order).
    pub(crate) reprogram_at: Time,
    /// Per-switch dead-port bitmask after this fault (bit `k` = 0-based
    /// port `k` is dead).
    pub(crate) sw_dead: Vec<u64>,
    /// Switches that are powered off after this fault.
    pub(crate) sw_killed: Vec<bool>,
    /// LFT deltas, grouped per switch (ascending switch id) as
    /// `(lid index, 0-based port or u8::MAX for "no entry")` — exactly
    /// the flattened-table encoding the engine forwards with.
    pub(crate) patches: Vec<(u32, Vec<(u32, u8)>)>,
    /// Repair cost counters (for the report).
    pub(crate) switches_reprogrammed: usize,
    pub(crate) entries_patched: usize,
    pub(crate) table_entries: usize,
    /// Modeled detection + reprogramming latency.
    pub(crate) latency_ns: Time,
}

/// The compiled form of a [`FaultPlan`]: shared read-only by every
/// shard of a run.
#[derive(Debug)]
pub(crate) struct FaultRuntime {
    pub(crate) faults: Vec<CompiledFault>,
}

/// The base-net link indices that are dead given the current killed
/// sets (explicit kills plus links incident to killed switches),
/// ascending.
fn dead_link_indices(
    net: &Network,
    killed_links: &BTreeSet<u32>,
    killed_sws: &BTreeSet<u32>,
) -> Vec<u32> {
    net.links()
        .iter()
        .enumerate()
        .filter(|(i, l)| {
            killed_links.contains(&(*i as u32))
                || [l.a, l.b]
                    .iter()
                    .any(|p| matches!(p.device, DeviceRef::Switch(s) if killed_sws.contains(&s.0)))
        })
        .map(|(i, _)| i as u32)
        .collect()
}

/// Materialize the degraded network for a dead-link set: clone the base
/// and remove indices in descending order (removal shifts the tail).
fn degraded_net(net: &Network, dead: &[u32]) -> Network {
    let mut d = net.clone();
    for &i in dead.iter().rev() {
        d.remove_link(i as usize);
    }
    d
}

/// Compile a plan against the base network and routing. Pure and
/// deterministic; panics on an invalid plan or an unsupported scheme —
/// both are caught by `SimConfig::validate` / the CLI first.
pub(crate) fn compile(net: &Network, routing: &Routing, plan: &FaultPlan) -> FaultRuntime {
    compile_full(net, routing, plan).0
}

/// [`compile`], also returning the final degraded network and the final
/// repaired routing (what the fabric forwards with after the last
/// reprogram) for post-run analysis.
pub(crate) fn compile_full(
    net: &Network,
    routing: &Routing,
    plan: &FaultPlan,
) -> (FaultRuntime, Network, Routing) {
    if let Err(e) = plan.validate(net) {
        panic!("invalid fault plan: {e}");
    }
    let kind = routing.kind();
    assert!(
        kind != RoutingKind::UpDown,
        "fault plans require the MLID/SLID schemes (up*/down* rebuilds natively)"
    );
    assert!(
        routing.has_tables() && !routing.is_view(),
        "fault compilation needs the full base tables"
    );
    let num_sw = net.num_switches();
    let sm = SubnetManager::new(kind, NodeId(0));
    let model = ReconvergenceModel {
        detect_ns: plan.detect_ns,
        per_switch_ns: plan.per_switch_ns,
    };
    let mut state = RepairState::new(net);
    let mut prev: Option<Routing> = None;
    let mut killed_links: BTreeSet<u32> = BTreeSet::new();
    let mut killed_sws: BTreeSet<u32> = BTreeSet::new();
    let mut floor: Time = 0;
    let mut faults = Vec::with_capacity(plan.events.len());
    let mut final_net = net.clone();
    for ev in &plan.events {
        match ev.action {
            FaultAction::KillLink(l) => {
                killed_links.insert(l);
            }
            FaultAction::ReviveLink(l) => {
                killed_links.remove(&l);
            }
            FaultAction::KillSwitch(s) => {
                killed_sws.insert(s);
            }
            FaultAction::ReviveSwitch(s) => {
                killed_sws.remove(&s);
            }
        }
        let dead = dead_link_indices(net, &killed_links, &killed_sws);
        let mut sw_dead = vec![0u64; num_sw];
        for &i in &dead {
            let l = net.links()[i as usize];
            for p in [l.a, l.b] {
                if let DeviceRef::Switch(s) = p.device {
                    sw_dead[s.index()] |= 1u64 << (p.port.0 - 1);
                }
            }
        }
        let sw_killed: Vec<bool> = (0..num_sw as u32)
            .map(|s| killed_sws.contains(&s))
            .collect();
        let dnet = degraded_net(net, &dead);
        let rc = sm
            .reconverge(&dnet, prev.as_ref().unwrap_or(routing), &mut state, model)
            .expect("fat-tree reconvergence cannot fail for MLID/SLID");
        let mut by_sw: BTreeMap<u32, Vec<(u32, u8)>> = BTreeMap::new();
        for p in &rc.patches {
            by_sw
                .entry(p.sw.0)
                .or_default()
                .push((p.lid.index() as u32, p.port.map_or(u8::MAX, |pt| pt.0 - 1)));
        }
        let reprogram_at = floor.max(ev.at_ns.saturating_add(rc.latency_ns));
        floor = reprogram_at;
        faults.push(CompiledFault {
            at: ev.at_ns,
            reprogram_at,
            sw_dead,
            sw_killed,
            patches: by_sw.into_iter().collect(),
            switches_reprogrammed: rc.stats.switches_reprogrammed,
            entries_patched: rc.stats.entries_patched,
            table_entries: rc.stats.table_entries,
            latency_ns: rc.latency_ns,
        });
        final_net = dnet;
        prev = Some(rc.routing);
    }
    let final_routing = prev.unwrap_or_else(|| routing.clone());
    (FaultRuntime { faults }, final_net, final_routing)
}

/// The engine's live fault state. Present (boxed off the hot-struct
/// body) exactly when the run has a non-empty plan; every guard in the
/// packet engine is behind `faults.is_some()`.
#[derive(Debug)]
pub(crate) struct FaultState {
    /// Dead-port treatment.
    pub(crate) policy: FaultPolicy,
    /// Per-node injection cut-off (`u64::MAX` = never).
    pub(crate) node_kill: Vec<Time>,
    /// The compiled schedule. `None` only on view-routed shards until
    /// the worker installs the shared runtime it compiled itself.
    pub(crate) runtime: Option<Arc<FaultRuntime>>,
    /// Live dead-port masks (updated by `FaultApply`).
    pub(crate) sw_dead: Vec<u64>,
    /// Live killed-switch flags (updated by `FaultApply`).
    pub(crate) sw_killed: Vec<bool>,
    /// Packets discarded because of a fault (dead-port arrivals and
    /// dead-port routing under [`FaultPolicy::Drop`]).
    pub(crate) lost: u64,
    /// Heads parked on a dead port under [`FaultPolicy::Stall`].
    pub(crate) stalled: u64,
    /// Parked heads re-routed by an SM reprogram.
    pub(crate) rerouted: u64,
}

impl FaultState {
    pub(crate) fn new(net: &Network, plan: &FaultPlan, runtime: Option<Arc<FaultRuntime>>) -> Self {
        FaultState {
            policy: plan.policy,
            node_kill: plan.node_kill_times(net),
            runtime,
            sw_dead: vec![0; net.num_switches()],
            sw_killed: vec![false; net.num_switches()],
            lost: 0,
            stalled: 0,
            rerouted: 0,
        }
    }
}

// ---------------------------------------------------------------------
// DisruptionReport: post-run damage assessment
// ---------------------------------------------------------------------

/// Per-fault reconvergence summary.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultSummary {
    /// The fault instant (ns).
    pub at_ns: Time,
    /// What happened.
    pub action: FaultAction,
    /// When the SM finished reprogramming (ns).
    pub reprogram_at_ns: Time,
    /// Modeled detection + reprogramming latency (ns).
    pub reconvergence_ns: Time,
    /// Switches whose tables changed.
    pub switches_reprogrammed: usize,
    /// Individual `(switch, LID)` entries patched.
    pub entries_patched: usize,
    /// Total entry slots a full rebuild would reprogram.
    pub table_entries: usize,
}

/// Surviving `2^LMC` LID paths per ordered node pair on the degraded
/// fabric, under one scheme's tables.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PathSurvival {
    /// Routing scheme the tables follow.
    pub kind: RoutingKind,
    /// LIDs per node (`2^LMC`).
    pub lids_per_node: u32,
    /// Ordered `(src, dst)` pairs examined (`N·(N−1)`).
    pub pairs: u64,
    /// Sum over pairs of the LIDs that still trace to delivery.
    pub surviving_paths: u64,
    /// The worst pair's surviving-path count.
    pub min_per_pair: u32,
    /// Pairs with zero surviving paths (disconnected under the scheme).
    pub disconnected_pairs: u64,
}

impl PathSurvival {
    /// Mean surviving paths per pair.
    pub fn avg_per_pair(&self) -> f64 {
        if self.pairs == 0 {
            0.0
        } else {
            self.surviving_paths as f64 / self.pairs as f64
        }
    }
}

/// All-to-all load of one inter-switch tier (links between levels
/// `level` and `level + 1`), healthy vs degraded. Loads count directed
/// traversals of an all-to-all trace under the scheme's paper path
/// selection; pairs left unroutable by the faults are skipped.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LevelLoad {
    /// Upper level of the tier (0 = root tier).
    pub level: u32,
    /// Hottest directed channel on the healthy fabric.
    pub healthy_max: u32,
    /// Mean directed-channel load on the healthy fabric.
    pub healthy_mean: f64,
    /// Hottest directed channel on the degraded fabric.
    pub degraded_max: u32,
    /// Mean over the *surviving* directed channels of the tier.
    pub degraded_mean: f64,
}

/// What a faulted run did to the fabric: engine loss/stall counters,
/// per-fault reconvergence cost, surviving multipath (MLID's headline
/// claim vs the SLID baseline), and per-level load imbalance.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DisruptionReport {
    /// Per-fault reconvergence summaries, in schedule order.
    pub faults: Vec<FaultSummary>,
    /// Packets discarded because of a fault.
    pub packets_lost: u64,
    /// Heads that parked on a dead port (Stall policy).
    pub packets_stalled: u64,
    /// Parked heads re-routed by SM reprogramming.
    pub packets_rerouted: u64,
    /// Sum of the per-fault reconvergence latencies (ns).
    pub total_reconvergence_ns: Time,
    /// Surviving LID paths under the run's scheme.
    pub survival: PathSurvival,
    /// Surviving LID paths under SLID tables on the same degraded
    /// fabric — the single-path baseline the paper argues against.
    pub slid_survival: PathSurvival,
    /// Per-tier load, healthy vs degraded.
    pub level_loads: Vec<LevelLoad>,
}

/// Count, for every ordered pair, how many of the destination's
/// `2^LMC` LIDs still trace to delivery on `net` under `routing`.
fn survival_of(net: &Network, routing: &Routing) -> PathSurvival {
    let space = routing.lid_space();
    let lids_per_node = space.lids_per_node();
    let n = net.num_nodes() as u32;
    let mut surviving = 0u64;
    let mut min_per_pair = lids_per_node;
    let mut disconnected = 0u64;
    for src in 0..n {
        for dst in 0..n {
            if src == dst {
                continue;
            }
            let mut live = 0u32;
            for lid in space.lids(NodeId(dst)) {
                if routing.trace(net, NodeId(src), lid).is_ok() {
                    live += 1;
                }
            }
            surviving += u64::from(live);
            min_per_pair = min_per_pair.min(live);
            if live == 0 {
                disconnected += 1;
            }
        }
    }
    PathSurvival {
        kind: routing.kind(),
        lids_per_node,
        pairs: u64::from(n) * u64::from(n.saturating_sub(1)),
        surviving_paths: surviving,
        min_per_pair,
        disconnected_pairs: disconnected,
    }
}

/// Directed per-channel all-to-all loads over the inter-switch links,
/// folded per tier: `(per-tier max, per-tier sum, per-tier channels)`.
/// Unroutable pairs are skipped (the degraded fabric may have them).
fn tier_loads(net: &Network, routing: &Routing) -> (Vec<u32>, Vec<u64>, Vec<u64>) {
    let params = net.params();
    let n = params.n();
    let m = params.m() as usize;
    let num_sw = net.num_switches();
    let tiers = (n as usize).saturating_sub(1).max(1);
    let mut chan = vec![0u32; num_sw * m];
    let nodes = net.num_nodes() as u32;
    for src in 0..nodes {
        for dst in 0..nodes {
            if src == dst {
                continue;
            }
            let dlid = routing.select_dlid(NodeId(src), NodeId(dst));
            let Ok(route) = routing.trace(net, NodeId(src), dlid) else {
                continue;
            };
            for hop in &route.hops {
                let Some(peer) = net.peer_of(DeviceRef::Switch(hop.switch), hop.out_port) else {
                    continue;
                };
                if matches!(peer.device, DeviceRef::Switch(_)) {
                    chan[hop.switch.index() * m + hop.out_port.index() - 1] += 1;
                }
            }
        }
    }
    let mut max = vec![0u32; tiers];
    let mut sum = vec![0u64; tiers];
    let mut count = vec![0u64; tiers];
    for link in net.links() {
        for (a, b) in [(link.a, link.b), (link.b, link.a)] {
            let (DeviceRef::Switch(sa), DeviceRef::Switch(sb)) = (a.device, b.device) else {
                continue;
            };
            let tier = params
                .switch_level_of(sa.0)
                .min(params.switch_level_of(sb.0)) as usize;
            let load = chan[sa.index() * m + a.port.index() - 1];
            max[tier] = max[tier].max(load);
            sum[tier] += u64::from(load);
            count[tier] += 1;
            let _ = sb;
        }
    }
    (max, sum, count)
}

/// Assemble the post-run [`DisruptionReport`] for a faulted run: engine
/// counters come from `report`, everything else is recomputed from the
/// plan (compilation is cheap and pure, so this needs no state carried
/// out of the engine).
///
/// # Panics
/// Panics if the plan is invalid for `net` or `routing` is a scheme the
/// fault subsystem does not support (same conditions as the run itself).
pub fn disruption_report(
    net: &Network,
    routing: &Routing,
    plan: &FaultPlan,
    report: &SimReport,
) -> DisruptionReport {
    let (runtime, final_net, final_routing) = compile_full(net, routing, plan);
    let faults: Vec<FaultSummary> = runtime
        .faults
        .iter()
        .zip(&plan.events)
        .map(|(cf, ev)| FaultSummary {
            at_ns: cf.at,
            action: ev.action,
            reprogram_at_ns: cf.reprogram_at,
            reconvergence_ns: cf.latency_ns,
            switches_reprogrammed: cf.switches_reprogrammed,
            entries_patched: cf.entries_patched,
            table_entries: cf.table_entries,
        })
        .collect();
    let survival = survival_of(&final_net, &final_routing);
    let slid_survival = if routing.kind() == RoutingKind::Slid {
        survival.clone()
    } else {
        let slid = build_fault_tolerant(&final_net, RoutingKind::Slid);
        survival_of(&final_net, &slid)
    };
    let (h_max, h_sum, h_count) = tier_loads(net, routing);
    let (d_max, d_sum, d_count) = tier_loads(&final_net, &final_routing);
    let level_loads = (0..h_max.len())
        .map(|t| LevelLoad {
            level: t as u32,
            healthy_max: h_max[t],
            healthy_mean: if h_count[t] == 0 {
                0.0
            } else {
                h_sum[t] as f64 / h_count[t] as f64
            },
            degraded_max: d_max[t],
            degraded_mean: if d_count[t] == 0 {
                0.0
            } else {
                d_sum[t] as f64 / d_count[t] as f64
            },
        })
        .collect();
    DisruptionReport {
        faults,
        packets_lost: report.fault_lost,
        packets_stalled: report.fault_stalled,
        packets_rerouted: report.fault_rerouted,
        total_reconvergence_ns: runtime.faults.iter().map(|f| f.latency_ns).sum(),
        survival,
        slid_survival,
        level_loads,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ibfat_topology::TreeParams;

    fn net(m: u32, n: u32) -> Network {
        Network::mport_ntree(TreeParams::new(m, n).unwrap())
    }

    #[test]
    fn pick_links_is_seed_stable_and_distinct() {
        let net = net(4, 3);
        let a = FaultPlan::pick_links(&net, 5, 42);
        let b = FaultPlan::pick_links(&net, 5, 42);
        assert_eq!(a, b);
        let mut sorted = a.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 5, "picks must be distinct");
        let inter = net.inter_switch_link_indices();
        for l in &a {
            assert!(inter.contains(&(*l as usize)));
        }
        assert_ne!(a, FaultPlan::pick_links(&net, 5, 43));
    }

    #[test]
    fn validate_rejects_bad_plans() {
        let net = net(4, 2);
        let node_link = (0..net.links().len() as u32)
            .find(|&i| {
                let l = net.links()[i as usize];
                matches!(l.a.device, DeviceRef::Node(_)) || matches!(l.b.device, DeviceRef::Node(_))
            })
            .unwrap();
        let inter = net.inter_switch_link_indices()[0] as u32;
        let cases: Vec<Vec<FaultEvent>> = vec![
            // node link
            vec![FaultEvent {
                at_ns: 10,
                action: FaultAction::KillLink(node_link),
            }],
            // out of order
            vec![
                FaultEvent {
                    at_ns: 20,
                    action: FaultAction::KillLink(inter),
                },
                FaultEvent {
                    at_ns: 10,
                    action: FaultAction::KillSwitch(0),
                },
            ],
            // double kill
            vec![
                FaultEvent {
                    at_ns: 10,
                    action: FaultAction::KillLink(inter),
                },
                FaultEvent {
                    at_ns: 20,
                    action: FaultAction::KillLink(inter),
                },
            ],
            // revive of a live link
            vec![FaultEvent {
                at_ns: 10,
                action: FaultAction::ReviveLink(inter),
            }],
            // bad switch id
            vec![FaultEvent {
                at_ns: 10,
                action: FaultAction::KillSwitch(10_000),
            }],
        ];
        for events in cases {
            let plan = FaultPlan {
                events: events.clone(),
                ..FaultPlan::default()
            };
            assert!(plan.validate(&net).is_err(), "{events:?} must be rejected");
        }
        let ok = FaultPlan {
            events: vec![
                FaultEvent {
                    at_ns: 10,
                    action: FaultAction::KillLink(inter),
                },
                FaultEvent {
                    at_ns: 30,
                    action: FaultAction::ReviveLink(inter),
                },
            ],
            ..FaultPlan::default()
        };
        ok.validate(&net).unwrap();
    }

    #[test]
    fn compile_matches_from_scratch_tables_including_revive() {
        let net = net(4, 3);
        let inter = net.inter_switch_link_indices();
        let (l0, l1) = (inter[2] as u32, inter[9] as u32);
        for kind in [RoutingKind::Mlid, RoutingKind::Slid] {
            let routing = Routing::build(&net, kind);
            let plan = FaultPlan {
                events: vec![
                    FaultEvent {
                        at_ns: 1_000,
                        action: FaultAction::KillLink(l0),
                    },
                    FaultEvent {
                        at_ns: 2_000,
                        action: FaultAction::KillLink(l1),
                    },
                    FaultEvent {
                        at_ns: 3_000,
                        action: FaultAction::ReviveLink(l0),
                    },
                ],
                ..FaultPlan::default()
            };
            let (rt, final_net, final_routing) = compile_full(&net, &routing, &plan);
            assert_eq!(rt.faults.len(), 3);
            // Final fabric: only l1 dead.
            let expect_net = degraded_net(&net, &[l1]);
            assert_eq!(final_net.links().len(), expect_net.links().len());
            let full = build_fault_tolerant(&expect_net, kind);
            assert_eq!(
                final_routing.lfts(),
                full.lfts(),
                "{kind}: chained repair after revive != from-scratch build"
            );
            // The revive restored table state: the last fault patched
            // something back.
            assert!(!rt.faults[2].patches.is_empty());
            // Reprogram times are nondecreasing and strictly after the fault.
            let mut prev = 0;
            for f in &rt.faults {
                assert!(f.reprogram_at >= f.at + plan.detect_ns);
                assert!(f.reprogram_at >= prev);
                prev = f.reprogram_at;
            }
        }
    }

    #[test]
    fn switch_kill_deadens_incident_ports_and_nodes() {
        let net = net(4, 2);
        // Switch at the leaf level (level n-1 = 1) owns nodes.
        let leaf = (0..net.num_switches() as u32)
            .find(|&s| net.params().switch_level_of(s) == 1)
            .unwrap();
        let plan = FaultPlan {
            events: vec![FaultEvent {
                at_ns: 500,
                action: FaultAction::KillSwitch(leaf),
            }],
            ..FaultPlan::default()
        };
        let kills = plan.node_kill_times(&net);
        let killed_nodes = kills.iter().filter(|&&t| t == 500).count();
        assert_eq!(killed_nodes, net.params().half() as usize);
        assert!(kills.iter().all(|&t| t == 500 || t == Time::MAX));
        let routing = Routing::build(&net, RoutingKind::Mlid);
        let rt = compile(&net, &routing, &plan);
        let cf = &rt.faults[0];
        assert!(cf.sw_killed[leaf as usize]);
        // Every port of the killed switch is dead, and so is the
        // matching far-end port of each switch peer.
        assert_eq!(
            cf.sw_dead[leaf as usize].count_ones(),
            net.switch(ibfat_topology::SwitchId(leaf)).peers().count() as u32
        );
        for (port, peer) in net.switch(ibfat_topology::SwitchId(leaf)).peers() {
            let _ = port;
            if let DeviceRef::Switch(s) = peer.device {
                assert_ne!(cf.sw_dead[s.index()] & (1 << (peer.port.0 - 1)), 0);
            }
        }
    }

    #[test]
    fn disruption_report_contrasts_mlid_and_slid_survival() {
        let base = net(4, 3);
        let routing = Routing::build(&base, RoutingKind::Mlid);
        let kill = FaultPlan::pick_links(&base, 2, 7);
        let plan = FaultPlan::kill_links_at(&kill, 1_000);
        let report = SimReport::default();
        let d = disruption_report(&base, &routing, &plan, &report);
        assert_eq!(d.faults.len(), 2);
        assert_eq!(d.survival.kind, RoutingKind::Mlid);
        assert_eq!(d.slid_survival.kind, RoutingKind::Slid);
        let n = base.num_nodes() as u64;
        assert_eq!(d.survival.pairs, n * (n - 1));
        // MLID exposes 2^LMC paths per pair; SLID always exactly one.
        assert_eq!(d.survival.lids_per_node, base.params().lids_per_node());
        assert_eq!(d.slid_survival.lids_per_node, 1);
        assert!(d.survival.surviving_paths > d.slid_survival.surviving_paths);
        // Two dead links cannot disconnect FT(4,3) under repair.
        assert_eq!(d.survival.disconnected_pairs, 0);
        assert_eq!(d.slid_survival.disconnected_pairs, 0);
        assert!(d.survival.min_per_pair >= 1);
        // Tier loads: n-1 = 2 tiers, healthy means positive.
        assert_eq!(d.level_loads.len(), 2);
        for t in &d.level_loads {
            assert!(t.healthy_mean > 0.0);
            assert!(t.degraded_max >= 1);
        }
        assert_eq!(
            d.total_reconvergence_ns,
            d.faults.iter().map(|f| f.reconvergence_ns).sum()
        );
    }
}
