//! Reproduces the paper's worked multipath example (Section 4 / Figure 11)
//! on the 4-port 3-tree: the four nodes of `gcpg(0, 1)` send to `P(100)`
//! through routes Q, R, S, T, each climbing to a *different* root switch.
//!
//! The upward phases are pairwise link-disjoint (MLID's defining
//! property), so the hot destination is fed through every least common
//! ancestor at once. The descents necessarily converge — a leaf switch
//! has only `m/2` parents and the destination a single endport — which is
//! exactly what the paper's Figure 11 shows.
//!
//! ```text
//! cargo run --release --example path_diversity
//! ```

use ib_fabric::prelude::*;
use std::collections::HashSet;

fn main() {
    let fabric = Fabric::builder(4, 3).build().expect("valid");
    let params = fabric.params();
    let space = fabric.routing().lid_space();

    // The destination: P(100) = node 4, BaseLID 17 per the paper.
    let dst = NodeId(4);
    let dst_label = NodeLabel::from_id(params, dst);
    let lids: Vec<u32> = space.lids(dst).map(|l| l.0).collect();
    println!("destination {dst_label} (PID {}): LIDset {lids:?}", dst.0);

    let route_names = ["Q", "R", "S", "T"];
    let mut up_links = HashSet::new();
    let mut roots = HashSet::new();
    let mut all_links: Vec<_> = Vec::new();
    for (i, src) in (0..4).enumerate() {
        let src = NodeId(src);
        let src_label = NodeLabel::from_id(params, src);
        let dlid = fabric.routing().select_dlid(src, dst);
        let route = fabric.route(src, dst).expect("routable");
        let switches: Vec<String> = route
            .hops
            .iter()
            .map(|h| SwitchLabel::from_id(params, h.switch).to_string())
            .collect();
        println!(
            "\nroute {}: {src_label} -> {dst_label} with DLID {}\n  {}",
            route_names[i],
            dlid.0,
            switches.join(" -> ")
        );

        // MLID's guarantee: no two sources ever share an upward link.
        for link in route.upward_links(params) {
            assert!(
                up_links.insert(link),
                "two routes share an upward link — MLID property broken!"
            );
        }
        // Each route peaks at a distinct root.
        for hop in &route.hops {
            if SwitchLabel::from_id(params, hop.switch).level().0 == 0 {
                roots.insert(hop.switch);
            }
        }
        all_links.extend(route.directed_links());
    }
    assert_eq!(roots.len(), 4, "expected one root per route");
    println!("\nthe four routes climb through 4 disjoint upward links and");
    println!("4 distinct root switches; their descents merge only where the");
    println!("topology forces them to (the destination's leaf switch).");

    // Contrast with SLID: the same four flows collapse onto one ascent.
    let slid = Fabric::builder(4, 3)
        .routing(RoutingKind::Slid)
        .build()
        .expect("valid");
    let mut slid_roots = HashSet::new();
    let mut slid_up = Vec::new();
    for src in 0..4 {
        let route = slid.route(NodeId(src), dst).expect("routable");
        slid_up.extend(route.upward_links(params));
        for hop in &route.hops {
            if SwitchLabel::from_id(params, hop.switch).level().0 == 0 {
                slid_roots.insert(hop.switch);
            }
        }
    }
    let slid_distinct: HashSet<_> = slid_up.iter().collect();
    println!(
        "\nSLID: the same four flows traverse {} roots and {} distinct upward \
         links ({} traversals) — the Figure 9(a) pile-up.",
        slid_roots.len(),
        slid_distinct.len(),
        slid_up.len(),
    );
    println!(
        "MLID: 4 roots, {} distinct upward links, every traversal its own link.",
        up_links.len()
    );
}
