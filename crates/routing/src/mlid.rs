//! The paper's Multiple LID (MLID) routing scheme (Section 4).
//!
//! Three cooperating pieces:
//!
//! 1. **Processing-node addressing** — every node gets `2^LMC` LIDs,
//!    `LMC = log2((m/2)^(n-1))`, `BaseLID(P(p)) = PID(P(p))·2^LMC + 1`.
//! 2. **Path selection** — for a source `s` and destination `d` with
//!    greatest common prefix length `alpha`, the source's rank `r` in
//!    `gcpg(s_0..s_alpha, alpha+1)` picks `DLID = BaseLID(d) + r`.
//! 3. **Forwarding-table assignment** — per switch `SW<w, l>` and LID
//!    `lid` owned by node `P(p)`:
//!    * *Case 1* (`p` reachable downward, i.e. `p_0..p_{l-1} = w_0..w_{l-1}`):
//!      `k = p_l + 1`                              — Equation (1)
//!    * *Case 2* (otherwise, climb):
//!      `k = (⌊(lid-1)/(m/2)^(n-1-l)⌋ mod m/2) + m/2 + 1`  — Equation (2)
//!
//! Equation (2) reads digit `n-1-l` of `lid - 1` in base `m/2`. Because the
//! low `LMC` digits of `lid - 1` are the path-selection offset `r`, and `r`'s
//! digits are exactly the source's label digits (`digit_j(r) = s_{n-1-j}`),
//! the switch reached while climbing at level `l` is *the source label with
//! digit `l` deleted* — so every upward link is used by exactly one source
//! node, which is what spreads hot-spot traffic over all the least common
//! ancestors.

use crate::{Lft, Lid, LidSpace, RoutingScheme};
use ibfat_topology::{
    gcp_len, par_map_indexed, rank_in, Gcpg, Network, NodeId, NodeLabel, PortNum, SwitchId,
    SwitchLabel, TreeParams,
};

/// Decompose a dense switch id into `(level, index within level)`.
#[inline]
pub(crate) fn level_and_index(params: TreeParams, sw: SwitchId) -> (u32, u32) {
    let level = params.switch_level_of(sw.0);
    (level, sw.0 - params.level_offset(level))
}

/// Fill the Equation (1) descending entries of a switch's LFT by contiguous
/// runs.
///
/// The subtree below switch `idx` at `level` is the contiguous node-id
/// range `[prefix * (m/2)^(n-level), ..)` where `prefix` is the first
/// `level` digits of the switch label (for roots, every node is below).
/// Within it, down-port `d + 1` owns exactly the nodes whose label digit
/// `level` equals `d` — one contiguous block of `(m/2)^(n-1-level)` nodes,
/// hence one contiguous LID run per port.
pub(crate) fn fill_down_runs(lft: &mut Lft, params: TreeParams, space: &LidSpace, sw: SwitchId) {
    let half = params.half();
    let n = params.n();
    let lpn = space.lids_per_node();
    let (level, idx) = level_and_index(params, sw);
    let stride_nodes = half.pow(n - 1 - level);
    let radix = if level == 0 { params.m() } else { half };
    let below_start = if level == 0 {
        0
    } else {
        (idx / stride_nodes) * half.pow(n - level)
    };
    for d in 0..radix {
        let first = NodeId(below_start + d * stride_nodes);
        lft.fill(
            space.base_lid(first),
            (stride_nodes * lpn) as usize,
            PortNum((d + 1) as u8),
        );
    }
}

/// The MLID scheme (stateless; all state lives in the produced artifacts).
#[derive(Debug, Clone, Copy, Default)]
pub struct MlidScheme;

impl MlidScheme {
    /// The paper's path selection: `BaseLID(dst) + rank(src)` where the
    /// rank is taken in the source's prefix group one digit deeper than the
    /// greatest common prefix with the destination.
    ///
    /// For `src == dst` (self-addressed traffic) the base LID is returned.
    pub fn select(params: TreeParams, space: &LidSpace, src: NodeId, dst: NodeId) -> Lid {
        if src == dst {
            return space.base_lid(dst);
        }
        let ls = NodeLabel::from_id(params, src);
        let ld = NodeLabel::from_id(params, dst);
        let alpha = gcp_len(&ls, &ld);
        let group = Gcpg::of(params, &ls, alpha + 1);
        let r = rank_in(params, &group, &ls);
        debug_assert!(r < space.lids_per_node());
        space.lid_with_offset(dst, r)
    }

    /// Equation (1): the down-port (IB numbering) toward the owner of a
    /// LID from a switch that has it in its subtree.
    #[inline]
    pub fn eq1_down_port(owner: &NodeLabel, level: usize) -> PortNum {
        PortNum(owner.digit(level) + 1)
    }

    /// Equation (2): the up-port (IB numbering) for a LID at a level-`l`
    /// switch that must climb.
    #[inline]
    pub fn eq2_up_port(params: TreeParams, lid: Lid, level: u32) -> PortNum {
        let half = params.half();
        let digit_index = params.n() - 1 - level;
        let digit = ((lid.0 - 1) / half.pow(digit_index)) % half;
        PortNum((digit + half + 1) as u8)
    }

    /// Build one switch's full LFT by dense block operations instead of
    /// per-entry formula evaluation.
    ///
    /// Equation (2)'s digit of `lid - 1` at level `l >= 1` is a pure
    /// function of the offset within the owning node's LID window: with
    /// `lid - 1 = PID * (m/2)^(n-1) + off`, the node term contributes
    /// `PID * (m/2)^l ≡ 0 (mod m/2)` to the extracted digit. One
    /// precomputed pattern of `2^LMC` port bytes therefore serves *every*
    /// node's window, and the descending case overwrites the (contiguous)
    /// subtree range afterwards via Equation (1) runs. O(max_lid) byte
    /// copies, no per-LID `pow`/`div`.
    pub fn build_switch_lft(params: TreeParams, space: &LidSpace, sw: SwitchId) -> Lft {
        debug_assert_eq!(
            space.lmc(),
            params.lmc(),
            "MLID builder needs the MLID LID space"
        );
        let half = params.half();
        let (level, _) = level_and_index(params, sw);
        let mut lft = Lft::new(space.max_lid());
        if level >= 1 {
            let stride = half.pow(params.n() - 1 - level);
            let pattern: Vec<u8> = (0..space.lids_per_node())
                .map(|off| ((off / stride) % half + half + 1) as u8)
                .collect();
            for node in 0..params.num_nodes() {
                lft.copy_block(space.base_lid(NodeId(node)), &pattern);
            }
        }
        fill_down_runs(&mut lft, params, space, sw);
        lft
    }

    /// The original per-entry builder: every (switch, node, LID) triple
    /// evaluated through Equations (1)/(2) one at a time, serially.
    ///
    /// Kept as the independently-derived reference the dense parallel
    /// [`RoutingScheme::build_lfts`] is tested (and benchmarked) against.
    pub fn build_lfts_reference(net: &Network, space: &LidSpace) -> Vec<Lft> {
        let params = net.params();
        let max_lid = space.max_lid();
        let mut lfts = Vec::with_capacity(net.num_switches());
        for sw in SwitchLabel::all(params) {
            let level = sw.level().index();
            let mut lft = Lft::new(max_lid);
            for node in NodeLabel::all(params) {
                // Case 1 applies iff the first `level` digits match.
                let below = (0..level).all(|i| sw.digit(i) == node.digit(i));
                for lid in space.lids(node.id(params)) {
                    let port = if below {
                        Self::eq1_down_port(&node, level)
                    } else {
                        Self::eq2_up_port(params, lid, level as u32)
                    };
                    lft.set(lid, port);
                }
            }
            lfts.push(lft);
        }
        lfts
    }
}

impl RoutingScheme for MlidScheme {
    fn name(&self) -> &'static str {
        "MLID"
    }

    fn lid_space(&self, net: &Network) -> LidSpace {
        let params = net.params();
        LidSpace::new(params.num_nodes(), params.lmc())
    }

    fn build_lfts(&self, net: &Network, space: &LidSpace) -> Vec<Lft> {
        let params = net.params();
        let switches: Vec<u32> = (0..params.num_switches()).collect();
        par_map_indexed(&switches, |_, &sw| {
            Self::build_switch_lft(params, space, SwitchId(sw))
        })
    }

    fn select_dlid(&self, net: &Network, space: &LidSpace, src: NodeId, dst: NodeId) -> Lid {
        Self::select(net.params(), space, src, dst)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ibfat_topology::Level;

    fn setup() -> (TreeParams, Network, LidSpace, Vec<Lft>) {
        let params = TreeParams::new(4, 3).unwrap();
        let net = Network::mport_ntree(params);
        let space = MlidScheme.lid_space(&net);
        let lfts = MlidScheme.build_lfts(&net, &space);
        (params, net, space, lfts)
    }

    #[test]
    fn addressing_matches_paper() {
        let (_, net, space, _) = setup();
        assert_eq!(space.lmc(), 2);
        assert_eq!(space.lids_per_node(), 4);
        assert_eq!(space.max_lid(), Lid(64));
        assert_eq!(net.num_nodes(), 16);
        // BaseLID(P(010)) = 9 (PID 2).
        assert_eq!(space.base_lid(NodeId(2)), Lid(9));
    }

    #[test]
    fn path_selection_assigns_distinct_offsets_within_subgroup() {
        // The paper's example: P(000), P(001), P(010), P(011) sending to
        // P(100) select the four consecutive LIDs of P(100) in rank order.
        let (params, _, space, _) = setup();
        let dst = NodeId(4); // P(100)
        let base = space.base_lid(dst).0;
        for (i, src) in [0u32, 1, 2, 3].into_iter().enumerate() {
            let dlid = MlidScheme::select(params, &space, NodeId(src), dst);
            assert_eq!(dlid, Lid(base + i as u32), "src P(0..) #{i}");
        }
    }

    #[test]
    fn paper_path_q_walkthrough() {
        // DLID 17 (base LID of P(100)) from P(000): the LFT entries along
        // path Q: SW<00,2> -> SW<00,1> -> SW<00,0> -> SW<10,1> -> SW<10,2>.
        let (params, _, _, lfts) = setup();
        let lid = Lid(17);
        let at = |w: &[u8], l: u8| {
            let id = SwitchLabel::new(params, w, Level(l)).unwrap().id(params);
            lfts[id.index()].get(lid).unwrap()
        };
        // Climbing: offset = (17-1) mod 4 = 0 -> both up hops use the first
        // up-port, IB port 3.
        assert_eq!(at(&[0, 0], 2), PortNum(3));
        assert_eq!(at(&[0, 0], 1), PortNum(3));
        // At the root SW<00,0>: descend toward p0 = 1 -> IB port 2.
        assert_eq!(at(&[0, 0], 0), PortNum(2));
        // Descending: SW<10,1> uses p1 = 0 -> port 1; SW<10,2> uses p2 = 0
        // -> port 1.
        assert_eq!(at(&[1, 0], 1), PortNum(1));
        assert_eq!(at(&[1, 0], 2), PortNum(1));
    }

    #[test]
    fn every_lft_entry_is_populated() {
        let (_, net, space, lfts) = setup();
        for (i, lft) in lfts.iter().enumerate() {
            assert_eq!(
                lft.populated(),
                space.max_lid().index(),
                "switch S{i} has unpopulated entries"
            );
        }
        assert_eq!(lfts.len(), net.num_switches());
    }

    #[test]
    fn eq2_up_ports_stay_in_up_range() {
        let (params, _, space, _) = setup();
        for lid in 1..=space.max_lid().0 {
            for level in 1..params.n() {
                let p = MlidScheme::eq2_up_port(params, Lid(lid), level);
                assert!(
                    u32::from(p.0) > params.half() && u32::from(p.0) <= params.m(),
                    "lid {lid} level {level}: port {p} out of up range"
                );
            }
        }
    }

    #[test]
    fn dense_parallel_build_matches_the_reference() {
        // The block-fill builder must reproduce the per-entry Equation
        // (1)/(2) walk exactly, table for table, over a parameter grid.
        for (m, n) in [(2, 2), (2, 3), (4, 2), (4, 3), (8, 2), (8, 3)] {
            let params = TreeParams::new(m, n).unwrap();
            let net = Network::mport_ntree(params);
            let space = MlidScheme.lid_space(&net);
            let dense = MlidScheme.build_lfts(&net, &space);
            let reference = MlidScheme::build_lfts_reference(&net, &space);
            assert_eq!(dense, reference, "FT({m},{n})");
        }
    }

    #[test]
    fn self_traffic_uses_base_lid() {
        let (params, _, space, _) = setup();
        assert_eq!(
            MlidScheme::select(params, &space, NodeId(5), NodeId(5)),
            space.base_lid(NodeId(5))
        );
    }
}
