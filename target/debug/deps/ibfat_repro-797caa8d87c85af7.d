/root/repo/target/debug/deps/ibfat_repro-797caa8d87c85af7.d: src/lib.rs

/root/repo/target/debug/deps/libibfat_repro-797caa8d87c85af7.rmeta: src/lib.rs

src/lib.rs:
