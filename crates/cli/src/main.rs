//! `ibfat` — command-line front end for the fat-tree InfiniBand library.
//!
//! ```text
//! ibfat info 8x3
//! ibfat route 8x3 0 100 [--scheme mlid]
//! ibfat route 4x3 "P(000)" "P(100)"
//! ibfat verify 4x3 [--scheme slid]
//! ibfat discover 8x2
//! ibfat simulate 8x3 --pattern centric --load 0.4 --vls 2 --time-us 300
//! ibfat sweep 16x2 --loads 0.1,0.3,0.5 --vls 1
//! ibfat workload 8x3 --kind allreduce-ring --bytes 4096 --scheme mlid
//! ibfat workload 8x3 --kind replay --trace trace.jsonl --threads 4
//! ```

use ibfat_cli::{args, commands};

fn main() {
    // `--processes` re-execs this binary as bridge workers; if the
    // supervisor spawned us, speak the worker protocol and exit before
    // any argument parsing.
    ibfat_driver::maybe_run_worker();
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match args::parse(&argv) {
        Ok(cmd) => {
            if let Err(e) = commands::run(cmd) {
                eprintln!("error: {e}");
                std::process::exit(1);
            }
        }
        Err(e) => {
            eprintln!("error: {e}\n");
            eprintln!("{}", args::USAGE);
            std::process::exit(2);
        }
    }
}
