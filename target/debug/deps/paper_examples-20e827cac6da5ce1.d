/root/repo/target/debug/deps/paper_examples-20e827cac6da5ce1.d: tests/paper_examples.rs Cargo.toml

/root/repo/target/debug/deps/libpaper_examples-20e827cac6da5ce1.rmeta: tests/paper_examples.rs Cargo.toml

tests/paper_examples.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
