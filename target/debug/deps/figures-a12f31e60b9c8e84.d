/root/repo/target/debug/deps/figures-a12f31e60b9c8e84.d: crates/bench/src/bin/figures.rs Cargo.toml

/root/repo/target/debug/deps/libfigures-a12f31e60b9c8e84.rmeta: crates/bench/src/bin/figures.rs Cargo.toml

crates/bench/src/bin/figures.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
