/root/repo/target/debug/deps/path_select-35bed294cfefaa5f.d: crates/bench/benches/path_select.rs

/root/repo/target/debug/deps/libpath_select-35bed294cfefaa5f.rmeta: crates/bench/benches/path_select.rs

crates/bench/benches/path_select.rs:
