/root/repo/target/debug/deps/commands-0819e51995ccb078.d: crates/cli/tests/commands.rs Cargo.toml

/root/repo/target/debug/deps/libcommands-0819e51995ccb078.rmeta: crates/cli/tests/commands.rs Cargo.toml

crates/cli/tests/commands.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
