/root/repo/target/debug/deps/commands-4330ff126ad89d98.d: crates/cli/tests/commands.rs

/root/repo/target/debug/deps/commands-4330ff126ad89d98: crates/cli/tests/commands.rs

crates/cli/tests/commands.rs:
