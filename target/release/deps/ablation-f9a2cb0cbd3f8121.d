/root/repo/target/release/deps/ablation-f9a2cb0cbd3f8121.d: crates/bench/src/bin/ablation.rs

/root/repo/target/release/deps/ablation-f9a2cb0cbd3f8121: crates/bench/src/bin/ablation.rs

crates/bench/src/bin/ablation.rs:
