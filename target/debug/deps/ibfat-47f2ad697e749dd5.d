/root/repo/target/debug/deps/ibfat-47f2ad697e749dd5.d: crates/cli/src/main.rs

/root/repo/target/debug/deps/libibfat-47f2ad697e749dd5.rmeta: crates/cli/src/main.rs

crates/cli/src/main.rs:
