/root/repo/target/release/deps/sim_engine-7eca18c913ede215.d: crates/bench/benches/sim_engine.rs

/root/repo/target/release/deps/sim_engine-7eca18c913ede215: crates/bench/benches/sim_engine.rs

crates/bench/benches/sim_engine.rs:
