/root/repo/target/debug/deps/proptests-0a2d7ade8635e992.d: crates/routing/tests/proptests.rs Cargo.toml

/root/repo/target/debug/deps/libproptests-0a2d7ade8635e992.rmeta: crates/routing/tests/proptests.rs Cargo.toml

crates/routing/tests/proptests.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
