/root/repo/target/debug/deps/api_surface-8b75ff0fd0c4265c.d: crates/core/tests/api_surface.rs

/root/repo/target/debug/deps/api_surface-8b75ff0fd0c4265c: crates/core/tests/api_surface.rs

crates/core/tests/api_surface.rs:
