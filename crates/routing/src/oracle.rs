//! A closed-form routing oracle: the paper's forwarding equations as pure
//! arithmetic, with no forwarding table in sight.
//!
//! The MLID and SLID LFTs are fully determined by Equations (1) and (2)
//! over the `FT(m, n)` label algebra, so the port a switch forwards a DLID
//! out of — and therefore an entire route — can be computed in O(1) per hop
//! from `(switch id, DLID)` alone:
//!
//! * **descend** (the destination lies below the switch): Equation (1),
//!   `port = digit_level(PID) + 1`;
//! * **climb** (otherwise): Equation (2),
//!   `port = (⌊(DLID - 1) / (m/2)^(n-1-level)⌋ mod m/2) + m/2 + 1`,
//!   which for SLID (`LMC = 0`) degenerates to d-mod-k on the destination.
//!
//! "Below" is itself arithmetic: the subtree of a level-`l` switch is one
//! contiguous node-id range, so the test is a prefix comparison of two
//! integer divisions. On top of `route_hop`, [`RouteOracle::walk`] replays
//! a whole route through the closed-form *wiring* rules of the m-port
//! n-tree (digit surgery on level-major switch indices), which lets
//! analyses stream through millions of flows on fabrics whose tables —
//! gigabytes at FT(32, 3) — are never materialized.
//!
//! The oracle describes the *pristine* tables a scheme programs. A routing
//! repaired around failed links (see [`crate::build_fault_tolerant`])
//! intentionally deviates from it; table-backed tracing remains the source
//! of truth there.

use crate::{Lid, Routing, RoutingError, RoutingKind};
use ibfat_topology::{DeviceRef, NodeId, PortNum, SwitchId, TreeParams};

/// O(1) closed-form routing for the table-driven fat-tree schemes.
#[derive(Debug, Clone)]
pub struct RouteOracle {
    kind: RoutingKind,
    params: TreeParams,
    lmc: u32,
    max_lid: u32,
    /// `pows[k] = (m/2)^k`, precomputed up to `half^n`.
    pows: Vec<u32>,
}

impl RouteOracle {
    /// The oracle for a scheme on a fabric, or `None` for kinds (up*/down*)
    /// whose tables are graph-derived rather than closed-form.
    pub fn for_kind(params: TreeParams, kind: RoutingKind) -> Option<RouteOracle> {
        let lmc = match kind {
            RoutingKind::Mlid => params.lmc(),
            RoutingKind::Slid => 0,
            RoutingKind::UpDown => return None,
        };
        let half = params.half();
        let pows: Vec<u32> = (0..=params.n()).map(|k| half.pow(k)).collect();
        Some(RouteOracle {
            kind,
            params,
            lmc,
            max_lid: params.num_nodes() << lmc,
            pows,
        })
    }

    /// The oracle matching a built routing's scheme, or `None` when the
    /// kind has no closed form. The result agrees with the routing's
    /// tables only if they are the scheme's canonical ones (not repaired
    /// around faults).
    pub fn for_routing(routing: &Routing) -> Option<RouteOracle> {
        Self::for_kind(routing.params(), routing.kind())
    }

    /// The scheme this oracle computes.
    #[inline]
    pub fn kind(&self) -> RoutingKind {
        self.kind
    }

    /// The fabric parameters.
    #[inline]
    pub fn params(&self) -> TreeParams {
        self.params
    }

    /// The highest assigned LID.
    #[inline]
    pub fn max_lid(&self) -> Lid {
        Lid(self.max_lid)
    }

    /// The port a switch forwards `dlid` out of — exactly the entry its
    /// LFT would hold — or `None` for an unassigned LID. O(1); probes
    /// nothing.
    #[inline]
    pub fn route_hop(&self, switch: SwitchId, dlid: Lid) -> Option<PortNum> {
        if dlid.0 == 0 || dlid.0 > self.max_lid {
            return None;
        }
        let linear = dlid.0 - 1;
        let pid = linear >> self.lmc;
        let n = self.params.n();
        let level = self.params.switch_level_of(switch.0);
        let idx = switch.0 - self.params.level_offset(level);
        let stride = self.pows[(n - 1 - level) as usize];
        // The subtree below `idx` is the node range sharing its first
        // `level` label digits: one integer-division prefix comparison.
        let below = level == 0 || idx / stride == pid / (stride * self.params.half());
        let port = if below {
            let radix = if level == 0 {
                self.params.m()
            } else {
                self.params.half()
            };
            (pid / stride) % radix + 1 // Equation (1)
        } else {
            (linear / stride) % self.params.half() + self.params.half() + 1 // Equation (2)
        };
        Some(PortNum(port as u8))
    }

    /// The DLID a packet from `src` to `dst` carries — the paper's
    /// rank-based path selection for MLID, the base LID for SLID — as pure
    /// arithmetic (the source's rank in its prefix subgroup is `src mod
    /// (m/2)^(n-1-alpha)`, because subgroup members are id-contiguous).
    pub fn select_dlid(&self, src: NodeId, dst: NodeId) -> Lid {
        let base = (dst.0 << self.lmc) + 1;
        if self.kind == RoutingKind::Slid || src == dst {
            return Lid(base);
        }
        let alpha = self.gcp_len(src, dst);
        Lid(base + src.0 % self.pows[(self.params.n() - 1 - alpha) as usize])
    }

    /// Length of the greatest common prefix of two node labels, by integer
    /// division (a length-`a` prefix is the quotient by `(m/2)^(n-a)`).
    #[inline]
    fn gcp_len(&self, a: NodeId, b: NodeId) -> u32 {
        let n = self.params.n();
        for len in (1..=n).rev() {
            let w = self.pows[(n - len) as usize];
            if a.0 / w == b.0 / w {
                return len;
            }
        }
        0
    }

    /// Replace digit `pos` of a level-major switch index (`pos` 0 spans
    /// both the radix-`m/2` root form and the radix-`m` lower form, since
    /// the leading digit is extracted without a modulus).
    #[inline]
    fn replace_digit(&self, idx: u32, pos: u32, digit: u32) -> u32 {
        let w = self.pows[(self.params.n() - 2 - pos) as usize];
        let hi = idx / w;
        let old = if pos == 0 {
            hi
        } else {
            hi % self.params.half()
        };
        (hi - old + digit) * w + idx % w
    }

    /// Replay the route of `(src, dlid)` through the closed-form wiring,
    /// emitting every directed link as `(transmitting device, out port)` —
    /// the injection link first, matching [`crate::Route::directed_links`]
    /// — and returning the delivered-to node. No network graph and no
    /// tables are consulted.
    pub fn walk<F>(&self, src: NodeId, dlid: Lid, mut f: F) -> Result<NodeId, RoutingError>
    where
        F: FnMut(DeviceRef, PortNum),
    {
        if dlid.0 == 0 || dlid.0 > self.max_lid {
            return Err(RoutingError::UnknownLid(dlid));
        }
        let expected = NodeId((dlid.0 - 1) >> self.lmc);
        let params = self.params;
        let (half, n) = (params.half(), params.n());
        f(DeviceRef::Node(src), PortNum(1));
        // The source's leaf switch: SW<src-prefix, n-1> (for n = 1 the
        // single root is also the leaf level).
        let mut level = n - 1;
        let mut idx = if n == 1 { 0 } else { src.0 / half };
        for _ in 0..2 * n + 2 {
            let sw = SwitchId(params.level_offset(level) + idx);
            let port = self.route_hop(sw, dlid).expect("dlid checked in range");
            f(DeviceRef::Switch(sw), port);
            let k0 = u32::from(port.0) - 1;
            if level == 0 || k0 < half {
                // Descend: down-port k0 leads to the child whose label sets
                // digit `level` to k0 — or to a node at the leaf level.
                if level == n - 1 {
                    let node = NodeId(idx * half + k0);
                    if node != expected {
                        return Err(RoutingError::Misdelivered {
                            src,
                            lid: dlid,
                            expected,
                            actual: node,
                        });
                    }
                    return Ok(node);
                }
                idx = self.replace_digit(idx, level, k0);
                level += 1;
            } else {
                // Climb: up-port k0 leads to the parent whose label sets
                // digit `level - 1` to k0 - m/2.
                idx = self.replace_digit(idx, level - 1, k0 - half);
                level -= 1;
            }
        }
        Err(RoutingError::LoopDetected { src, lid: dlid })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ibfat_topology::Network;

    const GRID: [(u32, u32); 7] = [(2, 2), (2, 3), (4, 2), (4, 3), (8, 2), (8, 3), (16, 2)];

    #[test]
    fn oracle_equals_table_walk_everywhere() {
        // The property the tentpole hangs on: for every switch and every
        // assigned LID, over an (m, n) grid and both schemes, the O(1)
        // formula reproduces the programmed LFT entry exactly.
        for (m, n) in GRID {
            for kind in [RoutingKind::Mlid, RoutingKind::Slid] {
                let params = TreeParams::new(m, n).unwrap();
                let net = Network::mport_ntree(params);
                let routing = Routing::build(&net, kind);
                let oracle = RouteOracle::for_routing(&routing).unwrap();
                assert_eq!(oracle.max_lid(), routing.lid_space().max_lid());
                for sw in 0..params.num_switches() {
                    let lft = routing.lft(SwitchId(sw));
                    for lid in 1..=oracle.max_lid().0 {
                        assert_eq!(
                            oracle.route_hop(SwitchId(sw), Lid(lid)),
                            lft.get(Lid(lid)),
                            "FT({m},{n}) {kind:?} switch {sw} LID {lid}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn out_of_range_lids_have_no_hop() {
        let params = TreeParams::new(4, 3).unwrap();
        let oracle = RouteOracle::for_kind(params, RoutingKind::Mlid).unwrap();
        assert_eq!(oracle.route_hop(SwitchId(0), Lid(0)), None);
        assert_eq!(
            oracle.route_hop(SwitchId(0), Lid(oracle.max_lid().0 + 1)),
            None
        );
    }

    #[test]
    fn updown_has_no_closed_form() {
        let params = TreeParams::new(4, 2).unwrap();
        assert!(RouteOracle::for_kind(params, RoutingKind::UpDown).is_none());
    }

    #[test]
    fn select_dlid_matches_the_scheme() {
        for (m, n) in [(4, 3), (8, 2), (8, 3)] {
            for kind in [RoutingKind::Mlid, RoutingKind::Slid] {
                let params = TreeParams::new(m, n).unwrap();
                let net = Network::mport_ntree(params);
                let routing = Routing::build(&net, kind);
                let oracle = RouteOracle::for_routing(&routing).unwrap();
                for src in 0..params.num_nodes() {
                    for dst in 0..params.num_nodes() {
                        assert_eq!(
                            oracle.select_dlid(NodeId(src), NodeId(dst)),
                            routing.select_dlid(NodeId(src), NodeId(dst)),
                            "FT({m},{n}) {kind:?} {src}->{dst}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn walk_matches_table_traced_routes() {
        // The wiring walker must visit exactly the directed links the
        // graph-backed trace reports, for every (src, dst) pair.
        for (m, n) in [(2, 3), (4, 3), (8, 2)] {
            for kind in [RoutingKind::Mlid, RoutingKind::Slid] {
                let params = TreeParams::new(m, n).unwrap();
                let net = Network::mport_ntree(params);
                let routing = Routing::build(&net, kind);
                let oracle = RouteOracle::for_routing(&routing).unwrap();
                for src in 0..params.num_nodes() {
                    for dst in 0..params.num_nodes() {
                        let dlid = routing.select_dlid(NodeId(src), NodeId(dst));
                        let route = routing.trace(&net, NodeId(src), dlid).unwrap();
                        let mut links = Vec::new();
                        let delivered = oracle
                            .walk(NodeId(src), dlid, |d, p| links.push((d, p)))
                            .unwrap();
                        assert_eq!(delivered, route.dst, "FT({m},{n}) {kind:?}");
                        assert_eq!(links, route.directed_links(), "FT({m},{n}) {kind:?}");
                    }
                }
            }
        }
    }

    #[test]
    fn walk_rejects_unassigned_lids() {
        let params = TreeParams::new(4, 2).unwrap();
        let oracle = RouteOracle::for_kind(params, RoutingKind::Slid).unwrap();
        assert!(matches!(
            oracle.walk(NodeId(0), Lid(0), |_, _| {}),
            Err(RoutingError::UnknownLid(_))
        ));
        assert!(matches!(
            oracle.walk(NodeId(0), Lid(oracle.max_lid().0 + 1), |_, _| {}),
            Err(RoutingError::UnknownLid(_))
        ));
    }
}
