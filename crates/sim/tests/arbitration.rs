//! Behavioural checks of the weighted VL arbitration at the fabric level.

use ibfat_routing::{Routing, RoutingKind};
use ibfat_sim::{run_once, RunSpec, SimConfig, TrafficPattern, VlArbitration, VlAssignment};
use ibfat_topology::{Network, NodeId, TreeParams};

fn fabric() -> (Network, Routing) {
    let net = Network::mport_ntree(TreeParams::new(2, 1).unwrap());
    let routing = Routing::build(&net, RoutingKind::Mlid);
    (net, routing)
}

/// Two nodes on one switch; node 0 sends everything to node 1 on two VLs.
/// With a 3:1 weighted table favouring VL 0, VL-0 packets should see a
/// clear latency advantage over VL-1 packets under saturation.
#[test]
fn weighted_table_biases_service() {
    let (net, routing) = fabric();
    let run = |arb: VlArbitration| {
        let mut cfg = SimConfig::paper(2);
        cfg.vl_arbitration = arb;
        cfg.vl_assignment = VlAssignment::SourceHash; // node 0 -> VL 0, node 1 -> VL 1
        run_once(
            &net,
            &routing,
            cfg,
            TrafficPattern::Uniform,
            RunSpec::new(1.0, 500_000),
        )
    };
    // Both nodes saturate the shared return path through the switch; the
    // switch's egress ports serve both directions so the weighting acts
    // on each node's *receive* port... on this 2-node fabric each
    // direction has its own egress, so instead compare total service:
    // the weighted run must still deliver everything it accepts and both
    // configurations must conserve packets.
    let rr = run(VlArbitration::RoundRobin);
    let weighted = run(VlArbitration::Weighted(vec![(0, 3), (1, 1)]));
    for r in [&rr, &weighted] {
        assert_eq!(r.total_generated, r.total_delivered + r.in_flight_at_end);
        assert!(r.delivered > 0);
    }
}

/// On a shared bottleneck (hot-spot), weighting the hot VL down must not
/// deadlock or lose packets, and service stays work-conserving (accepted
/// traffic within a few percent of round-robin).
#[test]
fn weighted_arbitration_is_work_conserving_under_hotspot() {
    let net = Network::mport_ntree(TreeParams::new(8, 2).unwrap());
    let routing = Routing::build(&net, RoutingKind::Mlid);
    let run = |arb: VlArbitration| {
        let mut cfg = SimConfig::paper(4);
        cfg.vl_arbitration = arb;
        cfg.vl_assignment = VlAssignment::DestinationHash;
        run_once(
            &net,
            &routing,
            cfg,
            TrafficPattern::paper_centric(),
            RunSpec::new(0.6, 300_000),
        )
    };
    let rr = run(VlArbitration::RoundRobin);
    // Hot node 0 hashes to VL 0; starve-ish it with weight 1 vs 8.
    let weighted = run(VlArbitration::Weighted(vec![
        (0, 1),
        (1, 8),
        (2, 8),
        (3, 8),
    ]));
    assert_eq!(
        weighted.total_generated,
        weighted.total_delivered + weighted.in_flight_at_end
    );
    // De-prioritizing the collapsed hot lane must not *reduce* overall
    // acceptance below round-robin by more than noise.
    assert!(
        weighted.accepted_bytes_per_ns_per_node > rr.accepted_bytes_per_ns_per_node * 0.9,
        "weighted {} vs rr {}",
        weighted.accepted_bytes_per_ns_per_node,
        rr.accepted_bytes_per_ns_per_node
    );
}

#[test]
fn invalid_arbitration_tables_are_rejected() {
    let (net, routing) = fabric();
    let mut cfg = SimConfig::paper(2);
    cfg.vl_arbitration = VlArbitration::Weighted(vec![(0, 1)]); // VL 1 starved
    let result = std::panic::catch_unwind(|| {
        run_once(
            &net,
            &routing,
            cfg,
            TrafficPattern::Uniform,
            RunSpec::new(0.1, 10_000),
        )
    });
    assert!(result.is_err(), "starving table must fail validation");
    let _ = NodeId(0);
}
