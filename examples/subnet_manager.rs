//! Watch the subnet manager bring up a fabric the way real InfiniBand
//! does: sweep the cables, recognize the topology, recover every label
//! from port numbers alone, assign LIDs, and install forwarding tables —
//! then cross-check the installed state against the direct construction.
//!
//! ```text
//! cargo run --release --example subnet_manager
//! ```

use ib_fabric::prelude::*;
use ib_fabric::sm::{discover, recognize, SubnetManager};
use ib_fabric::Routing;

fn main() {
    let fabric = Fabric::builder(8, 2).build().expect("valid");
    let net = fabric.network();

    // Step 1: the sweep. The SM knows nothing but what the port walk
    // returns: anonymous devices, their kinds, and cable endpoints.
    let disc = discover(net, NodeId(5));
    println!(
        "sweep from N5: {} devices ({} switches, {} nodes), {} cables",
        disc.devices.len(),
        disc.switches().count(),
        disc.nodes().count(),
        disc.edges.len()
    );

    // Step 2: recognition. Is this an m-port n-tree? Which one, and
    // which switch is which?
    let rec = recognize(&disc).expect("a healthy IBFT always recognizes");
    println!("recognized: {}", rec.params);
    let mut shown = 0;
    for (i, dev) in disc.devices.iter().enumerate() {
        if let Some(label) = rec.switch_labels[i] {
            println!("  discovered device #{i:<3} ({}) is {label}", dev.handle);
            shown += 1;
            if shown == 4 {
                println!("  …");
                break;
            }
        }
    }

    // Step 3: full initialization through the SM, and the cross-check:
    // tables computed from *recovered* labels must equal tables computed
    // from construction-time knowledge.
    let sm = SubnetManager::new(RoutingKind::Mlid, NodeId(5));
    let outcome = sm.initialize(net).expect("initialization succeeds");
    let direct = Routing::build(net, RoutingKind::Mlid);
    assert_eq!(outcome.routing.lfts(), direct.lfts());
    println!(
        "\nSM installed {} forwarding tables with {} entries each — bit-identical",
        outcome.routing.lfts().len(),
        outcome.routing.lid_space().max_lid().0
    );
    println!("to the tables derived from construction-time labels.");

    // Step 4: break a cable and reconfigure.
    let idx = net.inter_switch_link_indices()[3];
    let mut degraded = net.clone();
    let gone = degraded.remove_link(idx);
    println!(
        "\nfailing cable {}:{} <-> {}:{} and reconfiguring…",
        gone.a.device, gone.a.port, gone.b.device, gone.b.port
    );
    let repaired = sm.reconfigure(&degraded).expect("repairable");
    ib_fabric::routing::verify_all_lids_deliver(&degraded, &repaired)
        .expect("full delivery with one failure");
    ib_fabric::routing::verify_deadlock_free(&degraded, &repaired).expect("still deadlock-free");
    println!("repaired tables verified: every LID delivers, CDG acyclic.");
}
