/root/repo/target/debug/examples/path_diversity-6180445972ad5f59.d: examples/path_diversity.rs

/root/repo/target/debug/examples/path_diversity-6180445972ad5f59: examples/path_diversity.rs

examples/path_diversity.rs:
