/root/repo/target/debug/deps/ablation-58f518626456ad22.d: crates/bench/src/bin/ablation.rs Cargo.toml

/root/repo/target/debug/deps/libablation-58f518626456ad22.rmeta: crates/bench/src/bin/ablation.rs Cargo.toml

crates/bench/src/bin/ablation.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
