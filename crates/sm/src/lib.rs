//! # ibfat-sm
//!
//! A software **subnet manager** (SM) for fat-tree InfiniBand subnets.
//!
//! In InfiniBand, switches boot with empty forwarding tables; the subnet
//! manager sweeps the fabric with management datagrams, learns the
//! topology port by port, assigns every endport its LIDs, and installs a
//! linear forwarding table into every switch. The paper assumes this role
//! ("the SM is responsible for the configuration and the control of a
//! subnet"); this crate implements it:
//!
//! 1. [`discover`] — breadth-first sweep over cables, producing an
//!    anonymized port-accurate [`DiscoveredTopology`] (devices are known
//!    only by discovery order and their port wiring, exactly what SMP
//!    `NodeInfo`/`PortInfo` sweeps yield).
//! 2. [`recognize`] — decide whether the discovered graph *is* an
//!    `IBFT(m, n)` and, if so, recover every switch's digit label and
//!    every node's `P(p)` label purely from port numbers (the labels are
//!    uniquely determined; see the module docs of [`recognize`]).
//! 3. [`SubnetManager`] — put it together: discover, recognize, assign
//!    the LID space from the recovered PIDs, compute the MLID or SLID
//!    tables from the recovered labels, and hand back a programmed
//!    [`ibfat_routing::Routing`]. On a degraded fabric it falls back to
//!    fault-repaired tables.

mod discovery;
mod mad;
mod manager;
mod recognize;
mod reconverge;

pub use discovery::{discover, DiscoveredDevice, DiscoveredTopology, Edge};
pub use mad::{directed_routes, time_bring_up, BringUpReport, DirectedRoute, MadCosts};
pub use manager::{SmError, SmOutcome, SubnetManager};
pub use recognize::{recognize, RecognitionError, RecoveredFatTree};
pub use reconverge::{Reconvergence, ReconvergenceModel};
