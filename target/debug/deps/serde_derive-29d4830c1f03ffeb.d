/root/repo/target/debug/deps/serde_derive-29d4830c1f03ffeb.d: /root/stubdeps/serde_derive/src/lib.rs

/root/repo/target/debug/deps/libserde_derive-29d4830c1f03ffeb.so: /root/stubdeps/serde_derive/src/lib.rs

/root/stubdeps/serde_derive/src/lib.rs:
