//! One-shot runs and multi-point load sweeps.

use crate::probe::Probe;
use crate::{SimConfig, SimReport, Simulator, TrafficPattern};
use ibfat_routing::Routing;
use ibfat_topology::Network;

/// Wall-clock parameters of a run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RunSpec {
    /// Normalized offered load per node, `(0, 1]`.
    pub offered_load: f64,
    /// Total simulated time (ns).
    pub sim_time_ns: u64,
    /// Warm-up (ns) excluded from measurement.
    pub warmup_ns: u64,
}

impl RunSpec {
    /// A spec with the common 20% warm-up convention.
    pub fn new(offered_load: f64, sim_time_ns: u64) -> Self {
        RunSpec {
            offered_load,
            sim_time_ns,
            warmup_ns: sim_time_ns / 5,
        }
    }
}

/// Run one operating point.
pub fn run_once(
    net: &Network,
    routing: &Routing,
    cfg: SimConfig,
    pattern: TrafficPattern,
    spec: RunSpec,
) -> SimReport {
    Simulator::new(
        net,
        routing,
        cfg,
        pattern,
        spec.offered_load,
        spec.sim_time_ns,
        spec.warmup_ns,
    )
    .run()
}

/// Run one operating point on the parallel engine with `threads` worker
/// threads. Bit-identical to [`run_once`] for the same inputs (the
/// parallel engine's determinism contract; see [`crate::ParSimulator`]);
/// `threads <= 1` runs the sequential engine directly.
///
/// # Panics
/// Panics if a worker thread panicked; [`try_run_once_par`] propagates
/// that as [`crate::SimError::WorkerPanicked`] instead.
pub fn run_once_par(
    net: &Network,
    routing: &Routing,
    cfg: SimConfig,
    pattern: TrafficPattern,
    spec: RunSpec,
    threads: usize,
) -> SimReport {
    try_run_once_par(net, routing, cfg, pattern, spec, threads).unwrap_or_else(|e| panic!("{e}"))
}

/// [`run_once_par`] with worker panics propagated as
/// [`crate::SimError::WorkerPanicked`] instead of re-panicking.
pub fn try_run_once_par(
    net: &Network,
    routing: &Routing,
    cfg: SimConfig,
    pattern: TrafficPattern,
    spec: RunSpec,
    threads: usize,
) -> Result<SimReport, crate::SimError> {
    crate::ParSimulator::new(
        net,
        routing,
        cfg,
        pattern,
        spec.offered_load,
        spec.sim_time_ns,
        spec.warmup_ns,
        threads,
    )
    .run()
}

/// [`run_once_par`] with engine self-telemetry on: returns the report
/// (bit-identical to the untelemetered run) plus the engine's
/// [`crate::EngineTelemetry`] — per-shard window sizes, barrier waits,
/// and mailbox volume. `threads <= 1` runs sequentially and returns the
/// `threads: 1` marker telemetry.
pub fn try_run_once_par_telemetry(
    net: &Network,
    routing: &Routing,
    cfg: SimConfig,
    pattern: TrafficPattern,
    spec: RunSpec,
    threads: usize,
) -> Result<(SimReport, crate::EngineTelemetry), crate::SimError> {
    crate::ParSimulator::new(
        net,
        routing,
        cfg,
        pattern,
        spec.offered_load,
        spec.sim_time_ns,
        spec.warmup_ns,
        threads,
    )
    .run_telemetry()
}

/// Drive a message-level workload (see [`crate::Workload`]) to
/// completion on the sequential engine and report per-message latency,
/// per-group completion times, and node skew.
pub fn run_workload(
    net: &Network,
    routing: &Routing,
    cfg: SimConfig,
    wl: &crate::Workload,
) -> crate::WorkloadReport {
    Simulator::for_workload(net, routing, cfg, wl).run_workload()
}

/// Drive a workload to completion on the parallel engine with `threads`
/// worker threads. Bit-identical to [`run_workload`] for the same
/// inputs; `threads <= 1` runs the sequential engine directly.
///
/// # Panics
/// Panics if a worker thread panicked; [`try_run_workload_par`]
/// propagates that as [`crate::SimError::WorkerPanicked`] instead.
pub fn run_workload_par(
    net: &Network,
    routing: &Routing,
    cfg: SimConfig,
    wl: &crate::Workload,
    threads: usize,
) -> crate::WorkloadReport {
    try_run_workload_par(net, routing, cfg, wl, threads).unwrap_or_else(|e| panic!("{e}"))
}

/// [`run_workload_par`] with worker panics propagated as
/// [`crate::SimError::WorkerPanicked`] instead of re-panicking.
pub fn try_run_workload_par(
    net: &Network,
    routing: &Routing,
    cfg: SimConfig,
    wl: &crate::Workload,
    threads: usize,
) -> Result<crate::WorkloadReport, crate::SimError> {
    crate::ParSimulator::for_workload(net, routing, cfg, threads).run_workload(wl)
}

/// Run one operating point observed by `probe`; returns the report and
/// the probe with everything it collected (see [`Probe`],
/// [`crate::FabricCounters`], [`crate::PhaseProfile`]).
pub fn run_observed<P: Probe>(
    net: &Network,
    routing: &Routing,
    cfg: SimConfig,
    pattern: TrafficPattern,
    spec: RunSpec,
    probe: P,
) -> (SimReport, P) {
    Simulator::with_probe(
        net,
        routing,
        cfg,
        pattern,
        spec.offered_load,
        spec.sim_time_ns,
        spec.warmup_ns,
        probe,
    )
    .run_observed()
}

// The shared scoped thread pool now lives in the topology crate, where the
// routing control plane (parallel LFT builds, sharded load analysis) can
// reach it too; re-exported here so existing sim-facing callers keep
// working unchanged.
pub use ibfat_topology::par_map_indexed;

/// Sweep a list of offered loads, one independent simulation per point,
/// fanned out over OS threads (each point is single-threaded and
/// deterministic; the sweep result order matches `loads`).
pub fn sweep(
    net: &Network,
    routing: &Routing,
    cfg: SimConfig,
    pattern: &TrafficPattern,
    loads: &[f64],
    sim_time_ns: u64,
) -> Vec<SimReport> {
    par_map_indexed(loads, |_, &load| {
        let spec = RunSpec::new(load, sim_time_ns);
        run_once(net, routing, cfg.clone(), pattern.clone(), spec)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ibfat_routing::RoutingKind;
    use ibfat_topology::TreeParams;

    #[test]
    fn sweep_returns_points_in_order() {
        let params = TreeParams::new(4, 2).unwrap();
        let net = Network::mport_ntree(params);
        let routing = Routing::build(&net, RoutingKind::Mlid);
        let cfg = SimConfig::paper(1);
        let loads = [0.1, 0.3, 0.2];
        let reports = sweep(
            &net,
            &routing,
            cfg,
            &TrafficPattern::Uniform,
            &loads,
            50_000,
        );
        assert_eq!(reports.len(), 3);
        for (r, l) in reports.iter().zip(loads) {
            assert!((r.offered_load - l).abs() < 1e-12);
        }
    }
}

/// Run the same operating point under several seeds (in parallel) —
/// replication for confidence intervals.
pub fn replicate(
    net: &Network,
    routing: &Routing,
    cfg: SimConfig,
    pattern: &TrafficPattern,
    spec: RunSpec,
    seeds: &[u64],
) -> Vec<SimReport> {
    par_map_indexed(seeds, |_, &seed| {
        let mut cfg = cfg.clone();
        cfg.seed = seed;
        run_once(net, routing, cfg, pattern.clone(), spec)
    })
}

/// Mean and sample standard deviation over replicated runs.
#[derive(Debug, Clone, PartialEq)]
pub struct Aggregate {
    /// Replicas aggregated.
    pub n: usize,
    /// Mean accepted traffic, bytes/ns/node.
    pub mean_accepted: f64,
    /// Sample standard deviation of accepted traffic.
    pub std_accepted: f64,
    /// Mean of the per-run average latencies, ns.
    pub mean_latency_ns: f64,
    /// Sample standard deviation of the per-run average latencies.
    pub std_latency_ns: f64,
}

/// Aggregate replicated reports.
///
/// # Panics
/// Panics on an empty slice.
pub fn aggregate(reports: &[SimReport]) -> Aggregate {
    assert!(!reports.is_empty(), "nothing to aggregate");
    let n = reports.len() as f64;
    let acc: Vec<f64> = reports
        .iter()
        .map(|r| r.accepted_bytes_per_ns_per_node)
        .collect();
    let lat: Vec<f64> = reports.iter().map(|r| r.avg_latency_ns()).collect();
    let mean = |v: &[f64]| v.iter().sum::<f64>() / n;
    let std = |v: &[f64], m: f64| {
        if v.len() < 2 {
            0.0
        } else {
            (v.iter().map(|x| (x - m).powi(2)).sum::<f64>() / (n - 1.0)).sqrt()
        }
    };
    let (ma, ml) = (mean(&acc), mean(&lat));
    Aggregate {
        n: reports.len(),
        mean_accepted: ma,
        std_accepted: std(&acc, ma),
        mean_latency_ns: ml,
        std_latency_ns: std(&lat, ml),
    }
}

#[cfg(test)]
mod replication_tests {
    use super::*;
    use ibfat_routing::RoutingKind;
    use ibfat_topology::TreeParams;

    #[test]
    fn replicas_differ_by_seed_and_aggregate_sanely() {
        let net = Network::mport_ntree(TreeParams::new(4, 2).unwrap());
        let routing = Routing::build(&net, RoutingKind::Mlid);
        let reports = replicate(
            &net,
            &routing,
            SimConfig::paper(1),
            &TrafficPattern::Uniform,
            RunSpec::new(0.5, 80_000),
            &[1, 2, 3, 4],
        );
        assert_eq!(reports.len(), 4);
        let agg = aggregate(&reports);
        assert_eq!(agg.n, 4);
        assert!(agg.mean_accepted > 0.0);
        assert!(agg.std_accepted >= 0.0);
        // Different seeds should produce at least slightly different runs.
        let first = reports[0].events_processed;
        assert!(reports.iter().any(|r| r.events_processed != first));
    }

    #[test]
    #[should_panic(expected = "nothing to aggregate")]
    fn aggregate_rejects_empty() {
        aggregate(&[]);
    }
}
