//! SM reconvergence after a mid-run fault.
//!
//! When a link or switch dies, a real subnet manager does not rebuild the
//! fabric from scratch: it detects the failure (trap / sweep timeout),
//! recomputes routes around the dead component, and reprograms **only the
//! switches whose tables actually changed**. This module models that loop
//! on top of [`ibfat_routing::repair_fault_tolerant`]: the repair yields
//! the patched tables, the per-`(switch, LID)` patch list, and counts; the
//! [`ReconvergenceModel`] converts the counts into a latency — the window
//! during which the fabric still forwards with stale tables.

use crate::{SmError, SubnetManager};
use ibfat_routing::{
    repair_fault_tolerant, LftPatch, RepairState, RepairStats, Routing, RoutingKind,
};
use ibfat_topology::Network;

/// Timing knobs for the SM's reaction to a fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReconvergenceModel {
    /// Time from the fault occurring to the SM noticing it (trap latency
    /// or sweep period).
    pub detect_ns: u64,
    /// Time to reprogram one switch's LFT (one `SubnSet(LinearForwardingTable)`
    /// exchange), paid once per switch whose table changed.
    pub per_switch_ns: u64,
}

impl Default for ReconvergenceModel {
    fn default() -> Self {
        // Defaults in the spirit of the paper's MAD cost model: detection
        // dominated by a sweep interval, reprogramming by a few MADs.
        ReconvergenceModel {
            detect_ns: 1_000_000,  // 1 ms
            per_switch_ns: 10_000, // 10 µs per switch
        }
    }
}

/// What one reconvergence pass produced.
#[derive(Debug, Clone)]
pub struct Reconvergence {
    /// The repaired routing for the degraded fabric (bit-identical to a
    /// from-scratch [`ibfat_routing::build_fault_tolerant`] on it).
    pub routing: Routing,
    /// Exactly the `(switch, LID)` entries that changed.
    pub patches: Vec<LftPatch>,
    /// How much of the table space was touched.
    pub stats: RepairStats,
    /// Detection plus reprogramming time: the stale-table window.
    pub latency_ns: u64,
}

impl SubnetManager {
    /// React to a fault: incrementally repair the previous routing for the
    /// `degraded` fabric, returning the patched tables, the patch list,
    /// and the modeled reconvergence latency.
    ///
    /// `state` carries the reach/feasible sweeps between successive faults
    /// so each repair only reprograms switches whose routing inputs
    /// changed; seed it with [`RepairState::new`] on the healthy fabric.
    pub fn reconverge(
        &self,
        degraded: &Network,
        prev: &Routing,
        state: &mut RepairState,
        model: ReconvergenceModel,
    ) -> Result<Reconvergence, SmError> {
        let kind = self.kind();
        if kind == RoutingKind::UpDown {
            // up*/down* recomputes from the degraded graph natively; this
            // SM's patch path is specific to the fat-tree schemes.
            return Err(SmError::UnsupportedScheme(kind));
        }
        let (routing, patches, stats) = repair_fault_tolerant(degraded, kind, prev, state);
        let latency_ns = model.detect_ns.saturating_add(
            model
                .per_switch_ns
                .saturating_mul(stats.switches_reprogrammed as u64),
        );
        Ok(Reconvergence {
            routing,
            patches,
            stats,
            latency_ns,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ibfat_routing::build_fault_tolerant;
    use ibfat_topology::{Network, NodeId, TreeParams};

    #[test]
    fn reconverge_matches_full_rebuild_and_prices_latency() {
        let params = TreeParams::new(4, 3).unwrap();
        for kind in [RoutingKind::Mlid, RoutingKind::Slid] {
            let mut net = Network::mport_ntree(params);
            let mut state = RepairState::new(&net);
            let mut prev = build_fault_tolerant(&net, kind);
            let sm = SubnetManager::new(kind, NodeId(0));
            let model = ReconvergenceModel {
                detect_ns: 500,
                per_switch_ns: 7,
            };
            for pick in [2usize, 9] {
                let inter = net.inter_switch_link_indices();
                net.remove_link(inter[pick % inter.len()]);
                let rc = sm.reconverge(&net, &prev, &mut state, model).unwrap();
                let full = build_fault_tolerant(&net, kind);
                assert_eq!(rc.routing.lfts(), full.lfts(), "{kind}: repair != rebuild");
                assert_eq!(
                    rc.latency_ns,
                    500 + 7 * rc.stats.switches_reprogrammed as u64
                );
                assert!(!rc.patches.is_empty());
                assert!(rc.stats.entries_patched < rc.stats.table_entries);
                prev = rc.routing;
            }
        }
    }

    #[test]
    fn reconverge_rejects_updown() {
        let net = Network::mport_ntree(TreeParams::new(4, 2).unwrap());
        let routing = Routing::build(&net, RoutingKind::Slid);
        let mut state = RepairState::new(&net);
        let err = SubnetManager::new(RoutingKind::UpDown, NodeId(0))
            .reconverge(&net, &routing, &mut state, ReconvergenceModel::default())
            .unwrap_err();
        assert_eq!(err, SmError::UnsupportedScheme(RoutingKind::UpDown));
    }
}
