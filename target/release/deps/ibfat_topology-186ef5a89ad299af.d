/root/repo/target/release/deps/ibfat_topology-186ef5a89ad299af.d: crates/topology/src/lib.rs crates/topology/src/analysis_impl.rs crates/topology/src/build.rs crates/topology/src/digits.rs crates/topology/src/error.rs crates/topology/src/graph.rs crates/topology/src/ids.rs crates/topology/src/label.rs crates/topology/src/params.rs crates/topology/src/prefix.rs

/root/repo/target/release/deps/ibfat_topology-186ef5a89ad299af: crates/topology/src/lib.rs crates/topology/src/analysis_impl.rs crates/topology/src/build.rs crates/topology/src/digits.rs crates/topology/src/error.rs crates/topology/src/graph.rs crates/topology/src/ids.rs crates/topology/src/label.rs crates/topology/src/params.rs crates/topology/src/prefix.rs

crates/topology/src/lib.rs:
crates/topology/src/analysis_impl.rs:
crates/topology/src/build.rs:
crates/topology/src/digits.rs:
crates/topology/src/error.rs:
crates/topology/src/graph.rs:
crates/topology/src/ids.rs:
crates/topology/src/label.rs:
crates/topology/src/params.rs:
crates/topology/src/prefix.rs:
