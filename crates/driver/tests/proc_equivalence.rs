//! The multi-process driver's determinism contract.
//!
//! [`ProcSimulator`] promises reports *bit-identical* to the
//! sequential `Simulator` and the threaded `ParSimulator` for the same
//! inputs and seed, at any process count — every worker a real spawned
//! process, every cross-shard message serialized through the pipe
//! bridge. Same normalization as `crates/sim/tests/par_equivalence.rs`:
//! only the wall-clock throughput fields are zeroed.

use ibfat_driver::ProcSimulator;
use ibfat_routing::{Routing, RoutingKind};
use ibfat_sim::{
    run_once, CalendarKind, RouteBackend, RunSpec, SimConfig, SimError, SimReport, TraceSampling,
    TrafficPattern, WindowPolicy,
};
use ibfat_topology::{Network, NodeId, TreeParams};
use proptest::prelude::*;

/// The dedicated worker bin, built by cargo alongside these tests.
fn worker_exe() -> &'static str {
    env!("CARGO_BIN_EXE_ibfat-worker")
}

fn normalized(mut r: SimReport) -> SimReport {
    // The only host-dependent fields; everything else must match exactly.
    r.events_per_sec = 0.0;
    r.packets_per_sec = 0.0;
    r
}

#[allow(clippy::too_many_arguments)]
fn proc_report(
    m: u32,
    n: u32,
    kind: RoutingKind,
    cfg: &SimConfig,
    pattern: &TrafficPattern,
    spec: RunSpec,
    shards: usize,
    processes: usize,
) -> SimReport {
    let sim = ProcSimulator::new(
        m,
        n,
        kind,
        cfg.clone(),
        pattern.clone(),
        spec.offered_load,
        spec.sim_time_ns,
        spec.warmup_ns,
        shards,
        processes,
    )
    .worker_exe(worker_exe())
    .force_spawn(true);
    normalized(sim.run().expect("multi-process run failed"))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Any legal configuration, any process count: same report. The
    /// same matrix par_equivalence pins for threads, here with every
    /// worker a spawned process (p=1 force-spawned, so even that case
    /// crosses the bridge).
    #[test]
    fn proc_reports_equal_sequential(
        (m, n) in prop_oneof![Just((4u32, 2u32)), Just((4, 3)), Just((8, 2)), Just((8, 3))],
        scheme in prop_oneof![Just(RoutingKind::Mlid), Just(RoutingKind::Slid)],
        vls in prop_oneof![Just(1u8), Just(4)],
        seed in any::<u64>(),
        load in prop_oneof![Just(0.15f64), Just(0.45), Just(0.9)],
        calendar in prop_oneof![
            Just(CalendarKind::TimingWheel),
            Just(CalendarKind::BinaryHeap),
        ],
        window_policy in prop_oneof![
            Just(WindowPolicy::Adaptive),
            Just(WindowPolicy::Fixed),
        ],
        route_backend in prop_oneof![
            Just(RouteBackend::Table),
            Just(RouteBackend::Oracle),
        ],
    ) {
        // Processes are pricier than threads (spawn + per-worker
        // injection pre-pass), so keep the horizon tight.
        let sim_time = if m == 8 && n == 3 { 5_000 } else { 15_000 };
        let params = TreeParams::new(m, n).expect("valid params");
        let net = Network::mport_ntree(params);
        let routing = match route_backend {
            RouteBackend::Table => Routing::build(&net, scheme),
            RouteBackend::Oracle => Routing::build_table_free(&net, scheme),
        };
        let cfg = SimConfig {
            num_vls: vls,
            seed,
            calendar,
            window_policy,
            route_backend,
            ..SimConfig::default()
        };
        let pattern = TrafficPattern::Uniform;
        let spec = RunSpec::new(load, sim_time);
        let seq = normalized(run_once(
            &net, &routing, cfg.clone(), pattern.clone(), spec,
        ));
        let shards = 4;
        for processes in [1usize, 2, 4] {
            let proc = proc_report(m, n, scheme, &cfg, &pattern, spec, shards, processes);
            prop_assert_eq!(&proc, &seq, "divergence at {} processes", processes);
        }
    }
}

/// Flight recorder and link stats survive the bridge byte-for-byte:
/// the hard merge case, pinned at a fixed seed with an uneven 3-way
/// process split on top of a 4-shard decomposition.
#[test]
fn traces_and_link_stats_survive_the_bridge() {
    let (m, n) = (4u32, 3u32);
    let net = Network::mport_ntree(TreeParams::new(m, n).expect("valid params"));
    let routing = Routing::build(&net, RoutingKind::Mlid);
    let cfg = SimConfig {
        num_vls: 2,
        seed: 0xB1D6E,
        trace_first_packets: 16,
        trace_sampling: TraceSampling::OneInN(3),
        collect_link_stats: true,
        ..SimConfig::default()
    };
    let pattern = TrafficPattern::Centric {
        hotspot: NodeId(3),
        fraction: 0.2,
    };
    let spec = RunSpec::new(0.5, 30_000);
    let seq = normalized(run_once(&net, &routing, cfg.clone(), pattern.clone(), spec));
    assert!(seq.delivered > 0, "the run must carry traffic");
    assert!(seq.traces.is_some() && seq.link_utilization.is_some());
    for processes in [2usize, 3] {
        let proc = proc_report(m, n, RoutingKind::Mlid, &cfg, &pattern, spec, 4, processes);
        assert_eq!(proc, seq, "divergence at {processes} processes");
    }
}

/// The run statistics are real: bridge bytes flow once more than one
/// process is involved, windows are counted, and every worker reports
/// a resident set.
#[test]
fn run_stats_report_bridge_traffic_and_rss() {
    let cfg = SimConfig::default();
    let (report, stats) = ProcSimulator::new(
        4,
        3,
        RoutingKind::Mlid,
        cfg.clone(),
        TrafficPattern::Uniform,
        0.6,
        20_000,
        0,
        4,
        2,
    )
    .worker_exe(worker_exe())
    .run_stats()
    .expect("multi-process run failed");
    assert!(report.delivered > 0);
    assert_eq!(stats.processes, 2);
    assert!(stats.windows > 0, "no synchronization windows counted");
    assert!(
        stats.bridge_bytes > 0,
        "cross-process traffic must serialize through the bridge"
    );
    assert!(stats.max_worker_rss_kb > 0, "VmHWM must be readable");

    // Telemetry arrives per shard and its bridge counters line up
    // with the transport-level stats.
    let (report2, stats2, tel) = ProcSimulator::new(
        4,
        3,
        RoutingKind::Mlid,
        cfg,
        TrafficPattern::Uniform,
        0.6,
        20_000,
        0,
        4,
        2,
    )
    .worker_exe(worker_exe())
    .run_telemetry()
    .expect("multi-process run failed");
    assert_eq!(normalized(report2), normalized(report));
    assert_eq!(tel.shards.len(), 4);
    assert_eq!(stats2.windows, tel.shards[0].windows);
    let tel_bytes: u64 = tel.shards.iter().map(|s| s.bridge_bytes).sum();
    assert_eq!(tel_bytes, stats2.bridge_bytes);
    assert!(tel.shards.iter().all(|s| s.bridge_flushes == s.windows));
}

/// A worker that cannot even start (nonexistent executable) or that
/// dies without speaking the protocol surfaces as a clean error, not a
/// hang or a panic.
#[test]
fn dead_workers_surface_as_errors() {
    let build = |exe: &str| {
        ProcSimulator::new(
            4,
            2,
            RoutingKind::Mlid,
            SimConfig::default(),
            TrafficPattern::Uniform,
            0.3,
            5_000,
            0,
            4,
            2,
        )
        .worker_exe(exe)
    };
    match build("/nonexistent/ibfat-worker").run() {
        Err(SimError::Bridge(msg)) => assert!(msg.contains("spawning worker"), "{msg}"),
        other => panic!("expected spawn failure, got {other:?}"),
    }
    // `true` exits 0 immediately: the Hello write may race the exit,
    // but the WindowEnd read must then fail cleanly.
    match build("/usr/bin/true").run() {
        Err(SimError::WorkerPanicked(_)) | Err(SimError::Bridge(_)) => {}
        other => panic!("expected a dead-worker error, got {other:?}"),
    }
}

/// Degenerate configurations (zero lookahead, a single shard) fall
/// back to the in-process engine and still produce the sequential
/// answer.
#[test]
fn degenerate_configurations_fall_back_in_process() {
    let net = Network::mport_ntree(TreeParams::new(4, 2).expect("valid params"));
    let routing = Routing::build(&net, RoutingKind::Mlid);
    let spec = RunSpec::new(0.3, 10_000);
    let cfg = SimConfig {
        fly_time_ns: 0,
        ..SimConfig::default()
    };
    let seq = normalized(run_once(
        &net,
        &routing,
        cfg.clone(),
        TrafficPattern::Uniform,
        spec,
    ));
    let (report, stats) = ProcSimulator::new(
        4,
        2,
        RoutingKind::Mlid,
        cfg,
        TrafficPattern::Uniform,
        spec.offered_load,
        spec.sim_time_ns,
        spec.warmup_ns,
        4,
        4,
    )
    .worker_exe("/nonexistent/never-spawned")
    .run_stats()
    .expect("fallback run failed");
    assert_eq!(normalized(report), seq);
    assert_eq!(stats.processes, 0, "no worker may be spawned");
}
