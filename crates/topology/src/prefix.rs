//! Greatest-common-prefix algebra (Definitions 1–4 of the paper).
//!
//! These definitions drive the MLID scheme: the length of the greatest
//! common prefix of two node labels determines the set of least common
//! ancestor switches, and a node's *rank* within a prefix group determines
//! which of the destination's LIDs it uses.

use crate::{Level, NodeId, NodeLabel, SwitchId, SwitchLabel, TreeParams};

/// Definition 1: the length `alpha` of the greatest common prefix
/// `gcp(P(p), P(p'))` of two node labels. `alpha = 0` means the labels share
/// no prefix; `alpha = n` means the labels are identical.
#[inline]
pub fn gcp_len(a: &NodeLabel, b: &NodeLabel) -> u32 {
    a.digits().common_prefix_len(b.digits()) as u32
}

/// Definition 2: the set of least common ancestors of two distinct nodes:
/// all switches `SW<w, alpha>` at level `alpha = gcp_len(a, b)` whose first
/// `alpha` digits equal the common prefix. There are `(m/2)^(n-1-alpha)`
/// of them; the remaining digits range freely.
///
/// Returned in ascending switch-id order.
///
/// # Panics
/// Panics if `a == b` (two equal labels have no LCA *switch set* in the
/// paper's sense — the "ancestor" would be the node itself).
pub fn lca_switches(params: TreeParams, a: &NodeLabel, b: &NodeLabel) -> Vec<SwitchId> {
    assert_ne!(a, b, "lca_switches requires distinct nodes");
    let alpha = gcp_len(a, b) as usize;
    debug_assert!(alpha < params.node_digits());
    let half = params.half();
    let free = params.switch_digits() - alpha;
    let count = half.pow(free as u32);
    let mut out = Vec::with_capacity(count as usize);
    for i in 0..count {
        // Fill the free digit positions alpha..n-1 with the mixed-radix
        // expansion of i (all free digits have radix m/2: position 0 only
        // has radix m at levels >= 1, and an LCA at level alpha > 0 has its
        // digit 0 fixed by the prefix; at alpha = 0 the switch is a root,
        // where digit 0 has radix m/2 anyway).
        let mut w = [0u8; crate::digits::MAX_DIGITS];
        w[..alpha].copy_from_slice(&a.digits().as_slice()[..alpha]);
        let mut rem = i;
        for pos in (alpha..params.switch_digits()).rev() {
            w[pos] = (rem % half) as u8;
            rem /= half;
        }
        let label = SwitchLabel::new(params, &w[..params.switch_digits()], Level(alpha as u8))
            .expect("constructed LCA label is valid");
        out.push(label.id(params));
    }
    out.sort_unstable();
    out
}

/// Definition 3: the greatest-common-prefix group `gcpg(x, alpha)` — the set
/// of processing nodes whose labels start with the `alpha`-digit prefix `x`.
///
/// `gcpg(ε, 0)` is the set of all nodes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Gcpg {
    prefix: crate::Digits,
}

impl Gcpg {
    /// The group of all nodes whose label starts with `prefix`.
    ///
    /// # Panics
    /// Panics if the prefix is longer than a node label or contains an
    /// out-of-radix digit.
    pub fn new(params: TreeParams, prefix: &[u8]) -> Self {
        assert!(prefix.len() <= params.node_digits(), "prefix too long");
        for (i, &d) in prefix.iter().enumerate() {
            assert!(
                u32::from(d) < params.node_digit_radix(i),
                "prefix digit {i} = {d} out of radix"
            );
        }
        Gcpg {
            prefix: crate::Digits::from_slice(prefix),
        }
    }

    /// The group containing `label` with prefix length `alpha`.
    pub fn of(params: TreeParams, label: &NodeLabel, alpha: u32) -> Self {
        Gcpg::new(params, &label.digits().as_slice()[..alpha as usize])
    }

    /// The prefix length `alpha`.
    #[inline]
    pub fn alpha(&self) -> u32 {
        self.prefix.len() as u32
    }

    /// The prefix digits `x`.
    #[inline]
    pub fn prefix(&self) -> &crate::Digits {
        &self.prefix
    }

    /// Number of nodes in the group.
    pub fn len(&self, params: TreeParams) -> u32 {
        params.gcpg_size(self.alpha())
    }

    /// Whether the group is empty (never, for valid parameters).
    pub fn is_empty(&self, _params: TreeParams) -> bool {
        false
    }

    /// Whether `label` belongs to this group.
    pub fn contains(&self, label: &NodeLabel) -> bool {
        label.digits().common_prefix_len(&self.prefix) == self.prefix.len()
    }

    /// Iterate over the members in rank order.
    pub fn members(&self, params: TreeParams) -> impl Iterator<Item = NodeLabel> + '_ {
        let n = self.len(params);
        (0..n).map(move |r| self.member_at(params, r))
    }

    /// The member with a given rank (inverse of [`rank_in`]).
    ///
    /// # Panics
    /// Panics if `rank >= self.len(params)`.
    pub fn member_at(&self, params: TreeParams, rank: u32) -> NodeLabel {
        assert!(rank < self.len(params), "rank out of range");
        let alpha = self.prefix.len();
        let half = params.half();
        let mut digits = [0u8; crate::digits::MAX_DIGITS];
        digits[..alpha].copy_from_slice(self.prefix.as_slice());
        let mut rem = rank;
        for pos in (alpha..params.node_digits()).rev() {
            let radix = if pos == 0 { params.m() } else { half };
            digits[pos] = (rem % radix) as u8;
            rem /= radix;
        }
        debug_assert_eq!(rem, 0);
        NodeLabel::new(params, &digits[..params.node_digits()])
            .expect("constructed member label is valid")
    }
}

/// Definition 4: the rank of a node within `gcpg(x, alpha)` — its label's
/// suffix (digits `alpha..n`) read as a mixed-radix number. Ranks run from
/// `0` to `gcpg_size(alpha) - 1`.
///
/// # Panics
/// Panics (debug) if `label` is not a member of `group`.
pub fn rank_in(params: TreeParams, group: &Gcpg, label: &NodeLabel) -> u32 {
    debug_assert!(group.contains(label), "{label} not in group");
    let alpha = group.alpha() as usize;
    let mut v = 0u32;
    for pos in alpha..params.node_digits() {
        let radix = if pos == 0 { params.m() } else { params.half() };
        v = v * radix + u32::from(label.digit(pos));
    }
    v
}

/// The paper's `PID`: a node's rank in `gcpg(ε, 0)`, which is also its dense
/// [`NodeId`].
#[inline]
pub fn pid(params: TreeParams, label: &NodeLabel) -> NodeId {
    label.id(params)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ft43() -> TreeParams {
        TreeParams::new(4, 3).unwrap()
    }

    fn node(digits: &[u8]) -> NodeLabel {
        NodeLabel::new(ft43(), digits).unwrap()
    }

    #[test]
    fn paper_gcp_and_lca_example() {
        // gcp(P(100), P(111)) = "1"; lca = {SW<10, 1>, SW<11, 1>}.
        let a = node(&[1, 0, 0]);
        let b = node(&[1, 1, 1]);
        assert_eq!(gcp_len(&a, &b), 1);
        let lcas = lca_switches(ft43(), &a, &b);
        assert_eq!(lcas.len(), 2);
        let labels: Vec<String> = lcas
            .iter()
            .map(|&id| SwitchLabel::from_id(ft43(), id).to_string())
            .collect();
        assert_eq!(labels, vec!["SW<10, 1>", "SW<11, 1>"]);
    }

    #[test]
    fn paper_rank_example() {
        // P(100) and P(111) are in gcpg("1", 1); ranks 0 and 3.
        let g = Gcpg::new(ft43(), &[1]);
        assert_eq!(g.len(ft43()), 4);
        assert_eq!(rank_in(ft43(), &g, &node(&[1, 0, 0])), 0);
        assert_eq!(rank_in(ft43(), &g, &node(&[1, 1, 1])), 3);
    }

    #[test]
    fn paper_pid_examples() {
        assert_eq!(pid(ft43(), &node(&[1, 0, 0])), NodeId(4));
        assert_eq!(pid(ft43(), &node(&[1, 1, 1])), NodeId(7));
    }

    #[test]
    fn gcpg_members_roundtrip_rank() {
        let params = TreeParams::new(8, 3).unwrap();
        for alpha in 0..=params.n() {
            let probe = NodeLabel::from_id(params, NodeId(37));
            let g = Gcpg::of(params, &probe, alpha);
            for (r, member) in g.members(params).enumerate() {
                assert!(g.contains(&member));
                assert_eq!(rank_in(params, &g, &member), r as u32);
                assert_eq!(g.member_at(params, r as u32), member);
            }
        }
    }

    #[test]
    fn gcpg_zero_is_all_nodes_in_pid_order() {
        let params = ft43();
        let g = Gcpg::new(params, &[]);
        let ids: Vec<NodeId> = g.members(params).map(|l| l.id(params)).collect();
        let expected: Vec<NodeId> = (0..params.num_nodes()).map(NodeId).collect();
        assert_eq!(ids, expected);
    }

    #[test]
    fn lca_of_distant_nodes_is_all_roots() {
        // Nodes differing in digit 0 have alpha = 0: every root is an LCA.
        let params = ft43();
        let lcas = lca_switches(params, &node(&[0, 0, 0]), &node(&[1, 0, 0]));
        assert_eq!(lcas.len(), 4);
        for id in &lcas {
            assert_eq!(SwitchLabel::from_id(params, *id).level(), Level(0));
        }
    }

    #[test]
    fn lca_of_leaf_siblings_is_their_leaf_switch() {
        // Nodes sharing all but the last digit: alpha = n-1; one LCA, the
        // leaf switch they both hang from.
        let params = ft43();
        let lcas = lca_switches(params, &node(&[2, 1, 0]), &node(&[2, 1, 1]));
        assert_eq!(lcas.len(), 1);
        let label = SwitchLabel::from_id(params, lcas[0]);
        assert_eq!(label.to_string(), "SW<21, 2>");
    }

    #[test]
    #[should_panic(expected = "distinct nodes")]
    fn lca_of_equal_nodes_panics() {
        lca_switches(ft43(), &node(&[0, 0, 0]), &node(&[0, 0, 0]));
    }
}
