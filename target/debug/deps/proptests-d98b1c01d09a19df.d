/root/repo/target/debug/deps/proptests-d98b1c01d09a19df.d: crates/sim/tests/proptests.rs

/root/repo/target/debug/deps/proptests-d98b1c01d09a19df: crates/sim/tests/proptests.rs

crates/sim/tests/proptests.rs:
