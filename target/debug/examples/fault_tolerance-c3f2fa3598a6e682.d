/root/repo/target/debug/examples/fault_tolerance-c3f2fa3598a6e682.d: examples/fault_tolerance.rs

/root/repo/target/debug/examples/fault_tolerance-c3f2fa3598a6e682: examples/fault_tolerance.rs

examples/fault_tolerance.rs:
