//! Workload generators: collective dependency DAGs and closed-loop
//! message streams.
//!
//! Every generator returns a validated-by-construction [`Workload`]
//! whose message ids are topologically ordered (dependencies always
//! point at earlier ids), matching the invariant
//! [`Workload::validate`] enforces.

use crate::{Message, MsgId, Workload};
use ibfat_topology::NodeId;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha12Rng;

/// Destination distribution for [`closed_loop`] traffic: the
/// message-level analogue of the paper's open-loop patterns.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ClosedLoopKind {
    /// Uniformly random destinations (excluding self).
    Uniform,
    /// With probability `fraction` the destination is `hotspot`;
    /// otherwise uniform over the rest.
    Centric { hotspot: NodeId, fraction: f64 },
}

/// Ring allreduce over `n` nodes: the payload is split into `n` chunks
/// and circulated for `2(n-1)` steps (reduce-scatter then allgather).
/// At step `s`, node `i` sends its chunk to `(i+1) % n` once it has
/// both finished its own step `s-1` send and received the step `s-1`
/// chunk from `(i-1) % n` — the two dependency edges below.
pub fn allreduce_ring(num_nodes: u32, bytes: u64) -> Workload {
    assert!(num_nodes >= 2, "ring allreduce needs at least 2 nodes");
    let n = num_nodes;
    let chunk = bytes.div_ceil(u64::from(n)).max(1);
    let mut w = Workload::new(n);
    let group = w.add_group(format!("allreduce-ring/{bytes}B"));
    let steps = 2 * (n - 1);
    for s in 0..steps {
        for i in 0..n {
            let deps = if s == 0 {
                vec![]
            } else {
                let prev = (s - 1) * n;
                vec![prev + i, prev + (i + n - 1) % n]
            };
            w.push(Message {
                src: NodeId(i),
                dst: NodeId((i + 1) % n),
                bytes: chunk,
                deps,
                group,
            });
        }
    }
    w
}

/// Recursive-doubling allreduce: `log2(n)` rounds, each node exchanging
/// the full payload with partner `i XOR 2^r`. Requires a power-of-two
/// node count. Round `r` is gated on the node's own round `r-1` send
/// and on the message it received from its round `r-1` partner.
pub fn allreduce_recursive_doubling(num_nodes: u32, bytes: u64) -> Workload {
    assert!(
        num_nodes >= 2 && num_nodes.is_power_of_two(),
        "recursive doubling needs a power-of-two node count, got {num_nodes}"
    );
    let n = num_nodes;
    let rounds = n.trailing_zeros();
    let mut w = Workload::new(n);
    let group = w.add_group(format!("allreduce-rd/{bytes}B"));
    for r in 0..rounds {
        for i in 0..n {
            let deps = if r == 0 {
                vec![]
            } else {
                let prev = (r - 1) * n;
                vec![prev + i, prev + (i ^ (1 << (r - 1)))]
            };
            w.push(Message {
                src: NodeId(i),
                dst: NodeId(i ^ (1 << r)),
                bytes: bytes.max(1),
                deps,
                group,
            });
        }
    }
    w
}

/// Pairwise-exchange all-to-all: `n-1` rounds, node `i` sending `bytes`
/// to `(i+r) % n` in round `r`. Round `r` waits on the node's own round
/// `r-1` send and on the round `r-1` message it received (from
/// `(i - (r-1)) % n`), so rounds are genuine exchange phases rather
/// than an open fire hose.
pub fn all_to_all(num_nodes: u32, bytes: u64) -> Workload {
    assert!(num_nodes >= 2, "all-to-all needs at least 2 nodes");
    let n = num_nodes;
    let mut w = Workload::new(n);
    let group = w.add_group(format!("alltoall/{bytes}B"));
    for r in 1..n {
        for i in 0..n {
            let deps = if r == 1 {
                vec![]
            } else {
                let prev = (r - 2) * n;
                vec![prev + i, prev + (i + n - (r - 1)) % n]
            };
            w.push(Message {
                src: NodeId(i),
                dst: NodeId((i + r) % n),
                bytes: bytes.max(1),
                deps,
                group,
            });
        }
    }
    w
}

/// Binomial-tree broadcast from `root`: in round `r`, every rank below
/// `2^r` that already holds the payload forwards it to rank `2^r`
/// higher (ranks are node ids rotated so the root is rank 0). Each send
/// depends only on the message by which its sender received the
/// payload.
pub fn bcast_binomial(num_nodes: u32, root: NodeId, bytes: u64) -> Workload {
    assert!(num_nodes >= 2, "broadcast needs at least 2 nodes");
    assert!(root.0 < num_nodes, "root {} out of range", root.0);
    let n = num_nodes;
    let mut w = Workload::new(n);
    let group = w.add_group(format!("bcast/{bytes}B"));
    let node_of = |rank: u32| NodeId((rank + root.0) % n);
    // recv_msg[rank] = the message that delivered the payload to `rank`.
    let mut recv_msg: Vec<Option<MsgId>> = vec![None; n as usize];
    let mut r = 0u32;
    while (1u32 << r) < n {
        let span = 1u32 << r;
        for k in 0..span {
            let peer = k + span;
            if peer >= n {
                break;
            }
            let deps = recv_msg[k as usize].into_iter().collect();
            let id = w.push(Message {
                src: node_of(k),
                dst: node_of(peer),
                bytes: bytes.max(1),
                deps,
                group,
            });
            recv_msg[peer as usize] = Some(id);
        }
        r += 1;
    }
    w
}

/// Closed-loop traffic: each node issues `msgs_per_node` messages and
/// keeps at most `in_flight` of them outstanding — message `j` of a
/// node depends on message `j - in_flight` of the same node completing.
/// Destinations are pre-drawn here from a per-node ChaCha12 stream
/// seeded by `(seed, node)`, so the workload is a fixed DAG and the
/// simulation itself needs no runtime randomness.
pub fn closed_loop(
    num_nodes: u32,
    kind: ClosedLoopKind,
    bytes: u64,
    in_flight: u32,
    msgs_per_node: u32,
    seed: u64,
) -> Workload {
    assert!(num_nodes >= 2, "closed loop needs at least 2 nodes");
    assert!(in_flight >= 1, "need at least one message in flight");
    assert!(msgs_per_node >= 1, "need at least one message per node");
    let n = num_nodes;
    let mut w = Workload::new(n);
    let group = w.add_group(match kind {
        ClosedLoopKind::Uniform => format!("closed-uniform/{bytes}B"),
        ClosedLoopKind::Centric { fraction, .. } => {
            format!("closed-centric{:.0}/{bytes}B", fraction * 100.0)
        }
    });
    for i in 0..n {
        let mut rng = ChaCha12Rng::seed_from_u64(seed ^ (u64::from(i) << 32) ^ 0x77_6C6F_6164);
        for j in 0..msgs_per_node {
            let dst = draw_dst(&mut rng, n, NodeId(i), kind);
            let deps = if j >= in_flight {
                vec![i * msgs_per_node + (j - in_flight)]
            } else {
                vec![]
            };
            w.push(Message {
                src: NodeId(i),
                dst,
                bytes: bytes.max(1),
                deps,
                group,
            });
        }
    }
    w
}

fn draw_dst(rng: &mut ChaCha12Rng, n: u32, src: NodeId, kind: ClosedLoopKind) -> NodeId {
    if let ClosedLoopKind::Centric { hotspot, fraction } = kind {
        if hotspot != src && rng.gen_bool(fraction) {
            return hotspot;
        }
    }
    loop {
        let d = NodeId(rng.gen_range(0..n));
        let hot_excluded = matches!(kind, ClosedLoopKind::Centric { hotspot, .. } if d == hotspot);
        if d != src && !hot_excluded {
            return d;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_allreduce_shape() {
        let n = 5u32;
        let w = allreduce_ring(n, 1000);
        w.validate().expect("valid");
        assert_eq!(w.messages.len(), (2 * (n - 1) * n) as usize);
        assert_eq!(w.roots().count(), n as usize);
        // chunk = ceil(1000/5)
        assert!(w.messages.iter().all(|m| m.bytes == 200));
        // step-1 deps: own previous + left neighbor's previous.
        let m = &w.messages[(n + 2) as usize]; // step 1, node 2
        assert_eq!(m.deps, vec![2, 1]);
    }

    #[test]
    fn recursive_doubling_requires_power_of_two_and_pairs_up() {
        let w = allreduce_recursive_doubling(8, 4096);
        w.validate().expect("valid");
        assert_eq!(w.messages.len(), 3 * 8);
        for (id, m) in w.messages.iter().enumerate() {
            let r = id as u32 / 8;
            assert_eq!(m.dst.0, m.src.0 ^ (1 << r), "partner is XOR mask");
        }
    }

    #[test]
    #[should_panic(expected = "power-of-two")]
    fn recursive_doubling_rejects_non_power_of_two() {
        allreduce_recursive_doubling(6, 4096);
    }

    #[test]
    fn all_to_all_covers_every_pair_exactly_once() {
        let n = 6u32;
        let w = all_to_all(n, 512);
        w.validate().expect("valid");
        assert_eq!(w.messages.len(), (n * (n - 1)) as usize);
        let mut seen = std::collections::HashSet::new();
        for m in &w.messages {
            assert!(seen.insert((m.src, m.dst)), "pair sent twice");
        }
    }

    #[test]
    fn binomial_bcast_reaches_every_node_once() {
        for n in [2u32, 5, 8, 13] {
            let root = NodeId(n / 3);
            let w = bcast_binomial(n, root, 2048);
            w.validate().expect("valid");
            assert_eq!(w.messages.len(), (n - 1) as usize, "n-1 sends for n={n}");
            let mut reached = vec![false; n as usize];
            reached[root.index()] = true;
            for m in &w.messages {
                assert!(reached[m.src.index()], "sender must hold payload");
                assert!(!reached[m.dst.index()], "double delivery");
                reached[m.dst.index()] = true;
            }
            assert!(reached.iter().all(|&r| r));
        }
    }

    #[test]
    fn closed_loop_is_deterministic_and_windowed() {
        let kind = ClosedLoopKind::Uniform;
        let a = closed_loop(8, kind, 1024, 2, 6, 42);
        let b = closed_loop(8, kind, 1024, 2, 6, 42);
        assert_eq!(a, b, "same seed, same workload");
        let c = closed_loop(8, kind, 1024, 2, 6, 43);
        assert_ne!(a, c, "different seed, different destinations");
        a.validate().expect("valid");
        // Window: message j depends on j-2 of the same node.
        for (id, m) in a.messages.iter().enumerate() {
            let j = id as u32 % 6;
            if j >= 2 {
                assert_eq!(m.deps, vec![id as u32 - 2]);
            } else {
                assert!(m.deps.is_empty());
            }
        }
    }

    #[test]
    fn closed_loop_centric_hits_the_hotspot() {
        let hotspot = NodeId(3);
        let w = closed_loop(
            16,
            ClosedLoopKind::Centric {
                hotspot,
                fraction: 0.5,
            },
            256,
            1,
            32,
            7,
        );
        w.validate().expect("valid");
        let hot = w.messages.iter().filter(|m| m.dst == hotspot).count();
        let total = w.messages.len();
        // 15 senders * 32 msgs at 50% ⇒ expect ~240 of 512; accept a wide band.
        assert!(
            hot * 3 > total && hot * 3 < total * 2,
            "hotspot fraction off: {hot}/{total}"
        );
    }
}
