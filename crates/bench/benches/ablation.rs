//! Engine-cost ablation: how the simulator's wall time scales with the
//! model knobs (VL count, buffer depth, packet size). The *result-quality*
//! ablation (accepted traffic / latency per knob) is the `ablation`
//! binary; this bench tracks the computational cost of the same knobs.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ib_fabric::prelude::*;
use ib_fabric::sim::{run_once, RunSpec};
use std::hint::black_box;

fn run(fabric: &Fabric, vls: u8, buffers: u8, bytes: u32) -> u64 {
    let mut cfg = SimConfig::paper(vls);
    cfg.buffer_packets = buffers;
    cfg.packet_bytes = bytes;
    run_once(
        fabric.network(),
        fabric.routing(),
        cfg,
        TrafficPattern::Uniform,
        RunSpec::new(0.6, 30_000),
    )
    .events_processed
}

fn bench_ablation(c: &mut Criterion) {
    let fabric = Fabric::builder(8, 2).build().unwrap();
    let mut group = c.benchmark_group("ablation_cost");
    group.sample_size(10);
    for vls in [1u8, 2, 4] {
        group.bench_function(BenchmarkId::new("vls", vls), |b| {
            b.iter(|| black_box(run(&fabric, vls, 1, 256)))
        });
    }
    for buffers in [1u8, 4] {
        group.bench_function(BenchmarkId::new("buffers", buffers), |b| {
            b.iter(|| black_box(run(&fabric, 1, buffers, 256)))
        });
    }
    for bytes in [64u32, 1024] {
        group.bench_function(BenchmarkId::new("packet_bytes", bytes), |b| {
            b.iter(|| black_box(run(&fabric, 1, 1, bytes)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_ablation);
criterion_main!(benches);
