/root/repo/target/release/deps/lft_build-9fdd58f94b4e787a.d: crates/bench/benches/lft_build.rs

/root/repo/target/release/deps/lft_build-9fdd58f94b4e787a: crates/bench/benches/lft_build.rs

crates/bench/benches/lft_build.rs:
